"""Ablation: unified rotation + DVFS (the paper's Section VII future work).

On an overloaded hot workload (full-chip swaptions), vanilla HotPotato runs
at f_max and rides hardware DTM across the threshold; the unified scheduler
replaces DTM with graceful analytic frequency scaling.  Expected shape:

- hybrid eliminates DTM events entirely and stays strictly below the
  threshold;
- hybrid stays competitive with (or beats) PCMig;
- vanilla HotPotato remains the fastest but kisses the threshold.
"""

import pytest

from repro.sched import HotPotatoDvfsScheduler, HotPotatoScheduler, PCMigScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.generator import homogeneous_fill, materialize


@pytest.fixture(scope="module")
def outcomes(ctx64):
    results = {}
    for scheduler_cls in (
        PCMigScheduler,
        HotPotatoScheduler,
        HotPotatoDvfsScheduler,
    ):
        tasks = materialize(
            homogeneous_fill("swaptions", 64, seed=42, work_scale=1.5)
        )
        sim = IntervalSimulator(
            ctx64.config,
            scheduler_cls(),
            tasks,
            ctx=SimContext(ctx64.config, ctx64.thermal_model),
        )
        results[scheduler_cls.name] = sim.run(max_time_s=4.0)
    return results


def test_hybrid_regeneration(benchmark, ctx64):
    def run():
        tasks = materialize(
            homogeneous_fill("swaptions", 64, seed=42, work_scale=1.0)
        )
        sim = IntervalSimulator(
            ctx64.config,
            HotPotatoDvfsScheduler(),
            tasks,
            ctx=SimContext(ctx64.config, ctx64.thermal_model),
        )
        return sim.run(max_time_s=3.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.dtm_triggers == 0


class TestShape:
    def test_hybrid_never_triggers_dtm(self, outcomes):
        assert outcomes["hotpotato-dvfs"].dtm_triggers == 0

    def test_hybrid_strictly_below_threshold(self, outcomes, ctx64):
        assert (
            outcomes["hotpotato-dvfs"].peak_temperature_c
            < ctx64.config.thermal.dtm_threshold_c
        )

    def test_vanilla_rides_the_threshold(self, outcomes, ctx64):
        assert outcomes["hotpotato"].dtm_triggers > 0

    def test_hybrid_competitive_with_pcmig(self, outcomes):
        assert (
            outcomes["hotpotato-dvfs"].makespan_s
            < outcomes["pcmig"].makespan_s * 1.08
        )

    def test_vanilla_fastest(self, outcomes):
        assert outcomes["hotpotato"].makespan_s <= (
            outcomes["hotpotato-dvfs"].makespan_s
        )

"""Fig. 4(b): heterogeneous open system across load levels.

Paper: HotPotato outperforms PCMig at every load; the gain is minimal when
the system is under- or over-loaded and peaks (~12.27 %) at medium load.
The benchmark sweeps three representative arrival rates (under / medium /
over the chip's ~90 tasks/s service capacity) with a reduced task count.
"""

import pytest

from repro.experiments import fig4b

_RATES = (10.0, 60.0, 400.0)


@pytest.fixture(scope="module")
def result(ctx64):
    return fig4b.run(
        model=ctx64.thermal_model,
        arrival_rates_per_s=_RATES,
        n_tasks=40,
        work_scale=2.0,
    )


def test_fig4b_regeneration(benchmark, ctx64):
    result = benchmark.pedantic(
        lambda: fig4b.run(
            model=ctx64.thermal_model,
            arrival_rates_per_s=_RATES,
            n_tasks=40,
            work_scale=2.0,
        ),
        rounds=1,
        iterations=1,
    )
    # headline shape, verified even under --benchmark-only: positive at
    # every load, medium load is the sweet spot
    speedups = result.speedup_by_rate()
    assert all(s > 0 for s in speedups.values())
    assert speedups[60.0] > speedups[10.0]
    assert speedups[60.0] > speedups[400.0]


class TestShape:
    def test_hotpotato_wins_at_every_load(self, result):
        for point in result.points:
            assert point.speedup_pct > 0.0

    def test_medium_load_is_the_sweet_spot(self, result):
        speedups = result.speedup_by_rate()
        assert speedups[60.0] > speedups[10.0]
        assert speedups[60.0] > speedups[400.0]

    def test_peak_speedup_band(self, result):
        """Paper: up to 12.27 % at medium load."""
        assert 6.0 < result.peak_speedup_pct < 20.0

    def test_render(self, result):
        text = result.render()
        assert "arrival rate" in text
        assert "peak speedup" in text

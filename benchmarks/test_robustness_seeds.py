"""Robustness: the Fig. 4(a) result is not a single-seed artifact.

The paper reports one workload draw per benchmark; here the HotPotato-vs-
PCMig speedup on the hot representative is re-measured across independent
workload seeds (different instance-size mixes and phase randomizations)
and must stay positive for every seed.
"""

import pytest

from repro.analysis import seed_averaged_speedup
from repro.sched import HotPotatoScheduler, PCMigScheduler
from repro.sim.context import SimContext
from repro.workload.generator import homogeneous_fill

_SEEDS = (7, 21, 42)


def test_speedup_across_seeds(benchmark, ctx64):
    def sweep():
        return seed_averaged_speedup(
            ctx64.config,
            PCMigScheduler,
            HotPotatoScheduler,
            lambda seed: homogeneous_fill(
                "blackscholes", 64, seed=seed, work_scale=1.2
            ),
            seeds=_SEEDS,
            shared_ctx=SimContext(ctx64.config, ctx64.thermal_model),
            max_time_s=4.0,
        )

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # positive for every seed, and the mean lands in the published band
    assert stats["min"] > 0.0
    assert 5.0 < stats["mean"] < 30.0
    # variance across seeds stays moderate
    assert stats["std"] < 10.0

"""Table I: regenerate the platform-configuration table."""

from repro.experiments import table1


def test_table1_regeneration(benchmark):
    report = benchmark(table1.run)
    rendered = report.render()
    # the exact published parameters must appear
    assert "64" in rendered
    assert "4.0 GHz" in rendered
    assert "16/16 KB" in rendered
    assert "128 KB per core" in rendered
    assert "1.5ns per hop" in rendered
    assert "256 Bit" in rendered
    assert "0.81 mm^2" in rendered
    row_names = [name for name, _ in report.rows]
    assert "Number of Cores" in row_names
    assert "NoC Latency" in row_names

"""Fault-injection overhead: disabled vs zero-amplitude vs active faults.

The subsystem's contract is "off by default, free when off" — a config
without faults pays exactly one ``is None`` check per engine hook.  This
benchmark times the same workload at three fault levels and records the
per-interval costs in ``BENCH_faults_overhead.json`` at the repository
root.  ``zero_amplitude`` is the interesting middle level: the injector
and sensor shim are live (every reading passes through them) but no fault
ever fires, so it prices the machinery itself, separate from the cost of
reacting to faults.

Wall-clock assertions are deliberately generous (shared CI boxes are
noisy); the JSON artifact carries the precise measurements.
"""

import json
import time
from pathlib import Path

import pytest

from repro import config
from repro.sched import FixedRotationScheduler
from repro.sim.engine import IntervalSimulator
from repro.workload import PARSEC, Task

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_faults_overhead.json"

#: fault levels: name -> with_faults kwargs (None = faults never enabled).
LEVELS = {
    "disabled": None,
    "zero_amplitude": {},
    "active": {
        "sensor_noise_sigma_c": 0.5,
        "sensor_dropout_prob": 0.05,
        "power_spike_prob": 0.02,
        "power_spike_w": 1.0,
        "migration_failure_prob": 0.1,
    },
}
SIM_TIME_S = 0.05
REPEATS = 3


def _run_once(ctx16, level_kwargs):
    cfg = config.motivational()
    if level_kwargs is not None:
        cfg = cfg.with_faults(seed=1, **level_kwargs)
    tasks = [Task(0, PARSEC["blackscholes"], n_threads=4, seed=1)]
    sim = IntervalSimulator(cfg, FixedRotationScheduler(), tasks, ctx=ctx16)
    start = time.perf_counter()
    result = sim.run(max_time_s=SIM_TIME_S)
    elapsed = time.perf_counter() - start
    intervals = max(
        1, int(result.metrics_snapshot.get("engine.intervals", 0)) or 100
    )
    return elapsed, intervals


@pytest.fixture(scope="module")
def measurements(ctx16):
    timings = {}
    for name, kwargs in LEVELS.items():
        best = None
        for _ in range(REPEATS):
            elapsed, intervals = _run_once(ctx16, kwargs)
            best = elapsed if best is None else min(best, elapsed)
        timings[name] = {
            "best_wall_s": best,
            "intervals": intervals,
            "per_interval_us": best / intervals * 1e6,
        }
    return timings


def test_levels_complete_and_artifact_written(measurements):
    assert set(measurements) == set(LEVELS)
    for stats in measurements.values():
        assert stats["best_wall_s"] > 0
        assert stats["intervals"] > 0
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "faults_overhead",
                "sim_time_s": SIM_TIME_S,
                "repeats": REPEATS,
                "platform": "motivational (16 cores)",
                "levels": measurements,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["levels"]


def test_zero_amplitude_overhead_is_bounded(measurements):
    """The live-but-silent injector must not blow up the hot loop.

    Generous factor: per interval it costs a handful of RNG draws and one
    array copy through the sensor shim, so even on a noisy box 3x the
    disabled run is far beyond any plausible regression-free cost.
    """
    disabled = measurements["disabled"]["best_wall_s"]
    zero = measurements["zero_amplitude"]["best_wall_s"]
    assert zero < disabled * 3.0 + 0.5


def test_active_faults_overhead_is_bounded(measurements):
    """Actually firing faults stays within a small multiple of disabled."""
    disabled = measurements["disabled"]["best_wall_s"]
    active = measurements["active"]["best_wall_s"]
    assert active < disabled * 5.0 + 1.0

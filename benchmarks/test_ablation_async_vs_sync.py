"""Ablation: synchronous proactive vs asynchronous on-demand migration.

The paper's framing (Section I): traditional thermal-aware schedulers use
asynchronous on-demand migrations "often as a measure of last resort";
HotPotato replaces them with synchronous proactive rotation.  This ablation
isolates the migration *policy* (both schedulers pin frequency at f_max and
rely on migration only):

- synchronous rotation keeps the chip thermally safe proactively;
- reactive migration lets heat accumulate first, fires under pressure, and
  leans on DTM — slower and hotter on hot workloads.
"""

import pytest

from repro.sched import AsyncMigrationScheduler, HotPotatoScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.generator import homogeneous_fill, materialize


@pytest.fixture(scope="module")
def outcomes(ctx64):
    results = {}
    for scheduler_cls in (AsyncMigrationScheduler, HotPotatoScheduler):
        tasks = materialize(
            homogeneous_fill("blackscholes", 64, seed=42, work_scale=1.5)
        )
        sim = IntervalSimulator(
            ctx64.config,
            scheduler_cls(),
            tasks,
            ctx=SimContext(ctx64.config, ctx64.thermal_model),
        )
        results[scheduler_cls.name] = sim.run(max_time_s=4.0)
    return results


def test_async_vs_sync_regeneration(benchmark, ctx64):
    def run():
        tasks = materialize(
            homogeneous_fill("blackscholes", 64, seed=42, work_scale=1.0)
        )
        sim = IntervalSimulator(
            ctx64.config,
            AsyncMigrationScheduler(),
            tasks,
            ctx=SimContext(ctx64.config, ctx64.thermal_model),
            record_trace=False,
        )
        return sim.run(max_time_s=3.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.tasks


class TestShape:
    def test_synchronous_is_faster(self, outcomes):
        """The paper's core claim at the migration-policy level."""
        assert (
            outcomes["hotpotato"].makespan_s
            < outcomes["async-migration"].makespan_s
        )

    def test_reactive_leans_on_dtm(self, outcomes):
        """On-demand migration cannot prevent the violations it reacts to:
        DTM fires far more often than under proactive rotation."""
        assert (
            outcomes["async-migration"].dtm_triggers
            > outcomes["hotpotato"].dtm_triggers
        )

    def test_both_complete(self, outcomes):
        for result in outcomes.values():
            assert len(result.tasks) == len(
                materialize(homogeneous_fill("blackscholes", 64, seed=42))
            )

"""Ablation: the rotation interval tau (DESIGN.md ablation 1).

The paper fixes the initial tau at 0.5 ms.  This ablation exposes the
trade-off that choice balances: faster rotation lowers the thermal ripple
(analytic peak falls monotonically) but raises the migration overhead
(response time grows monotonically).  tau = 0.5 ms sits where the peak
reduction has saturated but the overhead is still below ~10 %.
"""

import os

import numpy as np
import pytest

from repro.core.peak_temperature import rotation_peak_temperature
from repro.parallel import Cell, run_cells
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

_TAUS_S = (4e-3, 2e-3, 1e-3, 0.5e-3, 0.25e-3)

#: worker processes for the tau sweep (results are jobs-independent)
_JOBS = int(os.environ.get("REPRO_ABLATION_JOBS", "1"))


def _rotation_sequence(n_cores=16, hot_w=8.0):
    seq = np.full((4, n_cores), 0.3)
    for epoch, core in enumerate((5, 6, 9, 10)):
        seq[epoch, core] = hot_w
    return seq


def _response_cell(tau_s, config, model):
    """One tau point of the sweep — module-level so pools can pickle it."""
    sim = IntervalSimulator(
        config,
        FixedRotationScheduler(tau_s=tau_s),
        [Task(0, PARSEC["blackscholes"], 2, seed=1)],
        ctx=SimContext(config, model),
        dtm_enabled=False,
        record_trace=False,
    )
    return sim.run(max_time_s=1.0).tasks[0].response_time_s * 1e3


def _response_sweep_ms(ctx16):
    cells = [
        Cell(
            key=tau,
            fn=_response_cell,
            kwargs=dict(tau_s=tau, config=ctx16.config, model=ctx16.thermal_model),
        )
        for tau in _TAUS_S
    ]
    results = run_cells(cells, jobs=_JOBS)
    return [results[tau] for tau in _TAUS_S]


def test_rotation_interval_tradeoff(benchmark, ctx16):
    def sweep():
        seq = _rotation_sequence()
        peaks = [
            rotation_peak_temperature(ctx16.dynamics, seq, tau, 45.0)
            for tau in _TAUS_S
        ]
        responses = _response_sweep_ms(ctx16)
        return peaks, responses

    peaks, responses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # thermal side: faster rotation is never hotter
    assert all(b <= a + 1e-9 for a, b in zip(peaks, peaks[1:]))
    # performance side: faster rotation is never faster
    assert all(b >= a - 0.51 for a, b in zip(responses, responses[1:]))
    # the extremes differ measurably in both dimensions
    assert peaks[0] > peaks[-1] + 0.5
    assert responses[-1] > responses[0] * 1.02


def test_paper_default_is_thermally_converged(ctx16):
    """At tau = 0.5 ms the peak is within 1 degC of the tau -> 0 limit:
    rotating faster buys nothing thermally."""
    seq = _rotation_sequence()
    at_default = rotation_peak_temperature(ctx16.dynamics, seq, 0.5e-3, 45.0)
    limit = rotation_peak_temperature(ctx16.dynamics, seq, 1e-5, 45.0)
    assert at_default - limit < 1.0

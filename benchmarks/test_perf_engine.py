"""Engine fast-path benchmarks: the numbers behind ``BENCH_engine.json``.

Three measurements, written to ``BENCH_engine.json`` at the repository
root:

1. **Interval stepping** — dense ``ThermalDynamics.step`` (one ``O(N^3)``
   solve + ``O(N^2)`` matmul per interval) vs the eigenbasis-resident
   :class:`SpectralThermalState` (``O(N n)`` per interval) on the 64-core
   evaluation platform.  The fast path must be at least **3x** faster —
   the measured margin is far larger; the assertion is generous because
   shared CI boxes are noisy.
2. **Candidate evaluation** — HotPotato's (assignment, tau) candidates
   one-at-a-time vs stacked through ``peak_batch`` (plus the memoized
   re-scan cost, the steady-state case of a settled scheduler).
3. **Sweep wall time** — the fig4a driver at ``jobs=1`` vs ``jobs=4``.
   On multi-core hosts this shows the pool speedup; the artifact records
   ``cpu_count`` so a 1-CPU container's flat result reads as what it is.
   Results are asserted identical in both modes regardless.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import PeakTemperatureCalculator
from repro.experiments import fig4a
from repro.thermal import SpectralThermalState

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"

_AMBIENT_C = 45.0
_TAU_S = 0.5e-3
N_STEPS = 400
N_CANDIDATES = 48
DELTA = 8
REPEATS = 3
SWEEP_BENCHMARKS = ("blackscholes", "canneal")
SWEEP_MAX_TIME_S = 0.3


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _power_maps(n_cores, count=8):
    rng = np.random.default_rng(2024)
    return [rng.uniform(0.0, 9.0, size=n_cores) for _ in range(count)]


@pytest.fixture(scope="module")
def stepping(ctx64):
    """Dense vs eigenbasis stepping throughput on the 64-core model."""
    dynamics = ctx64.dynamics
    model = dynamics.model
    powers = _power_maps(model.n_cores)

    def dense():
        temps = model.ambient_vector(_AMBIENT_C)
        for i in range(N_STEPS):
            temps = dynamics.step(temps, powers[i % len(powers)], _AMBIENT_C, _TAU_S)
        return temps

    def spectral():
        state = SpectralThermalState(
            dynamics, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        for i in range(N_STEPS):
            state.step(powers[i % len(powers)], _TAU_S)
            state.core_temperatures()  # the engine reads every interval
        return state.node_temperatures()

    dense_s, dense_final = _best_of(dense)
    spectral_s, spectral_final = _best_of(spectral)
    # both paths must agree — a fast wrong answer is not a fast path
    np.testing.assert_allclose(spectral_final, dense_final, rtol=0, atol=1e-9)
    return {
        "n_steps": N_STEPS,
        "dense_wall_s": dense_s,
        "spectral_wall_s": spectral_s,
        "dense_steps_per_s": N_STEPS / dense_s,
        "spectral_steps_per_s": N_STEPS / spectral_s,
        "speedup": dense_s / spectral_s,
    }


@pytest.fixture(scope="module")
def candidates(ctx64):
    """Scalar vs batched vs memoized Algorithm-1 candidate evaluation."""
    dynamics = ctx64.dynamics
    rng = np.random.default_rng(7)
    seqs = [
        rng.uniform(0.0, 8.0, size=(DELTA, dynamics.model.n_cores))
        for _ in range(N_CANDIDATES)
    ]
    taus = [_TAU_S] * N_CANDIDATES

    def scalar():
        # the pre-batching per-candidate path: one einsum per candidate
        # (``peak()`` itself now delegates to ``peak_batch``, so the
        # un-batched formula is the honest baseline)
        calc = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
        return np.array(
            [
                float(np.max(calc.boundary_temperatures(seq, _TAU_S)))
                for seq in seqs
            ]
        )

    def batched():
        calc = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
        return calc.peak_batch(seqs, taus)

    scalar_s, scalar_vals = _best_of(scalar)
    batched_s, batched_vals = _best_of(batched)
    np.testing.assert_allclose(batched_vals, scalar_vals, rtol=0, atol=1e-9)

    warm = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
    warm.peak_batch(seqs, taus)
    memo_s, memo_vals = _best_of(lambda: warm.peak_batch(seqs, taus))
    np.testing.assert_allclose(memo_vals, scalar_vals, rtol=0, atol=1e-9)
    return {
        "n_candidates": N_CANDIDATES,
        "delta": DELTA,
        "scalar_wall_s": scalar_s,
        "batched_wall_s": batched_s,
        "memoized_wall_s": memo_s,
        "scalar_evals_per_s": N_CANDIDATES / scalar_s,
        "batched_evals_per_s": N_CANDIDATES / batched_s,
        "memoized_evals_per_s": N_CANDIDATES / memo_s,
        "batched_speedup": scalar_s / batched_s,
        "memoized_speedup": scalar_s / memo_s,
    }


@pytest.fixture(scope="module")
def sweep():
    """fig4a wall time at jobs=1 vs jobs=4 (single repeat: full sweeps)."""
    start = time.perf_counter()
    serial = fig4a.run(benchmarks=SWEEP_BENCHMARKS, max_time_s=SWEEP_MAX_TIME_S)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = fig4a.run(
        benchmarks=SWEEP_BENCHMARKS, max_time_s=SWEEP_MAX_TIME_S, jobs=4
    )
    parallel_s = time.perf_counter() - start
    for name in SWEEP_BENCHMARKS:
        a, b = serial.comparisons[name], parallel.comparisons[name]
        assert a.hotpotato.metrics_snapshot == b.hotpotato.metrics_snapshot
        assert a.pcmig.makespan_s == b.pcmig.makespan_s
    return {
        "benchmarks": list(SWEEP_BENCHMARKS),
        "max_time_s": SWEEP_MAX_TIME_S,
        "jobs1_wall_s": serial_s,
        "jobs4_wall_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "cpu_count": os.cpu_count(),
    }


def test_artifact_written(stepping, candidates, sweep):
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "engine_fast_path",
                "platform": "table1 (64 cores)",
                "repeats": REPEATS,
                "interval_stepping": stepping,
                "candidate_evaluation": candidates,
                "parallel_sweep": sweep,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["interval_stepping"]["speedup"] > 0


def test_eigenbasis_stepping_at_least_3x_dense(stepping):
    """The CI gate on the fast path: measured margins are ~20-30x, so 3x
    leaves room for the noisiest shared box while still catching any
    accidental fallback to the dense path."""
    assert stepping["speedup"] >= 3.0


def test_batched_candidates_not_slower_than_scalar(candidates):
    """Stacking must not cost throughput.  At this batch size both paths
    finish in ~2 ms (BLAS-bound) and the ratio sits near 1.0, so the gate
    is set below the noise floor of a shared box — it catches a real
    regression (a contraction falling off the BLAS path, the memo
    fingerprint turning quadratic), not timer jitter.  The memoized
    re-scan must always beat the cold batch."""
    assert candidates["batched_speedup"] >= 0.7
    assert candidates["memoized_speedup"] >= candidates["batched_speedup"]


def test_parallel_sweep_no_pathological_overhead(sweep):
    """jobs=4 must not regress wall time beyond pool-spawn overhead even
    on a single-CPU host (where no speedup is physically possible); on
    multi-core hosts the artifact records the actual speedup."""
    assert sweep["jobs4_wall_s"] < sweep["jobs1_wall_s"] * 2.0 + 2.0

"""Engine fast-path benchmarks: the numbers behind ``BENCH_engine.json``.

Three measurements, written to ``BENCH_engine.json`` at the repository
root:

1. **Interval stepping** — dense ``ThermalDynamics.step`` (one ``O(N^3)``
   solve + ``O(N^2)`` matmul per interval) vs the eigenbasis-resident
   :class:`SpectralThermalState` (``O(N n)`` per interval) on the 64-core
   evaluation platform.  The fast path must be at least **3x** faster —
   the measured margin is far larger; the assertion is generous because
   shared CI boxes are noisy.
2. **Candidate evaluation** — HotPotato's (assignment, tau) candidates
   one-at-a-time vs stacked through ``peak_batch`` (plus the memoized
   re-scan cost, the steady-state case of a settled scheduler).
3. **Sweep wall time** — the fig4a driver at ``jobs=1`` vs
   ``jobs="auto"`` (the vectorized fused batch) vs ``jobs=4`` (the
   pool).  The artifact records the policy ``auto`` resolved to and the
   batch counters; the CI gate holds ``auto`` to never-slower-than-serial
   (it fuses in-process, so there is no overhead to amortize).  On
   multi-core hosts jobs=4 shows the pool speedup; a 1-CPU container's
   flat result reads as what it is via the recorded ``cpu_count``.
   Results are asserted identical across all modes.
4. **Batched stepping** — one :class:`BatchedSpectralState` stepping all
   four fig4 cells per fused update vs the per-cell dense
   ``ThermalDynamics.step`` reference, gated at **5x** (measured margin
   is far larger); rows are asserted bit-identical to per-cell
   :class:`SpectralThermalState` stepping.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import PeakTemperatureCalculator
from repro.experiments import fig4a
from repro.thermal import SpectralThermalState
from repro.thermal.batched_state import BatchedSpectralState

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"

_AMBIENT_C = 45.0
_TAU_S = 0.5e-3
N_STEPS = 400
N_CANDIDATES = 48
DELTA = 8
REPEATS = 3
SWEEP_BENCHMARKS = ("blackscholes", "canneal")
SWEEP_MAX_TIME_S = 0.3


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _power_maps(n_cores, count=8):
    rng = np.random.default_rng(2024)
    return [rng.uniform(0.0, 9.0, size=n_cores) for _ in range(count)]


@pytest.fixture(scope="module")
def stepping(ctx64):
    """Dense vs eigenbasis stepping throughput on the 64-core model."""
    dynamics = ctx64.dynamics
    model = dynamics.model
    powers = _power_maps(model.n_cores)

    def dense():
        temps = model.ambient_vector(_AMBIENT_C)
        for i in range(N_STEPS):
            temps = dynamics.step(temps, powers[i % len(powers)], _AMBIENT_C, _TAU_S)
        return temps

    def spectral():
        state = SpectralThermalState(
            dynamics, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        for i in range(N_STEPS):
            state.step(powers[i % len(powers)], _TAU_S)
            state.core_temperatures()  # the engine reads every interval
        return state.node_temperatures()

    dense_s, dense_final = _best_of(dense)
    spectral_s, spectral_final = _best_of(spectral)
    # both paths must agree — a fast wrong answer is not a fast path
    np.testing.assert_allclose(spectral_final, dense_final, rtol=0, atol=1e-9)
    return {
        "n_steps": N_STEPS,
        "dense_wall_s": dense_s,
        "spectral_wall_s": spectral_s,
        "dense_steps_per_s": N_STEPS / dense_s,
        "spectral_steps_per_s": N_STEPS / spectral_s,
        "speedup": dense_s / spectral_s,
    }


@pytest.fixture(scope="module")
def candidates(ctx64):
    """Scalar vs batched vs memoized Algorithm-1 candidate evaluation."""
    dynamics = ctx64.dynamics
    rng = np.random.default_rng(7)
    seqs = [
        rng.uniform(0.0, 8.0, size=(DELTA, dynamics.model.n_cores))
        for _ in range(N_CANDIDATES)
    ]
    taus = [_TAU_S] * N_CANDIDATES

    def scalar():
        # the pre-batching per-candidate path: one einsum per candidate
        # (``peak()`` itself now delegates to ``peak_batch``, so the
        # un-batched formula is the honest baseline)
        calc = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
        return np.array(
            [
                float(np.max(calc.boundary_temperatures(seq, _TAU_S)))
                for seq in seqs
            ]
        )

    def batched():
        calc = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
        return calc.peak_batch(seqs, taus)

    scalar_s, scalar_vals = _best_of(scalar)
    batched_s, batched_vals = _best_of(batched)
    np.testing.assert_allclose(batched_vals, scalar_vals, rtol=0, atol=1e-9)

    warm = PeakTemperatureCalculator(dynamics, _AMBIENT_C)
    warm.peak_batch(seqs, taus)
    memo_s, memo_vals = _best_of(lambda: warm.peak_batch(seqs, taus))
    np.testing.assert_allclose(memo_vals, scalar_vals, rtol=0, atol=1e-9)
    return {
        "n_candidates": N_CANDIDATES,
        "delta": DELTA,
        "scalar_wall_s": scalar_s,
        "batched_wall_s": batched_s,
        "memoized_wall_s": memo_s,
        "scalar_evals_per_s": N_CANDIDATES / scalar_s,
        "batched_evals_per_s": N_CANDIDATES / batched_s,
        "memoized_evals_per_s": N_CANDIDATES / memo_s,
        "batched_speedup": scalar_s / batched_s,
        "memoized_speedup": scalar_s / memo_s,
    }


SWEEP_REPEATS = 2


@pytest.fixture(scope="module")
def sweep():
    """fig4a wall time: jobs=1 vs jobs="auto" vs jobs=4 (full sweeps).

    Serial and auto run *interleaved*, best-of-``SWEEP_REPEATS`` each:
    the two policies do identical work (profiled call counts differ by
    ~0.1%), so the comparison is dominated by box noise and frequency
    drift — interleaving cancels the drift, best-of cancels the noise.
    jobs=4 is one shot (its gate has a 2x margin).
    """
    report = {}
    serial_s = auto_s = None
    serial = auto = None
    for _ in range(SWEEP_REPEATS):
        start = time.perf_counter()
        serial = fig4a.run(
            benchmarks=SWEEP_BENCHMARKS, max_time_s=SWEEP_MAX_TIME_S
        )
        elapsed = time.perf_counter() - start
        serial_s = elapsed if serial_s is None else min(serial_s, elapsed)
        start = time.perf_counter()
        auto = fig4a.run(
            benchmarks=SWEEP_BENCHMARKS,
            max_time_s=SWEEP_MAX_TIME_S,
            jobs="auto",
            report=report,
        )
        elapsed = time.perf_counter() - start
        auto_s = elapsed if auto_s is None else min(auto_s, elapsed)
    start = time.perf_counter()
    parallel = fig4a.run(
        benchmarks=SWEEP_BENCHMARKS, max_time_s=SWEEP_MAX_TIME_S, jobs=4
    )
    parallel_s = time.perf_counter() - start
    for name in SWEEP_BENCHMARKS:
        a, b, c = (
            serial.comparisons[name],
            parallel.comparisons[name],
            auto.comparisons[name],
        )
        assert a.hotpotato.metrics_snapshot == b.hotpotato.metrics_snapshot
        assert a.hotpotato.metrics_snapshot == c.hotpotato.metrics_snapshot
        assert a.pcmig.makespan_s == b.pcmig.makespan_s
        assert a.pcmig.makespan_s == c.pcmig.makespan_s
    return {
        "benchmarks": list(SWEEP_BENCHMARKS),
        "max_time_s": SWEEP_MAX_TIME_S,
        "jobs1_wall_s": serial_s,
        "auto_wall_s": auto_s,
        "auto_policy": report.get("policy"),
        "auto_batch": report.get("batch"),
        "auto_speedup": serial_s / auto_s,
        "jobs4_wall_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "cpu_count": os.cpu_count(),
    }


BATCH_CELLS = 4  # fig4's sweep shape: 2 benchmarks x 2 schedulers
BATCH_STEPS = 400


@pytest.fixture(scope="module")
def batched_sweep(ctx64):
    """Fused batched stepping vs the per-cell dense reference."""
    dynamics = ctx64.dynamics
    model = dynamics.model
    rng = np.random.default_rng(11)
    cell_powers = [
        [
            rng.uniform(0.0, 9.0, size=model.n_cores)
            for _ in range(8)
        ]
        for _ in range(BATCH_CELLS)
    ]

    def dense():
        finals = []
        for powers in cell_powers:
            temps = model.ambient_vector(_AMBIENT_C)
            for i in range(BATCH_STEPS):
                temps = dynamics.step(
                    temps, powers[i % len(powers)], _AMBIENT_C, _TAU_S
                )
            finals.append(temps)
        return np.stack(finals)

    def solo_spectral():
        states = [
            SpectralThermalState(
                dynamics, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
            )
            for _ in range(BATCH_CELLS)
        ]
        for i in range(BATCH_STEPS):
            for cell, state in enumerate(states):
                state.step(cell_powers[cell][i % 8], _TAU_S)
                state.core_temperatures()
        return np.stack([s.node_temperatures() for s in states])

    def fused():
        batch = BatchedSpectralState.from_states(
            [
                SpectralThermalState(
                    dynamics, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
                )
                for _ in range(BATCH_CELLS)
            ]
        )
        for i in range(BATCH_STEPS):
            batch.step(
                np.stack([cell_powers[c][i % 8] for c in range(BATCH_CELLS)]),
                _TAU_S,
            )
            for cell in range(BATCH_CELLS):
                batch.core_temperatures(cell)
        return np.stack(
            [batch.node_temperatures(c) for c in range(BATCH_CELLS)]
        )

    dense_s, dense_final = _best_of(dense)
    solo_s, solo_final = _best_of(solo_spectral)
    fused_s, fused_final = _best_of(fused)
    # fused rows are bit-identical to per-cell spectral stepping, and
    # both agree with the dense reference
    assert np.array_equal(fused_final, solo_final)
    np.testing.assert_allclose(fused_final, dense_final, rtol=0, atol=1e-9)
    total_steps = BATCH_CELLS * BATCH_STEPS
    return {
        "n_cells": BATCH_CELLS,
        "n_steps_per_cell": BATCH_STEPS,
        "dense_wall_s": dense_s,
        "solo_spectral_wall_s": solo_s,
        "fused_wall_s": fused_s,
        "dense_steps_per_s": total_steps / dense_s,
        "solo_spectral_steps_per_s": total_steps / solo_s,
        "fused_steps_per_s": total_steps / fused_s,
        "speedup_vs_dense": dense_s / fused_s,
        "speedup_vs_solo_spectral": solo_s / fused_s,
    }


def test_artifact_written(stepping, candidates, sweep, batched_sweep):
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "engine_fast_path",
                "platform": "table1 (64 cores)",
                "repeats": REPEATS,
                "interval_stepping": stepping,
                "candidate_evaluation": candidates,
                "parallel_sweep": sweep,
                "batched_sweep": batched_sweep,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["interval_stepping"]["speedup"] > 0


def test_eigenbasis_stepping_at_least_3x_dense(stepping):
    """The CI gate on the fast path: measured margins are ~20-30x, so 3x
    leaves room for the noisiest shared box while still catching any
    accidental fallback to the dense path."""
    assert stepping["speedup"] >= 3.0


def test_batched_candidates_not_slower_than_scalar(candidates):
    """Stacking must not cost throughput.  At this batch size both paths
    finish in ~2 ms (BLAS-bound) and the ratio sits near 1.0, so the gate
    is set below the noise floor of a shared box — it catches a real
    regression (a contraction falling off the BLAS path, the memo
    fingerprint turning quadratic), not timer jitter.  The memoized
    re-scan must always beat the cold batch."""
    assert candidates["batched_speedup"] >= 0.7
    assert candidates["memoized_speedup"] >= candidates["batched_speedup"]


def test_parallel_sweep_no_pathological_overhead(sweep):
    """jobs=4 must not regress wall time beyond pool-spawn overhead even
    on a single-CPU host (where no speedup is physically possible); on
    multi-core hosts the artifact records the actual speedup."""
    assert sweep["jobs4_wall_s"] < sweep["jobs1_wall_s"] * 2.0 + 2.0


def test_auto_sweep_vectorizes_and_never_loses_to_serial(sweep):
    """The ``jobs="auto"`` gate: with the fig4a batch builder available,
    auto must resolve to the vectorized in-process policy and must not
    be slower than the serial sweep — fusing the thermal hot loops has
    no pool/pickle overhead to amortize, so "never slower" is the
    contract, not a best case (the artifact records the actual speedup).
    """
    assert sweep["auto_policy"] == "vectorized"
    assert sweep["auto_wall_s"] <= sweep["jobs1_wall_s"] * 1.05
    batch = sweep["auto_batch"]
    assert batch["width_initial"] == 2 * len(SWEEP_BENCHMARKS)
    assert batch["fused_updates"] >= 1
    # fusion did its job: far fewer fused updates than rows stepped
    assert batch["rows_stepped"] > batch["fused_updates"]


def test_batched_stepping_at_least_5x_dense(batched_sweep):
    """The CI gate on the fused multi-cell fast path: stepping all fig4
    cells through one BatchedSpectralState must beat the per-cell dense
    reference by at least 5x per cell-step (measured margins are ~20-40x;
    the slack absorbs shared-box noise, not a regression to the dense or
    un-fused path)."""
    assert batched_sweep["speedup_vs_dense"] >= 5.0

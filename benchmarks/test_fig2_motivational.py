"""Fig. 2: the motivational example's three thermal-management regimes.

Paper numbers: none = 68 ms (~80 degC, violates the 70 degC threshold),
TSP-DVFS = 84 ms (safe, slowest), rotation @ 0.5 ms = 74 ms (safe,
~8 % rotation penalty, 11.9 % faster than DVFS).
"""

import pytest

from repro.experiments import fig2


@pytest.fixture(scope="module")
def result(ctx16):
    return fig2.run(model=ctx16.thermal_model)


def test_fig2_regeneration(benchmark, ctx16):
    result = benchmark.pedantic(
        lambda: fig2.run(model=ctx16.thermal_model), rounds=1, iterations=1
    )
    # headline shape, verified even under --benchmark-only
    assert result.violates("none")
    assert not result.violates("tsp-dvfs")
    assert not result.violates("rotation")
    assert (
        result.response_ms("none")
        < result.response_ms("rotation")
        < result.response_ms("tsp-dvfs")
    )


class TestShape:
    def test_only_unmanaged_violates(self, result):
        assert result.violates("none")
        assert not result.violates("tsp-dvfs")
        assert not result.violates("rotation")

    def test_response_ordering(self, result):
        """none < rotation < DVFS (the paper's Fig. 2 story)."""
        assert (
            result.response_ms("none")
            < result.response_ms("rotation")
            < result.response_ms("tsp-dvfs")
        )

    def test_rotation_penalty_band(self, result):
        """Rotation costs ~8 % over unmanaged (paper: 8.1 %)."""
        penalty = result.response_ms("rotation") / result.response_ms("none") - 1
        assert 0.03 < penalty < 0.18

    def test_rotation_beats_dvfs_clearly(self, result):
        """Rotation is ~12 % faster than TSP-DVFS (paper: 11.9 %)."""
        gain = result.response_ms("tsp-dvfs") / result.response_ms("rotation") - 1
        assert gain > 0.05

    def test_absolute_times_near_paper(self, result):
        assert result.response_ms("none") == pytest.approx(68.0, abs=8.0)
        assert result.response_ms("rotation") == pytest.approx(74.0, abs=8.0)
        assert result.response_ms("tsp-dvfs") == pytest.approx(84.0, abs=10.0)

    def test_rows_render(self, result):
        text = result.render()
        assert "rotation" in text
        assert "trace" in text

"""Fig. 4(a): homogeneous full-load comparison, HotPotato vs PCMig.

Paper: 10.72 % mean speedup across the eight PARSEC benchmarks; *canneal*
(memory-bound, cold) shows the smallest gain (0.73 %).

The benchmark here runs a hot (blackscholes) and a cold (canneal)
representative at reduced work scale; the full eight-benchmark sweep is what
``python -m repro.experiments fig4a`` regenerates (see EXPERIMENTS.md for
its recorded output).
"""

import pytest

from repro.experiments import fig4a


@pytest.fixture(scope="module")
def result(ctx64):
    return fig4a.run(
        model=ctx64.thermal_model,
        benchmarks=("blackscholes", "canneal"),
        work_scale=1.5,
        max_time_s=3.0,
    )


def test_fig4a_regeneration(benchmark, ctx64):
    result = benchmark.pedantic(
        lambda: fig4a.run(
            model=ctx64.thermal_model,
            benchmarks=("blackscholes", "canneal"),
            work_scale=1.5,
            max_time_s=3.0,
        ),
        rounds=1,
        iterations=1,
    )
    # headline shape, verified even under --benchmark-only: the hot
    # benchmark gains clearly, the cold one barely (paper: canneal lowest)
    assert result.comparisons["blackscholes"].speedup_pct > 5.0
    assert (
        result.comparisons["blackscholes"].speedup_pct
        > result.comparisons["canneal"].speedup_pct
    )


class TestShape:
    def test_hotpotato_wins_on_hot_benchmark(self, result):
        """Compute-bound blackscholes: a clear double-digit-ish speedup."""
        speedup = result.comparisons["blackscholes"].speedup_pct
        assert speedup > 5.0

    def test_canneal_gain_is_small(self, result):
        """Memory-bound canneal produces little heat: near-zero gain
        (paper: +0.73 %)."""
        speedup = result.comparisons["canneal"].speedup_pct
        assert -2.0 < speedup < 6.0

    def test_hot_gains_exceed_cold_gains(self, result):
        assert (
            result.comparisons["blackscholes"].speedup_pct
            > result.comparisons["canneal"].speedup_pct
        )

    def test_normalized_makespan_below_one_for_hot(self, result):
        assert result.comparisons["blackscholes"].normalized_makespan < 1.0

    def test_render(self, result):
        text = result.render()
        assert "blackscholes" in text
        assert "speedup" in text

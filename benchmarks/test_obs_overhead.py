"""Observability overhead: off vs metrics-only vs full trace + sink.

The layer's contract is "off by default, free when off" — an
uninstrumented run pays only ``is None`` checks in the hot loop.  This
benchmark times the same workload at three instrumentation levels and
records the measured per-interval costs in ``BENCH_obs_overhead.json`` at
the repository root, so regressions in the recording path show up as
numbers, not vibes.

The span tracer has the same contract at request granularity: a second
fixture times the serve hot path (three nested spans around a real
peak-temperature evaluation) with no tracer, a disabled tracer, and an
enabled tracer, and gates the disabled-tracer cost at <= 2% over
baseline.  Those measurements land in the artifact under ``tracing``.

Wall-clock assertions are deliberately generous (shared CI boxes are
noisy); the JSON artifact carries the precise measurements.
"""

import json
import time
from pathlib import Path

import pytest

from repro import config
from repro.sched import FixedRotationScheduler
from repro.sim.engine import IntervalSimulator
from repro.workload import PARSEC, Task

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_obs_overhead.json"

#: instrumentation levels: name -> with_observability kwargs.
LEVELS = {
    "off": {},
    "metrics_only": {"metrics": True},
    "full_trace_sink": {"trace": True, "metrics": True, "profiling": True},
}
SIM_TIME_S = 0.05
REPEATS = 3


def _run_once(ctx16, level_kwargs, trace_path=None):
    cfg = config.motivational()
    if level_kwargs or trace_path:
        kwargs = dict(level_kwargs)
        if trace_path is not None:
            kwargs.pop("trace", None)
            kwargs["trace_path"] = str(trace_path)
        cfg = cfg.with_observability(**kwargs)
    tasks = [Task(0, PARSEC["blackscholes"], n_threads=4, seed=1)]
    sim = IntervalSimulator(cfg, FixedRotationScheduler(), tasks, ctx=ctx16)
    start = time.perf_counter()
    result = sim.run(max_time_s=SIM_TIME_S)
    elapsed = time.perf_counter() - start
    if sim.observer is not None:
        sim.observer.close()
    intervals = max(
        1, int(result.metrics_snapshot.get("engine.intervals", 0)) or 100
    )
    return elapsed, intervals, sim


@pytest.fixture(scope="module")
def measurements(ctx16, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_overhead")
    timings = {}
    for name, kwargs in LEVELS.items():
        trace_path = (
            root / "stream.jsonl" if name == "full_trace_sink" else None
        )
        best = None
        for repeat in range(REPEATS):
            path = (
                root / f"stream_{repeat}.jsonl" if trace_path is not None else None
            )
            elapsed, intervals, sim = _run_once(ctx16, kwargs, path)
            best = elapsed if best is None else min(best, elapsed)
        timings[name] = {
            "best_wall_s": best,
            "intervals": intervals,
            "per_interval_us": best / intervals * 1e6,
        }
    return timings


def test_levels_complete_and_artifact_written(measurements, span_timings):
    assert set(measurements) == set(LEVELS)
    for stats in measurements.values():
        assert stats["best_wall_s"] > 0
        assert stats["intervals"] > 0
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "obs_overhead",
                "sim_time_s": SIM_TIME_S,
                "repeats": REPEATS,
                "platform": "motivational (16 cores)",
                "levels": measurements,
                "tracing": span_timings,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["levels"]


TRACE_ITERATIONS = 400


def _span_workload(tracer, calculator, base):
    """The serve hot path in miniature: three nested spans per request
    around a real peak-temperature evaluation (mirrors the span tree
    ``http.<endpoint>`` -> ``batch.flush`` -> ``batch.peak_batch``).

    Power varies per request (and per repeat, via ``base``) so every
    iteration pays the full evaluation rather than a memo hit.
    """
    total = 0.0
    for index in range(TRACE_ITERATIONS):
        seq = [[1.0 + (base + index) * 1e-6] * 4]
        if tracer is None:
            total += calculator.peak_batch([seq], [None])[0]
        else:
            with tracer.span("http.peak", root=True):
                with tracer.span("batch.flush"):
                    with tracer.span("batch.peak_batch"):
                        total += calculator.peak_batch([seq], [None])[0]
    return total


@pytest.fixture(scope="module")
def span_timings():
    from repro.core.peak_temperature import PeakTemperatureCalculator
    from repro.obs.spans import SpanTracer
    from repro.thermal.calibrate import calibrated_model
    from repro.thermal.matex import ThermalDynamics

    cfg = config.SystemConfig(mesh_width=2, mesh_height=2)
    calculator = PeakTemperatureCalculator(
        ThermalDynamics(calibrated_model(cfg)), cfg.thermal.ambient_c
    )
    timings = {}
    for name, tracer_factory in (
        ("baseline", lambda: None),
        ("tracing_disabled", lambda: SpanTracer(enabled=False)),
        ("tracing_enabled", lambda: SpanTracer(enabled=True, capacity=256)),
    ):
        best = None
        for repeat in range(REPEATS):
            tracer = tracer_factory()
            base = (len(timings) * REPEATS + repeat + 1) * TRACE_ITERATIONS
            start = time.perf_counter()
            _span_workload(tracer, calculator, base)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        timings[name] = {
            "best_wall_s": best,
            "iterations": TRACE_ITERATIONS,
            "per_request_us": best / TRACE_ITERATIONS * 1e6,
        }
    return timings


def test_metrics_overhead_is_bounded(measurements):
    """Metrics-only instrumentation must not blow up the hot loop.

    Generous factor: counters/gauges are dict lookups and float adds, so
    even on a noisy box 3x the uninstrumented run is far beyond any
    plausible regression-free cost.
    """
    off = measurements["off"]["best_wall_s"]
    metrics = measurements["metrics_only"]["best_wall_s"]
    assert metrics < off * 3.0 + 0.5


def test_full_instrumentation_overhead_is_bounded(measurements):
    """Trace + streaming sink + profiler stays within a small multiple."""
    off = measurements["off"]["best_wall_s"]
    full = measurements["full_trace_sink"]["best_wall_s"]
    assert full < off * 5.0 + 1.0


def test_disabled_tracing_overhead_is_bounded(span_timings):
    """The span tracer's "off by default, free when off" gate.

    A disabled :class:`SpanTracer` must cost <= 2% over the uninstrumented
    request path (its ``span()`` is a single ``enabled`` check returning a
    shared no-op).  The absolute slack term absorbs scheduler noise on
    shared CI boxes; the artifact carries the precise measurements.
    """
    baseline = span_timings["baseline"]["best_wall_s"]
    disabled = span_timings["tracing_disabled"]["best_wall_s"]
    assert disabled <= baseline * 1.02 + 0.05


def test_enabled_tracing_overhead_is_bounded(span_timings):
    """Enabled tracing (3 spans/request, in-memory ring, no sink) stays
    within a small multiple of the bare request path."""
    baseline = span_timings["baseline"]["best_wall_s"]
    enabled = span_timings["tracing_enabled"]["best_wall_s"]
    assert enabled < baseline * 3.0 + 0.5

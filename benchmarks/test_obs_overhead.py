"""Observability overhead: off vs metrics-only vs full trace + sink.

The layer's contract is "off by default, free when off" — an
uninstrumented run pays only ``is None`` checks in the hot loop.  This
benchmark times the same workload at three instrumentation levels and
records the measured per-interval costs in ``BENCH_obs_overhead.json`` at
the repository root, so regressions in the recording path show up as
numbers, not vibes.

Wall-clock assertions are deliberately generous (shared CI boxes are
noisy); the JSON artifact carries the precise measurements.
"""

import json
import time
from pathlib import Path

import pytest

from repro import config
from repro.sched import FixedRotationScheduler
from repro.sim.engine import IntervalSimulator
from repro.workload import PARSEC, Task

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_obs_overhead.json"

#: instrumentation levels: name -> with_observability kwargs.
LEVELS = {
    "off": {},
    "metrics_only": {"metrics": True},
    "full_trace_sink": {"trace": True, "metrics": True, "profiling": True},
}
SIM_TIME_S = 0.05
REPEATS = 3


def _run_once(ctx16, level_kwargs, trace_path=None):
    cfg = config.motivational()
    if level_kwargs or trace_path:
        kwargs = dict(level_kwargs)
        if trace_path is not None:
            kwargs.pop("trace", None)
            kwargs["trace_path"] = str(trace_path)
        cfg = cfg.with_observability(**kwargs)
    tasks = [Task(0, PARSEC["blackscholes"], n_threads=4, seed=1)]
    sim = IntervalSimulator(cfg, FixedRotationScheduler(), tasks, ctx=ctx16)
    start = time.perf_counter()
    result = sim.run(max_time_s=SIM_TIME_S)
    elapsed = time.perf_counter() - start
    if sim.observer is not None:
        sim.observer.close()
    intervals = max(
        1, int(result.metrics_snapshot.get("engine.intervals", 0)) or 100
    )
    return elapsed, intervals, sim


@pytest.fixture(scope="module")
def measurements(ctx16, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_overhead")
    timings = {}
    for name, kwargs in LEVELS.items():
        trace_path = (
            root / "stream.jsonl" if name == "full_trace_sink" else None
        )
        best = None
        for repeat in range(REPEATS):
            path = (
                root / f"stream_{repeat}.jsonl" if trace_path is not None else None
            )
            elapsed, intervals, sim = _run_once(ctx16, kwargs, path)
            best = elapsed if best is None else min(best, elapsed)
        timings[name] = {
            "best_wall_s": best,
            "intervals": intervals,
            "per_interval_us": best / intervals * 1e6,
        }
    return timings


def test_levels_complete_and_artifact_written(measurements):
    assert set(measurements) == set(LEVELS)
    for stats in measurements.values():
        assert stats["best_wall_s"] > 0
        assert stats["intervals"] > 0
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "obs_overhead",
                "sim_time_s": SIM_TIME_S,
                "repeats": REPEATS,
                "platform": "motivational (16 cores)",
                "levels": measurements,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["levels"]


def test_metrics_overhead_is_bounded(measurements):
    """Metrics-only instrumentation must not blow up the hot loop.

    Generous factor: counters/gauges are dict lookups and float adds, so
    even on a noisy box 3x the uninstrumented run is far beyond any
    plausible regression-free cost.
    """
    off = measurements["off"]["best_wall_s"]
    metrics = measurements["metrics_only"]["best_wall_s"]
    assert metrics < off * 3.0 + 0.5


def test_full_instrumentation_overhead_is_bounded(measurements):
    """Trace + streaming sink + profiler stays within a small multiple."""
    off = measurements["off"]["best_wall_s"]
    full = measurements["full_trace_sink"]["best_wall_s"]
    assert full < off * 5.0 + 1.0

"""Service-layer benchmark: the numbers behind ``BENCH_serve.json``.

Runs :func:`repro.serve.loadgen.run_loadgen` — an in-process
:class:`~repro.serve.http.ThermalServer` on an ephemeral port, a tenant
fleet spanning two distinct chip configurations, and a seeded Poisson
mix of peak/tau/simulate/metrics requests over real TCP — and writes
the latency/throughput/cache report to ``BENCH_serve.json`` at the
repository root.

Assertions are deliberately loose on wall-clock (shared CI boxes are
noisy) and strict on semantics: every request must succeed, and the
cross-tenant caches must actually get hit — the shared Algorithm-1 memo
is the serve fast path, and a hit count of zero would mean the
fingerprint plumbing regressed even if latency still looks fine.
"""

import json
from pathlib import Path

from repro.serve.loadgen import LoadgenConfig, run_loadgen

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_serve.json"

CONFIG = LoadgenConfig(
    n_tenants=4,
    n_distinct_configs=2,
    n_requests=200,
    arrival_rate_per_s=400.0,
    seed=0,
)


def test_loadgen_writes_artifact():
    report = run_loadgen(CONFIG)

    # every request answered, none dropped
    assert sum(report["http_statuses"].values()) == CONFIG.n_requests
    assert set(report["http_statuses"]) == {"200"}

    # latency quantiles (log-bucketed Histogram estimates) are sane and
    # ordered, and the estimator never exceeds the streaming max
    latency = report["latency_s"]
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
    assert latency["p99"] <= latency["max"]
    assert report["throughput_rps"] > 0
    for kind_stats in report["latency_by_kind_s"].values():
        assert 0 < kind_stats["p50"] <= kind_stats["p99"]

    # the cross-tenant fast path fired: shared memo hits, shared
    # dynamics (4 tenants, 2 distinct configurations -> 2 misses), and
    # the micro-batcher coalesced at least some concurrent candidates
    cache = report["cache"]
    assert cache["peak_memo_hits"] > 0
    assert cache["dynamics_misses"] == CONFIG.n_distinct_configs
    assert cache["dynamics_hits"] >= CONFIG.n_tenants - CONFIG.n_distinct_configs
    assert cache["batch_requests"] >= CONFIG.n_requests * 0.5

    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    assert json.loads(ARTIFACT.read_text())["benchmark"] == "repro.serve.loadgen"

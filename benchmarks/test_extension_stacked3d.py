"""Extension: rotation on a 3D-stacked die (Section VII future work)."""

import pytest

from repro.experiments import stacked3d


def test_stacked3d_regeneration(benchmark):
    result = benchmark(stacked3d.run)
    # the three headline findings, verified even under --benchmark-only
    assert result.layer_gradient_c > 10.0  # upper layers run hotter
    assert result.rotation_rescues_top_layer  # vertical rotation works
    assert result.rings_span_layers  # 2D ring premise breaks


def test_larger_stack(benchmark):
    result = benchmark.pedantic(
        lambda: stacked3d.run(width=4, height=4, layers=3),
        rounds=1,
        iterations=1,
    )
    assert result.n_layers == 3
    # the gradient is monotone through the stack
    peaks = result.layer_peaks_c
    assert peaks[0] < peaks[1] < peaks[2]

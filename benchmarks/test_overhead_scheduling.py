"""Section VI: run-time overhead of the scheduling computation.

Paper: 23.76 us per synchronous-rotation schedule computation on a fully
loaded 64-core chip (C++ on a simulated core), 4.75 % of a 0.5 ms epoch.
Our Python/NumPy implementation is measured the same way; absolute numbers
differ by the language constant, the complexity scaling does not.
"""

import numpy as np
import pytest

from repro.arch.amd import AmdRings
from repro.arch.topology import Mesh
from repro.core.peak_temperature import PeakTemperatureCalculator
from repro.experiments import overhead
from repro.thermal.matex import ThermalDynamics


def _loaded_sequence(ctx, delta):
    rng = np.random.default_rng(0)
    return rng.uniform(0.3, 8.0, size=(delta, ctx.n_cores))


def test_algorithm1_peak_evaluation(benchmark, ctx64):
    """The inner kernel: one Algorithm-1 peak evaluation on a full chip."""
    calc = ctx64.calculator
    seq = _loaded_sequence(ctx64, 24)
    calc.peak(seq, 0.5e-3)  # design-time warm-up
    peak = benchmark(calc.peak, seq, 0.5e-3)
    assert peak > ctx64.config.thermal.ambient_c


def test_design_time_phase(benchmark, ctx64):
    """The one-time O(N^3) design-time phase (eigendecomposition)."""

    def build():
        dyn = ThermalDynamics(ctx64.thermal_model)
        return PeakTemperatureCalculator(dyn, 45.0)

    calc = benchmark(build)
    assert calc.dynamics.model.n_cores == 64


def test_full_overhead_report(benchmark, ctx64):
    result = benchmark.pedantic(
        lambda: overhead.run(model=ctx64.thermal_model, n_repetitions=20),
        rounds=1,
        iterations=1,
    )
    assert result.peak_eval_us > 0
    assert result.admit_decision_us > result.peak_eval_us
    assert "Algorithm-1" in result.render()


def test_scaling_with_core_count(benchmark):
    """Complexity shape: the per-evaluation cost grows polynomially with N
    (paper: O(2 delta^2 N^2) run-time phase)."""
    from repro import config
    from repro.sim.context import SimContext

    times = {}
    for width in (4, 8):
        cfg = config.SystemConfig(mesh_width=width, mesh_height=width)
        ctx = SimContext(cfg)
        seq = _loaded_sequence(ctx, 8)
        calc = ctx.calculator
        calc.peak(seq, 0.5e-3)
        import time as _time

        start = _time.perf_counter()
        for _ in range(20):
            calc.peak(seq, 0.5e-3)
        times[width] = (_time.perf_counter() - start) / 20

    # 4x more cores must not cost more than ~40x (quadratic + overheads)
    ratio = times[8] / times[4]
    assert ratio < 40.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

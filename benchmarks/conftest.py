"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (at a reduced
scale where the full sweep would take minutes) and asserts the published
*shape* — who wins, by roughly what factor, where the crossovers fall.
"""

import pytest

from repro import config
from repro.sim.context import SimContext


@pytest.fixture(scope="session")
def ctx16():
    """Shared motivational-platform models (calibration amortized)."""
    return SimContext(config.motivational())


@pytest.fixture(scope="session")
def ctx64():
    """Shared evaluation-platform models."""
    return SimContext(config.table1())

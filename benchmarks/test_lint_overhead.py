"""Lint overhead: the gate must stay cheap enough to run on every commit.

``python -m repro.lint check src/repro`` sits in the default test gate
(see ``tests/lint/test_self_check.py``), so its wall time is part of every
developer iteration.  This benchmark times a full-tree lint (engine +
all rule families) and records the measurements in
``BENCH_lint_overhead.json`` at the repository root; the assertion is a
generous ceiling so noisy CI boxes do not flake, while the artifact
carries the precise numbers.
"""

import json
import time
from pathlib import Path

import pytest

from repro.lint import collect_files, default_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ARTIFACT = REPO_ROOT / "BENCH_lint_overhead.json"

REPEATS = 3
#: Full-tree lint must stay interactive ("a few seconds").
MAX_WALL_S = 10.0


@pytest.fixture(scope="module")
def measurements():
    n_files = len(collect_files([SRC]))
    best = None
    findings = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        findings = run_lint([SRC])
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return {
        "files": n_files,
        "rules": len(default_rules()),
        "findings": len(findings),
        "best_wall_s": best,
        "per_file_ms": best / max(1, n_files) * 1e3,
    }


def test_artifact_written(measurements):
    assert measurements["files"] > 50  # the tree, not an empty dir
    assert measurements["rules"] >= 10
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "lint_overhead",
                "target": "src/repro (all rule families)",
                "repeats": REPEATS,
                **measurements,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["best_wall_s"] > 0


def test_full_tree_lint_is_fast(measurements):
    assert measurements["best_wall_s"] < MAX_WALL_S


def test_tree_is_clean(measurements):
    """The benchmark doubles as a second self-check entry point."""
    assert measurements["findings"] == 0

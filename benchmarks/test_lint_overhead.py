"""Lint overhead: the gate must stay cheap enough to run on every commit.

``python -m repro.lint check src/repro`` sits in the default test gate
(see ``tests/lint/test_self_check.py``), so its wall time is part of every
developer iteration.  This benchmark times a full-tree lint (engine +
all rule families) and records the measurements in
``BENCH_lint_overhead.json`` at the repository root; the assertion is a
generous ceiling so noisy CI boxes do not flake, while the artifact
carries the precise numbers.

The ``graph`` key gates the project-level analyzer: the full run — all
families *including* the call-graph ``async-safety`` pass
(:mod:`repro.lint.graph`) — must finish within ``GRAPH_MAX_RATIO`` times
a same-machine, same-process baseline run of the per-file families
alone.  Both numbers are measured here so the ratio is not poisoned by
machine-to-machine variance.
"""

import json
import time
from pathlib import Path

import pytest

from repro.lint import collect_files, default_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ARTIFACT = REPO_ROOT / "BENCH_lint_overhead.json"

REPEATS = 3
#: Full-tree lint must stay interactive ("a few seconds").
MAX_WALL_S = 10.0
#: The call-graph pass may at most double the pre-graph check time
#: (the ISSUE-8 acceptance bound).
GRAPH_MAX_RATIO = 2.0


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def measurements():
    n_files = len(collect_files([SRC]))
    all_rules = default_rules()
    per_file_rules = [r for r in all_rules if r.family != "async-safety"]
    best, findings = _best_of(REPEATS, lambda: run_lint([SRC]))
    baseline_best, _ = _best_of(
        REPEATS, lambda: run_lint([SRC], rules=per_file_rules)
    )
    return {
        "files": n_files,
        "rules": len(all_rules),
        "findings": len(findings),
        "best_wall_s": best,
        "per_file_ms": best / max(1, n_files) * 1e3,
        "graph": {
            "baseline_families_wall_s": baseline_best,
            "full_with_graph_wall_s": best,
            "ratio": best / baseline_best if baseline_best else 0.0,
            "max_ratio": GRAPH_MAX_RATIO,
        },
    }


def test_artifact_written(measurements):
    assert measurements["files"] > 50  # the tree, not an empty dir
    assert measurements["rules"] >= 10
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "lint_overhead",
                "target": "src/repro (all rule families)",
                "repeats": REPEATS,
                **measurements,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["best_wall_s"] > 0


def test_full_tree_lint_is_fast(measurements):
    assert measurements["best_wall_s"] < MAX_WALL_S


def test_graph_pass_within_ratio(measurements):
    """Full run (call graph + async-safety) <= 2x the per-file families."""
    graph = measurements["graph"]
    assert graph["ratio"] <= GRAPH_MAX_RATIO, graph


def test_tree_is_clean(measurements):
    """The benchmark doubles as a second self-check entry point."""
    assert measurements["findings"] == 0

"""Traffic-layer overhead benchmarks: the numbers behind ``BENCH_traffic.json``.

Arrival generation is bookkeeping, not science: whatever the pattern, the
time spent drawing a schedule (process construction + thinning +
assignment, or a JSONL trace round-trip) must stay a rounding error next
to the thermal simulation it feeds.  The CI gate holds every pattern's
generation wall time to at most **5%** of one fig4b sweep cell at the
same task count — the measured margins are orders of magnitude larger;
the slack absorbs shared-box noise.
"""

import json
import time
from pathlib import Path

import pytest

from repro.config import small_test
from repro.experiments import fig4b
from repro.sim.context import SimContext
from repro.traffic import (
    TRAFFIC_PATTERNS,
    assign_arrivals,
    build_process,
    load_arrival_trace,
    write_arrival_trace,
)
from repro.workload.generator import random_mixed_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_traffic.json"

N_TASKS = 40
ARRIVAL_RATE_PER_S = 30.0
CELL_MAX_TIME_S = 0.4
REPEATS = 3
OVERHEAD_BUDGET = 0.05


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def cell_wall():
    """Wall time of one fig4b sweep cell (the denominator of the gate)."""
    cfg = small_test()
    ctx = SimContext(cfg)

    def one_cell():
        return fig4b._simulate_cell(
            arrival_rate_per_s=ARRIVAL_RATE_PER_S,
            scheduler="hotpotato",
            config=cfg,
            model=ctx.thermal_model,
            n_tasks=N_TASKS,
            seed=7,
            work_scale=0.5,
            max_time_s=CELL_MAX_TIME_S,
        )

    wall_s, result = _best_of(one_cell, repeats=2)
    assert result.tasks, "the reference cell must complete work"
    return wall_s


@pytest.fixture(scope="module")
def generation(tmp_path_factory):
    """Per-pattern arrival-generation wall time at the cell's task count."""
    horizon_s = N_TASKS / ARRIVAL_RATE_PER_S
    report = {}
    for pattern in TRAFFIC_PATTERNS:
        if pattern == "trace":
            continue

        def generate(pattern=pattern):
            process = build_process(
                pattern, ARRIVAL_RATE_PER_S, horizon_s=horizon_s
            )
            return assign_arrivals(
                random_mixed_workload(N_TASKS, seed=7), process, seed=8
            )

        wall_s, specs = _best_of(generate)
        assert len(specs) == N_TASKS
        report[pattern] = wall_s

    # trace: a full JSONL write + validated load round-trip
    path = tmp_path_factory.mktemp("bench_traffic") / "arrivals.jsonl"
    specs = assign_arrivals(
        random_mixed_workload(N_TASKS, seed=7),
        build_process("poisson", ARRIVAL_RATE_PER_S),
        seed=8,
    )

    def round_trip():
        write_arrival_trace(path, specs)
        return load_arrival_trace(path)

    wall_s, loaded = _best_of(round_trip)
    assert len(loaded) == N_TASKS
    report["trace"] = wall_s
    return report


def test_artifact_written(cell_wall, generation):
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "traffic_overhead",
                "platform": "small_test (4 cores)",
                "n_tasks": N_TASKS,
                "arrival_rate_per_s": ARRIVAL_RATE_PER_S,
                "repeats": REPEATS,
                "cell_wall_s": cell_wall,
                "generation_wall_s": generation,
                "overhead_fraction": {
                    pattern: wall / cell_wall
                    for pattern, wall in generation.items()
                },
                "budget_fraction": OVERHEAD_BUDGET,
            },
            indent=2,
        )
        + "\n"
    )
    assert json.loads(ARTIFACT.read_text())["cell_wall_s"] > 0


def test_generation_within_five_percent_of_a_cell(cell_wall, generation):
    """The CI gate: no arrival pattern may cost more than 5% of the
    simulation cell it feeds (measured fractions are well under 1%)."""
    for pattern, wall_s in generation.items():
        assert wall_s <= OVERHEAD_BUDGET * cell_wall, (
            f"{pattern} arrival generation took {wall_s * 1e3:.2f} ms — "
            f"more than {OVERHEAD_BUDGET:.0%} of a "
            f"{cell_wall * 1e3:.1f} ms sweep cell"
        )

"""Fig. 3: concentric AMD rings and their performance/thermal trade-off."""

import pytest

from repro.experiments import fig3


@pytest.fixture(scope="module")
def result(ctx64):
    return fig3.run(model=ctx64.thermal_model)


def test_fig3_regeneration(benchmark, ctx64):
    result = benchmark(lambda: fig3.run(model=ctx64.thermal_model))
    # the Fig. 3 trade-off, verified even under --benchmark-only
    assert result.performance_monotone()
    assert result.thermals_monotone()


class TestShape:
    def test_nine_rings_on_64_cores(self, result):
        assert len(result.rings) == 9
        assert sum(r.capacity for r in result.rings) == 64

    def test_performance_monotone_outward(self, result):
        """LLC latency strictly grows with ring index (paper Section V:
        rings become performance-wise constrained outward)."""
        assert result.performance_monotone()

    def test_thermals_monotone_outward(self, result):
        """Single-hot-core peak never increases outward (rings become
        thermal-wise unconstrained outward)."""
        assert result.thermals_monotone()

    def test_boundary_clearly_cooler(self, result):
        assert result.rings[0].single_hot_peak_c > result.rings[-1].single_hot_peak_c + 5.0

    def test_grid_is_concentric(self, result):
        lines = result.grid_ascii.splitlines()
        assert len(lines) == 8
        # corners carry the highest ring index
        top = lines[0].split()
        assert top[0] == top[-1] == "8"
        # centre carries ring 0
        assert "0" in lines[3].split()

"""Ablation: the thermal headroom Delta (paper Section VI: 1 degC).

Delta is the safety margin HotPotato keeps between its analytic peak and
the DTM threshold.  Larger Delta buys robustness against power-estimate
lag (fewer threshold crossings) at the cost of performance (threads land
in outer rings / rotation stays faster than necessary).
"""

import pytest

from repro.sched import HotPotatoScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.generator import homogeneous_fill, materialize

_DELTAS_C = (0.5, 1.0, 3.0)


def _run(ctx64, delta_c):
    tasks = materialize(
        homogeneous_fill("blackscholes", 64, seed=42, work_scale=1.2)
    )
    sim = IntervalSimulator(
        ctx64.config,
        HotPotatoScheduler(headroom_delta_c=delta_c),
        tasks,
        ctx=SimContext(ctx64.config, ctx64.thermal_model),
    )
    return sim.run(max_time_s=4.0)


@pytest.fixture(scope="module")
def outcomes(ctx64):
    return {delta: _run(ctx64, delta) for delta in _DELTAS_C}


def test_headroom_regeneration(benchmark, ctx64):
    result = benchmark.pedantic(
        lambda: _run(ctx64, 1.0), rounds=1, iterations=1
    )
    assert result.tasks


class TestShape:
    def test_all_complete(self, outcomes):
        for result in outcomes.values():
            assert result.tasks

    def test_larger_delta_is_cooler_or_equal(self, outcomes):
        """More headroom never raises the observed peak (small tolerance
        for transient noise)."""
        assert (
            outcomes[3.0].peak_temperature_c
            <= outcomes[0.5].peak_temperature_c + 0.3
        )

    def test_larger_delta_reduces_dtm_pressure(self, outcomes):
        assert outcomes[3.0].dtm_triggers <= outcomes[0.5].dtm_triggers

    def test_conservatism_costs_performance(self, outcomes):
        """The paper's Delta=1 choice trades a little performance for
        safety; Delta=3 must not be faster than Delta=0.5 by more than
        noise."""
        assert (
            outcomes[3.0].makespan_s >= outcomes[0.5].makespan_s * 0.97
        )

"""Ablation: migration-cost sensitivity (DESIGN.md ablation 3).

The paper's premise is that S-NUCA makes migrations cheap; this ablation
scales the private-cache refill cost and verifies the system responds as
the premise predicts: rotation's response-time penalty grows with the cost,
and at several times the calibrated cost rotation loses its edge over DVFS.
"""

import dataclasses

import pytest

from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sched.pcgov import PCGovScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

_SCALES = (0.25, 1.0, 4.0)


def _rotation_response_ms(ctx16, cost_scale):
    ctx = SimContext(ctx16.config, ctx16.thermal_model)
    base = ctx.migration.cold_start_factor
    ctx.migration.cold_start_factor = base * cost_scale
    ctx.migration.restart_overhead_s *= cost_scale
    sim = IntervalSimulator(
        ctx16.config,
        FixedRotationScheduler(tau_s=0.5e-3),
        [Task(0, PARSEC["blackscholes"], 2, seed=1)],
        ctx=ctx,
        dtm_enabled=False,
        record_trace=False,
    )
    return sim.run(max_time_s=1.5).tasks[0].response_time_s * 1e3


def test_migration_cost_sensitivity(benchmark, ctx16):
    responses = benchmark.pedantic(
        lambda: [_rotation_response_ms(ctx16, s) for s in _SCALES],
        rounds=1,
        iterations=1,
    )
    # rotation overhead strictly grows with migration cost
    assert responses[0] < responses[1] < responses[2]


def test_rotation_beats_dvfs_only_when_migrations_cheap(ctx16):
    """The paper's observation inverted: if migrations were ~4x more
    expensive, DVFS would win the motivational example."""
    dvfs_sim = IntervalSimulator(
        ctx16.config,
        PCGovScheduler(budget_mode="worst-case"),
        [Task(0, PARSEC["blackscholes"], 2, seed=1)],
        ctx=SimContext(ctx16.config, ctx16.thermal_model),
        record_trace=False,
    )
    dvfs_ms = dvfs_sim.run(max_time_s=1.5).tasks[0].response_time_s * 1e3
    cheap = _rotation_response_ms(ctx16, 1.0)
    expensive = _rotation_response_ms(ctx16, 4.0)
    assert cheap < dvfs_ms  # the published regime
    assert expensive > dvfs_ms  # the premise's boundary

#!/usr/bin/env bash
# Tier-2 gate: everything a PR must pass, in one command.
#
#   scripts/check.sh            # tier-1 pytest + domain lint + mypy + ruff
#   scripts/check.sh --fast     # skip the (slow) tier-1 pytest run
#
# The first two stages are self-contained (stdlib + the repo itself).
# mypy and ruff are optional extras (`pip install .[lint]`); when a tool
# is not installed the stage is SKIPPED with a notice instead of
# failing, so the gate degrades gracefully on minimal containers.
set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

PYTHON="${PYTHON:-python3}"
command -v "$PYTHON" >/dev/null 2>&1 || PYTHON=python

failures=0
declare -a results=()

note() { printf '\n== %s ==\n' "$1"; }

record() {  # record <name> <status>
    results+=("$(printf '%-12s %s' "$1" "$2")")
    [ "$2" = FAIL ] && failures=$((failures + 1))
}

run_stage() {  # run_stage <name> <cmd...>
    note "$1"
    if "${@:2}"; then
        record "$1" PASS
    else
        record "$1" FAIL
    fi
}

skip_stage() {  # skip_stage <name> <reason>
    note "$1"
    echo "SKIPPED: $2"
    record "$1" "SKIP ($2)"
}

if [ "${1:-}" = "--fast" ]; then
    skip_stage pytest "--fast requested"
else
    run_stage pytest "$PYTHON" -m pytest -q
fi

run_stage lint "$PYTHON" -m repro.lint check src/repro \
    --baseline lint-baseline.json

if "$PYTHON" -c 'import mypy' >/dev/null 2>&1; then
    run_stage mypy "$PYTHON" -m mypy
else
    skip_stage mypy "mypy not installed; pip install .[lint]"
fi

if command -v ruff >/dev/null 2>&1; then
    run_stage ruff ruff check src/repro
elif "$PYTHON" -c 'import ruff' >/dev/null 2>&1; then
    run_stage ruff "$PYTHON" -m ruff check src/repro
else
    skip_stage ruff "ruff not installed; pip install .[lint]"
fi

note summary
printf '%s\n' "${results[@]}"
if [ "$failures" -gt 0 ]; then
    echo "FAILED: $failures stage(s)"
    exit 1
fi
echo "OK"

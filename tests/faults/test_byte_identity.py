"""Faults-disabled behaviour is byte-identical to the pre-faults engine.

The acceptance bar for the whole subsystem: a config without faults (and
a zero-amplitude enabled config, metamorphically) must produce *exactly*
the results it always did — same floats bit for bit, not approximately.
"""

import numpy as np

from repro.io import result_to_dict
from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sched.pcmig import PCMigScheduler
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def _tasks():
    return [Task(0, PARSEC["x264"], 2, seed=1), Task(1, PARSEC["canneal"], 2, seed=2)]


def _result_fingerprint(result):
    """Everything a run produced, as plain data for exact comparison.

    Wall-clock telemetry (``scheduler_wall_time_s``, profiling) is
    measurement, not simulation output — it is legitimately different on
    every run and excluded here.
    """
    data = result_to_dict(result)
    data.pop("scheduler_wall_time_s", None)
    data.pop("profile", None)
    if result.trace is not None:
        data["trace_temps"] = result.trace.temperatures.tolist()
        data["trace_times"] = result.trace.times.tolist()
    return data


class TestDisabledIsSeedBehavior:
    def test_repeated_disabled_runs_identical(self, fcfg, run_sim):
        _, a = run_sim(fcfg, HotPotatoScheduler(), _tasks())
        _, b = run_sim(fcfg, HotPotatoScheduler(), _tasks())
        assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_zero_amplitude_equals_disabled(self, fcfg, run_sim):
        """Metamorphic: enabling the machinery with all amplitudes at zero
        changes nothing, bit for bit — every perturbation is `x + 0.0`-free
        and every engine fault branch is gated."""
        zero = fcfg.with_faults(seed=123)
        for scheduler_cls in (HotPotatoScheduler, PCMigScheduler):
            _, plain = run_sim(fcfg, scheduler_cls(), _tasks())
            _, faulted = run_sim(zero, scheduler_cls(), _tasks())
            assert _result_fingerprint(plain) == _result_fingerprint(faulted)

    def test_zero_amplitude_trace_bitwise_equal(self, fcfg, run_sim):
        _, plain = run_sim(fcfg, HotPotatoScheduler(), _tasks())
        _, faulted = run_sim(
            fcfg.with_faults(seed=9), HotPotatoScheduler(), _tasks()
        )
        assert np.array_equal(
            plain.trace.temperatures, faulted.trace.temperatures
        )


class TestFaultedRunsAreDeterministic:
    def test_same_fault_seed_same_run(self, fcfg, run_sim):
        cfg = fcfg.with_faults(
            seed=7,
            sensor_noise_sigma_c=0.5,
            sensor_dropout_prob=0.1,
            power_spike_prob=0.05,
            power_spike_w=1.0,
        )
        _, a = run_sim(cfg, HotPotatoScheduler(), _tasks())
        _, b = run_sim(cfg, HotPotatoScheduler(), _tasks())
        assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_different_fault_seed_different_run(self, fcfg, run_sim):
        # power spikes perturb ground truth, so different fault seeds must
        # show up in the thermal trace (sensor faults alone may not: they
        # only matter when they change a decision)
        def go(seed):
            cfg = fcfg.with_faults(
                seed=seed, power_spike_prob=0.3, power_spike_w=2.0
            )
            return run_sim(cfg, PCMigScheduler(), _tasks())[1]

        a, b = go(1), go(2)
        assert not np.array_equal(a.trace.temperatures, b.trace.temperatures)

"""FaultsConfig semantics: off by default, frozen, with_faults mirror."""

import dataclasses

import pytest

from repro import config, units
from repro.config import FaultsConfig, SystemConfig
from repro.faults import FaultInjector


class TestDefaults:
    def test_disabled_by_default(self):
        assert SystemConfig().faults.enabled is False

    def test_every_fault_model_off_by_default(self):
        faults = SystemConfig().faults
        assert faults.sensor_noise_sigma_c == 0.0
        assert faults.sensor_bias_c == 0.0
        assert faults.sensor_dropout_prob == 0.0
        assert faults.sensor_stuck_prob == 0.0
        assert faults.power_spike_prob == 0.0
        assert faults.core_stuck_prob == 0.0
        assert faults.migration_failure_prob == 0.0

    def test_presets_are_fault_free(self):
        for preset in (config.small_test, config.motivational, config.table1):
            assert preset().faults.enabled is False


class TestWithFaults:
    def test_enables_and_sets_parameters(self):
        cfg = config.small_test().with_faults(
            seed=9, sensor_dropout_prob=0.25
        )
        assert cfg.faults.enabled is True
        assert cfg.faults.seed == 9
        assert cfg.faults.sensor_dropout_prob == 0.25

    def test_original_config_untouched(self):
        base = config.small_test()
        base.with_faults(sensor_noise_sigma_c=1.0)
        assert base.faults.enabled is False
        assert base.faults.sensor_noise_sigma_c == 0.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            config.small_test().with_faults(made_up_knob=1.0)

    def test_frozen(self):
        cfg = config.small_test().with_faults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.faults.sensor_bias_c = 1.0

    def test_staleness_ladder_defaults_ordered(self):
        faults = FaultsConfig()
        assert 0 < faults.degraded_staleness_s < faults.park_staleness_s
        assert faults.degraded_staleness_s == units.ms(2.0)


class TestInjectorConstruction:
    def test_requires_enabled_config(self):
        with pytest.raises(ValueError, match="disabled"):
            FaultInjector(config.small_test())

    def test_constructs_from_enabled_config(self):
        injector = FaultInjector(config.small_test().with_faults(seed=1))
        assert injector.sensors is not None

"""Crash a real sweep with SIGKILL and resume it to identical results.

The hardest guarantee in ``docs/faults.md``: a checkpointed sweep that is
killed mid-flight and resumed renders the same figure — and finalizes the
same checkpoint content — as one that ran straight through.  SIGKILL is
uncatchable, so this exercises the durability path (append + flush +
fsync, torn-tail tolerance), not any signal handler.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import config
from repro.experiments import fig4a

#: sweep shape shared by the child process and the in-process reference —
#: sized so one cell takes ~1 s (long enough to land a kill mid-sweep).
_BENCHMARKS = ("blackscholes", "canneal")
_WORK_SCALE = 60.0
_MAX_TIME_S = 60.0
_SEED = 42
_N_CELLS = len(_BENCHMARKS) * 2  # x {pcmig, hotpotato}

_CHILD_SCRIPT = """
import sys
from repro import config
from repro.experiments import fig4a

fig4a.run(
    config=config.small_test(),
    benchmarks={benchmarks!r},
    seed={seed},
    work_scale={work_scale},
    max_time_s={max_time_s},
    checkpoint_path={path!r},
)
"""


def _run_reference(checkpoint_path):
    result = fig4a.run(
        config=config.small_test(),
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        checkpoint_path=checkpoint_path,
    )
    return result.render()


def _checkpoint_fingerprint(path):
    """Checkpoint content minus wall-clock telemetry, in file order.

    ``scheduler_wall_time_s`` / ``profile`` are measurements of the host,
    not of the simulation — they differ between any two runs and are
    excluded, exactly as in ``test_byte_identity``.
    """
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        record["result"].pop("scheduler_wall_time_s", None)
        record["result"].pop("profile", None)
        records.append(record)
    return records


def _count_lines(path):
    if not path.exists():
        return 0
    return sum(1 for line in path.read_text(encoding="utf-8").splitlines() if line)


def test_sigkill_resume_reproduces_uninterrupted_run(tmp_path):
    ref_ckpt = tmp_path / "reference.jsonl"
    crash_ckpt = tmp_path / "crashed.jsonl"

    reference_render = _run_reference(str(ref_ckpt))
    assert _count_lines(ref_ckpt) == _N_CELLS

    # -- start the doomed sweep in a real subprocess ----------------------------
    script = _CHILD_SCRIPT.format(
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        path=str(crash_ckpt),
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen([sys.executable, "-c", script], env=env)
    try:
        # wait for the first durably-checkpointed cell, then kill -9
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _count_lines(crash_ckpt) >= 1:
                break
            if child.poll() is not None:
                pytest.fail("child sweep exited before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("child sweep never checkpointed a cell")
        child.kill()  # SIGKILL: no cleanup, no atexit, no flush
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    done_before_resume = _count_lines(crash_ckpt)
    assert 1 <= done_before_resume < _N_CELLS, (
        f"kill landed after {done_before_resume}/{_N_CELLS} cells; "
        "the sweep must die mid-flight for resume to mean anything"
    )

    # -- resume in-process and compare ------------------------------------------
    resumed = fig4a.run(
        config=config.small_test(),
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        checkpoint_path=str(crash_ckpt),
        resume=True,
    )
    assert resumed.render() == reference_render
    assert _checkpoint_fingerprint(crash_ckpt) == _checkpoint_fingerprint(ref_ckpt)


def test_resume_skips_completed_cells(tmp_path, monkeypatch):
    """After a full run, resuming re-executes nothing."""
    ckpt = tmp_path / "full.jsonl"
    first = _run_reference(str(ckpt))

    calls = []
    real_cell = fig4a._simulate_cell

    def counting_cell(*args, **kwargs):
        calls.append(kwargs.get("benchmark"))
        return real_cell(*args, **kwargs)

    monkeypatch.setattr(fig4a, "_simulate_cell", counting_cell)
    resumed = fig4a.run(
        config=config.small_test(),
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        checkpoint_path=str(ckpt),
        resume=True,
    )
    assert calls == []
    assert resumed.render() == first

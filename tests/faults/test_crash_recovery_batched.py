"""SIGKILL-resume under the vectorized sweep policy.

``tests/faults/test_crash_recovery.py`` proves a serial checkpointed
sweep survives an uncatchable kill; this mirrors it for
``jobs="auto"`` — the fused :class:`~repro.sim.batch.BatchedSimulatorSet`
path.  The batched driver fires the checkpoint callback as each cell
*finishes* (completion order, not submission order), so a kill lands
with a partially-filled checkpoint whose cells were stepped in lock-step
with unfinished ones — and the resumed sweep must still be
byte-identical to an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import config
from repro.experiments import fig4a

_BENCHMARKS = ("blackscholes", "canneal")
_WORK_SCALE = 60.0
_MAX_TIME_S = 60.0
_SEED = 42
_N_CELLS = len(_BENCHMARKS) * 2  # x {pcmig, hotpotato}

_CHILD_SCRIPT = """
import sys
from repro import config
from repro.experiments import fig4a

fig4a.run(
    config=config.small_test(),
    benchmarks={benchmarks!r},
    seed={seed},
    work_scale={work_scale},
    max_time_s={max_time_s},
    jobs="auto",
    checkpoint_path={path!r},
)
"""


def _checkpoint_fingerprint(path):
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        record["result"].pop("scheduler_wall_time_s", None)
        record["result"].pop("profile", None)
        records.append(record)
    return records


def _count_lines(path):
    if not path.exists():
        return 0
    return sum(1 for line in path.read_text(encoding="utf-8").splitlines() if line)


def test_sigkill_resume_batched_matches_serial(tmp_path):
    ref_ckpt = tmp_path / "reference.jsonl"
    crash_ckpt = tmp_path / "crashed.jsonl"

    reference = fig4a.run(
        config=config.small_test(),
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        jobs=1,
        checkpoint_path=str(ref_ckpt),
    )
    assert _count_lines(ref_ckpt) == _N_CELLS

    script = _CHILD_SCRIPT.format(
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        path=str(crash_ckpt),
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen([sys.executable, "-c", script], env=env)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _count_lines(crash_ckpt) >= 1:
                break
            if child.poll() is not None:
                pytest.fail("child sweep exited before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("child sweep never checkpointed a cell")
        child.kill()
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    done_before_resume = _count_lines(crash_ckpt)
    assert 1 <= done_before_resume < _N_CELLS, (
        f"kill landed after {done_before_resume}/{_N_CELLS} cells; "
        "the sweep must die mid-flight for resume to mean anything"
    )

    report = {}
    resumed = fig4a.run(
        config=config.small_test(),
        benchmarks=_BENCHMARKS,
        seed=_SEED,
        work_scale=_WORK_SCALE,
        max_time_s=_MAX_TIME_S,
        jobs="auto",
        checkpoint_path=str(crash_ckpt),
        resume=True,
        report=report,
    )
    # the resume itself must have taken the fused path (more than one
    # cell left) or the serial single-cell path — never fork
    assert report["policy"] in ("vectorized", "serial")
    assert resumed.render() == reference.render()
    assert _checkpoint_fingerprint(crash_ckpt) == _checkpoint_fingerprint(
        ref_ckpt
    )

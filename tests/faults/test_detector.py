"""Known-answer mini-traces for :class:`UnsafeDegradationDetector`.

Each test hand-builds a tiny record sequence with a known verdict, so a
behaviour change in the detector shows up as a concrete wrong answer —
no simulation in the loop.
"""

import pytest

from repro import units
from repro.obs import UnsafeDegradationDetector
from repro.obs.detect import default_detectors
from repro.obs.trace import EventRecord, IntervalRecord

_MS = units.ms(1.0)


def _interval(time_s, temps_c, mode_agnostic_core_count=4):
    cores = len(temps_c)
    return IntervalRecord(
        time_s=time_s,
        dt_s=_MS,
        placements={},
        power_w=(1.0,) * cores,
        temps_c=tuple(temps_c),
        frequencies_hz=(1e9,) * cores,
    )


def _dropout(time_s, core=0):
    return EventRecord(
        time_s=time_s,
        event="SensorFaultInjected",
        data={"core": core, "kind": "dropout", "duration_s": 0.01},
    )


def _degradation(time_s, new_mode, old_mode="normal"):
    return EventRecord(
        time_s=time_s,
        event="DegradationChanged",
        data={
            "scheduler": "hot-potato",
            "old_mode": old_mode,
            "new_mode": new_mode,
            "staleness_s": 0.004,
        },
    )


def _run(detector, records, end_time_s):
    for record in records:
        detector.observe(record)
    detector.finish(end_time_s)
    return detector.violations


class TestGraceWarning:
    def test_dropout_without_degradation_warns(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        violations = _run(det, [_dropout(1 * _MS)], end_time_s=10 * _MS)
        assert len(violations) == 1
        assert violations[0].severity == "warning"
        assert violations[0].detector == "faults-unsafe-degradation"
        assert violations[0].time_s == pytest.approx(1 * _MS)

    def test_dropout_with_timely_degradation_is_silent(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        records = [
            _dropout(1 * _MS),
            _degradation(2 * _MS, "degraded"),
        ]
        assert _run(det, records, end_time_s=10 * _MS) == []

    def test_degradation_after_grace_still_warns(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        records = [
            _dropout(1 * _MS),
            _degradation(8 * _MS, "degraded"),  # too late
        ]
        violations = _run(det, records, end_time_s=10 * _MS)
        assert [v.severity for v in violations] == ["warning"]

    def test_burst_within_grace_warns_once(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        # a burst of dropouts inside one grace window: one pending, one warning
        records = [_dropout(t * _MS) for t in (0.0, 0.5, 1.0, 2.0)]
        violations = _run(det, records, end_time_s=20 * _MS)
        assert len(violations) == 1

    def test_rearms_after_each_expired_grace(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        # two dropouts more than a grace window apart, never answered:
        # two separate contract breaches, two warnings
        records = [_dropout(0.0), _dropout(5 * _MS)]
        violations = _run(det, records, end_time_s=20 * _MS)
        assert [v.severity for v in violations] == ["warning", "warning"]

    def test_finish_flushes_pending_grace(self):
        det = UnsafeDegradationDetector(grace_s=3 * _MS)
        for record in [_dropout(1 * _MS)]:
            det.observe(record)
        assert det.violations == []  # not yet — grace still open
        det.finish(10 * _MS)
        assert len(det.violations) == 1


class TestDegradedOverheat:
    def test_overheat_while_degraded_is_critical(self):
        det = UnsafeDegradationDetector(dtm_threshold_c=70.0, tolerance_c=0.5)
        records = [
            _degradation(1 * _MS, "safe-park"),
            _interval(2 * _MS, (72.0, 60.0, 60.0, 60.0)),
        ]
        violations = _run(det, records, end_time_s=10 * _MS)
        assert len(violations) == 1
        assert violations[0].severity == "critical"
        assert violations[0].core == 0
        assert violations[0].value == pytest.approx(72.0)

    def test_overheat_while_normal_is_not_this_detectors_problem(self):
        # the plain DTM-threshold detector owns that case
        det = UnsafeDegradationDetector(dtm_threshold_c=70.0)
        records = [_interval(1 * _MS, (75.0, 60.0, 60.0, 60.0))]
        assert _run(det, records, end_time_s=10 * _MS) == []

    def test_episode_fires_once_per_excursion(self):
        det = UnsafeDegradationDetector(dtm_threshold_c=70.0, tolerance_c=0.5)
        hot = (72.0, 60.0, 60.0, 60.0)
        cool = (65.0, 60.0, 60.0, 60.0)
        records = [
            _degradation(1 * _MS, "degraded"),
            _interval(2 * _MS, hot),
            _interval(3 * _MS, hot),  # same excursion: no second violation
            _interval(4 * _MS, cool),
            _interval(5 * _MS, hot),  # new excursion
        ]
        violations = _run(det, records, end_time_s=10 * _MS)
        assert len(violations) == 2

    def test_recovery_to_normal_clears_episode(self):
        det = UnsafeDegradationDetector(dtm_threshold_c=70.0, tolerance_c=0.5)
        hot = (72.0, 60.0, 60.0, 60.0)
        records = [
            _degradation(1 * _MS, "degraded"),
            _interval(2 * _MS, hot),
            _degradation(3 * _MS, "normal", old_mode="degraded"),
            _interval(4 * _MS, hot),  # normal mode: silent here
            _degradation(5 * _MS, "degraded"),
            _interval(6 * _MS, hot),  # fresh degraded excursion
        ]
        violations = _run(det, records, end_time_s=10 * _MS)
        assert len(violations) == 2


class TestFaultFreeSilence:
    def test_silent_on_plain_thermal_trace(self):
        det = UnsafeDegradationDetector()
        records = [
            _interval(i * _MS, (55.0 + i, 54.0, 53.0, 52.0)) for i in range(8)
        ]
        assert _run(det, records, end_time_s=20 * _MS) == []

    def test_constructor_rejects_nonpositive_grace(self):
        with pytest.raises(ValueError):
            UnsafeDegradationDetector(grace_s=0.0)

    def test_included_in_default_detectors(self):
        names = [d.name for d in default_detectors()]
        assert "faults-unsafe-degradation" in names

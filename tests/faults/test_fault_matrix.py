"""Fault-model x scheduler matrix: every combination degrades gracefully.

For each fault model and each evaluated scheduler the run must finish
without an exception, produce a finite makespan, emit the model's events,
and trip the documented degradation contract where one applies.
"""

import math

import pytest

from repro import units
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sched.pcmig import PCMigScheduler
from repro.sim.events import (
    CoreStuckFault,
    DegradationChanged,
    MigrationFailed,
    PowerSpikeInjected,
    SensorFaultInjected,
)
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

#: fault model -> (config overrides, event type the model must emit)
FAULT_MODELS = {
    "sensor_noise": (dict(sensor_noise_sigma_c=1.0), None),
    "sensor_bias": (dict(sensor_bias_c=-2.0), None),
    "sensor_dropout": (
        dict(sensor_dropout_prob=0.3, sensor_dropout_duration_s=units.ms(5.0)),
        SensorFaultInjected,
    ),
    "sensor_stuck": (
        dict(sensor_stuck_prob=0.2, sensor_stuck_duration_s=units.ms(5.0)),
        SensorFaultInjected,
    ),
    "power_spike": (
        dict(power_spike_prob=0.2, power_spike_w=1.5),
        PowerSpikeInjected,
    ),
    "core_stuck": (dict(core_stuck_prob=0.1), CoreStuckFault),
}

SCHEDULERS = {
    "hotpotato": HotPotatoScheduler,
    "pcmig": PCMigScheduler,
}


def _tasks():
    return [Task(0, PARSEC["x264"], 2, seed=4), Task(1, PARSEC["swaptions"], 2, seed=5)]


@pytest.mark.parametrize("fault_name", sorted(FAULT_MODELS))
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
def test_model_x_scheduler(fcfg, run_sim, fault_name, sched_name):
    overrides, expected_event = FAULT_MODELS[fault_name]
    cfg = fcfg.with_faults(seed=21, **overrides)
    sim, result = run_sim(
        cfg, SCHEDULERS[sched_name](), _tasks(), record_events=True
    )
    assert math.isfinite(result.makespan_s) and result.makespan_s > 0
    assert len(result.tasks) == 2
    if expected_event is not None:
        emitted = [e for e in sim.events if isinstance(e, expected_event)]
        assert emitted, f"{fault_name} produced no {expected_event.__name__}"


class TestDegradationContract:
    def test_dropout_triggers_degradation_ladder(self, fcfg, run_sim):
        cfg = fcfg.with_faults(
            seed=8,
            sensor_dropout_prob=0.5,
            sensor_dropout_duration_s=units.ms(20.0),
        )
        sim, _ = run_sim(
            cfg, HotPotatoScheduler(), _tasks(), record_events=True
        )
        changes = [e for e in sim.events if isinstance(e, DegradationChanged)]
        assert changes, "long dropouts must move the degradation ladder"
        modes = {e.new_mode for e in changes}
        assert "degraded" in modes or "safe-park" in modes

    def test_safe_park_clamps_to_f_min(self, fcfg, run_sim):
        # dropouts so long the scheduler must park
        cfg = fcfg.with_faults(
            seed=8,
            sensor_dropout_prob=1.0,
            sensor_dropout_duration_s=1.0,
        )
        sim, result = run_sim(
            cfg, HotPotatoScheduler(), _tasks(), record_events=True
        )
        changes = [e for e in sim.events if isinstance(e, DegradationChanged)]
        assert any(e.new_mode == "safe-park" for e in changes)
        assert sim.scheduler.degradation_mode == "safe-park"
        assert math.isfinite(result.makespan_s)

    def test_hotpotato_widens_headroom_when_degraded(self, fcfg, run_sim):
        cfg = fcfg.with_faults(
            seed=8,
            sensor_dropout_prob=0.8,
            sensor_dropout_duration_s=units.ms(4.0),
        )
        sim, _ = run_sim(cfg, HotPotatoScheduler(), _tasks())
        runtime = sim.scheduler
        nominal = runtime._nominal_headroom_c
        if runtime.degradation_mode in ("degraded", "safe-park"):
            assert runtime.hotpotato.headroom_delta_c > nominal
        else:
            assert runtime.hotpotato.headroom_delta_c == nominal


class TestMigrationFailures:
    def test_aborted_hops_on_a_rotating_scheduler(self, fcfg, run_sim):
        """FixedRotation migrates every epoch, so failures must surface."""
        cfg = fcfg.with_faults(seed=13, migration_failure_prob=0.5)
        sim, result = run_sim(
            cfg,
            FixedRotationScheduler(tau_s=units.ms(0.5)),
            _tasks(),
            record_events=True,
        )
        failed = [e for e in sim.events if isinstance(e, MigrationFailed)]
        assert failed, "a rotating scheduler under p=0.5 must lose hops"
        assert math.isfinite(result.makespan_s)
        # every failure names a real planned hop
        for event in failed:
            assert event.src_core != event.dst_core

    def test_all_hops_fail_still_finishes(self, fcfg, run_sim):
        cfg = fcfg.with_faults(seed=13, migration_failure_prob=1.0)
        _, result = run_sim(
            cfg, FixedRotationScheduler(tau_s=units.ms(0.5)), _tasks()
        )
        # threads simply never move; work still completes on source cores
        assert len(result.tasks) == 2
        assert math.isfinite(result.makespan_s)

    def test_repaired_decisions_pass_engine_validation(self, fcfg, run_sim):
        """The engine validates every decision (no shared cores, finite
        frequencies) each interval — a repaired decision that left two
        threads on one core would raise, so completing is the assertion."""
        cfg = fcfg.with_faults(seed=13, migration_failure_prob=0.7)
        _, result = run_sim(
            cfg, FixedRotationScheduler(tau_s=units.ms(0.5)), _tasks()
        )
        assert math.isfinite(result.makespan_s)
        assert len(result.tasks) == 2

    def test_pcmig_under_migration_faults(self, fcfg, run_sim):
        cfg = fcfg.with_faults(seed=13, migration_failure_prob=0.8)
        _, result = run_sim(cfg, PCMigScheduler(), _tasks())
        assert math.isfinite(result.makespan_s)
        assert len(result.tasks) == 2


def test_faults_metrics_surface_when_observability_on(fcfg, run_sim):
    cfg = fcfg.with_faults(
        seed=2, sensor_dropout_prob=0.5
    ).with_observability(metrics=True)
    _, result = run_sim(cfg, HotPotatoScheduler(), _tasks())
    snapshot = result.metrics_snapshot
    assert snapshot.get("faults.sensor_dropouts", 0.0) > 0

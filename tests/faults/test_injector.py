"""FaultInjector / SensorShim unit behaviour: determinism, streams, masks."""

import numpy as np
import pytest

from repro import config, units
from repro.faults import FaultInjector
from repro.sim.events import (
    CoreStuckFault,
    PowerSpikeInjected,
    SensorFaultInjected,
)

_DT_S = units.ms(0.25)


def _drive(injector, n_intervals=40, n_cores=4, base_c=50.0):
    """Advance over a synthetic ground-truth ramp; collect all events."""
    events = []
    for i in range(n_intervals):
        truth = np.full(n_cores, base_c + 0.1 * i)
        events.extend(injector.advance(i * _DT_S, truth))
    return events


def _evt_key(event):
    return (type(event).__name__, event.time_s, getattr(event, "core", None))


class TestDeterminism:
    def _cfg(self, **kw):
        return config.small_test().with_faults(seed=11, **kw)

    def test_same_seed_same_schedule(self):
        kw = dict(
            sensor_dropout_prob=0.1,
            sensor_stuck_prob=0.05,
            power_spike_prob=0.1,
            power_spike_w=1.0,
            core_stuck_prob=0.05,
        )
        a = _drive(FaultInjector(self._cfg(**kw)))
        b = _drive(FaultInjector(self._cfg(**kw)))
        assert [_evt_key(e) for e in a] == [_evt_key(e) for e in b]
        assert len(a) > 0

    def test_different_seed_different_schedule(self):
        kw = dict(sensor_dropout_prob=0.2)
        a = _drive(FaultInjector(config.small_test().with_faults(seed=1, **kw)))
        b = _drive(FaultInjector(config.small_test().with_faults(seed=2, **kw)))
        assert [_evt_key(e) for e in a] != [_evt_key(e) for e in b]

    def test_streams_are_independent(self):
        """Tuning one fault *class* never shifts another class's schedule.

        Each class (sensor / power / core / migration) has its own RNG
        stream; sub-models within the sensor class (noise, stuck, dropout)
        intentionally share the sensor stream, with draw counts gated only
        by the config — so cross-class schedules are the invariant here.
        """
        base = dict(sensor_dropout_prob=0.15, core_stuck_prob=0.1)
        plain = _drive(FaultInjector(self._cfg(**base)))
        # crank the sensor class (noise) and the power class (spikes):
        # the core-stuck class must not move
        cranked = _drive(
            FaultInjector(
                self._cfg(sensor_noise_sigma_c=2.0, power_spike_prob=0.3,
                          power_spike_w=1.0, **base)
            )
        )

        def pick(events, kind):
            return [
                _evt_key(e) for e in events if isinstance(e, kind)
            ]

        assert pick(plain, CoreStuckFault) == pick(cranked, CoreStuckFault)
        assert pick(cranked, PowerSpikeInjected)
        # conversely: cranking power and core classes leaves the whole
        # sensor-class schedule untouched
        sensor_cranked = _drive(
            FaultInjector(
                self._cfg(power_spike_prob=0.5, power_spike_w=2.0,
                          core_stuck_prob=0.4,
                          sensor_dropout_prob=base["sensor_dropout_prob"])
            )
        )
        assert pick(plain, SensorFaultInjected) == pick(
            sensor_cranked, SensorFaultInjected
        )


class TestZeroAmplitude:
    def test_no_events_and_bitwise_identical_readings(self):
        injector = FaultInjector(config.small_test().with_faults(seed=3))
        truth = np.array([40.0, 41.5, 39.9, 45.0])
        events = injector.advance(0.0, truth)
        assert events == []
        observed = injector.sensors.observed()
        assert (observed == truth).all()  # bitwise, not approx
        assert injector.perturb_power(truth) is truth
        assert not injector.stuck_mask().any()
        assert injector.migration_failures([("t0", 0, 1)]) == []


class TestSensorShim:
    def test_dropout_reads_nan_and_observed_falls_back(self):
        cfg = config.small_test().with_faults(
            seed=5, sensor_dropout_prob=1.0, sensor_dropout_duration_s=1.0
        )
        injector = FaultInjector(cfg)
        truth0 = np.array([50.0, 51.0, 52.0, 53.0])
        injector.advance(0.0, truth0)  # every sensor drops out at t=0
        assert np.isnan(injector.sensors.readings()).all()
        assert (injector.sensors.observed() == truth0).all()
        # later truth never reaches the observer while dropped out
        injector.advance(0.1, truth0 + 10.0)
        assert (injector.sensors.observed() == truth0).all()
        assert injector.sensors.max_staleness_s(0.1) == pytest.approx(0.1)

    def test_staleness_zero_while_healthy(self):
        injector = FaultInjector(config.small_test().with_faults(seed=5))
        injector.advance(0.0, np.full(4, 40.0))
        injector.advance(0.01, np.full(4, 41.0))
        assert injector.sensors.max_staleness_s(0.01) == 0.0

    def test_stuck_sensor_latches_value(self):
        cfg = config.small_test().with_faults(
            seed=5, sensor_stuck_prob=1.0, sensor_stuck_duration_s=1.0
        )
        injector = FaultInjector(cfg)
        injector.advance(0.0, np.full(4, 50.0))
        injector.advance(0.1, np.full(4, 60.0))
        # still reporting the latched t=0 value
        assert (injector.sensors.observed() == 50.0).all()
        # stuck readings are finite: staleness does not grow
        assert injector.sensors.max_staleness_s(0.1) == 0.0

    def test_bias_shifts_readings(self):
        cfg = config.small_test().with_faults(seed=5, sensor_bias_c=3.0)
        injector = FaultInjector(cfg)
        truth = np.full(4, 50.0)
        injector.advance(0.0, truth)
        assert (injector.sensors.observed() == 53.0).all()
        assert (truth == 50.0).all()  # ground truth untouched


class TestPowerAndCoreFaults:
    def test_spike_adds_watts_only_while_active(self):
        cfg = config.small_test().with_faults(
            seed=5,
            power_spike_prob=1.0,
            power_spike_w=2.0,
            power_spike_duration_s=units.ms(1.0),
        )
        injector = FaultInjector(cfg)
        injector.advance(0.0, np.full(4, 40.0))
        power = np.full(4, 1.0)
        assert (injector.perturb_power(power) == 3.0).all()
        assert (power == 1.0).all()  # input untouched
        # advance past the episode with spikes no longer startable
        injector._now_s = 1.0  # peek: episode expired
        assert (injector.perturb_power(power) == 1.0).all()

    def test_stuck_mask_follows_episodes(self):
        cfg = config.small_test().with_faults(
            seed=5, core_stuck_prob=1.0, core_stuck_duration_s=units.ms(1.0)
        )
        injector = FaultInjector(cfg)
        injector.advance(0.0, np.full(4, 40.0))
        assert injector.stuck_mask().all()

    def test_migration_failures_deterministic_and_order_free(self):
        cfg = config.small_test().with_faults(
            seed=5, migration_failure_prob=0.5
        )
        moves = [("t2", 2, 3), ("t0", 0, 1), ("t1", 1, 2)]
        a = FaultInjector(cfg).migration_failures(moves)
        b = FaultInjector(cfg).migration_failures(list(reversed(moves)))
        assert a == b  # sorted draw order: input order is irrelevant

    def test_metrics_counters(self):
        cfg = config.small_test().with_faults(
            seed=5, sensor_dropout_prob=1.0, power_spike_prob=1.0,
            power_spike_w=1.0,
        )
        injector = FaultInjector(cfg)
        injector.advance(0.0, np.full(4, 40.0))
        metrics = injector.metrics()
        assert metrics["sensor_dropouts"] == 4.0
        assert metrics["power_spikes"] == 4.0
        assert set(metrics) == {
            "sensor_dropouts",
            "sensor_stuck",
            "power_spikes",
            "core_stuck",
            "migration_failures",
        }

"""Property-based robustness: random fault schedules, invariant outcomes.

Stdlib-only generation (a seeded ``random.Random`` builds random
``FaultsConfig`` parameter sets); each sampled schedule runs a real
simulation and must keep the safety and sanity invariants below.  The
sample count is small because each case is a full simulation — the seeds
are fixed, so failures reproduce exactly.
"""

import math
import random

import numpy as np
import pytest

from repro import units
from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sched.pcmig import PCMigScheduler
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

#: Physical-overshoot allowance [degC] above T_DTM + hysteresis: DTM
#: reacts at interval granularity, so one interval of f_min + spike power
#: can still add a little heat before the clamp bites.
_OVERSHOOT_TOLERANCE_C = 1.0

#: Power spikes are bounded so that a chip at f_min remains coolable —
#: an unbounded spike would overwhelm *hardware* DTM too, and the
#: invariant below is about the control stack, not about physics limits.
_MAX_SPIKE_W = 3.0


def _random_faults(rnd: random.Random) -> dict:
    """One random fault parameter set (amplitudes bounded, seeded)."""
    return dict(
        seed=rnd.randrange(2**16),
        sensor_noise_sigma_c=rnd.uniform(0.0, 2.0),
        sensor_bias_c=rnd.uniform(-1.5, 1.5),
        sensor_dropout_prob=rnd.uniform(0.0, 0.3),
        sensor_dropout_duration_s=rnd.uniform(units.ms(0.5), units.ms(8.0)),
        sensor_stuck_prob=rnd.uniform(0.0, 0.1),
        power_spike_prob=rnd.uniform(0.0, 0.2),
        power_spike_w=rnd.uniform(0.0, _MAX_SPIKE_W),
        power_spike_duration_s=rnd.uniform(units.ms(0.25), units.ms(2.0)),
        core_stuck_prob=rnd.uniform(0.0, 0.1),
        migration_failure_prob=rnd.uniform(0.0, 1.0),
    )


def _hot_tasks():
    # fill the 2x2 chip with the hot benchmark so DTM actually matters
    return [Task(0, PARSEC["x264"], 4, seed=3)]


CASES = [(s, sched) for s in range(6) for sched in ("hotpotato", "pcmig")]


@pytest.mark.parametrize("sample_seed,scheduler_name", CASES)
def test_dtm_safety_under_random_faults(
    fcfg, run_sim, sample_seed, scheduler_name
):
    """Ground-truth temperature never escapes the DTM envelope.

    Whatever the fault schedule throws at the control stack, hardware DTM
    reads ground truth (the thermal diode) and must keep every core at or
    below ``T_DTM + hysteresis`` plus one interval of reaction slack.
    """
    params = _random_faults(random.Random(sample_seed))
    cfg = fcfg.with_faults(**params)
    scheduler = (
        HotPotatoScheduler() if scheduler_name == "hotpotato" else PCMigScheduler()
    )
    _, result = run_sim(cfg, scheduler, _hot_tasks(), max_time_s=0.4)
    limit = (
        cfg.thermal.dtm_threshold_c
        + cfg.thermal.dtm_hysteresis_c
        + _OVERSHOOT_TOLERANCE_C
    )
    peak = float(np.max(result.trace.temperatures))
    assert peak <= limit, (params, peak, limit)
    assert math.isfinite(result.makespan_s) and result.makespan_s > 0


@pytest.mark.parametrize("sample_seed", range(4))
def test_observed_temperatures_always_finite(fcfg, run_sim, sample_seed):
    """The shim's observer contract: NaN never reaches a scheduler."""
    params = _random_faults(random.Random(100 + sample_seed))
    params["sensor_dropout_prob"] = max(params["sensor_dropout_prob"], 0.2)
    cfg = fcfg.with_faults(**params)
    sim, result = run_sim(cfg, HotPotatoScheduler(), _hot_tasks(), max_time_s=0.2)
    observed = sim.scheduler.observed_temperatures()
    assert np.isfinite(observed).all()
    assert math.isfinite(result.energy_j)


@pytest.mark.parametrize("sample_seed", range(3))
def test_metamorphic_zero_amplitude(fcfg, run_sim, sample_seed):
    """Zeroing every amplitude/probability of a random schedule recovers
    the fault-free run exactly (the seed alone must not matter)."""
    params = _random_faults(random.Random(200 + sample_seed))
    zeroed = {
        key: (0.0 if ("prob" in key or "sigma" in key or "bias" in key
                      or key == "power_spike_w") else value)
        for key, value in params.items()
    }
    _, plain = run_sim(fcfg, HotPotatoScheduler(), _hot_tasks(), max_time_s=0.2)
    _, faulted = run_sim(
        fcfg.with_faults(**zeroed), HotPotatoScheduler(), _hot_tasks(),
        max_time_s=0.2,
    )
    assert np.array_equal(plain.trace.temperatures, faulted.trace.temperatures)
    assert plain.makespan_s == faulted.makespan_s
    assert plain.energy_j == faulted.energy_j

"""Shared fixtures for the fault-injection tests.

Everything runs on the 2x2 ``small_test`` platform with a module-shared
calibrated thermal model — fault tests need many short simulations, not
big ones.
"""

import pytest

from repro import config
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator


@pytest.fixture(scope="session")
def fcfg():
    return config.small_test()


@pytest.fixture(scope="session")
def fmodel(fcfg):
    return SimContext(fcfg).thermal_model


@pytest.fixture(scope="session")
def run_sim(fmodel):
    """Run one simulation on the shared small platform and return it.

    ``run_sim(cfg, scheduler, tasks, ...)`` builds a fresh context per
    call (mandatory: contexts carry run state) over the shared model.
    """

    def _run(cfg, scheduler, tasks, max_time_s=0.3, **kwargs):
        sim = IntervalSimulator(
            cfg,
            scheduler,
            tasks,
            ctx=SimContext(cfg, fmodel),
            **kwargs,
        )
        result = sim.run(max_time_s=max_time_s)
        return sim, result

    return _run

"""Trace/result serialization round trips."""

import numpy as np
import pytest

from repro.io import (
    load_result,
    load_trace,
    result_from_dict,
    result_to_dict,
    save_result,
    save_trace,
    trace_from_csv,
    trace_to_csv,
)
from repro.sim.metrics import SimulationResult, TaskRecord
from repro.thermal.trace import ThermalTrace


@pytest.fixture()
def trace():
    t = ThermalTrace(3)
    t.record(0.0, [45.0, 45.5, 46.0])
    t.record(0.5e-3, [50.123456, 47.0, 45.0])
    t.record(1.0e-3, [55.0, 48.0, 45.25])
    return t


@pytest.fixture()
def result(trace):
    return SimulationResult(
        scheduler_name="hotpotato",
        sim_time_s=0.1,
        tasks=[TaskRecord(0, "x264", 4, 0.0, 0.05)],
        trace=trace,
        dtm_triggers=2,
        dtm_core_time_s=1e-3,
        migration_count=17,
        migration_penalty_s=5e-4,
        energy_j=3.25,
        scheduler_wall_time_s=0.01,
        scheduler_invocations=100,
        annotations={"note": 1.0},
    )


class TestTraceCsv:
    def test_round_trip_exact(self, trace):
        restored = trace_from_csv(trace_to_csv(trace))
        assert restored.n_cores == trace.n_cores
        assert np.array_equal(restored.times, trace.times)
        assert np.array_equal(restored.temperatures, trace.temperatures)

    def test_header(self, trace):
        text = trace_to_csv(trace)
        assert text.splitlines()[0] == "time_s,core0,core1,core2"

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            trace_from_csv("bogus,data\n1,2\n")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            trace_from_csv("time_s,core0,core1\n0.0,45.0\n")

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.peak() == pytest.approx(trace.peak())


class TestResultJson:
    def test_round_trip(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.scheduler_name == "hotpotato"
        assert restored.makespan_s == pytest.approx(result.makespan_s)
        assert restored.migration_count == 17
        assert restored.annotations == {"note": 1.0}
        assert restored.trace is None  # not included by default

    def test_round_trip_with_trace(self, result):
        restored = result_from_dict(result_to_dict(result, include_trace=True))
        assert restored.trace is not None
        assert restored.peak_temperature_c == pytest.approx(
            result.peak_temperature_c
        )

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path, include_trace=True)
        restored = load_result(path)
        assert restored.tasks[0].benchmark == "x264"
        assert restored.tasks[0].response_time_s == pytest.approx(0.05)

    def test_json_is_valid(self, result, tmp_path):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        json.loads(path.read_text())

    def test_engine_output_serializes(self, cfg16, model16, tmp_path):
        """A real simulation result survives the round trip."""
        from repro.sched import PeakFrequencyScheduler
        from repro.sim import IntervalSimulator, SimContext
        from repro.workload import PARSEC, Task

        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        original = sim.run(max_time_s=1.0)
        path = tmp_path / "run.json"
        save_result(original, path, include_trace=True)
        restored = load_result(path)
        assert restored.makespan_s == pytest.approx(original.makespan_s)
        assert restored.peak_temperature_c == pytest.approx(
            original.peak_temperature_c
        )

"""3D-stacked S-NUCA extension."""

import numpy as np
import pytest

from repro.core.peak_temperature import (
    brute_force_peak,
    rotation_peak_temperature,
)
from repro.stacked import (
    Amd3dRings,
    Mesh3D,
    StackedMaterialStack,
    build_rc_model_3d,
    default_stacked_stack,
    amd3d_vector,
)
from repro.thermal.matex import ThermalDynamics


@pytest.fixture(scope="module")
def mesh():
    return Mesh3D(4, 4, 2)


@pytest.fixture(scope="module")
def model(mesh):
    return build_rc_model_3d(mesh, default_stacked_stack())


@pytest.fixture(scope="module")
def dynamics(model):
    return ThermalDynamics(model)


class TestMesh3D:
    def test_indexing_roundtrip(self, mesh):
        for core in range(mesh.n_cores):
            assert mesh.core_at(*mesh.position(core)) == core

    def test_layer_of(self, mesh):
        assert mesh.layer_of(0) == 0
        assert mesh.layer_of(16) == 1

    def test_stacked_column(self, mesh):
        column = mesh.stacked_column(5)
        assert column == [5, 21]
        assert mesh.stacked_column(21) == [5, 21]

    def test_distance_weights_tsv(self, mesh):
        # same column, one layer apart: one weighted vertical hop
        assert mesh.distance(5, 21) == pytest.approx(mesh.tsv_hop_weight)
        # lateral-only distance unchanged from 2D
        assert mesh.distance(0, 3) == pytest.approx(3.0)

    def test_neighbors_include_vertical(self, mesh):
        assert 21 in mesh.neighbors(5)
        assert 5 in mesh.neighbors(21)
        # interior core of a 2-layer stack: 4 lateral + 1 vertical
        assert len(mesh.neighbors(5)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh3D(0, 4, 2)
        with pytest.raises(ValueError):
            Mesh3D(4, 4, 2, tsv_hop_weight=0.0)
        with pytest.raises(IndexError):
            Mesh3D(2, 2, 2).position(8)

    def test_amd_symmetric_across_layers(self, mesh):
        """With 2 layers the stack is mirror-symmetric: AMD is equal for
        vertically aligned cores."""
        amd = amd3d_vector(mesh)
        for core in range(16):
            assert amd[core] == pytest.approx(amd[core + 16])


class TestStackedModel:
    def test_structure(self, model, mesh):
        assert model.n_cores == 32
        assert model.n_nodes == 32 + 16 + 1
        b = model.b_matrix
        assert np.allclose(b, b.T)
        assert np.all(np.linalg.eigvalsh(b) > 0)

    def test_eigenvalues_negative(self, dynamics):
        assert np.all(dynamics.eigenvalues < 0)

    def test_upper_layer_runs_hotter(self, model, mesh):
        """The defining 3D thermal problem."""
        peaks = []
        for layer in (0, 1):
            power = np.full(32, 0.3)
            power[mesh.core_at(layer, 1, 1)] = 8.0
            temps = model.steady_state(power, 45.0)
            peaks.append(np.max(model.core_temperatures(temps)))
        assert peaks[1] > peaks[0] + 10.0

    def test_layer_slice(self, model, mesh):
        temps = np.arange(model.n_nodes, dtype=float)
        lower = model.layer_slice(temps, 0)
        upper = model.layer_slice(temps, 1)
        assert np.array_equal(lower, np.arange(16.0))
        assert np.array_equal(upper, np.arange(16.0, 32.0))

    def test_stronger_bond_cools_upper_layer(self, mesh):
        import dataclasses

        weak = build_rc_model_3d(
            mesh,
            dataclasses.replace(default_stacked_stack(), tsv_conductance_boost=1.0),
        )
        strong = build_rc_model_3d(
            mesh,
            dataclasses.replace(default_stacked_stack(), tsv_conductance_boost=10.0),
        )
        power = np.full(32, 0.3)
        power[mesh.core_at(1, 1, 1)] = 8.0
        peak_weak = np.max(weak.core_temperatures(weak.steady_state(power, 45.0)))
        peak_strong = np.max(
            strong.core_temperatures(strong.steady_state(power, 45.0))
        )
        assert peak_strong < peak_weak - 5.0


class TestVerticalRotation:
    def test_rotation_averages_layer_gradient(self, model, mesh, dynamics):
        """Rotating a thread through its stacked column lands between the
        pinned-bottom and pinned-top extremes."""
        column = mesh.stacked_column(mesh.core_at(0, 1, 1))
        power_w = 4.0
        peaks = {}
        for name, core in (("bottom", column[0]), ("top", column[1])):
            power = np.full(32, 0.3)
            power[core] = power_w
            temps = model.steady_state(power, 45.0)
            peaks[name] = float(np.max(model.core_temperatures(temps)))
        seq = np.full((2, 32), 0.3)
        seq[0, column[0]] = power_w
        seq[1, column[1]] = power_w
        rotated = rotation_peak_temperature(dynamics, seq, 0.5e-3, 45.0)
        assert peaks["bottom"] < rotated < peaks["top"]

    def test_analytic_matches_brute_force_in_3d(self, dynamics, mesh):
        """The Section IV machinery is substrate-agnostic: closed form and
        transient simulation agree on the stack too."""
        column = mesh.stacked_column(5)
        seq = np.full((2, 32), 0.3)
        seq[0, column[0]] = 5.0
        seq[1, column[1]] = 5.0
        analytic = rotation_peak_temperature(dynamics, seq, 0.5e-3, 45.0)
        brute, _ = brute_force_peak(dynamics, seq, 0.5e-3, 45.0, n_periods=3000)
        assert analytic == pytest.approx(brute, abs=1e-3)


class TestAmd3dRings:
    def test_rings_partition(self, mesh):
        rings = Amd3dRings(mesh)
        cores = sorted(c for i in range(rings.n_rings) for c in rings.ring(i))
        assert cores == list(range(32))

    def test_rings_span_layers(self, mesh):
        """The 2D premise (one ring = one thermal class) breaks in 3D."""
        rings = Amd3dRings(mesh)
        assert any(
            not rings.thermally_homogeneous(i) for i in range(rings.n_rings)
        )

    def test_ring_values_sorted(self, mesh):
        rings = Amd3dRings(mesh)
        values = [rings.ring_value(i) for i in range(rings.n_rings)]
        assert values == sorted(values)


class TestExperiment:
    def test_stacked3d_experiment_shape(self):
        from repro.experiments import stacked3d

        result = stacked3d.run()
        assert result.layer_gradient_c > 10.0
        assert result.rotation_rescues_top_layer
        assert result.rings_span_layers
        text = result.render()
        assert "layer gradient" in text
        assert "vertical rotation" in text

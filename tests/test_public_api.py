"""Public-API surface: everything the README documents must exist."""

import importlib

import pytest


class TestDocumentedEntryPoints:
    def test_package_version(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize(
        "module, names",
        [
            ("repro.config", ["table1", "motivational", "SystemConfig"]),
            (
                "repro.thermal",
                [
                    "BatchedSpectralState",
                    "Floorplan",
                    "RCThermalModel",
                    "ThermalDynamics",
                    "ThermalTrace",
                    "build_rc_model",
                    "calibrated_model",
                    "sustainable_uniform_power",
                ],
            ),
            (
                "repro.arch",
                ["Mesh", "AmdRings", "SnucaCache", "MigrationCostModel", "Noc"],
            ),
            ("repro.power", ["PowerModel", "DvfsController", "Tsp"]),
            (
                "repro.workload",
                [
                    "PARSEC",
                    "Task",
                    "PerformanceModel",
                    "homogeneous_fill",
                    "random_mixed_workload",
                    "poisson_arrivals",
                    "materialize",
                    "characterize",
                ],
            ),
            (
                "repro.core",
                [
                    "HotPotato",
                    "ThreadInfo",
                    "PeakTemperatureCalculator",
                    "RotationSchedule",
                    "rotation_peak_temperature",
                    "brute_force_peak",
                ],
            ),
            (
                "repro.sim",
                [
                    "BatchedSimulatorSet",
                    "IntervalSimulator",
                    "SimContext",
                    "SimulationResult",
                    "DtmController",
                    "EventLog",
                ],
            ),
            (
                "repro.sched",
                [
                    "HotPotatoScheduler",
                    "HotPotatoDvfsScheduler",
                    "PCMigScheduler",
                    "PCGovScheduler",
                    "PeakFrequencyScheduler",
                    "FixedRotationScheduler",
                    "AsyncMigrationScheduler",
                ],
            ),
            (
                "repro.experiments",
                ["fig1", "fig2", "fig3", "fig4a", "fig4b", "overhead",
                 "stacked3d", "table1"],
            ),
            (
                "repro.stacked",
                ["Mesh3D", "Amd3dRings", "build_rc_model_3d"],
            ),
            (
                "repro.analysis",
                ["render_heatmap", "hotspot_report", "run_pair"],
            ),
            (
                "repro.io",
                ["save_trace", "load_trace", "save_result", "load_result"],
            ),
        ],
    )
    def test_module_exports(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_all_lists_are_importable(self):
        for module in (
            "repro.thermal",
            "repro.arch",
            "repro.power",
            "repro.workload",
            "repro.core",
            "repro.sim",
            "repro.sched",
            "repro.stacked",
            "repro.analysis",
        ):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{module}.__all__ lists {name}"

    def test_every_public_callable_has_docstring(self):
        """Documentation deliverable: public API items carry doc comments."""
        for module in (
            "repro.thermal",
            "repro.arch",
            "repro.power",
            "repro.core",
            "repro.sim",
            "repro.sched",
        ):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj):
                    assert obj.__doc__, f"{module}.{name} lacks a docstring"
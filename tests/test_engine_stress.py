"""Randomized end-to-end stress: the simulator's conservation invariants.

Hypothesis drives random small workloads through random schedulers on the
4-core test platform and checks the invariants no run may break:
every task completes exactly once, instructions are conserved, response
times are causal, and the thermal trace stays physically bounded.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import config
from repro.sched import (
    HotPotatoScheduler,
    PCGovScheduler,
    PCMigScheduler,
    PeakFrequencyScheduler,
)
from repro.sim import IntervalSimulator, SimContext
from repro.thermal.calibrate import calibrated_model
from repro.workload import PARSEC, Task

_CFG = config.small_test()  # 2x2 cores: fast
_MODEL = calibrated_model(_CFG)

_SCHEDULERS = (
    PeakFrequencyScheduler,
    PCGovScheduler,
    PCMigScheduler,
    HotPotatoScheduler,
)

_BENCH_NAMES = sorted(PARSEC)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler_idx=st.integers(0, len(_SCHEDULERS) - 1),
    task_specs=st.lists(
        st.tuples(
            st.sampled_from(_BENCH_NAMES),
            st.integers(1, 2),  # threads
            st.floats(0.0, 0.05),  # arrival
            st.integers(0, 1000),  # seed
        ),
        min_size=1,
        max_size=3,
    ),
)
def test_random_workloads_conserve_invariants(scheduler_idx, task_specs):
    tasks = [
        Task(i, PARSEC[name], threads, arrival_time_s=arrival, seed=seed,
             work_scale=0.05)
        for i, (name, threads, arrival, seed) in enumerate(task_specs)
    ]
    totals = {t.task_id: t.total_instructions() for t in tasks}
    sim = IntervalSimulator(
        _CFG,
        _SCHEDULERS[scheduler_idx](),
        tasks,
        ctx=SimContext(_CFG, _MODEL),
    )
    result = sim.run(max_time_s=5.0)

    # every task completed exactly once
    assert sorted(r.task_id for r in result.tasks) == sorted(totals)
    for record in result.tasks:
        # causality: completion after arrival
        assert record.completion_s > record.arrival_s
    # instruction conservation
    for task in tasks:
        assert task.instructions_retired() == pytest.approx(
            totals[task.task_id], rel=1e-9
        )
    # physical temperatures
    assert result.trace is not None
    temps = result.trace.temperatures
    assert np.all(temps >= _CFG.thermal.ambient_c - 1e-6)
    assert np.all(temps < 150.0)
    # energy is positive and bounded by max chip power
    assert 0.0 < result.energy_j <= 4 * 10.0 * result.sim_time_s + 1e-9

"""Unit helpers."""

import pytest

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(45.0)) == pytest.approx(45.0)


def test_time_helpers():
    assert units.ms(0.5) == pytest.approx(0.5e-3)
    assert units.us(23.76) == pytest.approx(23.76e-6)
    assert units.ns(1.5) == pytest.approx(1.5e-9)


def test_frequency_helpers():
    assert units.ghz(4.0) == pytest.approx(4.0e9)
    assert units.mhz(100.0) == pytest.approx(1.0e8)
    assert units.ghz(1.0) == 10 * units.mhz(100.0)


def test_length_helpers():
    assert units.mm(0.9) == pytest.approx(0.9e-3)
    assert units.um(25.0) == pytest.approx(25.0e-6)
    assert units.mm2(0.81) == pytest.approx(0.81e-6)
    assert units.mm(1.0) == 1000 * units.um(1.0)
    # a 0.81 mm^2 core has a 0.9 mm edge
    assert units.mm(0.9) ** 2 == pytest.approx(units.mm2(0.81))

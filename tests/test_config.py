"""Table I conformance and configuration behaviour."""

import math

import pytest

from repro import config


class TestTable1:
    """The evaluation platform must match the paper's Table I exactly."""

    def setup_method(self):
        self.cfg = config.table1()

    def test_core_count(self):
        assert self.cfg.n_cores == 64
        assert self.cfg.mesh_width == 8
        assert self.cfg.mesh_height == 8

    def test_peak_frequency(self):
        assert self.cfg.dvfs.f_max_hz == pytest.approx(4.0e9)

    def test_l1_caches(self):
        assert self.cfg.cache.l1i_size_bytes == 16 * 1024
        assert self.cfg.cache.l1d_size_bytes == 16 * 1024
        assert self.cfg.cache.l1_associativity == 8
        assert self.cfg.cache.block_size_bytes == 64

    def test_llc(self):
        assert self.cfg.cache.llc_bank_size_bytes == 128 * 1024
        assert self.cfg.cache.llc_associativity == 16

    def test_noc(self):
        assert self.cfg.noc.hop_latency_s == pytest.approx(1.5e-9)
        assert self.cfg.noc.link_width_bits == 256

    def test_core_area(self):
        assert self.cfg.core_area_m2 == pytest.approx(0.81e-6)
        assert self.cfg.core_edge_m == pytest.approx(math.sqrt(0.81e-6))

    def test_section6_parameters(self):
        assert self.cfg.thermal.ambient_c == pytest.approx(45.0)
        assert self.cfg.thermal.dtm_threshold_c == pytest.approx(70.0)
        assert self.cfg.thermal.headroom_delta_c == pytest.approx(1.0)
        assert self.cfg.thermal.idle_power_w == pytest.approx(0.3)
        assert self.cfg.rotation_interval_s == pytest.approx(0.5e-3)

    def test_power_history_window(self):
        # Algorithm 1 uses the last 10 ms of power history (Section V)
        assert self.cfg.power_history_window_s == pytest.approx(10.0e-3)


class TestDvfsConfig:
    def test_levels_are_100mhz_steps(self):
        dvfs = config.DvfsConfig()
        freqs = dvfs.frequencies()
        assert freqs[0] == pytest.approx(1.0e9)
        assert freqs[-1] == pytest.approx(4.0e9)
        assert len(freqs) == 31
        steps = [b - a for a, b in zip(freqs, freqs[1:])]
        assert all(s == pytest.approx(100.0e6) for s in steps)

    def test_voltage_monotone(self):
        dvfs = config.DvfsConfig()
        freqs = dvfs.frequencies()
        volts = [dvfs.voltage(f) for f in freqs]
        assert volts == sorted(volts)
        assert volts[0] == pytest.approx(dvfs.v_min)
        assert volts[-1] == pytest.approx(dvfs.v_max)

    def test_voltage_out_of_range(self):
        dvfs = config.DvfsConfig()
        with pytest.raises(ValueError):
            dvfs.voltage(0.5e9)
        with pytest.raises(ValueError):
            dvfs.voltage(5.0e9)


class TestConfigVariants:
    def test_motivational_is_16_core(self):
        assert config.motivational().n_cores == 16

    def test_small_test_is_4_core(self):
        assert config.small_test().n_cores == 4

    def test_replace_does_not_mutate(self):
        base = config.table1()
        other = base.replace(mesh_width=4)
        assert base.mesh_width == 8
        assert other.mesh_width == 4
        assert other.mesh_height == 8

    def test_frozen(self):
        with pytest.raises(Exception):
            config.table1().mesh_width = 2

"""The {traffic} x {scheduler} scenario matrix, end to end (tier-1-fast).

All 12 cells of {poisson, diurnal, flash-crowd, trace} x {hotpotato,
pcmig, qos} run on the 4x4 motivational platform (the smallest one whose
core count fits every thread-count the synthetic mix can draw) with
light load.  Every cell must stay thermally safe (peak at most ``T_DTM``
plus the DTM hysteresis slack), raise no QoS deadline violations, and —
for the QoS scheduler — park nothing.  A separate overload run proves
the QoS scheduler *does* shed (parked peak > 0) exactly when queue
pressure crosses the overload threshold, and that the shed tasks
surface as deadline violations.
"""

import pytest

from repro.config import small_test
from repro.experiments import fig4b
from repro.obs import (
    MetricsRegistry,
    Observer,
    TraceRecorder,
    default_detectors,
    run_detectors,
)
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.traffic import write_arrival_trace
from repro.workload.generator import TaskSpec, materialize
from repro.workload.benchmarks import parsec_profile
from repro.workload.qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    QosSpec,
)

#: generous relative deadline under light load — nothing should miss it
LIGHT_DEADLINE_S = 30.0


def _light_specs():
    """Six tiny tasks (at most 2 threads) the 2x2 chip digests easily."""
    benchmarks = ("blackscholes", "swaptions", "canneal")
    specs = []
    for index in range(6):
        specs.append(
            TaskSpec(
                parsec_profile(benchmarks[index % len(benchmarks)]),
                n_threads=1 + index % 2,
                seed=index,
                work_scale=0.25,
                qos=QosSpec(
                    deadline_s=LIGHT_DEADLINE_S,
                    priority=(PRIORITY_BEST_EFFORT, 1, PRIORITY_CRITICAL)[
                        index % 3
                    ],
                ),
            )
        )
    return specs


@pytest.fixture(scope="module")
def matrix_runs(tmp_path_factory, cfg16, model16):
    """All 12 cells, each with a full observability bundle attached."""
    cfg = cfg16
    trace_path = tmp_path_factory.mktemp("traffic") / "light.jsonl"
    from repro.traffic import PoissonProcess, assign_arrivals

    write_arrival_trace(
        trace_path,
        assign_arrivals(_light_specs(), PoissonProcess(8.0), seed=3),
    )
    runs = {}
    for traffic in fig4b.MATRIX_TRAFFICS:
        for scheduler in fig4b.MATRIX_SCHEDULERS:
            specs = fig4b._cell_specs(
                arrival_rate_per_s=8.0,
                n_tasks=6,
                seed=5,
                work_scale=0.25,
                max_time_s=4.0,
                traffic=traffic,
                trace_path=trace_path,
                deadline_s=LIGHT_DEADLINE_S,
            )
            observer = Observer(
                trace=TraceRecorder(), metrics=MetricsRegistry()
            )
            sim = IntervalSimulator(
                cfg,
                fig4b._SCHEDULERS[scheduler](),
                materialize(specs),
                ctx=SimContext(cfg, model16),
                record_trace=True,
                observer=observer,
            )
            result = sim.run(max_time_s=4.0)
            runs[(traffic, scheduler)] = (result, observer.trace)
    return cfg, runs


class TestScenarioMatrix:
    def test_all_twelve_cells_ran(self, matrix_runs):
        _, runs = matrix_runs
        assert len(runs) == 12
        assert set(runs) == {
            (t, s)
            for t in ("poisson", "diurnal", "flash-crowd", "trace")
            for s in ("hotpotato", "pcmig", "qos")
        }
        for (traffic, scheduler), (result, _) in runs.items():
            assert result.tasks, f"cell {(traffic, scheduler)} completed nothing"

    def test_every_cell_stays_thermally_safe(self, matrix_runs):
        cfg, runs = matrix_runs
        limit = cfg.thermal.dtm_threshold_c + cfg.thermal.dtm_hysteresis_c
        for key, (result, _) in runs.items():
            assert result.peak_temperature_c <= limit + 1e-9, key

    def test_no_deadline_violations_under_light_load(self, matrix_runs):
        cfg, runs = matrix_runs
        for key, (_, trace) in runs.items():
            violations = run_detectors(
                trace,
                default_detectors(
                    dtm_threshold_c=cfg.thermal.dtm_threshold_c,
                    threshold_tolerance_c=cfg.thermal.dtm_hysteresis_c,
                ),
            )
            qos_violations = [
                v for v in violations if v.detector == "qos-deadline-violation"
            ]
            assert qos_violations == [], key
            critical = [v for v in violations if v.severity == "critical"]
            assert critical == [], key

    def test_qos_cells_park_nothing_under_light_load(self, matrix_runs):
        _, runs = matrix_runs
        for traffic in fig4b.MATRIX_TRAFFICS:
            result, _ = runs[(traffic, "qos")]
            snapshot = result.metrics_snapshot
            assert snapshot["sched.qos_parked_peak"] == 0.0, traffic
            assert snapshot["sched.qos_shed_decisions"] == 0.0, traffic

    def test_cells_are_deterministic(self, matrix_runs, model16):
        """Re-running one cell reproduces its response times exactly."""
        cfg, runs = matrix_runs
        reference, _ = runs[("diurnal", "qos")]
        ctx = SimContext(cfg, model16)
        specs = fig4b._cell_specs(
            arrival_rate_per_s=8.0,
            n_tasks=6,
            seed=5,
            work_scale=0.25,
            max_time_s=4.0,
            traffic="diurnal",
            trace_path=None,
            deadline_s=LIGHT_DEADLINE_S,
        )
        sim = IntervalSimulator(
            cfg,
            fig4b._SCHEDULERS["qos"](),
            materialize(specs),
            ctx=ctx,
            record_trace=False,
        )
        again = sim.run(max_time_s=4.0)
        assert [t.response_time_s for t in again.tasks] == [
            t.response_time_s for t in reference.tasks
        ]


class TestOverloadSheds:
    def _overload_run(self, deadline_s=0.05):
        """Many simultaneous tasks: queue pressure far above the park
        threshold, a deadline nothing queued can make."""
        cfg = small_test()
        specs = []
        for index in range(10):
            specs.append(
                TaskSpec(
                    parsec_profile("blackscholes"),
                    n_threads=2,
                    seed=index,
                    work_scale=1.0,
                    qos=QosSpec(
                        deadline_s=deadline_s,
                        priority=(
                            PRIORITY_BEST_EFFORT,
                            1,
                            PRIORITY_CRITICAL,
                        )[index % 3],
                    ),
                )
            )
        observer = Observer(trace=TraceRecorder(), metrics=MetricsRegistry())
        sim = IntervalSimulator(
            cfg,
            fig4b._SCHEDULERS["qos"](),
            materialize(specs),
            ctx=SimContext(cfg),
            record_trace=False,
            observer=observer,
        )
        result = sim.run(max_time_s=0.2)
        return cfg, result, observer.trace

    def test_overload_parks_and_sheds(self):
        _, result, _ = self._overload_run()
        snapshot = result.metrics_snapshot
        assert snapshot["sched.qos_parked_peak"] > 0.0
        assert snapshot["sched.qos_shed_decisions"] > 0.0
        # the mode actually left "normal" at some point
        assert snapshot["sched.qos_traffic_mode"] >= 0.0

    def test_shed_tasks_surface_as_deadline_violations(self):
        cfg, _, trace = self._overload_run()
        violations = run_detectors(
            trace,
            default_detectors(dtm_threshold_c=cfg.thermal.dtm_threshold_c),
        )
        qos_violations = [
            v for v in violations if v.detector == "qos-deadline-violation"
        ]
        assert qos_violations, "overload produced no deadline violations"

    def test_shedding_only_above_the_overload_threshold(self):
        """The same task set admitted with a sky-high overload threshold
        never parks: shedding is driven by the threshold, not the load."""
        cfg = small_test()
        specs = [
            TaskSpec(
                parsec_profile("blackscholes"),
                n_threads=2,
                seed=index,
                work_scale=1.0,
                qos=QosSpec(priority=PRIORITY_BEST_EFFORT),
            )
            for index in range(10)
        ]
        observer = Observer(metrics=MetricsRegistry())
        sim = IntervalSimulator(
            cfg,
            fig4b._SCHEDULERS["qos"](
                overload_queue_threads=10_000,
                park_queue_threads=20_000,
            ),
            materialize(specs),
            ctx=SimContext(cfg),
            record_trace=False,
            observer=observer,
        )
        result = sim.run(max_time_s=0.2)
        assert result.metrics_snapshot["sched.qos_parked_peak"] == 0.0
        assert result.metrics_snapshot["sched.qos_shed_decisions"] == 0.0

"""Property-based tests on the arrival processes (docs/traffic.md).

The invariants every process promises (and the scenario-matrix suite
leans on): schedules are non-decreasing, finite and non-negative; the
diurnal rate never exceeds its thinning envelope; a flash crowd is a
superset of the base arrivals it kept; identical seeds give
byte-identical schedules; and — the metamorphic anchor — a flash crowd
whose every burst has rate zero *is* its base process, bit for bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traffic import (
    ArrivalProcess,
    Burst,
    DiurnalProcess,
    FlashCrowd,
    PoissonProcess,
    TRAFFIC_PATTERNS,
    TraceReplay,
    assign_arrivals,
    build_process,
)
from repro.workload.generator import poisson_arrivals, random_mixed_workload

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_seeds = st.integers(0, 2**31 - 1)
_rates = st.floats(0.5, 500.0, allow_nan=False, allow_infinity=False)


def _processes(rate: float) -> list:
    """One instance of every synthetic process at the given base rate."""
    return [
        PoissonProcess(rate),
        DiurnalProcess(rate, amplitude=0.7, period_s=3.0),
        FlashCrowd(
            PoissonProcess(rate),
            (Burst(start_s=0.5, duration_s=0.25, rate_per_s=4.0 * rate),),
        ),
    ]


# -- the universal schedule contract ----------------------------------------


@_SETTINGS
@given(seed=_seeds, rate=_rates, n=st.integers(0, 60))
def test_schedules_are_finite_nonnegative_nondecreasing(seed, rate, n):
    for process in _processes(rate):
        times = process.sample(n, seed=seed)
        assert times.shape == (n,)
        assert np.all(np.isfinite(times))
        if n:
            assert times[0] >= 0.0
        assert np.all(np.diff(times) >= 0.0)


@_SETTINGS
@given(seed=_seeds, rate=_rates)
def test_identical_seeds_are_byte_identical(seed, rate):
    for process in _processes(rate):
        first = process.sample(40, seed=seed)
        again = process.sample(40, seed=seed)
        assert np.array_equal(first, again)


@given(seed=st.integers(0, 500))
@_SETTINGS
def test_distinct_seeds_differ(seed):
    process = PoissonProcess(30.0)
    assert not np.array_equal(
        process.sample(20, seed=seed), process.sample(20, seed=seed + 1)
    )


def test_poisson_matches_legacy_draw_bytes():
    """PoissonProcess is the legacy poisson_arrivals draw, bit for bit."""
    process = PoissonProcess(30.0)
    times = process.sample(25, seed=11)
    legacy = np.random.default_rng(11).exponential(1.0 / 30.0, 25).cumsum()
    assert np.array_equal(times, legacy)


# -- diurnal thinning ---------------------------------------------------------


@_SETTINGS
@given(
    seed=_seeds,
    rate=_rates,
    amplitude=st.floats(0.0, 1.0),
    t=st.floats(0.0, 1e4),
)
def test_diurnal_rate_never_exceeds_peak(seed, rate, amplitude, t):
    process = DiurnalProcess(rate, amplitude=amplitude, period_s=7.0)
    assert process.rate_at(t) <= process.peak_rate_per_s + 1e-9
    assert process.rate_at(t) >= rate * (1.0 - amplitude) - 1e-9


@_SETTINGS
@given(seed=_seeds, amplitude=st.floats(0.0, 1.0))
def test_diurnal_accepted_subset_of_candidates(seed, amplitude):
    process = DiurnalProcess(20.0, amplitude=amplitude, period_s=2.0)
    candidates, mask = process.thinning_trace(30, seed=seed)
    accepted = process.sample(30, seed=seed)
    assert np.array_equal(candidates[mask], accepted)
    assert mask.sum() == 30
    # thinning only removes candidates, never invents arrivals
    assert len(candidates) >= 30


def test_zero_amplitude_diurnal_is_plain_poisson_stream():
    """With amplitude 0 the acceptance test always passes, so every
    candidate (drawn at the peak == base rate) is kept."""
    process = DiurnalProcess(30.0, amplitude=0.0, period_s=5.0)
    candidates, mask = process.thinning_trace(20, seed=4)
    assert mask.all()
    assert np.array_equal(candidates, process.sample(20, seed=4))


# -- flash crowds -------------------------------------------------------------


@_SETTINGS
@given(seed=_seeds, rate=st.floats(1.0, 100.0))
def test_flash_crowd_is_superset_of_kept_base_arrivals(seed, rate):
    burst = Burst(start_s=0.2, duration_s=0.3, rate_per_s=5.0 * rate)
    crowd = FlashCrowd(PoissonProcess(rate), (burst,))
    n = 40
    merged = crowd.sample(n, seed=seed)
    extra = crowd.burst_times(seed=seed)
    n_extra = min(len(extra), n)
    base_kept = crowd.base.sample_times(
        n - n_extra, np.random.default_rng(seed), seed
    )
    merged_list = list(merged)
    for t in base_kept:
        assert t in merged_list
    for t in extra[:n_extra]:
        assert t in merged_list
    assert len(merged) == n


@_SETTINGS
@given(seed=_seeds, rate=st.floats(1.0, 100.0), n=st.integers(0, 50))
def test_zero_rate_burst_is_bitwise_base(seed, rate, n):
    """The metamorphic anchor: a zero-amplitude (zero-rate) burst overlay
    must be *bit-for-bit* the base process — the overlay consumes no
    randomness at all."""
    base = PoissonProcess(rate)
    crowd = FlashCrowd(
        base,
        (
            Burst(start_s=0.1, duration_s=0.5, rate_per_s=0.0),
            Burst(start_s=1.0, duration_s=0.2, rate_per_s=0.0),
        ),
    )
    assert np.array_equal(crowd.sample(n, seed=seed), base.sample(n, seed=seed))


def test_burst_times_are_pure_in_seed_and_sorted():
    crowd = FlashCrowd(
        PoissonProcess(10.0),
        (
            Burst(start_s=0.0, duration_s=1.0, rate_per_s=30.0),
            Burst(start_s=2.0, duration_s=1.0, rate_per_s=30.0),
        ),
    )
    first = crowd.burst_times(seed=5)
    assert np.array_equal(first, crowd.burst_times(seed=5))
    assert np.all(np.diff(first) >= 0)
    # burst windows are respected
    assert ((first <= 1.0) | ((first >= 2.0) & (first <= 3.0))).all()


# -- trace replay -------------------------------------------------------------


class TestTraceReplay:
    def test_replays_verbatim_prefix(self):
        replay = TraceReplay([0.0, 0.5, 1.25, 4.0])
        assert np.array_equal(replay.sample(3, seed=99), [0.0, 0.5, 1.25])

    def test_requesting_beyond_the_trace_fails(self):
        with pytest.raises(ValueError, match="holds 2 arrivals"):
            TraceReplay([0.0, 1.0]).sample(3)

    def test_non_monotonic_trace_rejected(self):
        with pytest.raises(ValueError, match="non-monotonic"):
            TraceReplay([0.0, 2.0, 1.0])

    def test_negative_trace_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TraceReplay([-1.0, 2.0])


# -- validation and construction ----------------------------------------------


class _LyingProcess(ArrivalProcess):
    name = "lying"

    def sample_times(self, n, rng, seed=0):
        return np.linspace(float(n), 0.0, n)  # decreasing on purpose


class TestContractValidation:
    def test_decreasing_schedule_is_rejected(self):
        with pytest.raises(ValueError, match="decreased"):
            _LyingProcess().sample(5)

    def test_negative_n_is_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            PoissonProcess(1.0).sample(-1)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)
        with pytest.raises(ValueError):
            DiurnalProcess(-1.0)
        with pytest.raises(ValueError):
            DiurnalProcess(1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalProcess(1.0, period_s=0.0)

    def test_bad_bursts_rejected(self):
        with pytest.raises(ValueError):
            Burst(start_s=-0.1, duration_s=1.0, rate_per_s=1.0)
        with pytest.raises(ValueError):
            Burst(start_s=0.0, duration_s=0.0, rate_per_s=1.0)
        with pytest.raises(ValueError):
            Burst(start_s=0.0, duration_s=1.0, rate_per_s=-1.0)


class TestBuildProcess:
    def test_all_synthetic_patterns_build(self):
        for pattern in TRAFFIC_PATTERNS:
            if pattern == "trace":
                continue
            process = build_process(pattern, 30.0, horizon_s=9.0)
            assert isinstance(process, ArrivalProcess)
            assert process.sample(10, seed=0).shape == (10,)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            build_process("bursty", 30.0)

    def test_trace_requires_a_path(self):
        with pytest.raises(ValueError, match="trace path"):
            build_process("trace", 30.0)

    def test_diurnal_period_defaults_to_a_third_of_the_horizon(self):
        process = build_process("diurnal", 30.0, horizon_s=9.0)
        assert process.period_s == pytest.approx(3.0)


# -- spec assignment and the id/arrival ordering contract ---------------------


class TestAssignArrivals:
    def test_result_is_sorted_by_arrival(self):
        specs = random_mixed_workload(12, seed=3)
        process = FlashCrowd(
            PoissonProcess(20.0),
            (Burst(start_s=0.05, duration_s=0.1, rate_per_s=300.0),),
        )
        assigned = assign_arrivals(specs, process, seed=8)
        times = [s.arrival_time_s for s in assigned]
        assert times == sorted(times)
        assert len(assigned) == len(specs)

    def test_matches_legacy_poisson_arrivals_bytes(self):
        """assign_arrivals(PoissonProcess) == poisson_arrivals, including
        the payload-to-time pairing."""
        specs = random_mixed_workload(10, seed=2)
        via_process = assign_arrivals(specs, PoissonProcess(40.0), seed=6)
        legacy = poisson_arrivals(specs, 40.0, seed=6)
        assert [
            (s.profile.name, s.n_threads, s.arrival_time_s)
            for s in via_process
        ] == [
            (s.profile.name, s.n_threads, s.arrival_time_s) for s in legacy
        ]

"""JSONL arrival traces: exact round-trips, torn-tail rejection, replay.

The golden test pins the end-to-end contract: a hand-built trace replayed
through fig4b's ``traffic="trace"`` path yields exactly the response
times of simulating the same specs directly — ids, arrivals and
completions all bit-for-bit.
"""

import json

import pytest

from repro.config import small_test
from repro.experiments import fig4b
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.traffic import (
    PoissonProcess,
    assign_arrivals,
    load_arrival_trace,
    write_arrival_trace,
)
from repro.workload.generator import TaskSpec, materialize
from repro.workload.benchmarks import parsec_profile
from repro.workload.qos import PRIORITY_CRITICAL, QosSpec


def _hand_built_specs():
    """Four small tasks with known arrivals, thread counts and QoS."""
    return [
        TaskSpec(
            parsec_profile("blackscholes"),
            n_threads=1,
            arrival_time_s=0.0,
            seed=1,
            work_scale=0.25,
            qos=QosSpec(deadline_s=5.0, priority=PRIORITY_CRITICAL),
        ),
        TaskSpec(
            parsec_profile("swaptions"),
            n_threads=2,
            arrival_time_s=0.010,
            seed=2,
            work_scale=0.25,
        ),
        TaskSpec(
            parsec_profile("canneal"),
            n_threads=1,
            arrival_time_s=0.025,
            seed=3,
            work_scale=0.25,
            qos=QosSpec(latency_slo_s=0.5, deadline_s=5.0),
        ),
        TaskSpec(
            parsec_profile("bodytrack"),
            n_threads=2,
            arrival_time_s=0.0251,
            seed=4,
            work_scale=0.25,
        ),
    ]


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "arrivals.jsonl"
    write_arrival_trace(path, _hand_built_specs())
    return path


class TestRoundTrip:
    def test_exact_round_trip(self, trace_path):
        specs = _hand_built_specs()
        loaded = load_arrival_trace(trace_path)
        assert len(loaded) == len(specs)
        for original, back in zip(specs, loaded):
            assert back.profile.name == original.profile.name
            assert back.n_threads == original.n_threads
            assert back.arrival_time_s == original.arrival_time_s  # bitwise
            assert back.seed == original.seed
            assert back.work_scale == original.work_scale
            assert back.qos == original.qos

    def test_writer_sorts_by_arrival(self, tmp_path):
        specs = list(reversed(_hand_built_specs()))
        path = tmp_path / "reversed.jsonl"
        write_arrival_trace(path, specs)
        times = [s.arrival_time_s for s in load_arrival_trace(path)]
        assert times == sorted(times)

    def test_random_specs_round_trip_bitwise(self, tmp_path):
        from repro.workload.generator import random_mixed_workload

        specs = assign_arrivals(
            random_mixed_workload(15, seed=9), PoissonProcess(50.0), seed=9
        )
        path = tmp_path / "random.jsonl"
        write_arrival_trace(path, specs)
        loaded = load_arrival_trace(path)
        assert [s.arrival_time_s for s in loaded] == [
            s.arrival_time_s for s in specs
        ]


class TestLoaderRejections:
    def test_torn_tail_missing_newline(self, trace_path):
        text = trace_path.read_text()
        trace_path.write_text(text.rstrip("\n"))
        with pytest.raises(ValueError, match="torn tail.*newline"):
            load_arrival_trace(trace_path)

    def test_torn_tail_record_count_short(self, trace_path):
        lines = trace_path.read_text().splitlines()
        trace_path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="torn tail.*declares 4 records"):
            load_arrival_trace(trace_path)

    def test_corrupt_record_json(self, trace_path):
        lines = trace_path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # chop a record mid-JSON
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="torn or corrupt record"):
            load_arrival_trace(trace_path)

    def test_non_monotonic_timestamps(self, trace_path):
        lines = trace_path.read_text().splitlines()
        second = json.loads(lines[2])
        second["time_s"] = 9.0  # later than every following record
        lines[2] = json.dumps(second, sort_keys=True)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="non-monotonic timestamp"):
            load_arrival_trace(trace_path)

    def test_negative_timestamp(self, trace_path):
        lines = trace_path.read_text().splitlines()
        first = json.loads(lines[1])
        first["time_s"] = -0.5
        lines[1] = json.dumps(first, sort_keys=True)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="negative timestamp"):
            load_arrival_trace(trace_path)

    def test_missing_fields(self, trace_path):
        lines = trace_path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["n_threads"]
        lines[1] = json.dumps(record, sort_keys=True)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="missing fields.*n_threads"):
            load_arrival_trace(trace_path)

    def test_unknown_benchmark(self, trace_path):
        lines = trace_path.read_text().splitlines()
        record = json.loads(lines[1])
        record["benchmark"] = "doom"
        lines[1] = json.dumps(record, sort_keys=True)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unknown benchmark 'doom'"):
            load_arrival_trace(trace_path)

    def test_invalid_qos(self, trace_path):
        lines = trace_path.read_text().splitlines()
        record = json.loads(lines[1])
        record["qos"] = {"priority": 99}
        lines[1] = json.dumps(record, sort_keys=True)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="invalid QoS annotation"):
            load_arrival_trace(trace_path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_arrival_trace(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "checkpoint", "n": 0}) + "\n")
        with pytest.raises(ValueError, match="not an arrival trace"):
            load_arrival_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "repro-arrival-trace", "n": 0, "version": 2}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_arrival_trace(path)

    def test_errors_name_file_and_line(self, trace_path):
        lines = trace_path.read_text().splitlines()
        lines[3] = "not json"
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{trace_path}:4"):
            load_arrival_trace(trace_path)


class TestGoldenReplay:
    """The golden trace-replay test: fig4b's trace cell reproduces a
    direct simulation of the hand-built specs, response time for response
    time."""

    def _direct_result(self, cfg, model):
        sim = IntervalSimulator(
            cfg,
            fig4b._SCHEDULERS["hotpotato"](),
            materialize(_hand_built_specs()),
            ctx=SimContext(cfg, model),
            record_trace=False,
        )
        return sim.run(max_time_s=3.0)

    def test_replay_pins_per_task_response_times(self, trace_path, cfg4):
        cfg = cfg4
        ctx = SimContext(cfg)
        replayed = fig4b._simulate_cell(
            arrival_rate_per_s=123.0,  # ignored by trace replay
            scheduler="hotpotato",
            config=cfg,
            model=ctx.thermal_model,
            n_tasks=999,  # ignored by trace replay
            seed=42,  # ignored by trace replay
            work_scale=3.0,  # ignored by trace replay
            max_time_s=3.0,
            traffic="trace",
            trace_path=trace_path,
        )
        direct = self._direct_result(cfg, ctx.thermal_model)
        assert len(replayed.tasks) == len(_hand_built_specs())
        assert [
            (t.task_id, t.benchmark, t.arrival_s, t.completion_s)
            for t in replayed.tasks
        ] == [
            (t.task_id, t.benchmark, t.arrival_s, t.completion_s)
            for t in direct.tasks
        ]
        # ids follow trace (arrival) order
        assert [t.benchmark for t in replayed.tasks] == [
            "blackscholes",
            "swaptions",
            "canneal",
            "bodytrack",
        ]

    def test_replay_is_deterministic_across_runs(self, trace_path, cfg4):
        ctx = SimContext(cfg4)
        kwargs = dict(
            arrival_rate_per_s=1.0,
            scheduler="qos",
            config=cfg4,
            model=ctx.thermal_model,
            n_tasks=1,
            seed=0,
            work_scale=1.0,
            max_time_s=3.0,
            traffic="trace",
            trace_path=trace_path,
        )
        first = fig4b._simulate_cell(**kwargs)
        again = fig4b._simulate_cell(**kwargs)
        assert [t.response_time_s for t in first.tasks] == [
            t.response_time_s for t in again.tasks
        ]

    def test_trace_traffic_requires_path(self, cfg4):
        ctx = SimContext(cfg4)
        with pytest.raises(ValueError, match="requires trace_path"):
            fig4b._simulate_cell(
                arrival_rate_per_s=1.0,
                scheduler="hotpotato",
                config=cfg4,
                model=ctx.thermal_model,
                n_tasks=1,
                seed=0,
                work_scale=1.0,
                max_time_s=1.0,
                traffic="trace",
            )

"""Shared fixtures.

Expensive artifacts (calibrated thermal models, eigendecompositions) are
session-scoped; tests must treat them as read-only.
"""

import numpy as np
import pytest

from repro import config
from repro.arch import AmdRings, Mesh
from repro.core import PeakTemperatureCalculator
from repro.thermal import ThermalDynamics, calibrated_model


@pytest.fixture(scope="session")
def cfg4():
    """2x2 platform (fast unit tests)."""
    return config.small_test()


@pytest.fixture(scope="session")
def cfg16():
    """4x4 motivational platform (Figs. 1-2)."""
    return config.motivational()


@pytest.fixture(scope="session")
def cfg64():
    """8x8 evaluation platform (Table I)."""
    return config.table1()


@pytest.fixture(scope="session")
def model16(cfg16):
    return calibrated_model(cfg16)


@pytest.fixture(scope="session")
def model64(cfg64):
    return calibrated_model(cfg64)


@pytest.fixture(scope="session")
def dynamics16(model16):
    return ThermalDynamics(model16)


@pytest.fixture(scope="session")
def dynamics64(model64):
    return ThermalDynamics(model64)


@pytest.fixture(scope="session")
def calculator16(dynamics16, cfg16):
    return PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)


@pytest.fixture(scope="session")
def calculator64(dynamics64, cfg64):
    return PeakTemperatureCalculator(dynamics64, cfg64.thermal.ambient_c)


@pytest.fixture(scope="session")
def mesh16():
    return Mesh(4, 4)


@pytest.fixture(scope="session")
def mesh64():
    return Mesh(8, 8)


@pytest.fixture(scope="session")
def rings16(mesh16):
    return AmdRings(mesh16)


@pytest.fixture(scope="session")
def rings64(mesh64):
    return AmdRings(mesh64)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)

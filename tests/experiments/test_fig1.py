"""Fig. 1 architecture sketch."""

import pytest

from repro import config
from repro.experiments import fig1


class TestFig1:
    @pytest.fixture(scope="class")
    def report(self):
        return fig1.run()

    def test_default_is_16_cores(self, report):
        assert report.n_cores == 16

    def test_rotation_cycle_is_center_ring(self, report):
        assert report.rotation_cycle == (5, 6, 9, 10)

    def test_grid_marks_rotation_cores(self, report):
        assert "*C05" in report.grid_ascii
        assert "*C10" in report.grid_ascii
        assert "*C00" not in report.grid_ascii

    def test_every_tile_present(self, report):
        for core in range(16):
            assert f"C{core:02d}" in report.grid_ascii
            assert f"$B{core:02d}" in report.grid_ascii

    def test_render_cycle(self, report):
        text = report.render()
        assert "C05 -> C06 -> C09 -> C10 -> C05" in text
        assert "legend" in text

    def test_other_platform(self):
        report = fig1.run(config.table1())
        assert report.n_cores == 64
        assert len(report.rotation_cycle) == 4

"""Report rendering helpers."""

import pytest

from repro.experiments.reporting import render_bar_chart, render_table


class TestTable:
    def test_alignment(self):
        text = render_table(
            ["name", "value"], [("a", 1.0), ("longer", 22.5)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-" in lines[2]
        assert "22.50" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [("only-one",)])

    def test_float_formatting(self):
        text = render_table(["x"], [(3.14159,)])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_no_title(self):
        text = render_table(["x"], [(1,)])
        assert text.splitlines()[0].startswith("x")


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "no data" in render_bar_chart([], [])

    def test_unit_suffix(self):
        assert "3.00%" in render_bar_chart(["x"], [3.0], unit="%")

    def test_zero_values(self):
        text = render_bar_chart(["x", "y"], [0.0, 0.0])
        assert "0.00" in text

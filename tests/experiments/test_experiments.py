"""Experiment modules: fast structural checks (full runs live in benchmarks/)."""

import pytest

from repro import config
from repro.experiments import fig2, fig3, overhead, table1


class TestTable1:
    def test_rows_match_paper(self):
        report = table1.run()
        as_dict = dict(report.rows)
        assert as_dict["Number of Cores"] == "64"
        assert "4.0 GHz" in as_dict["Core Model"]
        assert as_dict["NoC link width"] == "256 Bit"
        assert as_dict["The area of core"] == "0.81 mm^2"
        assert as_dict["Idle core power"] == "0.3 W"

    def test_render_contains_title(self):
        assert "Table I" in table1.run().render()

    def test_custom_config(self):
        report = table1.run(config.motivational())
        assert dict(report.rows)["Number of Cores"] == "16"


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, model64):
        return fig3.run(model=model64)

    def test_ring_count(self, result):
        assert len(result.rings) == 9

    def test_monotonicity_helpers(self, result):
        assert result.performance_monotone()
        assert result.thermals_monotone()

    def test_render(self, result):
        text = result.render()
        assert "Fig. 3" in text
        assert "ring map" in text

    def test_small_platform(self, model16):
        result = fig3.run(config.motivational(), model=model16)
        assert len(result.rings) == 3


class TestOverhead:
    def test_measures_positive_times(self, model64):
        result = overhead.run(model=model64, n_repetitions=5)
        assert result.peak_eval_us > 0
        assert result.admit_decision_us > 0
        assert result.design_time_s > 0
        assert result.n_cores == 64

    def test_render_mentions_paper_number(self, model64):
        result = overhead.run(model=model64, n_repetitions=5)
        assert "23.76" in result.render()


class TestFig2Structure:
    """One shared (slow-ish) run; the heavy shape checks live in
    benchmarks/test_fig2_motivational.py."""

    @pytest.fixture(scope="class")
    def result(self, model16):
        return fig2.run(model=model16, max_time_s=0.5)

    def test_three_variants(self, result):
        assert set(result.results) == {"none", "tsp-dvfs", "rotation"}

    def test_each_completed_the_task(self, result):
        for outcome in result.results.values():
            assert len(outcome.tasks) == 1

    def test_render(self, result):
        text = result.render()
        assert "paper" in text.lower()
        assert "rotation" in text


class TestCli:
    def test_main_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nope"])

"""PCMig: PCGov plus predictive asynchronous migrations."""

import numpy as np
import pytest

from repro import config
from repro.sched.pcmig import PCMigScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


class TestPredictiveMigration:
    def test_migrates_away_from_predicted_hotspot(self, cfg16, model16):
        """Running the motivational hot workload, PCMig must move threads
        off cores predicted to cross the threshold."""
        sched = PCMigScheduler()
        sim = IntervalSimulator(
            cfg16,
            sched,
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            warm_start_uniform_power_w=3.2,  # hot recent past
        )
        result = sim.run(max_time_s=1.0)
        assert result.peak_temperature_c <= cfg16.thermal.dtm_threshold_c + 1.0

    def test_no_migration_without_thermal_pressure(self, cfg16, model16):
        sched = PCMigScheduler()
        sim = IntervalSimulator(
            cfg16,
            sched,
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        result = sim.run(max_time_s=1.0)
        assert result.migration_count == 0
        assert sched.migration_decisions == 0

    def test_migration_cap_per_interval(self):
        assert PCMigScheduler(guard_band_c=2.0).guard_band_c == 2.0

    def test_stays_thermally_safe_on_full_load(self, cfg64, model64):
        """The paper's baseline property: PCMig never lets the chip cross
        the DTM threshold on the homogeneous full-load campaign."""
        from repro.workload.generator import homogeneous_fill, materialize

        tasks = materialize(homogeneous_fill("swaptions", 64, seed=3))
        sim = IntervalSimulator(
            cfg64,
            PCMigScheduler(),
            tasks,
            ctx=SimContext(cfg64, model64),
        )
        result = sim.run(max_time_s=3.0)
        assert result.dtm_triggers == 0
        assert result.peak_temperature_c < cfg64.thermal.dtm_threshold_c

"""HotPotato scheduler glued into the simulator."""

import numpy as np
import pytest

from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def simulate(cfg, model, tasks, **kwargs):
    sched = HotPotatoScheduler()
    sim = IntervalSimulator(
        cfg, sched, tasks, ctx=SimContext(cfg, model), **kwargs
    )
    return sched, sim


class TestBasics:
    def test_never_uses_dvfs(self, cfg16, model16):
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["x264"], 4, seed=1)]
        )
        sim.run(max_time_s=0.02)
        decision = sched.decide(0.02)
        assert np.all(decision.frequencies == cfg16.dvfs.f_max_hz)

    def test_completes_workload(self, cfg16, model16):
        _, sim = simulate(cfg16, model16, [Task(0, PARSEC["dedup"], 4, seed=1)])
        result = sim.run(max_time_s=2.0)
        assert len(result.tasks) == 1

    def test_rotation_produces_migrations_under_heat(self, cfg16, model16):
        _, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        )
        result = sim.run(max_time_s=1.0)
        assert result.migration_count > 0

    def test_cold_workload_stops_rotating(self, cfg16, model16):
        """Canneal is thermally trivial: after the estimates settle, the
        rotation must stop (Algorithm 2 lines 23-27) and stay stopped."""
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["canneal"], 2, seed=1, work_scale=2.0)]
        )
        sim.run(max_time_s=2.0)
        assert sched.hotpotato.tau_s is None

    def test_thermal_safety_motivational(self, cfg16, model16):
        _, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        )
        result = sim.run(max_time_s=1.0)
        # small transient overshoot is backstopped by DTM; no runaway
        assert result.peak_temperature_c < cfg16.thermal.dtm_threshold_c + 1.5

    def test_queueing_in_open_system(self, cfg16, model16):
        tasks = [
            Task(0, PARSEC["canneal"], 8, seed=1),
            Task(1, PARSEC["canneal"], 8, seed=2),
            Task(2, PARSEC["canneal"], 8, seed=3),  # must queue
        ]
        _, sim = simulate(cfg16, model16, tasks)
        result = sim.run(max_time_s=3.0)
        assert len(result.tasks) == 3
        # the queued task finished last
        assert result.tasks[2].completion_s >= result.tasks[0].completion_s


class TestAdaptivity:
    def test_conservative_estimates_relax(self, cfg16, model16):
        """Arrival estimates are the profile's peak power; after the 10 ms
        history builds, HotPotato's estimates drop to duty-cycled reality."""
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        )
        sim.run(max_time_s=0.04)
        est = [info.power_w for info in sched.hotpotato._threads.values()]
        peak_est = sched.ctx.power_model.max_core_power_w(
            PARSEC["blackscholes"].p_dyn_ref_w
        )
        # at any instant, one thread works and one waits: at least one
        # estimate is far below the peak-power prior
        assert min(est) < 0.7 * peak_est

    def test_preferred_interval_follows_tau(self, cfg16, model16):
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        )
        sim.run(max_time_s=0.01)
        assert sched.preferred_interval_s() == sched.hotpotato.tau_s

"""StaticPlacer and the peak-frequency baseline."""

import numpy as np
import pytest

from repro.arch.amd import amd_vector
from repro.arch.topology import Mesh
from repro.sched.naive import PeakFrequencyScheduler, StaticPlacer
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


@pytest.fixture()
def placer():
    return StaticPlacer(amd_vector(Mesh(4, 4)))


class TestStaticPlacer:
    def test_prefers_low_amd(self, placer):
        task = Task(0, PARSEC["canneal"], 4, seed=1)
        placer.place_task(task)
        # the four centre cores (AMD ring 0) are taken first
        assert sorted(placer.occupied_cores()) == [5, 6, 9, 10]

    def test_placements_map_threads(self, placer):
        task = Task(0, PARSEC["canneal"], 2, seed=1)
        placer.place_task(task)
        placements = placer.placements
        assert set(placements) == {"0.0", "0.1"}
        assert len(set(placements.values())) == 2

    def test_release_frees_cores(self, placer):
        task = Task(0, PARSEC["canneal"], 4, seed=1)
        placer.place_task(task)
        placer.release_task(task)
        assert placer.occupied_cores() == []

    def test_rejects_overfull(self, placer):
        placer.place_task(Task(0, PARSEC["canneal"], 8, seed=1))
        placer.place_task(Task(1, PARSEC["canneal"], 8, seed=2))
        with pytest.raises(ValueError):
            placer.place_task(Task(2, PARSEC["canneal"], 2, seed=3))

    def test_move(self, placer):
        placer.place_task(Task(0, PARSEC["canneal"], 2, seed=1))
        placer.move("0.0", 0)
        assert placer.core_of("0.0") == 0

    def test_move_to_occupied_rejected(self, placer):
        placer.place_task(Task(0, PARSEC["canneal"], 2, seed=1))
        with pytest.raises(ValueError):
            placer.move("0.0", placer.core_of("0.1"))

    def test_core_of_unknown(self, placer):
        with pytest.raises(KeyError):
            placer.core_of("ghost")

    def test_free_cores_sorted_by_amd(self, placer):
        amd = amd_vector(Mesh(4, 4))
        free = placer.free_cores()
        values = [amd[c] for c in free]
        assert values == sorted(values)


class TestPeakFrequencyScheduler:
    def make(self, cfg16, model16):
        from repro.sim.context import SimContext

        sched = PeakFrequencyScheduler()
        sched.attach(SimContext(cfg16, model16))
        return sched

    def test_always_fmax(self, cfg16, model16):
        sched = self.make(cfg16, model16)
        sched.on_task_arrival(Task(0, PARSEC["canneal"], 2, seed=1), 0.0)
        decision = sched.decide(0.0)
        assert np.all(decision.frequencies == cfg16.dvfs.f_max_hz)

    def test_static_placement(self, cfg16, model16):
        sched = self.make(cfg16, model16)
        sched.on_task_arrival(Task(0, PARSEC["canneal"], 2, seed=1), 0.0)
        first = sched.decide(0.0).placements
        later = sched.decide(0.05).placements
        assert first == later

    def test_queues_when_full(self, cfg16, model16):
        sched = self.make(cfg16, model16)
        sched.on_task_arrival(Task(0, PARSEC["canneal"], 8, seed=1), 0.0)
        sched.on_task_arrival(Task(1, PARSEC["canneal"], 8, seed=2), 0.0)
        overflow = Task(2, PARSEC["canneal"], 4, seed=3)
        sched.on_task_arrival(overflow, 0.0)
        assert sched.queue_length == 1
        decision = sched.decide(0.0)
        assert {"2.0", "2.1", "2.2", "2.3"} <= decision.waiting

    def test_queue_drains_fifo(self, cfg16, model16):
        sched = self.make(cfg16, model16)
        first = Task(0, PARSEC["canneal"], 8, seed=1)
        second = Task(1, PARSEC["canneal"], 8, seed=2)
        sched.on_task_arrival(first, 0.0)
        sched.on_task_arrival(second, 0.0)
        queued = Task(2, PARSEC["canneal"], 4, seed=3)
        sched.on_task_arrival(queued, 0.0)
        sched.on_task_complete(first, 0.1)
        assert sched.queue_length == 0
        assert "2.0" in sched.decide(0.1).placements

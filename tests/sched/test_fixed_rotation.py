"""Fixed synchronous rotation scheduler."""

import pytest

from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sim.context import SimContext
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def make(cfg, model, **kwargs):
    sched = FixedRotationScheduler(**kwargs)
    sched.attach(SimContext(cfg, model))
    return sched


class TestRotation:
    def test_defaults_to_center_ring(self, cfg16, model16):
        sched = make(cfg16, model16)
        assert sched._cores == [5, 6, 9, 10]

    def test_rotates_every_tau(self, cfg16, model16):
        sched = make(cfg16, model16, tau_s=0.5e-3)
        sched.on_task_arrival(Task(0, PARSEC["blackscholes"], 2, seed=1), 0.0)
        p0 = sched.decide(0.0).placements
        p1 = sched.decide(0.5e-3).placements
        p4 = sched.decide(2.0e-3).placements
        assert p0 != p1
        assert p0 == p4  # full period of the 4-core set

    def test_threads_visit_every_core(self, cfg16, model16):
        sched = make(cfg16, model16, tau_s=1e-3)
        sched.on_task_arrival(Task(0, PARSEC["blackscholes"], 2, seed=1), 0.0)
        visited = set()
        for epoch in range(4):
            visited.update(sched.decide(epoch * 1e-3).placements.values())
        assert visited == {5, 6, 9, 10}

    def test_release_frees_slots(self, cfg16, model16):
        sched = make(cfg16, model16)
        task = Task(0, PARSEC["blackscholes"], 2, seed=1)
        sched.on_task_arrival(task, 0.0)
        sched.on_task_complete(task, 0.05)
        assert sched.decide(0.05).placements == {}

    def test_queues_overflow(self, cfg16, model16):
        sched = make(cfg16, model16)
        sched.on_task_arrival(Task(0, PARSEC["blackscholes"], 4, seed=1), 0.0)
        sched.on_task_arrival(Task(1, PARSEC["blackscholes"], 2, seed=2), 0.0)
        assert sched.queue_length == 1

    def test_custom_core_set(self, cfg16, model16):
        sched = make(cfg16, model16, cores=(0, 3, 12, 15), tau_s=1e-3)
        sched.on_task_arrival(Task(0, PARSEC["canneal"], 2, seed=1), 0.0)
        assert set(sched.decide(0.0).placements.values()) <= {0, 3, 12, 15}

    def test_invalid_args(self, cfg16, model16):
        with pytest.raises(ValueError):
            FixedRotationScheduler(tau_s=0.0)
        sched = FixedRotationScheduler(cores=(1, 1))
        with pytest.raises(ValueError):
            sched.attach(SimContext(cfg16, model16))

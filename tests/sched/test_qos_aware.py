"""QoS-aware scheduler: priority admission, traffic modes, tau relaxation."""

import pytest

from repro.sched.qos_aware import QoSAwareScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task
from repro.workload.qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    QosSpec,
)


def _task(task_id, n_threads=2, priority=PRIORITY_NORMAL, arrival_s=0.0):
    return Task(
        task_id,
        PARSEC["blackscholes"],
        n_threads,
        arrival_time_s=arrival_s,
        seed=task_id,
        qos=QosSpec(priority=priority),
    )


def _attached(cfg4, **kwargs):
    sched = QoSAwareScheduler(**kwargs)
    sched.attach(SimContext(cfg4))
    return sched


class TestConstruction:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="headroom"):
            QoSAwareScheduler(energy_headroom_c=0.0)
        with pytest.raises(ValueError, match="patience"):
            QoSAwareScheduler(relax_patience=0)

    def test_thresholds_default_to_core_count(self, cfg4):
        sched = _attached(cfg4)
        assert sched.overload_queue_threads == 4
        assert sched.park_queue_threads == 8

    def test_park_below_overload_rejected(self, cfg4):
        with pytest.raises(ValueError, match="park threshold"):
            _attached(cfg4, overload_queue_threads=8, park_queue_threads=4)


class TestTrafficModes:
    def test_mode_follows_queue_pressure(self, cfg4):
        sched = _attached(cfg4)
        sched._update_traffic_mode()
        assert sched._traffic_mode == "normal"
        # two queued 2-thread tasks: at the overload threshold (4)
        sched._queue = [_task(0), _task(1)]
        sched._update_traffic_mode()
        assert sched._traffic_mode == "degraded"
        # four: at the park threshold (8)
        sched._queue = [_task(i) for i in range(4)]
        sched._update_traffic_mode()
        assert sched._traffic_mode == "safe-park"
        sched._queue = []
        sched._update_traffic_mode()
        assert sched._traffic_mode == "normal"

    def test_admissibility_by_mode(self, cfg4):
        sched = _attached(cfg4)
        best_effort = _task(0, priority=PRIORITY_BEST_EFFORT)
        normal = _task(1, priority=PRIORITY_NORMAL)
        critical = _task(2, priority=PRIORITY_CRITICAL)
        sched._traffic_mode = "normal"
        assert all(map(sched._admissible, (best_effort, normal, critical)))
        sched._traffic_mode = "degraded"
        assert not sched._admissible(best_effort)
        assert sched._admissible(normal)
        assert sched._admissible(critical)
        sched._traffic_mode = "safe-park"
        assert not sched._admissible(best_effort)
        assert not sched._admissible(normal)
        assert sched._admissible(critical)

    def test_unannotated_tasks_count_as_normal_priority(self, cfg4):
        sched = _attached(cfg4)
        plain = Task(0, PARSEC["blackscholes"], 2, seed=0)  # no QoS spec
        sched._traffic_mode = "degraded"
        assert sched._admissible(plain)
        sched._traffic_mode = "safe-park"
        assert not sched._admissible(plain)


class TestPriorityAdmission:
    def test_critical_admitted_before_earlier_best_effort(self, cfg4):
        """Priority beats arrival order when the queue drains."""
        sched = _attached(cfg4)
        low = _task(0, n_threads=4, priority=PRIORITY_BEST_EFFORT)
        high = _task(1, n_threads=4, priority=PRIORITY_CRITICAL, arrival_s=0.001)
        # fill the chip so both tasks queue, then free it
        filler = _task(9, n_threads=4)
        sched.on_task_arrival(filler, 0.0)
        sched.on_task_arrival(low, 0.0)
        sched.on_task_arrival(high, 0.001)
        assert sched.queue_length == 2
        sched.on_task_complete(filler, 0.01)
        # only one 4-thread task fits; the critical one must have won
        assert high not in sched._queue
        assert low in sched._queue

    def test_light_load_admits_everything_fifo(self, cfg4):
        sched = _attached(cfg4)
        first = _task(0, n_threads=2)
        second = _task(1, n_threads=2, priority=PRIORITY_BEST_EFFORT)
        sched.on_task_arrival(first, 0.0)
        sched.on_task_arrival(second, 0.001)
        assert sched.queue_length == 0

    def test_parked_tasks_drain_when_pressure_drops(self, cfg4):
        """Soft shedding: parked best-effort tasks are admitted again as
        completions bring the queue back under the threshold."""
        sched = _attached(cfg4)
        filler = _task(9, n_threads=4)
        sched.on_task_arrival(filler, 0.0)
        queued = [
            _task(i, n_threads=2, priority=PRIORITY_BEST_EFFORT)
            for i in range(3)
        ]
        for task in queued:
            sched.on_task_arrival(task, 0.0)
        # 6 queued threads >= overload threshold: best-effort parked
        assert sched._traffic_mode == "degraded"
        assert len(sched._parked_tasks()) == 3
        sched.on_task_complete(filler, 0.01)
        # chip idle + all-parked queue: anti-starvation admits exactly
        # one task; the rest stay parked (pressure is still at the
        # threshold)
        assert sched.queue_length == 2
        assert sched._traffic_mode == "degraded"
        sched.on_task_complete(queued[0], 0.02)
        # now the second admission drops pressure below the threshold,
        # the mode relaxes, and the whole queue drains
        assert sched._traffic_mode == "normal"
        assert sched._parked_tasks() == []
        assert sched.queue_length == 0

    def test_idle_chip_never_starves_an_all_parked_queue(self, cfg4):
        """An all-best-effort queue must not self-lock: its own pressure
        holds the degraded mode, but an idle chip admits the best queued
        task anyway."""
        sched = _attached(cfg4)
        for index in range(4):
            sched.on_task_arrival(
                _task(index, n_threads=2, priority=PRIORITY_BEST_EFFORT),
                0.0,
            )
        # something was admitted despite every task being parkable
        assert sched.queue_length < 4


class TestEnergyRelaxation:
    def test_relaxes_after_sustained_headroom(self, cfg4, rng):
        """On the cool 2x2 chip the observed headroom is large, so after
        ``relax_patience`` decisions the scheduler backs the rotation off
        by one rung and reports it."""
        sched = QoSAwareScheduler(relax_patience=3)
        sim = IntervalSimulator(
            cfg4,
            sched,
            [_task(0, n_threads=2)],
            ctx=SimContext(cfg4),
            record_trace=False,
        )
        result = sim.run(max_time_s=0.05)
        assert sched.hotpotato.tau_bias == 1
        metrics = sched.metrics()
        assert metrics["qos_relax_events"] >= 1.0
        assert metrics["qos_tau_relaxed"] == 1.0
        assert metrics["qos_relaxed_decisions"] >= 1.0

    def test_huge_margin_never_relaxes(self, cfg4):
        """With an unreachable headroom requirement the bias stays 0 and
        the scheduler is exactly HotPotato."""
        sched = QoSAwareScheduler(energy_headroom_c=1000.0)
        sim = IntervalSimulator(
            cfg4,
            sched,
            [_task(0, n_threads=2)],
            ctx=SimContext(cfg4),
            record_trace=False,
        )
        sim.run(max_time_s=0.05)
        assert sched.hotpotato.tau_bias == 0
        assert sched.metrics()["qos_relax_events"] == 0.0

    def test_headroom_dip_resets_bias_immediately(self, cfg4):
        sched = _attached(cfg4, relax_patience=1)
        sched.hotpotato.tau_bias = 1
        sched._headroom_streak = 5
        # monkey-patch the observation to a hot chip
        sched.observed_temperatures = lambda: __import__("numpy").array(
            [69.9] * 4
        )
        sched._update_energy_relaxation(0.0)
        assert sched.hotpotato.tau_bias == 0
        assert sched._headroom_streak == 0


class TestDecisionAnnotations:
    def test_decisions_carry_qos_annotations(self, cfg4):
        sched = QoSAwareScheduler()
        sim = IntervalSimulator(
            cfg4,
            sched,
            [_task(0, n_threads=2)],
            ctx=SimContext(cfg4),
            record_trace=False,
        )
        sim.run(max_time_s=0.01)
        decision = sched.decide(0.01)
        assert "qos_traffic_mode" in decision.annotations
        assert "qos_parked_tasks" in decision.annotations
        assert "qos_tau_relaxed" in decision.annotations

    def test_metrics_extend_hotpotato_counters(self, cfg4):
        sched = _attached(cfg4)
        metrics = sched.metrics()
        for key in (
            "qos_traffic_mode",
            "qos_parked_tasks",
            "qos_parked_peak",
            "qos_shed_decisions",
            "qos_relaxed_decisions",
            "qos_relax_events",
            "qos_tau_relaxed",
        ):
            assert key in metrics
        assert "queue_length" in metrics  # the base counters survive

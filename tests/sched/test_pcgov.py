"""PCGov: TSP-budgeted DVFS."""

import numpy as np
import pytest

from repro.sched.pcgov import PCGovScheduler
from repro.sim.context import SimContext
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def make(cfg, model, **kwargs):
    sched = PCGovScheduler(**kwargs)
    sched.attach(SimContext(cfg, model))
    return sched


class TestGovernor:
    def test_hot_threads_throttled(self, cfg64, model64):
        """A full load of hot threads must be slowed below f_max."""
        sched = make(cfg64, model64)
        for task_id in range(8):
            sched.on_task_arrival(
                Task(task_id, PARSEC["blackscholes"], 8, seed=task_id), 0.0
            )
        decision = sched.decide(0.0)
        occupied = list(decision.placements.values())
        assert np.all(decision.frequencies[occupied] < cfg64.dvfs.f_max_hz)

    def test_cold_threads_run_at_fmax(self, cfg64, model64):
        """Canneal fits the budget at full activity: no throttling."""
        sched = make(cfg64, model64)
        for task_id in range(8):
            sched.on_task_arrival(
                Task(task_id, PARSEC["canneal"], 8, seed=task_id), 0.0
            )
        decision = sched.decide(0.0)
        occupied = list(decision.placements.values())
        assert np.all(decision.frequencies[occupied] == cfg64.dvfs.f_max_hz)

    def test_frequencies_are_quantized(self, cfg64, model64):
        sched = make(cfg64, model64)
        for task_id in range(8):
            sched.on_task_arrival(
                Task(task_id, PARSEC["swaptions"], 8, seed=task_id), 0.0
            )
        decision = sched.decide(0.0)
        levels = set(np.round(np.array(sched.ctx.dvfs.levels) / 1e5))
        for core in decision.placements.values():
            assert round(decision.frequencies[core] / 1e5) in levels

    def test_budget_grows_as_tasks_leave(self, cfg64, model64):
        sched = make(cfg64, model64)
        tasks = [
            Task(task_id, PARSEC["blackscholes"], 8, seed=task_id)
            for task_id in range(8)
        ]
        for task in tasks:
            sched.on_task_arrival(task, 0.0)
        full_budget = sched._budget_w
        for task in tasks[:6]:
            sched.on_task_complete(task, 0.1)
        assert sched._budget_w > full_budget

    def test_governor_profile_is_thermally_safe(self, cfg64, model64):
        """Steady state under profile-governed frequencies never exceeds
        the threshold: the budget is enforced at full activity."""
        sched = make(cfg64, model64)
        for task_id in range(8):
            sched.on_task_arrival(
                Task(task_id, PARSEC["blackscholes"], 8, seed=task_id), 0.0
            )
        decision = sched.decide(0.0)
        power = np.full(64, cfg64.thermal.idle_power_w)
        perf = sched.ctx.perf
        pm = sched.ctx.power_model
        profile = PARSEC["blackscholes"]
        for thread, core in decision.placements.items():
            f = float(decision.frequencies[core])
            compute, stall = perf.activity_fractions(profile, core, f)
            power[core] = pm.core_power_w(profile.p_dyn_ref_w, f, compute, stall)
        from repro.thermal.steady_state import steady_peak

        peak = steady_peak(model64, power, cfg64.thermal.ambient_c)
        assert peak <= cfg64.thermal.dtm_threshold_c + 1e-6

    def test_budget_modes_differ(self, cfg64, model64):
        mapping = make(cfg64, model64, budget_mode="mapping")
        worst = make(cfg64, model64, budget_mode="worst-case")
        task_m = Task(0, PARSEC["blackscholes"], 2, seed=1)
        task_w = Task(0, PARSEC["blackscholes"], 2, seed=1)
        mapping.on_task_arrival(task_m, 0.0)
        worst.on_task_arrival(task_w, 0.0)
        # worst-case budgeting is never more generous
        assert worst._budget_w <= mapping._budget_w + 1e-9

    def test_invalid_modes(self):
        with pytest.raises(ValueError):
            PCGovScheduler(budget_mode="bogus")
        with pytest.raises(ValueError):
            PCGovScheduler(governor="bogus")

    def test_no_migrations_ever(self, cfg64, model64):
        sched = make(cfg64, model64)
        task = Task(0, PARSEC["x264"], 4, seed=1)
        sched.on_task_arrival(task, 0.0)
        placements = [sched.decide(t * 1e-3).placements for t in range(5)]
        assert all(p == placements[0] for p in placements)

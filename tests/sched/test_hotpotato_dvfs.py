"""The unified rotation+DVFS scheduler (future-work extension)."""

import numpy as np
import pytest

from repro.sched.hotpotato_dvfs import HotPotatoDvfsScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.generator import homogeneous_fill, materialize
from repro.workload.task import Task


def simulate(cfg, model, tasks, **kwargs):
    sched = HotPotatoDvfsScheduler()
    sim = IntervalSimulator(
        cfg, sched, tasks, ctx=SimContext(cfg, model), **kwargs
    )
    return sched, sim


class TestThrottleValve:
    def test_cold_workload_never_throttles(self, cfg16, model16):
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["canneal"], 2, seed=1)]
        )
        result = sim.run(max_time_s=1.0)
        assert sched._throttle_f_hz is None
        assert result.dtm_triggers == 0

    def test_overload_throttles_instead_of_dtm(self, cfg16, model16):
        """A full 16-core load of hot threads: the valve must engage and
        keep DTM silent."""
        tasks = materialize(homogeneous_fill("swaptions", 16, seed=2))
        sched, sim = simulate(cfg16, model16, tasks)
        result = sim.run(max_time_s=3.0)
        assert result.dtm_triggers == 0
        assert result.peak_temperature_c < cfg16.thermal.dtm_threshold_c

    def test_throttle_is_quantized_level(self, cfg16, model16):
        tasks = materialize(homogeneous_fill("swaptions", 16, seed=2))
        sched, sim = simulate(cfg16, model16, tasks)
        sim.run(max_time_s=0.05)
        if sched._throttle_f_hz is not None:
            levels = np.array(sched.ctx.dvfs.levels)
            assert np.any(np.isclose(levels, sched._throttle_f_hz))

    def test_power_scale_monotone(self, cfg16, model16):
        sched, _ = simulate(cfg16, model16, [])
        scales = [sched._power_scale(f) for f in sched.ctx.dvfs.levels]
        assert scales == sorted(scales)
        assert scales[-1] == pytest.approx(1.0)

    def test_fmax_referred_estimates(self, cfg16, model16):
        """With a throttle active, the measurement hook must scale the
        observed power back up to f_max-equivalent terms."""
        sched, sim = simulate(
            cfg16, model16, [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        )
        sim.run(max_time_s=0.05)
        sched._throttle_f_hz = 2.0e9
        raw = sched.ctx.thread_power_w("0.0")
        referred = sched._measured_power("0.0")
        assert referred >= raw

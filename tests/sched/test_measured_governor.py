"""The measured-power governor variant of PCGov (ablation option)."""

import numpy as np
import pytest

from repro.sched.pcgov import PCGovScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.generator import homogeneous_fill, materialize


class TestMeasuredGovernor:
    def test_runs_and_completes(self, cfg16, model16):
        tasks = materialize(homogeneous_fill("blackscholes", 16, seed=1))
        sim = IntervalSimulator(
            cfg16,
            PCGovScheduler(governor="measured"),
            tasks,
            ctx=SimContext(cfg16, model16),
            record_trace=False,
        )
        result = sim.run(max_time_s=4.0)
        assert result.tasks

    def test_measured_at_least_as_fast_as_profile(self, cfg16, model16):
        """Budgeting observed (duty-cycled) power can only grant equal or
        higher frequencies than budgeting full-activity power."""
        makespans = {}
        for governor in ("profile", "measured"):
            tasks = materialize(homogeneous_fill("blackscholes", 16, seed=1))
            sim = IntervalSimulator(
                cfg16,
                PCGovScheduler(governor=governor),
                tasks,
                ctx=SimContext(cfg16, model16),
                record_trace=False,
            )
            makespans[governor] = sim.run(max_time_s=4.0).makespan_s
        assert makespans["measured"] <= makespans["profile"] * 1.02

    def test_power_rescaling_helper(self, cfg16, model16):
        sched = PCGovScheduler(governor="measured")
        sched.attach(SimContext(cfg16, model16))
        # rescaling to the same frequency is the identity
        assert sched._power_at(5.0, 3.0e9, 3.0e9) == pytest.approx(5.0)
        # rescaling down reduces the dynamic share but not below idle
        down = sched._power_at(5.0, 4.0e9, 1.0e9)
        assert sched.ctx.power_model.idle_power_w() < down < 5.0
        # idle-only measurement stays at idle
        idle = sched.ctx.power_model.idle_power_w()
        assert sched._power_at(idle, 4.0e9, 1.0e9) == pytest.approx(idle)

"""Migration cost model."""

import pytest

from repro.arch.cache import MigrationCostModel
from repro.arch.topology import Mesh
from repro.config import CacheConfig


@pytest.fixture(scope="module")
def cost16():
    return MigrationCostModel(Mesh(4, 4))


class TestLineCounts:
    def test_private_lines(self, cost16):
        # 32 KB of L1 at 64 B lines
        assert cost16.cache.private_lines == 512

    def test_live_and_dirty_lines(self, cost16):
        assert 0 < cost16.live_lines() <= cost16.cache.private_lines
        assert 0 <= cost16.dirty_lines() <= cost16.live_lines()


class TestPenalty:
    def test_self_migration_free(self, cost16):
        assert cost16.migration_penalty_s(5, 5) == 0.0

    def test_penalty_positive(self, cost16):
        assert cost16.migration_penalty_s(5, 6) > 0.0

    def test_penalty_includes_restart(self, cost16):
        assert cost16.migration_penalty_s(5, 6) >= cost16.restart_overhead_s

    def test_penalty_worse_toward_high_amd(self, cost16):
        """Refill at a high-AMD core costs more (farther banks)."""
        to_center = cost16.migration_penalty_s(0, 5)
        to_corner = cost16.migration_penalty_s(5, 0)
        assert to_corner > to_center

    def test_motivational_rotation_overhead_band(self, cost16):
        """Paper Fig. 2c: 0.5 ms rotation costs blackscholes ~8 %.

        The per-migration penalty on the 16-core centre ring must therefore
        be in the tens of microseconds."""
        penalty = cost16.migration_penalty_s(5, 6)
        overhead = penalty / 0.5e-3
        assert 0.04 < overhead < 0.15

    def test_flush_cheaper_than_refill(self, cost16):
        assert cost16.flush_time_s(5) < cost16.refill_time_s(5)

    def test_dvfs_transition_much_cheaper(self, cost16):
        assert cost16.dvfs_transition_penalty_s() < cost16.migration_penalty_s(5, 6)


class TestConfigSensitivity:
    def test_bigger_private_cache_costs_more(self):
        small = MigrationCostModel(
            Mesh(4, 4), CacheConfig(l1d_size_bytes=8 * 1024)
        )
        big = MigrationCostModel(
            Mesh(4, 4), CacheConfig(l1d_size_bytes=64 * 1024)
        )
        assert big.migration_penalty_s(5, 6) > small.migration_penalty_s(5, 6)

    def test_consume_negative_raises(self, cost16):
        from repro.sim.migration import MigrationAccountant

        accountant = MigrationAccountant(cost16)
        with pytest.raises(ValueError):
            accountant.consume_debt("x", -1.0)

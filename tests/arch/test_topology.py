"""Mesh topology and XY routing."""

import networkx as nx
import pytest

from repro.arch.topology import Mesh


class TestGeometry:
    def test_dimensions(self):
        mesh = Mesh(8, 8)
        assert mesh.n_cores == 64

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 3)

    def test_position_core_at_inverse(self):
        mesh = Mesh(5, 3)
        for core in range(mesh.n_cores):
            assert mesh.core_at(*mesh.position(core)) == core

    def test_out_of_range(self):
        mesh = Mesh(2, 2)
        with pytest.raises(IndexError):
            mesh.position(4)
        with pytest.raises(IndexError):
            mesh.core_at(0, 2)


class TestDistances:
    def test_manhattan_examples(self):
        mesh = Mesh(4, 4)
        assert mesh.manhattan_distance(0, 0) == 0
        assert mesh.manhattan_distance(0, 3) == 3
        assert mesh.manhattan_distance(0, 15) == 6
        assert mesh.manhattan_distance(5, 10) == 2

    def test_symmetry(self):
        mesh = Mesh(4, 3)
        for a in range(mesh.n_cores):
            for b in range(mesh.n_cores):
                assert mesh.manhattan_distance(a, b) == mesh.manhattan_distance(b, a)

    def test_triangle_inequality(self):
        mesh = Mesh(3, 3)
        for a in range(9):
            for b in range(9):
                for c in range(9):
                    assert mesh.manhattan_distance(a, c) <= (
                        mesh.manhattan_distance(a, b) + mesh.manhattan_distance(b, c)
                    )


class TestXYRouting:
    def test_route_endpoints(self):
        mesh = Mesh(4, 4)
        route = mesh.xy_route(0, 15)
        assert route[0] == 0
        assert route[-1] == 15

    def test_route_length_is_minimal(self):
        mesh = Mesh(4, 4)
        for src in range(16):
            for dst in range(16):
                route = mesh.xy_route(src, dst)
                assert len(route) == mesh.manhattan_distance(src, dst) + 1

    def test_route_is_x_first(self):
        mesh = Mesh(4, 4)
        # 0 -> 10: X to column 2 (cores 1, 2), then Y down (6, 10)
        assert mesh.xy_route(0, 10) == [0, 1, 2, 6, 10]

    def test_route_steps_are_adjacent(self):
        mesh = Mesh(5, 4)
        route = mesh.xy_route(0, 19)
        for a, b in zip(route, route[1:]):
            assert mesh.manhattan_distance(a, b) == 1

    def test_self_route(self):
        mesh = Mesh(3, 3)
        assert mesh.xy_route(4, 4) == [4]


class TestNeighborsAndCenter:
    def test_neighbors_match_distance_one(self):
        mesh = Mesh(4, 4)
        for core in range(16):
            expected = [
                o
                for o in range(16)
                if mesh.manhattan_distance(core, o) == 1
            ]
            assert sorted(mesh.neighbors(core)) == sorted(expected)

    def test_center_even_mesh(self):
        assert sorted(Mesh(4, 4).center_cores()) == [5, 6, 9, 10]
        assert sorted(Mesh(8, 8).center_cores()) == [27, 28, 35, 36]

    def test_center_odd_mesh(self):
        assert Mesh(3, 3).center_cores() == [4]

    def test_to_networkx(self):
        mesh = Mesh(4, 4)
        graph = mesh.to_networkx()
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 24
        # NoC shortest paths equal Manhattan distance
        assert (
            nx.shortest_path_length(graph, 0, 15) == mesh.manhattan_distance(0, 15)
        )

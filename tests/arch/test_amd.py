"""AMD values and concentric ring decomposition (paper Fig. 3)."""

import numpy as np
import pytest

from repro.arch.amd import AmdRings, amd_vector, average_manhattan_distance
from repro.arch.topology import Mesh


class TestAmdValues:
    def test_vectorized_matches_direct(self):
        mesh = Mesh(5, 4)
        vec = amd_vector(mesh)
        for core in range(mesh.n_cores):
            assert vec[core] == pytest.approx(
                average_manhattan_distance(mesh, core)
            )

    def test_4x4_values(self):
        """Hand-computed AMDs of the motivational platform."""
        # core 5 (row 1, col 1): row distances sum 4 per column (x4 cols),
        # col distances sum 4 per row (x4 rows) -> 32 / 16 = 2.0
        vec = amd_vector(Mesh(4, 4))
        assert vec[5] == pytest.approx(2.0)  # centre
        assert vec[0] == pytest.approx(3.0)  # corner
        assert vec[1] == pytest.approx(2.5)  # edge

    def test_center_is_minimum(self):
        for w, h in ((4, 4), (8, 8), (5, 3)):
            mesh = Mesh(w, h)
            vec = amd_vector(mesh)
            centers = mesh.center_cores()
            assert np.argmin(vec) in centers

    def test_corner_is_maximum(self):
        mesh = Mesh(8, 8)
        vec = amd_vector(mesh)
        corners = {0, 7, 56, 63}
        assert int(np.argmax(vec)) in corners

    def test_four_fold_symmetry(self):
        mesh = Mesh(8, 8)
        vec = amd_vector(mesh)
        for row in range(8):
            for col in range(8):
                a = vec[mesh.core_at(row, col)]
                assert a == pytest.approx(vec[mesh.core_at(7 - row, col)])
                assert a == pytest.approx(vec[mesh.core_at(row, 7 - col)])
                assert a == pytest.approx(vec[mesh.core_at(col, row)])


class TestRings:
    def test_8x8_ring_structure(self, rings64):
        """The paper's evaluation platform has 9 concentric rings."""
        assert rings64.n_rings == 9
        sizes = [rings64.capacity(i) for i in range(9)]
        assert sum(sizes) == 64
        assert sizes[0] == 4  # the 4 centre cores

    def test_4x4_ring_structure(self, rings16):
        assert rings16.n_rings == 3
        assert list(rings16.ring(0)) == [5, 6, 9, 10]  # Fig. 1 centre cores
        assert rings16.capacity(1) == 8
        assert list(rings16.ring(2)) == [0, 3, 12, 15]  # corners

    def test_ring_values_strictly_increasing(self, rings64):
        values = [rings64.ring_value(i) for i in range(rings64.n_rings)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rings_partition_cores(self, rings64):
        seen = sorted(c for i in range(rings64.n_rings) for c in rings64.ring(i))
        assert seen == list(range(64))

    def test_ring_of_consistent(self, rings64):
        for index in range(rings64.n_rings):
            for core in rings64.ring(index):
                assert rings64.ring_of(core) == index

    def test_cores_in_ring_share_amd(self, rings64):
        for index in range(rings64.n_rings):
            values = rings64.amd[list(rings64.ring(index))]
            assert np.allclose(values, values[0])

    def test_render_ascii_shape(self, rings16):
        art = rings16.render_ascii()
        lines = art.splitlines()
        assert len(lines) == 4
        # centre cells are ring 0
        assert " 0" in lines[1]

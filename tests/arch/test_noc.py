"""NoC latency model (Table I: 1.5 ns/hop, 256-bit links)."""

import pytest

from repro.arch.noc import Noc
from repro.arch.topology import Mesh
from repro.config import NocConfig


@pytest.fixture(scope="module")
def noc():
    return Noc(Mesh(4, 4))


class TestTraversal:
    def test_header_only_latency(self, noc):
        # 0 -> 15 is 6 hops at 1.5 ns
        assert noc.traversal_latency_s(0, 15) == pytest.approx(9.0e-9)

    def test_zero_distance(self, noc):
        assert noc.traversal_latency_s(5, 5) == 0.0

    def test_payload_adds_serialization(self, noc):
        # a 64 B line = 512 bits = 2 flits of 256 bits -> 1 extra flit
        lat_plain = noc.traversal_latency_s(0, 1)
        lat_line = noc.traversal_latency_s(0, 1, payload_bits=512)
        assert lat_line == pytest.approx(lat_plain + 1.5e-9)

    def test_payload_within_one_flit_free(self, noc):
        assert noc.traversal_latency_s(0, 1, payload_bits=256) == pytest.approx(
            noc.traversal_latency_s(0, 1)
        )

    def test_round_trip(self, noc):
        rt = noc.cache_line_round_trip_s(0, 3, line_bits=512)
        one_way = noc.traversal_latency_s(0, 3)
        back = noc.traversal_latency_s(3, 0, payload_bits=512)
        assert rt == pytest.approx(one_way + back)

    def test_average_hop_latency(self, noc):
        assert noc.average_hop_latency_s(4.0) == pytest.approx(6.0e-9)

    def test_custom_config(self):
        noc = Noc(Mesh(2, 2), NocConfig(hop_latency_s=2.0e-9))
        assert noc.traversal_latency_s(0, 3) == pytest.approx(4.0e-9)

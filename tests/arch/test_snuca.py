"""S-NUCA LLC: static mapping and AMD-proportional latency."""

import numpy as np
import pytest

from repro.arch.amd import AmdRings, amd_vector
from repro.arch.snuca import SnucaCache
from repro.arch.topology import Mesh


@pytest.fixture(scope="module")
def snuca():
    return SnucaCache(Mesh(8, 8))


class TestStaticMapping:
    def test_line_interleaving(self, snuca):
        block = snuca.cache.block_size_bytes
        assert snuca.bank_of_address(0) == 0
        assert snuca.bank_of_address(block) == 1
        assert snuca.bank_of_address(64 * block) == 0

    def test_same_line_same_bank(self, snuca):
        block = snuca.cache.block_size_bytes
        assert snuca.bank_of_address(5 * block) == snuca.bank_of_address(
            5 * block + block - 1
        )

    def test_negative_address_rejected(self, snuca):
        with pytest.raises(ValueError):
            snuca.bank_of_address(-1)

    def test_mapping_covers_all_banks(self, snuca):
        block = snuca.cache.block_size_bytes
        banks = {snuca.bank_of_address(i * block) for i in range(64)}
        assert banks == set(range(64))


class TestLatency:
    def test_latency_affine_in_amd(self, snuca):
        """Mean LLC latency must be an affine function of the core's AMD."""
        mesh = snuca.mesh
        amd = amd_vector(mesh)
        lat = snuca.latency_vector_s()
        # fit latency = a * amd + b and verify it is exact
        coeffs = np.polyfit(amd, lat, 1)
        predicted = np.polyval(coeffs, amd)
        assert np.allclose(lat, predicted, atol=1e-15)

    def test_center_fastest(self, snuca):
        lat = snuca.latency_vector_s()
        assert np.argmin(lat) in (27, 28, 35, 36)

    def test_ring_latency_uniform(self, snuca):
        rings = AmdRings(snuca.mesh)
        for index in range(rings.n_rings):
            cores = rings.ring(index)
            lats = [snuca.average_access_latency_s(c) for c in cores]
            assert np.allclose(lats, lats[0])
            assert snuca.ring_latency_s(rings, index) == pytest.approx(lats[0])

    def test_latency_includes_bank_access(self, snuca):
        lat = snuca.latency_vector_s()
        assert np.all(lat >= snuca.noc.config.bank_access_latency_s)

    def test_access_latency_specific_bank(self, snuca):
        near = snuca.access_latency_s(27, 28)
        far = snuca.access_latency_s(27, 63)
        assert far > near

"""Property-based tests (hypothesis) on the core invariants.

Small platforms keep each example fast; deadlines are disabled where an
example legitimately costs tens of milliseconds (linear algebra).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.amd import AmdRings, amd_vector
from repro.arch.topology import Mesh
from repro.core.peak_temperature import (
    PeakTemperatureCalculator,
    rotation_fixed_point,
    rotation_peak_temperature,
)
from repro.core.rotation import RotationGroup, RotationSchedule
from repro.thermal.floorplan import Floorplan
from repro.thermal.matex import ThermalDynamics
from repro.thermal.rc_model import MaterialStack, build_rc_model

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# one small model reused across examples (hypothesis-safe: read-only)
_MODEL = build_rc_model(Floorplan(3, 3), MaterialStack())
_DYN = ThermalDynamics(_MODEL)
_CALC = PeakTemperatureCalculator(_DYN, 45.0)


# -- mesh / AMD properties ---------------------------------------------------


@_SETTINGS
@given(width=st.integers(2, 9), height=st.integers(2, 9))
def test_amd_rings_partition_any_mesh(width, height):
    mesh = Mesh(width, height)
    rings = AmdRings(mesh)
    cores = sorted(c for i in range(rings.n_rings) for c in rings.ring(i))
    assert cores == list(range(mesh.n_cores))
    values = [rings.ring_value(i) for i in range(rings.n_rings)]
    assert values == sorted(values)


@_SETTINGS
@given(width=st.integers(2, 9), height=st.integers(2, 9))
def test_amd_minimum_is_central(width, height):
    mesh = Mesh(width, height)
    amd = amd_vector(mesh)
    assert int(np.argmin(amd)) in mesh.center_cores()


@_SETTINGS
@given(
    width=st.integers(2, 8),
    height=st.integers(2, 8),
    data=st.data(),
)
def test_xy_route_is_minimal_everywhere(width, height, data):
    mesh = Mesh(width, height)
    src = data.draw(st.integers(0, mesh.n_cores - 1))
    dst = data.draw(st.integers(0, mesh.n_cores - 1))
    route = mesh.xy_route(src, dst)
    assert route[0] == src and route[-1] == dst
    assert len(route) == mesh.manhattan_distance(src, dst) + 1
    for a, b in zip(route, route[1:]):
        assert mesh.manhattan_distance(a, b) == 1


# -- thermal-model properties --------------------------------------------------


@_SETTINGS
@given(
    power=st.lists(
        st.floats(0.0, 10.0, allow_nan=False), min_size=9, max_size=9
    ),
    ambient=st.floats(20.0, 60.0, allow_nan=False),
)
def test_steady_state_at_least_ambient(power, ambient):
    temps = _MODEL.steady_state(np.array(power), ambient)
    assert np.all(temps >= ambient - 1e-9)


@_SETTINGS
@given(
    power=st.lists(st.floats(0.0, 8.0, allow_nan=False), min_size=9, max_size=9),
    extra=st.integers(0, 8),
    bump=st.floats(0.1, 5.0, allow_nan=False),
)
def test_steady_state_monotone_in_power(power, extra, bump):
    """Adding power anywhere cannot cool any node."""
    base = _MODEL.steady_state(np.array(power), 45.0)
    more = np.array(power)
    more[extra] += bump
    hotter = _MODEL.steady_state(more, 45.0)
    assert np.all(hotter >= base - 1e-9)


@_SETTINGS
@given(
    power=st.lists(st.floats(0.0, 8.0, allow_nan=False), min_size=9, max_size=9),
    tau=st.floats(1e-4, 5e-2, allow_nan=False),
)
def test_transient_bounded_by_extremes(power, tau):
    """From ambient, a transient never overshoots the steady state."""
    power = np.array(power)
    steady = _MODEL.steady_state(power, 45.0)
    temps = _MODEL.ambient_vector(45.0)
    for _ in range(5):
        temps = _DYN.step(temps, power, 45.0, tau)
        assert np.all(temps <= steady + 1e-6)
        assert np.all(temps >= 45.0 - 1e-6)


@_SETTINGS
@given(
    power=st.lists(st.floats(0.0, 8.0, allow_nan=False), min_size=9, max_size=9),
    split=st.floats(0.1, 0.9),
    tau=st.floats(5e-4, 2e-2, allow_nan=False),
)
def test_step_composition(power, split, tau):
    """Exactness: stepping tau equals stepping split*tau then rest."""
    power = np.array(power)
    start = _MODEL.steady_state(np.roll(power, 1), 45.0)
    one = _DYN.step(start, power, 45.0, tau)
    two = _DYN.step(
        _DYN.step(start, power, 45.0, split * tau), power, 45.0, (1 - split) * tau
    )
    assert np.allclose(one, two, atol=1e-8)


# -- rotation peak-temperature properties ----------------------------------------


@_SETTINGS
@given(
    seq=st.lists(
        st.lists(st.floats(0.0, 8.0, allow_nan=False), min_size=9, max_size=9),
        min_size=1,
        max_size=5,
    ),
    tau=st.floats(2e-4, 5e-3, allow_nan=False),
)
def test_algorithm1_equals_closed_form(seq, tau):
    seq = np.array(seq)
    closed = rotation_fixed_point(_DYN, seq, tau, 45.0)
    alg1 = _CALC.boundary_temperatures(seq, tau)
    assert np.allclose(alg1, closed[:, :9], atol=1e-6)


@_SETTINGS
@given(
    seq=st.lists(
        st.lists(st.floats(0.0, 8.0, allow_nan=False), min_size=9, max_size=9),
        min_size=2,
        max_size=4,
    ),
    tau=st.floats(2e-4, 5e-3, allow_nan=False),
    shift=st.integers(1, 3),
)
def test_peak_invariant_under_cyclic_shift(seq, tau, shift):
    seq = np.array(seq)
    base = rotation_peak_temperature(_DYN, seq, tau, 45.0)
    rolled = rotation_peak_temperature(_DYN, np.roll(seq, shift, axis=0), tau, 45.0)
    assert base == pytest.approx(rolled, abs=1e-6)


@_SETTINGS
@given(
    seq=st.lists(
        st.lists(st.floats(0.3, 8.0, allow_nan=False), min_size=9, max_size=9),
        min_size=2,
        max_size=4,
    ),
    tau=st.floats(2e-4, 5e-3, allow_nan=False),
)
def test_peak_bounded_by_power_extremes(seq, tau):
    """The rotation peak lies between the steady peaks of the epoch-wise
    minimum and maximum power maps."""
    seq = np.array(seq)
    lower = _CALC.steady_peak(np.min(seq, axis=0))
    upper = _CALC.steady_peak(np.max(seq, axis=0))
    peak = rotation_peak_temperature(_DYN, seq, tau, 45.0)
    assert lower - 1e-6 <= peak <= upper + 1e-6


@_SETTINGS
@given(
    power=st.lists(st.floats(0.3, 8.0, allow_nan=False), min_size=9, max_size=9),
    delta=st.integers(1, 4),
    tau=st.floats(2e-4, 5e-3, allow_nan=False),
)
def test_constant_sequence_equals_steady(power, delta, tau):
    seq = np.tile(np.array(power), (delta, 1))
    peak = _CALC.peak(seq, tau)
    assert peak == pytest.approx(_CALC.steady_peak(np.array(power)), abs=1e-5)


# -- rotation-schedule properties ---------------------------------------------------


@_SETTINGS
@given(
    n_threads=st.integers(1, 4),
    epoch=st.integers(0, 30),
)
def test_rotation_placement_is_injective(n_threads, epoch):
    cores = [0, 1, 2, 4]
    slots = [f"t{i}" for i in range(n_threads)] + [None] * (4 - n_threads)
    schedule = RotationSchedule([RotationGroup(cores, slots)], 1e-3)
    placement = schedule.placement_at(epoch)
    assert len(placement) == n_threads
    assert len(set(placement.values())) == n_threads
    assert set(placement.values()) <= set(cores)


@_SETTINGS
@given(n_threads=st.integers(1, 4))
def test_rotation_power_is_conserved(n_threads):
    """Total chip power is identical in every epoch of a rotation."""
    cores = [0, 1, 2, 4]
    slots = [f"t{i}" for i in range(n_threads)] + [None] * (4 - n_threads)
    schedule = RotationSchedule([RotationGroup(cores, slots)], 1e-3)
    powers = {f"t{i}": 2.0 + i for i in range(n_threads)}
    seq = schedule.power_sequence(9, powers, idle_power_w=0.3)
    totals = seq.sum(axis=1)
    assert np.allclose(totals, totals[0])

"""Analysis utilities: heat maps and scheduler comparisons."""

import numpy as np
import pytest

from repro.analysis import (
    PairedOutcome,
    hotspot_report,
    render_heatmap,
    run_pair,
    seed_averaged_speedup,
)


class TestHeatmap:
    def test_ramp_rendering(self):
        temps = np.linspace(45, 80, 16)
        art = render_heatmap(temps, 4, 4)
        lines = art.splitlines()
        assert len(lines) == 5  # 4 rows + legend
        assert lines[0][0] == " "  # coldest glyph
        assert "@" in lines[3]  # hottest glyph

    def test_threshold_marker(self):
        temps = np.full(16, 50.0)
        temps[5] = 75.0
        art = render_heatmap(temps, 4, 4, threshold_c=70.0)
        assert "!" in art.splitlines()[1]

    def test_values_mode(self):
        temps = np.full(4, 55.5)
        art = render_heatmap(temps, 2, 2, show_values=True)
        assert " 55.5" in art

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(5), 2, 2)

    def test_flat_field_does_not_crash(self):
        art = render_heatmap(np.full(4, 45.0), 2, 2)
        assert "45.0" in art

    def test_hotspot_report(self):
        temps = np.full(16, 50.0)
        temps[9] = 80.0
        temps[3] = 70.0
        report = hotspot_report(temps, 4, 4, top_n=2)
        lines = report.splitlines()
        assert "core 9" in lines[0]
        assert "row 2, col 1" in lines[0]
        assert "core 3" in lines[1]

    def test_hotspot_report_validation(self):
        with pytest.raises(ValueError):
            hotspot_report(np.zeros(16), 4, 4, top_n=0)
        with pytest.raises(ValueError):
            hotspot_report(np.zeros(15), 4, 4)


class TestComparisons:
    def test_run_pair(self, cfg16, model16):
        from repro.sched import HotPotatoScheduler, PCMigScheduler
        from repro.sim import SimContext
        from repro.workload import homogeneous_fill

        outcome = run_pair(
            cfg16,
            PCMigScheduler,
            HotPotatoScheduler,
            homogeneous_fill("canneal", 16, seed=1),
            label="canneal",
            shared_ctx=SimContext(cfg16, model16),
            max_time_s=3.0,
            record_trace=False,
        )
        assert isinstance(outcome, PairedOutcome)
        assert outcome.label == "canneal"
        assert abs(outcome.makespan_speedup_pct) < 20.0
        assert outcome.baseline.tasks and outcome.candidate.tasks

    def test_seed_averaged(self, cfg16, model16):
        from repro.sched import PCMigScheduler, PeakFrequencyScheduler
        from repro.sim import SimContext
        from repro.workload import homogeneous_fill

        stats = seed_averaged_speedup(
            cfg16,
            PCMigScheduler,
            PeakFrequencyScheduler,
            lambda seed: homogeneous_fill("canneal", 16, seed=seed),
            seeds=(1, 2),
            shared_ctx=SimContext(cfg16, model16),
            max_time_s=3.0,
        )
        assert set(stats) == {"mean", "std", "min", "max"}
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_metric_validation(self, cfg16):
        from repro.sched import PCMigScheduler

        with pytest.raises(ValueError):
            seed_averaged_speedup(
                cfg16,
                PCMigScheduler,
                PCMigScheduler,
                lambda seed: [],
                seeds=(1,),
                metric="bogus",
            )

"""Phase-structure builders."""

import numpy as np
import pytest

from repro.workload.phases import data_parallel, master_slave, pipeline, streaming


def total(phases):
    return sum(float(np.sum(p)) for p in phases)


class TestMasterSlave:
    def test_conserves_instructions(self):
        phases = master_slave(4, 1e8, serial_fraction=0.4, n_rounds=2)
        assert total(phases) == pytest.approx(1e8)

    def test_phase_count(self):
        # n_rounds x (serial, parallel) + final serial
        assert len(master_slave(2, 1e8, n_rounds=2)) == 5
        assert len(master_slave(2, 1e8, n_rounds=3)) == 7

    def test_serial_phases_master_only(self):
        phases = master_slave(4, 1e8, serial_fraction=0.4, n_rounds=2)
        for serial in (phases[0], phases[2], phases[4]):
            assert serial[0] > 0
            assert np.all(serial[1:] == 0)

    def test_parallel_phases_slaves_only(self):
        phases = master_slave(4, 1e8, n_rounds=2)
        for parallel in (phases[1], phases[3]):
            assert parallel[0] == 0
            assert np.all(parallel[1:] > 0)

    def test_single_thread_does_everything(self):
        phases = master_slave(1, 1e8)
        assert total(phases) == pytest.approx(1e8)
        assert all(p.shape == (1,) for p in phases)

    def test_deterministic(self):
        a = master_slave(4, 1e8, seed=3)
        b = master_slave(4, 1e8, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_serial_fraction_bounds(self):
        with pytest.raises(ValueError):
            master_slave(2, 1e8, serial_fraction=0.0)
        with pytest.raises(ValueError):
            master_slave(2, 1e8, serial_fraction=1.0)


class TestDataParallel:
    def test_conserves_instructions(self):
        assert total(data_parallel(8, 2e8, n_barriers=5)) == pytest.approx(2e8)

    def test_barrier_count(self):
        assert len(data_parallel(8, 1e8, n_barriers=7)) == 7

    def test_imbalance_bounds_shares(self):
        phases = data_parallel(8, 1e8, n_barriers=4, imbalance=0.2, seed=1)
        for phase in phases:
            mean = np.mean(phase)
            assert np.all(phase >= mean * (1 - 0.25))
            assert np.all(phase <= mean * (1 + 0.25))

    def test_zero_imbalance_is_uniform(self):
        phases = data_parallel(8, 1e8, n_barriers=4, imbalance=0.0)
        for phase in phases:
            assert np.allclose(phase, phase[0])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            data_parallel(0, 1e8)
        with pytest.raises(ValueError):
            data_parallel(4, -1.0)
        with pytest.raises(ValueError):
            data_parallel(4, 1e8, n_barriers=0)
        with pytest.raises(ValueError):
            data_parallel(4, 1e8, imbalance=1.0)


class TestPipeline:
    def test_conserves_instructions(self):
        assert total(pipeline(8, 2e8, n_chunks=10)) == pytest.approx(2e8)

    def test_every_stage_has_work(self):
        phases = pipeline(6, 1e8, n_chunks=4, seed=2)
        for phase in phases:
            assert np.all(phase > 0)

    def test_bottleneck_dominates(self):
        phases = pipeline(8, 1e8, n_chunks=6, stage_skew=0.1, bottleneck_boost=1.0)
        for phase in phases:
            # one stage clearly dominates (duty creation)
            assert np.max(phase) > 1.5 * np.median(phase)

    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            pipeline(4, 1e8, stage_skew=1.2)
        with pytest.raises(ValueError):
            pipeline(4, 1e8, bottleneck_boost=-0.1)


class TestStreaming:
    def test_conserves_instructions(self):
        assert total(streaming(8, 2e8)) == pytest.approx(2e8)

    def test_perfectly_balanced(self):
        for phase in streaming(8, 1e8, n_barriers=3):
            assert np.allclose(phase, phase[0])

"""QoS annotations: validation, serialization, and task plumbing."""

import pytest

from repro.workload.benchmarks import PARSEC
from repro.workload.qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    QosSpec,
    priority_of,
)
from repro.workload.task import Task


class TestQosSpecValidation:
    def test_defaults_are_normal_priority_with_no_contracts(self):
        spec = QosSpec()
        assert spec.latency_slo_s is None
        assert spec.deadline_s is None
        assert spec.priority == PRIORITY_NORMAL

    def test_nonpositive_slo_rejected(self):
        with pytest.raises(ValueError, match="SLO"):
            QosSpec(latency_slo_s=0.0)
        with pytest.raises(ValueError, match="SLO"):
            QosSpec(latency_slo_s=-1.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            QosSpec(deadline_s=0.0)
        with pytest.raises(ValueError, match="deadline"):
            QosSpec(deadline_s=-0.5)

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            QosSpec(priority=99)
        with pytest.raises(ValueError, match="priority"):
            QosSpec(priority=-1)

    def test_priority_constants_are_ordered_and_named(self):
        assert PRIORITY_BEST_EFFORT < PRIORITY_NORMAL < PRIORITY_CRITICAL
        assert set(PRIORITY_NAMES) == {
            PRIORITY_BEST_EFFORT,
            PRIORITY_NORMAL,
            PRIORITY_CRITICAL,
        }

    def test_specs_are_frozen_and_comparable(self):
        spec = QosSpec(deadline_s=1.0)
        with pytest.raises(AttributeError):
            spec.deadline_s = 2.0
        assert spec == QosSpec(deadline_s=1.0)
        assert spec != QosSpec(deadline_s=2.0)


class TestQosSpecSerialization:
    def test_round_trip_full_spec(self):
        spec = QosSpec(
            latency_slo_s=0.25, deadline_s=1.5, priority=PRIORITY_CRITICAL
        )
        assert QosSpec.from_dict(spec.to_dict()) == spec

    def test_none_fields_are_omitted(self):
        assert QosSpec().to_dict() == {"priority": PRIORITY_NORMAL}
        assert QosSpec(deadline_s=2.0).to_dict() == {
            "priority": PRIORITY_NORMAL,
            "deadline_s": 2.0,
        }

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown QoS fields.*laatency"):
            QosSpec.from_dict({"priority": 0, "laatency": 1.0})

    def test_from_dict_defaults_missing_priority(self):
        assert QosSpec.from_dict({}).priority == PRIORITY_NORMAL

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError, match="deadline"):
            QosSpec.from_dict({"deadline_s": -1.0})
        with pytest.raises(ValueError, match="priority"):
            QosSpec.from_dict({"priority": 42})


class TestPriorityOf:
    def test_missing_spec_is_normal(self):
        assert priority_of(None) == PRIORITY_NORMAL

    def test_annotated_spec_wins(self):
        assert (
            priority_of(QosSpec(priority=PRIORITY_BEST_EFFORT))
            == PRIORITY_BEST_EFFORT
        )


class TestTaskQosPlumbing:
    def test_task_defaults_to_no_qos(self):
        task = Task(0, PARSEC["blackscholes"], 2, seed=0)
        assert task.qos is None
        assert task.deadline_time_s is None

    def test_absolute_deadline_is_arrival_plus_relative(self):
        task = Task(
            0,
            PARSEC["blackscholes"],
            2,
            arrival_time_s=1.5,
            seed=0,
            qos=QosSpec(deadline_s=0.25),
        )
        assert task.deadline_time_s == pytest.approx(1.75)

    def test_spec_without_deadline_has_no_absolute_deadline(self):
        task = Task(
            0,
            PARSEC["blackscholes"],
            2,
            seed=0,
            qos=QosSpec(latency_slo_s=0.5),
        )
        assert task.deadline_time_s is None

"""Task/thread state machine: barrier-phase progression."""

import numpy as np
import pytest

from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


@pytest.fixture()
def task():
    return Task(7, PARSEC["blackscholes"], 2, arrival_time_s=0.01, seed=1)


class TestConstruction:
    def test_thread_ids(self, task):
        assert [t.thread_id for t in task.threads] == ["7.0", "7.1"]

    def test_initial_state(self, task):
        assert not task.complete
        assert task.phase_index == 0
        assert task.instructions_retired() == 0.0

    def test_work_scale(self):
        base = Task(0, PARSEC["canneal"], 2, seed=1)
        double = Task(0, PARSEC["canneal"], 2, seed=1, work_scale=2.0)
        assert double.total_instructions() == pytest.approx(
            2 * base.total_instructions()
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Task(0, PARSEC["canneal"], 0)
        with pytest.raises(ValueError):
            Task(0, PARSEC["canneal"], 2, work_scale=0.0)


class TestBarrierSemantics:
    def test_master_active_slave_waits_initially(self, task):
        """blackscholes phase 1: master works, slave idles (paper Fig. 2)."""
        assert task.threads[0].active
        assert not task.threads[1].active

    def test_phase_does_not_advance_until_done(self, task):
        task.advance(0, 1.0)
        assert not task.try_advance_phase()
        assert task.phase_index == 0

    def test_phase_advances_at_barrier(self, task):
        task.advance(0, task.remaining_in_phase(0))
        assert task.try_advance_phase()
        assert task.phase_index == 1
        # now the slave works and the master waits
        assert not task.threads[0].active
        assert task.threads[1].active

    def test_advance_caps_at_remaining(self, task):
        remaining = task.remaining_in_phase(0)
        done = task.advance(0, remaining * 10)
        assert done == pytest.approx(remaining)
        assert task.remaining_in_phase(0) == 0.0

    def test_waiting_thread_retires_nothing(self, task):
        assert task.advance(1, 1e6) == 0.0

    def test_negative_advance_rejected(self, task):
        with pytest.raises(ValueError):
            task.advance(0, -1.0)


class TestCompletion:
    def run_to_completion(self, task):
        guard = 0
        while not task.complete:
            for index in range(task.n_threads):
                task.advance(index, 1e9)
            task.try_advance_phase()
            guard += 1
            assert guard < 100

    def test_work_conservation(self, task):
        self.run_to_completion(task)
        assert task.instructions_retired() == pytest.approx(
            task.total_instructions()
        )

    def test_response_time(self, task):
        self.run_to_completion(task)
        assert task.response_time_s is None  # not yet marked
        task.mark_complete(0.08)
        assert task.response_time_s == pytest.approx(0.07)

    def test_mark_complete_requires_completion(self, task):
        with pytest.raises(ValueError):
            task.mark_complete(1.0)

    def test_no_work_after_completion(self, task):
        self.run_to_completion(task)
        assert task.advance(0, 1e6) == 0.0
        assert not task.thread_has_work(0)
        assert not task.try_advance_phase()

    def test_all_benchmark_tasks_complete(self):
        for name in PARSEC:
            task = Task(0, PARSEC[name], 4, seed=2)
            self.run_to_completion(task)
            assert task.complete


class TestEmptyPhaseSkipping:
    def test_zero_work_phases_skipped(self):
        """A task whose first phase has no work must skip it silently."""

        class FakeProfile:
            name = "fake"

            @staticmethod
            def build_phases(n_threads, seed=0):
                return [
                    np.zeros(n_threads),
                    np.full(n_threads, 10.0),
                ]

        task = Task(0, FakeProfile, 2)
        assert task.phase_index == 1
        assert task.threads[0].active

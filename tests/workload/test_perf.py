"""S-NUCA performance model."""

import numpy as np
import pytest

from repro.arch.topology import Mesh
from repro.workload.benchmarks import PARSEC
from repro.workload.perf import PerformanceModel


@pytest.fixture(scope="module")
def perf():
    return PerformanceModel(Mesh(8, 8))


CENTER, CORNER = 27, 0


class TestTiming:
    def test_time_per_instruction_positive(self, perf):
        for profile in PARSEC.values():
            assert perf.time_per_instruction_s(profile, CENTER, 4.0e9) > 0

    def test_memory_bound_suffers_on_high_amd(self, perf):
        """Canneal slows down much more toward the die edge than
        blackscholes (the paper's performance heterogeneity)."""

        def ring_spread(profile):
            center = perf.time_per_instruction_s(profile, CENTER, 4.0e9)
            corner = perf.time_per_instruction_s(profile, CORNER, 4.0e9)
            return corner / center

        assert ring_spread(PARSEC["canneal"]) > ring_spread(PARSEC["blackscholes"])
        assert ring_spread(PARSEC["canneal"]) > 1.15
        assert ring_spread(PARSEC["blackscholes"]) < 1.05

    def test_dvfs_hurts_compute_bound_more(self, perf):
        """Halving frequency nearly halves blackscholes speed but slows
        canneal far less — the paper's core observation."""

        def slowdown(profile):
            fast = perf.time_per_instruction_s(profile, CENTER, 4.0e9)
            slow = perf.time_per_instruction_s(profile, CENTER, 2.0e9)
            return slow / fast

        assert slowdown(PARSEC["blackscholes"]) > 1.9
        assert slowdown(PARSEC["canneal"]) < 1.5
        assert slowdown(PARSEC["canneal"]) < slowdown(PARSEC["blackscholes"]) - 0.4

    def test_instructions_in_inverse(self, perf):
        profile = PARSEC["x264"]
        tpi = perf.time_per_instruction_s(profile, 5, 3.0e9)
        n = perf.instructions_in(1e-3, profile, 5, 3.0e9)
        assert n * tpi == pytest.approx(1e-3)

    def test_invalid_inputs(self, perf):
        profile = PARSEC["dedup"]
        with pytest.raises(ValueError):
            perf.time_per_instruction_s(profile, 0, 0.0)
        with pytest.raises(ValueError):
            perf.instructions_in(-1.0, profile, 0, 1e9)


class TestCpi:
    def test_effective_cpi_above_base(self, perf):
        for profile in PARSEC.values():
            assert perf.effective_cpi(profile, CENTER) >= profile.base_cpi

    def test_canneal_highest_cpi(self, perf):
        """HotPotato sorts by CPI; canneal must rank most memory-bound."""
        cpis = {
            name: perf.effective_cpi(profile, CENTER)
            for name, profile in PARSEC.items()
        }
        assert max(cpis, key=cpis.get) == "canneal"

    def test_cpi_grows_with_amd(self, perf):
        profile = PARSEC["streamcluster"]
        assert perf.effective_cpi(profile, CORNER) > perf.effective_cpi(
            profile, CENTER
        )


class TestActivityFractions:
    def test_fractions_sum_to_one(self, perf):
        for profile in PARSEC.values():
            compute, stall = perf.activity_fractions(profile, CENTER, 4.0e9)
            assert compute + stall == pytest.approx(1.0)
            assert 0 < compute <= 1
            assert 0 <= stall < 1

    def test_stall_share_grows_with_frequency(self, perf):
        """At higher frequency, compute shrinks and the (fixed) memory time
        becomes a larger share."""
        profile = PARSEC["streamcluster"]
        _, stall_slow = perf.activity_fractions(profile, CENTER, 1.0e9)
        _, stall_fast = perf.activity_fractions(profile, CENTER, 4.0e9)
        assert stall_fast > stall_slow

    def test_ring_speed_ratio(self, perf):
        profile = PARSEC["canneal"]
        ratio = perf.ring_speed_ratio(profile, CENTER, CORNER, 4.0e9)
        assert ratio > 1.0

"""Synthetic PARSEC profiles."""

import numpy as np
import pytest

from repro.workload.benchmarks import (
    BENCHMARK_NAMES,
    PARSEC,
    parsec_profile,
)


class TestCatalogue:
    def test_exactly_the_evaluated_eight(self):
        """The paper evaluates these eight benchmarks (Section VI)."""
        assert set(PARSEC) == {
            "blackscholes",
            "bodytrack",
            "canneal",
            "dedup",
            "fluidanimate",
            "streamcluster",
            "swaptions",
            "x264",
        }

    def test_excluded_benchmarks_absent(self):
        for name in ("facesim", "raytrace", "ferret", "freqmine", "vips"):
            assert name not in PARSEC

    def test_lookup(self):
        assert parsec_profile("canneal").name == "canneal"

    def test_lookup_unknown_suggests(self):
        with pytest.raises(KeyError, match="blackscholes"):
            parsec_profile("blackschole")

    def test_names_order_stable(self):
        assert tuple(PARSEC) == BENCHMARK_NAMES


class TestCharacterization:
    def test_canneal_most_memory_bound(self):
        """Canneal's LLC intensity must dominate — it is the benchmark the
        paper reports the smallest gain for (cold, memory-bound)."""
        canneal = PARSEC["canneal"]
        for name, profile in PARSEC.items():
            if name != "canneal":
                assert canneal.llc_misses_per_instr > profile.llc_misses_per_instr

    def test_canneal_coldest(self):
        canneal = PARSEC["canneal"]
        for name, profile in PARSEC.items():
            if name != "canneal":
                assert canneal.p_dyn_ref_w < profile.p_dyn_ref_w

    def test_compute_bound_benchmarks_hot(self):
        """blackscholes and swaptions: hottest, least memory-bound."""
        for name in ("blackscholes", "swaptions"):
            profile = PARSEC[name]
            assert profile.p_dyn_ref_w > 6.0
            assert profile.llc_misses_per_instr < 0.001

    def test_all_profiles_positive(self):
        for profile in PARSEC.values():
            assert profile.p_dyn_ref_w > 0
            assert profile.base_cpi > 0
            assert profile.llc_misses_per_instr >= 0
            assert profile.work_per_thread_instr > 0


class TestPhaseGeneration:
    @pytest.mark.parametrize("name", sorted(PARSEC))
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_phases_conserve_work(self, name, n_threads):
        profile = PARSEC[name]
        phases = profile.build_phases(n_threads, seed=5)
        total = sum(float(np.sum(p)) for p in phases)
        assert total == pytest.approx(profile.total_instructions(n_threads))

    @pytest.mark.parametrize("name", sorted(PARSEC))
    def test_phases_shape(self, name):
        phases = PARSEC[name].build_phases(4, seed=1)
        assert all(p.shape == (4,) for p in phases)
        assert all(np.all(p >= 0) for p in phases)

    def test_weak_scaling(self):
        profile = PARSEC["swaptions"]
        assert profile.total_instructions(8) == pytest.approx(
            4 * profile.total_instructions(2)
        )

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            PARSEC["canneal"].total_instructions(0)

"""Workload generators (paper's two evaluation campaigns)."""

import numpy as np
import pytest

from repro.workload.generator import (
    TaskSpec,
    homogeneous_fill,
    materialize,
    poisson_arrivals,
    random_mixed_workload,
)
from repro.workload.benchmarks import PARSEC


class TestHomogeneousFill:
    def test_fills_exactly(self):
        for n_cores in (16, 64):
            specs = homogeneous_fill("swaptions", n_cores, seed=1)
            assert sum(s.n_threads for s in specs) == n_cores

    def test_single_benchmark(self):
        specs = homogeneous_fill("canneal", 64, seed=2)
        assert all(s.profile.name == "canneal" for s in specs)

    def test_vari_sized(self):
        specs = homogeneous_fill("x264", 64, seed=3)
        assert len({s.n_threads for s in specs}) > 1

    def test_deterministic(self):
        a = homogeneous_fill("dedup", 64, seed=4)
        b = homogeneous_fill("dedup", 64, seed=4)
        assert [s.n_threads for s in a] == [s.n_threads for s in b]
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            homogeneous_fill("nope", 64)

    def test_work_scale_propagates(self):
        specs = homogeneous_fill("dedup", 16, seed=1, work_scale=2.5)
        assert all(s.work_scale == 2.5 for s in specs)


class TestRandomMix:
    def test_default_is_20_tasks(self):
        assert len(random_mixed_workload(seed=5)) == 20

    def test_draws_from_parsec(self):
        specs = random_mixed_workload(50, seed=6)
        assert {s.profile.name for s in specs} <= set(PARSEC)
        assert len({s.profile.name for s in specs}) > 3

    def test_thread_counts_from_options(self):
        for spec in random_mixed_workload(30, seed=7):
            assert spec.n_threads in spec.profile.thread_options

    def test_benchmark_restriction(self):
        specs = random_mixed_workload(10, seed=8, benchmarks=["canneal"])
        assert all(s.profile.name == "canneal" for s in specs)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            random_mixed_workload(0)


class TestPoissonArrivals:
    def test_arrivals_sorted_positive(self):
        specs = poisson_arrivals(random_mixed_workload(20, seed=1), 10.0, seed=2)
        times = [s.arrival_time_s for s in specs]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_gap_matches_rate(self):
        specs = poisson_arrivals(
            random_mixed_workload(2000, seed=3), 50.0, seed=4
        )
        times = np.array([s.arrival_time_s for s in specs])
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(1 / 50.0, rel=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals([], 0.0)


class TestMaterialize:
    def test_ids_follow_arrival_order(self):
        specs = poisson_arrivals(random_mixed_workload(10, seed=9), 20.0, seed=10)
        tasks = materialize(specs)
        assert [t.task_id for t in tasks] == list(range(10))
        arrivals = [t.arrival_time_s for t in tasks]
        assert arrivals == sorted(arrivals)

    def test_spec_materialize(self):
        spec = TaskSpec(PARSEC["canneal"], 4, 0.5, seed=11)
        task = spec.materialize(3)
        assert task.task_id == 3
        assert task.n_threads == 4
        assert task.arrival_time_s == 0.5

"""Workload generators (paper's two evaluation campaigns)."""

import numpy as np
import pytest

from repro.workload.generator import (
    TaskSpec,
    homogeneous_fill,
    materialize,
    poisson_arrivals,
    random_mixed_workload,
)
from repro.workload.benchmarks import PARSEC


class TestHomogeneousFill:
    def test_fills_exactly(self):
        for n_cores in (16, 64):
            specs = homogeneous_fill("swaptions", n_cores, seed=1)
            assert sum(s.n_threads for s in specs) == n_cores

    def test_single_benchmark(self):
        specs = homogeneous_fill("canneal", 64, seed=2)
        assert all(s.profile.name == "canneal" for s in specs)

    def test_vari_sized(self):
        specs = homogeneous_fill("x264", 64, seed=3)
        assert len({s.n_threads for s in specs}) > 1

    def test_deterministic(self):
        a = homogeneous_fill("dedup", 64, seed=4)
        b = homogeneous_fill("dedup", 64, seed=4)
        assert [s.n_threads for s in a] == [s.n_threads for s in b]
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            homogeneous_fill("nope", 64)

    def test_work_scale_propagates(self):
        specs = homogeneous_fill("dedup", 16, seed=1, work_scale=2.5)
        assert all(s.work_scale == 2.5 for s in specs)


class TestRandomMix:
    def test_default_is_20_tasks(self):
        assert len(random_mixed_workload(seed=5)) == 20

    def test_draws_from_parsec(self):
        specs = random_mixed_workload(50, seed=6)
        assert {s.profile.name for s in specs} <= set(PARSEC)
        assert len({s.profile.name for s in specs}) > 3

    def test_thread_counts_from_options(self):
        for spec in random_mixed_workload(30, seed=7):
            assert spec.n_threads in spec.profile.thread_options

    def test_benchmark_restriction(self):
        specs = random_mixed_workload(10, seed=8, benchmarks=["canneal"])
        assert all(s.profile.name == "canneal" for s in specs)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            random_mixed_workload(0)


class TestPoissonArrivals:
    def test_arrivals_sorted_positive(self):
        specs = poisson_arrivals(random_mixed_workload(20, seed=1), 10.0, seed=2)
        times = [s.arrival_time_s for s in specs]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_gap_matches_rate(self):
        specs = poisson_arrivals(
            random_mixed_workload(2000, seed=3), 50.0, seed=4
        )
        times = np.array([s.arrival_time_s for s in specs])
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(1 / 50.0, rel=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals([], 0.0)


class TestMaterialize:
    def test_ids_follow_arrival_order(self):
        specs = poisson_arrivals(random_mixed_workload(10, seed=9), 20.0, seed=10)
        tasks = materialize(specs)
        assert [t.task_id for t in tasks] == list(range(10))
        arrivals = [t.arrival_time_s for t in tasks]
        assert arrivals == sorted(arrivals)

    def test_spec_materialize(self):
        spec = TaskSpec(PARSEC["canneal"], 4, 0.5, seed=11)
        task = spec.materialize(3)
        assert task.task_id == 3
        assert task.n_threads == 4
        assert task.arrival_time_s == 0.5


class TestArrivalOrderingContract:
    """Regression: ids must follow *final* arrival order (docs/traffic.md).

    Every arrival-assignment helper returns specs sorted by assigned
    arrival time so that list position == the sequential id
    ``materialize`` hands out.  Cumulative Poisson gaps are monotone by
    construction, but composed processes (flash-crowd overlays) are not —
    the explicit sort is what keeps the pairing stable either way.
    """

    def test_out_of_order_specs_get_ids_by_arrival(self):
        specs = [
            TaskSpec(PARSEC["canneal"], 1, 0.3, seed=0),
            TaskSpec(PARSEC["swaptions"], 2, 0.1, seed=1),
            TaskSpec(PARSEC["blackscholes"], 1, 0.2, seed=2),
        ]
        tasks = materialize(specs)
        assert [t.task_id for t in tasks] == [0, 1, 2]
        assert [t.profile.name for t in tasks] == [
            "swaptions",
            "blackscholes",
            "canneal",
        ]

    def test_poisson_arrivals_position_equals_materialized_id(self):
        specs = poisson_arrivals(
            random_mixed_workload(15, seed=6), 30.0, seed=7
        )
        tasks = materialize(specs)
        for position, (spec, task) in enumerate(zip(specs, tasks)):
            assert task.task_id == position
            assert task.arrival_time_s == spec.arrival_time_s
            assert task.profile.name == spec.profile.name
            assert task.n_threads == spec.n_threads

    def test_composed_process_keeps_the_contract(self):
        """assign_arrivals sorts even when the raw draw order is not the
        time order (flash-crowd burst arrivals interleave the base)."""
        from repro.traffic import Burst, FlashCrowd, PoissonProcess
        from repro.traffic import assign_arrivals

        process = FlashCrowd(
            PoissonProcess(10.0),
            (Burst(start_s=0.01, duration_s=0.05, rate_per_s=500.0),),
        )
        specs = assign_arrivals(
            random_mixed_workload(12, seed=8), process, seed=9
        )
        tasks = materialize(specs)
        assert [t.task_id for t in tasks] == list(range(12))
        assert [t.arrival_time_s for t in tasks] == [
            s.arrival_time_s for s in specs
        ]

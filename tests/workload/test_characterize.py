"""Analytic workload characterization."""

import pytest

from repro.thermal.calibrate import UNIFORM_SUSTAINABLE_POWER_W
from repro.workload.benchmarks import PARSEC
from repro.workload.characterize import (
    BenchmarkCharacter,
    characterization_table,
    characterize,
    duty_cycle,
)


class TestDutyCycle:
    def test_bounds(self):
        for name, profile in PARSEC.items():
            duty = duty_cycle(profile, 8, seed=1)
            assert 0.0 < duty <= 1.0, name

    def test_streaming_is_full_duty(self):
        """Perfectly balanced phases: everyone computes all the time."""
        assert duty_cycle(PARSEC["canneal"], 8) == pytest.approx(1.0)
        assert duty_cycle(PARSEC["streamcluster"], 8) == pytest.approx(1.0)

    def test_master_slave_is_low_duty(self):
        """blackscholes' 2-thread instance serializes master/slave work."""
        assert duty_cycle(PARSEC["blackscholes"], 2, seed=1) < 0.7

    def test_imbalanced_below_one(self):
        for name in ("swaptions", "bodytrack", "x264", "dedup"):
            assert duty_cycle(PARSEC[name], 8, seed=1) < 0.95, name

    def test_single_thread_full_duty(self):
        assert duty_cycle(PARSEC["swaptions"], 1) == pytest.approx(1.0)


class TestCharacterize:
    def test_average_below_burst(self):
        for name, profile in PARSEC.items():
            char = characterize(profile)
            assert char.average_power_w <= char.burst_power_w + 1e-9, name

    def test_canneal_is_thermally_trivial(self):
        char = characterize(PARSEC["canneal"])
        assert char.regime(UNIFORM_SUSTAINABLE_POWER_W, 4.5) == "thermally-trivial"

    def test_hot_benchmarks_exceed_budget_in_bursts(self):
        """The regime Fig. 4(a) exercises: bursts above the budget so PCMig
        throttles, averages near/below sustainable so rotation wins."""
        for name in ("blackscholes", "swaptions", "bodytrack", "x264"):
            char = characterize(PARSEC[name])
            assert char.burst_power_w > 4.5, name
            assert char.average_power_w < 5.4, name

    def test_stall_fraction_ordering(self):
        assert (
            characterize(PARSEC["canneal"]).stall_fraction
            > characterize(PARSEC["blackscholes"]).stall_fraction
        )

    def test_table_covers_all(self):
        table = characterization_table()
        assert set(table) == set(PARSEC)
        assert all(isinstance(c, BenchmarkCharacter) for c in table.values())

    def test_regime_labels(self):
        char = BenchmarkCharacter("x", burst_power_w=8.0, duty=0.5,
                                  average_power_w=4.0, stall_fraction=0.1)
        assert char.regime(sustainable_w=4.5, budget_w=4.5) == "rotation-wins"
        assert char.regime(sustainable_w=3.0, budget_w=4.5) == "overloaded"
        cold = BenchmarkCharacter("y", 2.0, 1.0, 2.0, 0.5)
        assert cold.regime(4.5, 4.5) == "thermally-trivial"

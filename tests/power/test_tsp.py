"""Thermal Safe Power budgeting."""

import numpy as np
import pytest

from repro.power.tsp import Tsp


@pytest.fixture(scope="module")
def tsp64(model64):
    return Tsp(model64, ambient_c=45.0, threshold_c=70.0, idle_power_w=0.3)


class TestMappingBudget:
    def test_budget_saturates_threshold(self, tsp64):
        """Running every active core at exactly the budget lands exactly on
        the threshold."""
        active = list(range(0, 64, 2))
        budget = tsp64.budget_for_mapping(active)
        peak = tsp64.steady_peak_for_budget(active, budget)
        assert peak == pytest.approx(70.0, abs=1e-6)

    def test_full_load_budget_equals_uniform_sustainable(self, tsp64):
        from repro.thermal.calibrate import UNIFORM_SUSTAINABLE_POWER_W

        budget = tsp64.budget_for_mapping(range(64))
        # idle power == part of the uniform anchor? full occupancy has no
        # idle cores, so this is exactly the calibration anchor
        assert budget == pytest.approx(UNIFORM_SUSTAINABLE_POWER_W, abs=0.01)

    def test_fewer_active_cores_higher_budget(self, tsp64):
        few = tsp64.budget_for_mapping([27, 28])
        many = tsp64.budget_for_mapping(range(64))
        assert few > many

    def test_edge_mapping_gets_higher_budget(self, tsp64):
        """Corner placements are thermally cheaper than centre placements."""
        center = tsp64.budget_for_mapping([27, 28, 35, 36])
        corners = tsp64.budget_for_mapping([0, 7, 56, 63])
        assert corners > center

    def test_empty_mapping_rejected(self, tsp64):
        with pytest.raises(ValueError):
            tsp64.budget_for_mapping([])

    def test_threshold_below_ambient_rejected(self, model64):
        with pytest.raises(ValueError):
            Tsp(model64, 45.0, 40.0, 0.3)


class TestWorstCase:
    def test_worst_case_not_above_any_mapping(self, tsp64):
        """The worst-case budget must be <= the budget of the greedy worst
        mapping by construction, and <= typical mappings."""
        n_active = 8
        wc = tsp64.worst_case_budget(n_active)
        mapping = tsp64.worst_case_mapping(n_active)
        assert wc == pytest.approx(tsp64.budget_for_mapping(mapping))
        # a spread-out mapping can only allow more power
        spread = [0, 7, 56, 63, 3, 31, 32, 60]
        assert tsp64.budget_for_mapping(spread) >= wc

    def test_worst_case_mapping_is_clustered(self, tsp64):
        """The greedy worst mapping clusters around the hottest core."""
        mapping = tsp64.worst_case_mapping(4)
        assert len(set(mapping)) == 4
        rows = [c // 8 for c in mapping]
        cols = [c % 8 for c in mapping]
        assert max(rows) - min(rows) <= 2
        assert max(cols) - min(cols) <= 2

    def test_worst_case_monotone_decreasing(self, tsp64):
        budgets = [tsp64.worst_case_budget(n) for n in (1, 4, 16, 64)]
        assert all(b >= a - 1e-12 for a, b in zip(budgets[1:], budgets))

    def test_worst_case_bounds(self, tsp64):
        with pytest.raises(ValueError):
            tsp64.worst_case_budget(0)
        with pytest.raises(ValueError):
            tsp64.worst_case_budget(65)

    def test_worst_case_cached(self, tsp64):
        assert tsp64.worst_case_budget(8) == tsp64.worst_case_budget(8)

"""DVFS controller: quantization and budget inversion."""

import pytest

from repro.power.dvfs import DvfsController


@pytest.fixture(scope="module")
def dvfs():
    return DvfsController()


class TestQuantization:
    def test_exact_level(self, dvfs):
        assert dvfs.quantize(2.5e9) == pytest.approx(2.5e9)

    def test_rounds_down(self, dvfs):
        assert dvfs.quantize(2.55e9) == pytest.approx(2.5e9)

    def test_clamps(self, dvfs):
        assert dvfs.quantize(0.2e9) == pytest.approx(1.0e9)
        assert dvfs.quantize(9.0e9) == pytest.approx(4.0e9)

    def test_step_down_up(self, dvfs):
        assert dvfs.step_down(2.0e9) == pytest.approx(1.9e9)
        assert dvfs.step_up(2.0e9) == pytest.approx(2.1e9)
        assert dvfs.step_down(1.0e9) == pytest.approx(1.0e9)  # clamped
        assert dvfs.step_up(4.0e9) == pytest.approx(4.0e9)

    def test_multi_step(self, dvfs):
        assert dvfs.step_down(3.0e9, steps=5) == pytest.approx(2.5e9)

    def test_step_rejects_off_grid(self, dvfs):
        with pytest.raises(ValueError):
            dvfs.step_down(2.05e9)


class TestBudgetInversion:
    def test_generous_budget_gives_fmax(self, dvfs):
        assert dvfs.frequency_for_budget(100.0, 7.7) == pytest.approx(4.0e9)

    def test_tiny_budget_gives_fmin(self, dvfs):
        assert dvfs.frequency_for_budget(0.01, 7.7) == pytest.approx(1.0e9)

    def test_result_respects_budget(self, dvfs):
        budget = 3.0
        f = dvfs.frequency_for_budget(budget, 7.7)
        power = dvfs.power_model.core_power_w(7.7, f, 1.0)
        assert power <= budget
        # and one step up would violate it
        f_up = dvfs.step_up(f)
        if f_up > f:
            assert dvfs.power_model.core_power_w(7.7, f_up, 1.0) > budget

    def test_monotone_in_budget(self, dvfs):
        budgets = [1.0, 2.0, 3.0, 5.0, 8.0]
        freqs = [dvfs.frequency_for_budget(b, 7.7) for b in budgets]
        assert freqs == sorted(freqs)

    def test_cooler_thread_gets_higher_frequency(self, dvfs):
        hot = dvfs.frequency_for_budget(3.0, 7.7)
        cold = dvfs.frequency_for_budget(3.0, 1.9)
        assert cold >= hot

"""Core power model."""

import pytest

from repro.config import DvfsConfig, ThermalConfig
from repro.power.model import PowerModel, PowerModelParams


@pytest.fixture(scope="module")
def pm():
    return PowerModel()


class TestDynamicPower:
    def test_reference_point(self, pm):
        """At f_max / full activity the dynamic power equals the profile's
        reference value."""
        assert pm.dynamic_power_w(7.7, 4.0e9, 1.0) == pytest.approx(7.7)

    def test_scales_superlinearly(self, pm):
        """P(f) ~ f V(f)^2: halving frequency cuts power by more than half."""
        full = pm.dynamic_power_w(7.7, 4.0e9)
        half = pm.dynamic_power_w(7.7, 2.0e9)
        assert half < full / 2

    def test_monotone_in_frequency(self, pm):
        freqs = DvfsConfig().frequencies()
        powers = [pm.dynamic_power_w(5.0, f) for f in freqs]
        assert powers == sorted(powers)

    def test_activity_scaling(self, pm):
        assert pm.dynamic_power_w(6.0, 4.0e9, 0.5) == pytest.approx(3.0)

    def test_rejects_bad_activity(self, pm):
        with pytest.raises(ValueError):
            pm.dynamic_power_w(6.0, 4.0e9, 1.5)


class TestIdlePower:
    def test_idle_power_at_nominal(self, pm):
        """The paper's idle power: 0.3 W."""
        assert pm.idle_power_w() == pytest.approx(0.3)
        assert pm.idle_power_w(4.0e9) == pytest.approx(0.3)

    def test_idle_power_drops_with_voltage(self, pm):
        assert pm.idle_power_w(1.0e9) < pm.idle_power_w(4.0e9)

    def test_leakage_temperature_off_by_default(self, pm):
        assert pm.idle_power_w(4.0e9, 45.0) == pytest.approx(
            pm.idle_power_w(4.0e9, 95.0)
        )

    def test_leakage_temperature_coefficient(self):
        pm = PowerModel(params=PowerModelParams(leakage_temp_coefficient=0.01))
        assert pm.idle_power_w(4.0e9, 95.0) > pm.idle_power_w(4.0e9, 45.0)


class TestCorePower:
    def test_hot_thread_total(self, pm):
        """A blackscholes-class thread totals ~8 W at f_max (calibration)."""
        assert pm.core_power_w(7.7, 4.0e9, 1.0) == pytest.approx(8.0)

    def test_stall_burns_less_than_compute(self, pm):
        computing = pm.core_power_w(6.0, 4.0e9, 1.0, 0.0)
        stalled = pm.core_power_w(6.0, 4.0e9, 0.0, 1.0)
        assert stalled < computing
        assert stalled > pm.idle_power_w(4.0e9)

    def test_fraction_validation(self, pm):
        with pytest.raises(ValueError):
            pm.core_power_w(6.0, 4.0e9, 0.8, 0.3)
        with pytest.raises(ValueError):
            pm.core_power_w(6.0, 4.0e9, -0.1)

    def test_waiting_thread_is_idle(self, pm):
        assert pm.core_power_w(6.0, 4.0e9, 0.0, 0.0) == pytest.approx(
            pm.idle_power_w(4.0e9)
        )

    def test_max_core_power(self, pm):
        assert pm.max_core_power_w(7.7) == pytest.approx(8.0)

"""Calibration anchors (the published operating points)."""

import numpy as np
import pytest

from repro import config
from repro.thermal.calibrate import (
    HOT_THREAD_POWER_W,
    MOTIVATIONAL_PEAK_C,
    UNIFORM_SUSTAINABLE_POWER_W,
    calibrated_model,
    calibrated_stack,
)
from repro.thermal.steady_state import steady_peak, sustainable_uniform_power


class TestAnchors:
    def test_motivational_hotspot(self, model16, cfg16):
        """One hot thread on core 5 of the 16-core chip -> ~80 degC
        (the Fig. 2a operating point)."""
        power = np.full(16, cfg16.thermal.idle_power_w)
        power[5] = HOT_THREAD_POWER_W
        peak = steady_peak(model16, power, cfg16.thermal.ambient_c)
        assert peak == pytest.approx(MOTIVATIONAL_PEAK_C, abs=0.05)

    def test_uniform_sustainability(self, model64, cfg64):
        budget = sustainable_uniform_power(
            model64, cfg64.thermal.ambient_c, cfg64.thermal.dtm_threshold_c
        )
        assert budget == pytest.approx(UNIFORM_SUSTAINABLE_POWER_W, abs=0.01)

    def test_hotspot_exceeds_threshold(self, cfg16):
        """The motivational scenario must violate the 70 degC threshold —
        otherwise Fig. 2a would need no management at all."""
        assert MOTIVATIONAL_PEAK_C > cfg16.thermal.dtm_threshold_c

    def test_rotation_average_is_sustainable(self, model16, cfg16):
        """Rotating the hot thread over the 4 centre cores must land below
        the threshold (Fig. 2c)."""
        avg = (HOT_THREAD_POWER_W + 3 * cfg16.thermal.idle_power_w) / 4
        power = np.full(16, cfg16.thermal.idle_power_w)
        for core in (5, 6, 9, 10):
            power[core] = avg
        peak = steady_peak(model16, power, cfg16.thermal.ambient_c)
        assert peak < cfg16.thermal.dtm_threshold_c


class TestStackProperties:
    def test_deterministic(self):
        assert calibrated_stack() == calibrated_stack()

    def test_knobs_positive(self):
        stack = calibrated_stack()
        assert stack.vertical_scale > 0
        assert stack.lateral_scale > 0

    def test_same_stack_for_both_platforms(self):
        """16- and 64-core chips share one material stack (same process)."""
        a = calibrated_stack(config.motivational())
        b = calibrated_stack(config.table1())
        assert a == b

    def test_edge_thermal_advantage(self, model64, cfg64):
        """High-AMD (edge) cores must run cooler than low-AMD (centre)
        cores for the same power — the paper's ring trade-off."""
        idle = cfg64.thermal.idle_power_w
        power = np.full(64, idle)
        power[27] = HOT_THREAD_POWER_W  # centre
        center = steady_peak(model64, power, cfg64.thermal.ambient_c)
        power = np.full(64, idle)
        power[0] = HOT_THREAD_POWER_W  # corner
        corner = steady_peak(model64, power, cfg64.thermal.ambient_c)
        assert center > corner + 1.0

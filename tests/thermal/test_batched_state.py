"""Byte-identity of BatchedSpectralState against S independent states.

The batched sweep engine's whole contract is that fusing the thermal hot
loop changes *nothing* — not "agrees to 1e-9" but bit-equal coefficient
and temperature arrays.  Every comparison here is ``tobytes()`` equality.
"""

import numpy as np
import pytest

from repro.thermal import (
    BatchedSpectralState,
    SpectralThermalState,
    ThermalDynamics,
    calibrated_model,
)

S = 5  # batch width used throughout
TAU_LADDER = (0.004, 0.002, 0.001, 0.0005)


@pytest.fixture(scope="module")
def dynamics(dynamics16):
    return dynamics16


def _mixed_trace(dynamics, rng, n_steps):
    """Per-cell (power, tau) schedules exercising the full tau ladder."""
    n = dynamics.model.n_cores
    powers = rng.uniform(0.2, 9.0, size=(n_steps, S, n))
    taus = np.array(
        [[TAU_LADDER[rng.integers(len(TAU_LADDER))] for _ in range(S)]
         for _ in range(n_steps)]
    )
    return powers, taus


def _scalar_states(dynamics, ambients, starts):
    return [
        SpectralThermalState(dynamics, ambients[i], starts[i])
        for i in range(S)
    ]


@pytest.fixture()
def setup(dynamics):
    rng = np.random.default_rng(1234)
    n_nodes = dynamics.model.n_nodes
    ambients = np.array([45.0, 45.0, 42.0, 45.0, 48.0])
    starts = 50.0 + rng.uniform(-3.0, 9.0, size=(S, n_nodes))
    return rng, ambients, starts


class TestBitwiseEquivalence:
    def test_construction_matches_scalar_projection(self, dynamics, setup):
        _, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        for i, state in enumerate(_scalar_states(dynamics, ambients, starts)):
            assert (
                batch.cell_coefficients(i).tobytes()
                == state.coefficients.tobytes()
            )

    def test_mixed_tau_trace_bitwise(self, dynamics, setup):
        rng, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        states = _scalar_states(dynamics, ambients, starts)
        powers, taus = _mixed_trace(dynamics, rng, n_steps=40)
        for k in range(powers.shape[0]):
            batch.step(powers[k], taus[k])
            for i, state in enumerate(states):
                state.step(powers[k, i], taus[k, i])
        for i, state in enumerate(states):
            assert (
                batch.cell_coefficients(i).tobytes()
                == state.coefficients.tobytes()
            )
            assert (
                batch.core_temperatures(i).tobytes()
                == state.core_temperatures().tobytes()
            )
            assert (
                batch.node_temperatures(i).tobytes()
                == state.node_temperatures().tobytes()
            )

    def test_uniform_tau_single_fused_update(self, dynamics, setup):
        rng, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        states = _scalar_states(dynamics, ambients, starts)
        for _ in range(10):
            power = rng.uniform(0.2, 9.0, size=(S, dynamics.model.n_cores))
            batch.step(power, 0.002)
            for i, state in enumerate(states):
                state.step(power[i], 0.002)
        assert batch.fused_updates == 10  # one group per step
        assert batch.rows_stepped == 10 * S
        for i, state in enumerate(states):
            assert (
                batch.cell_coefficients(i).tobytes()
                == state.coefficients.tobytes()
            )

    def test_subset_stepping_bitwise(self, dynamics, setup):
        rng, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        states = _scalar_states(dynamics, ambients, starts)
        n = dynamics.model.n_cores
        for k in range(20):
            cells = sorted(
                rng.choice(S, size=rng.integers(1, S + 1), replace=False)
            )
            power = rng.uniform(0.2, 9.0, size=(len(cells), n))
            tau = TAU_LADDER[k % len(TAU_LADDER)]
            batch.step(power, tau, cells=cells)
            for pos, i in enumerate(cells):
                states[i].step(power[pos], tau)
        for i, state in enumerate(states):
            assert (
                batch.cell_coefficients(i).tobytes()
                == state.coefficients.tobytes()
            )
            assert int(batch.steps[i]) == state.steps

    def test_from_states_adopts_bitwise_and_leaves_donors(self, dynamics, setup):
        rng, ambients, starts = setup
        states = _scalar_states(dynamics, ambients, starts)
        for state in states:
            state.step(
                rng.uniform(0.2, 9.0, size=dynamics.model.n_cores), 0.001
            )
        snapshot = [s.coefficients.copy() for s in states]
        batch = BatchedSpectralState.from_states(states)
        for i, state in enumerate(states):
            assert (
                batch.cell_coefficients(i).tobytes() == snapshot[i].tobytes()
            )
            assert int(batch.steps[i]) == state.steps
        # stepping the batch must not disturb the donor states
        batch.step(
            rng.uniform(0.2, 9.0, size=(S, dynamics.model.n_cores)), 0.002
        )
        for i, state in enumerate(states):
            assert state.coefficients.tobytes() == snapshot[i].tobytes()


class TestDetach:
    def test_detach_continues_bitwise(self, dynamics, setup):
        rng, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        states = _scalar_states(dynamics, ambients, starts)
        powers, taus = _mixed_trace(dynamics, rng, n_steps=8)
        for k in range(8):
            batch.step(powers[k], taus[k])
            for i, state in enumerate(states):
                state.step(powers[k, i], taus[k, i])
        detached = batch.detach(2)
        assert batch.n_cells == S - 1
        assert batch.detached == 1
        assert detached.coefficients.tobytes() == states[2].coefficients.tobytes()
        assert detached.steps == states[2].steps
        assert detached.ambient_c == ambients[2]
        # both the detached scalar state and the compacted batch keep
        # stepping bitwise against the reference states
        remaining = [0, 1, 3, 4]
        for k in range(8):
            power = rng.uniform(0.2, 9.0, size=(S, dynamics.model.n_cores))
            detached.step(power[2], 0.001)
            states[2].step(power[2], 0.001)
            batch.step(power[remaining], 0.002)
            for i, cell in enumerate(remaining):
                states[cell].step(power[cell], 0.002)
        assert detached.coefficients.tobytes() == states[2].coefficients.tobytes()
        for pos, cell in enumerate(remaining):
            assert (
                batch.cell_coefficients(pos).tobytes()
                == states[cell].coefficients.tobytes()
            )

    def test_stats_counters(self, dynamics, setup):
        _, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        batch.step(
            np.full((S, dynamics.model.n_cores), 2.0),
            np.array([0.001, 0.002, 0.001, 0.002, 0.001]),
        )
        stats = batch.stats()
        assert stats["cells"] == S
        assert stats["fused_updates"] == 2  # two tau groups
        assert stats["rows_stepped"] == S
        batch.detach(0)
        assert batch.stats()["detached"] == 1


class TestFrozenViews:
    def test_batched_views_frozen(self, dynamics, setup):
        _, ambients, starts = setup
        batch = BatchedSpectralState(dynamics, ambients, starts)
        for arr in (
            batch.coefficients,
            batch.cell_coefficients(0),
            batch.core_temperatures(0),
            batch.node_temperatures(0),
        ):
            with pytest.raises(ValueError):
                arr[0] = 0.0

    def test_scalar_coefficients_frozen_view(self, dynamics, setup):
        _, ambients, starts = setup
        state = SpectralThermalState(dynamics, ambients[0], starts[0])
        coeffs = state.coefficients
        with pytest.raises(ValueError):
            coeffs[0] = 0.0
        # a view, not a copy: two reads share the same base buffer
        assert state.coefficients.base is not None


class TestValidation:
    def test_shape_errors(self, dynamics, setup):
        _, ambients, starts = setup
        with pytest.raises(ValueError):
            BatchedSpectralState(dynamics, ambients, starts[:, :-1])
        with pytest.raises(ValueError):
            BatchedSpectralState(dynamics, ambients[:-1], starts)
        batch = BatchedSpectralState(dynamics, ambients, starts)
        with pytest.raises(ValueError):
            batch.step(np.zeros((S, dynamics.model.n_cores + 1)), 0.001)
        with pytest.raises(ValueError):
            batch.step(
                np.zeros((S, dynamics.model.n_cores)), np.zeros(S - 1)
            )

    def test_from_states_rejects_mixed_dynamics(self, dynamics, setup):
        from repro import config

        _, ambients, starts = setup
        other = ThermalDynamics(calibrated_model(config.motivational()))
        states = [
            SpectralThermalState(dynamics, ambients[0], starts[0]),
            SpectralThermalState(other, ambients[1], starts[1]),
        ]
        with pytest.raises(ValueError):
            BatchedSpectralState.from_states(states)
        with pytest.raises(ValueError):
            BatchedSpectralState.from_states([])

    def test_steady_coeffs_batch_exact_rows_match_gemv(self, dynamics):
        rng = np.random.default_rng(7)
        stacked = rng.uniform(0.0, 10.0, size=(9, dynamics.model.n_cores))
        batch = dynamics.steady_coeffs_batch(stacked)
        for i in range(stacked.shape[0]):
            assert (
                batch[i].tobytes()
                == dynamics.steady_coeffs(stacked[i]).tobytes()
            )
        # the fast (GEMM) variant is close but not required to be bit-equal
        fast = dynamics.steady_coeffs_batch(stacked, exact=False)
        np.testing.assert_allclose(fast, batch, rtol=1e-12, atol=1e-12)

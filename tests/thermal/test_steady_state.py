"""Steady-state queries and derived quantities."""

import numpy as np
import pytest

from repro.thermal.steady_state import (
    heat_distribution_matrix,
    steady_core_temperatures,
    steady_peak,
    sustainable_uniform_power,
    uniform_power_response,
)


class TestSteadyQueries:
    def test_steady_core_temperatures_shape(self, model16):
        temps = steady_core_temperatures(model16, np.full(16, 1.0), 45.0)
        assert temps.shape == (16,)

    def test_steady_peak_matches_max(self, model16):
        power = np.full(16, 0.3)
        power[5] = 6.0
        temps = steady_core_temperatures(model16, power, 45.0)
        assert steady_peak(model16, power, 45.0) == pytest.approx(np.max(temps))

    def test_uniform_response_positive(self, model16):
        response = uniform_power_response(model16)
        assert response.shape == (16,)
        assert np.all(response > 0)

    def test_uniform_response_center_hottest(self, model64):
        response = uniform_power_response(model64)
        hottest = int(np.argmax(response))
        # the hottest core under uniform load is one of the 4 centre cores
        assert hottest in (27, 28, 35, 36)

    def test_uniform_response_scales_linearly(self, model16):
        response = uniform_power_response(model16)
        temps = steady_core_temperatures(model16, np.full(16, 3.0), 45.0)
        assert np.allclose(temps, 45.0 + 3.0 * response, atol=1e-9)


class TestSustainablePower:
    def test_sustainable_power_hits_limit_exactly(self, model64):
        budget = sustainable_uniform_power(model64, 45.0, 70.0)
        peak = steady_peak(model64, np.full(64, budget), 45.0)
        assert peak == pytest.approx(70.0, abs=1e-6)

    def test_sustainable_power_monotone_in_limit(self, model64):
        low = sustainable_uniform_power(model64, 45.0, 60.0)
        high = sustainable_uniform_power(model64, 45.0, 80.0)
        assert high > low

    def test_sustainable_power_rejects_limit_below_ambient(self, model64):
        with pytest.raises(ValueError):
            sustainable_uniform_power(model64, 45.0, 40.0)


class TestHeatDistribution:
    def test_shape_and_symmetry(self, model16):
        h = heat_distribution_matrix(model16)
        assert h.shape == (16, 16)
        # B symmetric => its inverse (and the core block) is symmetric
        assert np.allclose(h, h.T, atol=1e-12)

    def test_reproduces_steady_state(self, model16, rng):
        h = heat_distribution_matrix(model16)
        power = rng.uniform(0, 4, 16)
        via_h = 45.0 + h @ power
        direct = steady_core_temperatures(model16, power, 45.0)
        assert np.allclose(via_h, direct, atol=1e-9)

    def test_self_heating_dominates(self, model16):
        h = heat_distribution_matrix(model16)
        assert np.all(np.diag(h) >= np.max(h - np.diag(np.diag(h)), axis=1))

    def test_all_entries_positive(self, model16):
        # heat anywhere raises temperature everywhere (connected network)
        assert np.all(heat_distribution_matrix(model16) > 0)

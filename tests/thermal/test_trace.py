"""ThermalTrace recording and statistics."""

import numpy as np
import pytest

from repro.thermal.trace import ThermalTrace


@pytest.fixture()
def trace():
    t = ThermalTrace(4)
    t.record(0.0, [45.0, 45.0, 45.0, 45.0])
    t.record(1e-3, [50.0, 46.0, 47.0, 45.0])
    t.record(2e-3, [72.0, 48.0, 47.5, 45.5])
    t.record(3e-3, [68.0, 50.0, 48.0, 46.0])
    return t


class TestRecording:
    def test_length(self, trace):
        assert len(trace) == 4

    def test_times_and_shape(self, trace):
        assert trace.times.shape == (4,)
        assert trace.temperatures.shape == (4, 4)

    def test_rejects_wrong_width(self):
        t = ThermalTrace(2)
        with pytest.raises(ValueError):
            t.record(0.0, [45.0, 45.0, 45.0])

    def test_rejects_time_going_backwards(self, trace):
        with pytest.raises(ValueError):
            trace.record(1e-3, [45.0] * 4)

    def test_equal_times_allowed(self, trace):
        trace.record(3e-3, [45.0] * 4)
        assert len(trace) == 5

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ThermalTrace(0)

    def test_record_copies_input(self):
        t = ThermalTrace(2)
        sample = np.array([45.0, 46.0])
        t.record(0.0, sample)
        sample[0] = 99.0
        assert t.temperatures[0, 0] == 45.0


class TestStatistics:
    def test_peak(self, trace):
        assert trace.peak() == pytest.approx(72.0)

    def test_peak_per_core(self, trace):
        assert np.allclose(trace.peak_per_core(), [72.0, 50.0, 48.0, 46.0])

    def test_hottest_core(self, trace):
        assert trace.hottest_core() == 0

    def test_exceeds(self, trace):
        assert trace.exceeds(70.0)
        assert not trace.exceeds(72.0)

    def test_empty_peak_raises(self):
        with pytest.raises(ValueError):
            ThermalTrace(2).peak()

    def test_core_series(self, trace):
        assert np.allclose(trace.core_series(1), [45.0, 46.0, 48.0, 50.0])

    def test_core_series_out_of_range(self, trace):
        with pytest.raises(IndexError):
            trace.core_series(4)

    def test_time_above(self, trace):
        # only the sample at 2 ms exceeds 70; sample-and-hold -> 1 ms
        assert trace.time_above(70.0) == pytest.approx(1e-3)

    def test_time_above_none(self, trace):
        assert trace.time_above(100.0) == 0.0

    def test_violations(self, trace):
        violations = trace.violations(70.0)
        assert violations == [(2e-3, 0, 72.0)]

    def test_window(self, trace):
        sub = trace.window(1e-3, 2e-3)
        assert len(sub) == 2
        assert sub.peak() == pytest.approx(72.0)


class TestRendering:
    def test_render_contains_legend(self, trace):
        art = trace.render_ascii(core_ids=[0, 1], threshold_c=70.0)
        assert "0=core 0" in art
        assert "1=core 1" in art

    def test_render_empty(self):
        assert "empty" in ThermalTrace(2).render_ascii()

    def test_render_draws_threshold(self, trace):
        art = trace.render_ascii(threshold_c=70.0)
        assert "-" in art

"""RC thermal network structure (the paper's Eq. 1 requirements)."""

import numpy as np
import pytest

from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_model import MaterialStack, build_rc_model


@pytest.fixture(scope="module")
def model():
    return build_rc_model(Floorplan(4, 4), MaterialStack())


class TestStructure:
    def test_node_count(self, model):
        # n silicon + n spreader + 1 sink
        assert model.n_nodes == 2 * 16 + 1
        assert model.sink_node == 32
        assert model.spreader_node(3) == 19

    def test_b_symmetric(self, model):
        b = model.b_matrix
        assert np.allclose(b, b.T)

    def test_b_positive_definite(self, model):
        eigs = np.linalg.eigvalsh(model.b_matrix)
        assert np.all(eigs > 0)

    def test_a_diagonal_positive(self, model):
        assert np.all(model.capacitance_vector > 0)

    def test_row_sums_equal_ambient_conductance(self, model):
        # B = Laplacian + diag(G): every row sums to its ambient leg
        sums = model.b_matrix.sum(axis=1)
        assert np.allclose(sums, model.g_vector, atol=1e-12)

    def test_only_sink_touches_ambient(self, model):
        g = model.g_vector
        assert g[model.sink_node] > 0
        assert np.all(g[: model.sink_node] == 0)

    def test_silicon_couples_to_own_spreader(self, model):
        b = model.b_matrix
        for core in range(model.n_cores):
            assert b[core, model.spreader_node(core)] < 0  # conductance

    def test_no_direct_silicon_to_sink(self, model):
        b = model.b_matrix
        for core in range(model.n_cores):
            assert b[core, model.sink_node] == 0

    def test_capacitance_readonly(self, model):
        with pytest.raises(ValueError):
            model.capacitance_vector[0] = 1.0


class TestSteadyState:
    def test_zero_power_is_ambient(self, model):
        temps = model.steady_state(np.zeros(16), ambient_c=45.0)
        assert np.allclose(temps, 45.0)

    def test_power_raises_temperature(self, model):
        power = np.zeros(16)
        power[5] = 5.0
        temps = model.steady_state(power, 45.0)
        assert np.all(temps >= 45.0 - 1e-9)
        assert temps[5] > 50.0

    def test_heated_core_is_hottest(self, model):
        power = np.zeros(16)
        power[5] = 5.0
        temps = model.steady_state(power, 45.0)
        assert np.argmax(temps[:16]) == 5

    def test_linearity_in_power(self, model):
        p1 = np.random.default_rng(0).uniform(0, 5, 16)
        p2 = np.random.default_rng(1).uniform(0, 5, 16)
        t1 = model.steady_state(p1, 45.0) - 45.0
        t2 = model.steady_state(p2, 45.0) - 45.0
        t12 = model.steady_state(p1 + p2, 45.0) - 45.0
        assert np.allclose(t12, t1 + t2, atol=1e-9)

    def test_ambient_shift(self, model):
        power = np.full(16, 2.0)
        t45 = model.steady_state(power, 45.0)
        t25 = model.steady_state(power, 25.0)
        assert np.allclose(t45 - t25, 20.0)

    def test_symmetry_of_mirrored_hotspots(self, model):
        # cores 5 and 10 are point-symmetric on a 4x4 grid
        p_a = np.zeros(16)
        p_a[5] = 4.0
        p_b = np.zeros(16)
        p_b[10] = 4.0
        peak_a = np.max(model.steady_state(p_a, 45.0))
        peak_b = np.max(model.steady_state(p_b, 45.0))
        assert peak_a == pytest.approx(peak_b, rel=1e-9)


class TestPowerExpansion:
    def test_expand_power_shape(self, model):
        full = model.expand_power(np.ones(16))
        assert full.shape == (33,)
        assert np.all(full[:16] == 1.0)
        assert np.all(full[16:] == 0.0)

    def test_expand_power_rejects_bad_shape(self, model):
        with pytest.raises(ValueError):
            model.expand_power(np.ones(8))

    def test_core_temperatures_extraction(self, model):
        nodes = np.arange(33, dtype=float)
        assert np.array_equal(model.core_temperatures(nodes), np.arange(16.0))

    def test_core_temperatures_rejects_bad_shape(self, model):
        with pytest.raises(ValueError):
            model.core_temperatures(np.zeros(10))


class TestSpreaderMargin:
    def test_margin_helps_corners_more_than_center(self):
        """The overhang conductance attaches to boundary blocks only, so
        adding it must cool a corner hotspot more than a centre hotspot."""
        import dataclasses

        fp = Floorplan(8, 8)
        with_margin = build_rc_model(fp, MaterialStack())
        without = build_rc_model(
            fp, dataclasses.replace(MaterialStack(), spreader_margin_factor=0.0)
        )
        center = fp.core_at(3, 3)
        corner = fp.core_at(0, 0)

        def peak(model, hot):
            power = np.full(64, 0.3)
            power[hot] = 8.0
            return np.max(
                model.core_temperatures(model.steady_state(power, 45.0))
            )

        center_gain = peak(without, center) - peak(with_margin, center)
        corner_gain = peak(without, corner) - peak(with_margin, corner)
        assert corner_gain > center_gain

    def test_margin_disabled_removes_differential_sign(self):
        fp = Floorplan(4, 4)
        stack = MaterialStack()
        import dataclasses

        no_margin = dataclasses.replace(stack, spreader_margin_factor=0.0)
        model = build_rc_model(fp, no_margin)
        # without overhang, corner runs hotter than with it
        model_margin = build_rc_model(fp, stack)
        power = np.full(16, 0.3)
        power[0] = 8.0
        peak_no = np.max(model.core_temperatures(model.steady_state(power, 45.0)))
        peak_with = np.max(
            model_margin.core_temperatures(model_margin.steady_state(power, 45.0))
        )
        assert peak_no > peak_with


class TestValidation:
    def test_rejects_asymmetric_conductance(self):
        fp = Floorplan(2, 2)
        good = build_rc_model(fp, MaterialStack())
        bad = good.b_matrix
        bad[0, 1] += 1.0
        from repro.thermal.rc_model import RCThermalModel

        with pytest.raises(ValueError):
            RCThermalModel(
                fp, good.capacitance_vector.copy(), bad, good.g_vector, good.stack
            )

    def test_rejects_nonpositive_capacitance(self):
        fp = Floorplan(2, 2)
        good = build_rc_model(fp, MaterialStack())
        cap = good.capacitance_vector.copy()
        cap[0] = 0.0
        from repro.thermal.rc_model import RCThermalModel

        with pytest.raises(ValueError):
            RCThermalModel(fp, cap, good.b_matrix, good.g_vector, good.stack)

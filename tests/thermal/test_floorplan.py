"""Floorplan geometry."""

import math

import pytest

from repro.thermal.floorplan import Floorplan


class TestConstruction:
    def test_table1_floorplan(self):
        fp = Floorplan(8, 8, 0.81e-6)
        assert fp.n_cores == 64
        assert fp.die_area_m2 == pytest.approx(64 * 0.81e-6)
        assert fp.core_edge_m == pytest.approx(0.9e-3)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Floorplan(0, 4)
        with pytest.raises(ValueError):
            Floorplan(4, -1)
        with pytest.raises(ValueError):
            Floorplan(4, 4, core_area_m2=0.0)

    def test_block_positions_row_major(self):
        fp = Floorplan(4, 4)
        assert fp.block(0).row == 0 and fp.block(0).col == 0
        assert fp.block(3).row == 0 and fp.block(3).col == 3
        assert fp.block(5).row == 1 and fp.block(5).col == 1
        assert fp.block(15).row == 3 and fp.block(15).col == 3

    def test_block_centres(self):
        fp = Floorplan(2, 2, 1.0e-6)  # 1 mm edge
        assert fp.block(0).x_m == pytest.approx(0.5e-3)
        assert fp.block(3).x_m == pytest.approx(1.5e-3)
        assert fp.block(3).y_m == pytest.approx(1.5e-3)

    def test_block_area(self):
        fp = Floorplan(3, 3, 0.81e-6)
        for block in fp.blocks():
            assert block.area_m2 == pytest.approx(0.81e-6)


class TestAdjacency:
    def test_interior_has_four_neighbors(self):
        fp = Floorplan(4, 4)
        assert sorted(fp.neighbors(5)) == [1, 4, 6, 9]

    def test_corner_has_two_neighbors(self):
        fp = Floorplan(4, 4)
        assert sorted(fp.neighbors(0)) == [1, 4]
        assert sorted(fp.neighbors(15)) == [11, 14]

    def test_edge_has_three_neighbors(self):
        fp = Floorplan(4, 4)
        assert sorted(fp.neighbors(1)) == [0, 2, 5]

    def test_lateral_pair_count(self):
        # W x H grid has W*(H-1) + H*(W-1) shared edges
        fp = Floorplan(4, 4)
        assert len(fp.lateral_pairs()) == 24
        fp = Floorplan(8, 8)
        assert len(fp.lateral_pairs()) == 112

    def test_lateral_pairs_ordered_unique(self):
        fp = Floorplan(3, 2)
        pairs = fp.lateral_pairs()
        assert len(set(pairs)) == len(pairs)
        assert all(a < b for a, b in pairs)

    def test_boundary_detection(self):
        fp = Floorplan(4, 4)
        interior = [c for c in range(16) if not fp.is_boundary(c)]
        assert interior == [5, 6, 9, 10]  # the paper's motivational cores

    def test_single_row_all_boundary(self):
        fp = Floorplan(5, 1)
        assert all(fp.is_boundary(c) for c in range(5))


class TestIndexing:
    def test_core_at_and_position_inverse(self):
        fp = Floorplan(5, 3)
        for core in range(fp.n_cores):
            row, col = fp.position(core)
            assert fp.core_at(row, col) == core

    def test_out_of_range(self):
        fp = Floorplan(2, 2)
        with pytest.raises(IndexError):
            fp.position(4)
        with pytest.raises(IndexError):
            fp.core_at(2, 0)

"""MatEx transient solver: eigendecomposition and exact stepping."""

import numpy as np
import pytest
import scipy.linalg

from repro.thermal.floorplan import Floorplan
from repro.thermal.matex import ThermalDynamics
from repro.thermal.rc_model import MaterialStack, build_rc_model


@pytest.fixture(scope="module")
def small():
    model = build_rc_model(Floorplan(2, 2), MaterialStack())
    return model, ThermalDynamics(model)


class TestEigendecomposition:
    def test_all_eigenvalues_negative(self, small):
        _, dyn = small
        assert np.all(dyn.eigenvalues < 0)

    def test_eigenvectors_reconstruct_c(self, small):
        model, dyn = small
        c = -np.linalg.solve(model.a_matrix, model.b_matrix)
        recon = (dyn.eigenvectors * dyn.eigenvalues[None, :]) @ dyn.eigenvectors_inv
        assert np.allclose(recon, c, atol=1e-8)

    def test_inverse_eigenvectors(self, small):
        _, dyn = small
        identity = dyn.eigenvectors @ dyn.eigenvectors_inv
        assert np.allclose(identity, np.eye(len(dyn.eigenvalues)), atol=1e-10)

    def test_exp_c_matches_scipy_expm(self, small):
        """The analytic matrix exponential equals scipy's Pade expm."""
        model, dyn = small
        c = -np.linalg.solve(model.a_matrix, model.b_matrix)
        for tau in (1e-4, 1e-3, 1e-2, 0.1):
            expected = scipy.linalg.expm(c * tau)
            assert np.allclose(dyn.exp_c(tau), expected, atol=1e-9)

    def test_exp_c_zero_is_identity(self, small):
        _, dyn = small
        assert np.allclose(dyn.exp_c(0.0), np.eye(dyn.model.n_nodes))

    def test_exp_c_semigroup(self, small):
        """exp(C (a+b)) == exp(C a) exp(C b)."""
        _, dyn = small
        a, b = 3e-3, 7e-3
        assert np.allclose(dyn.exp_c(a) @ dyn.exp_c(b), dyn.exp_c(a + b), atol=1e-10)

    def test_exp_c_cached(self, small):
        _, dyn = small
        assert dyn.exp_c(1e-3) is dyn.exp_c(1e-3)

    def test_exp_c_rejects_negative_tau(self, small):
        _, dyn = small
        with pytest.raises(ValueError):
            dyn.exp_c(-1e-3)

    def test_rejects_indefinite_b(self):
        model = build_rc_model(Floorplan(2, 2), MaterialStack())
        # zero out the ambient leg -> B only PSD -> must be rejected
        from repro.thermal.rc_model import RCThermalModel

        b = model.b_matrix
        g = model.g_vector
        b[model.sink_node, model.sink_node] -= g[model.sink_node]
        broken = RCThermalModel(
            model.floorplan,
            model.capacitance_vector.copy(),
            b,
            np.zeros_like(g),
            model.stack,
        )
        with pytest.raises(ValueError):
            ThermalDynamics(broken)


class TestStep:
    def test_step_converges_to_steady_state(self, small):
        model, dyn = small
        power = np.array([4.0, 0.3, 0.3, 0.3])
        temps = model.ambient_vector(45.0)
        for _ in range(300):
            temps = dyn.step(temps, power, 45.0, 10e-3)
        expected = model.steady_state(power, 45.0)
        assert np.allclose(temps, expected, atol=1e-6)

    def test_step_is_exact_vs_composition(self, small):
        """One 2 ms step equals two 1 ms steps (piecewise-constant power)."""
        model, dyn = small
        power = np.array([3.0, 1.0, 0.5, 0.3])
        start = model.ambient_vector(45.0)
        one = dyn.step(start, power, 45.0, 2e-3)
        two = dyn.step(dyn.step(start, power, 45.0, 1e-3), power, 45.0, 1e-3)
        assert np.allclose(one, two, atol=1e-10)

    def test_step_from_steady_state_stays(self, small):
        model, dyn = small
        power = np.array([2.0, 2.0, 0.3, 0.3])
        steady = model.steady_state(power, 45.0)
        after = dyn.step(steady, power, 45.0, 5e-3)
        assert np.allclose(after, steady, atol=1e-9)

    def test_monotone_heating_from_ambient(self, small):
        model, dyn = small
        power = np.array([5.0, 0.3, 0.3, 0.3])
        temps = model.ambient_vector(45.0)
        last_peak = 45.0
        for _ in range(20):
            temps = dyn.step(temps, power, 45.0, 1e-3)
            peak = float(np.max(temps))
            assert peak >= last_peak - 1e-9
            last_peak = peak


class TestTransient:
    def test_transient_endpoints_match_step(self, small):
        model, dyn = small
        power = np.array([4.0, 0.3, 1.0, 0.3])
        start = model.ambient_vector(45.0)
        times, temps = dyn.transient(start, power, 45.0, 5e-3, n_samples=10)
        assert times[-1] == pytest.approx(5e-3)
        stepped = dyn.step(start, power, 45.0, 5e-3)
        assert np.allclose(temps[-1], stepped, atol=1e-9)

    def test_transient_sample_count(self, small):
        model, dyn = small
        start = model.ambient_vector(45.0)
        times, temps = dyn.transient(start, np.zeros(4), 45.0, 1e-2, 7)
        assert times.shape == (7,)
        assert temps.shape == (7, model.n_nodes)

    def test_transient_rejects_zero_samples(self, small):
        model, dyn = small
        with pytest.raises(ValueError):
            dyn.transient(model.ambient_vector(45.0), np.zeros(4), 45.0, 1e-2, 0)

    def test_peak_during_step_at_least_boundary(self, small):
        model, dyn = small
        power = np.array([6.0, 0.3, 0.3, 0.3])
        start = model.ambient_vector(45.0)
        end = dyn.step(start, power, 45.0, 2e-3)
        inner_peak = dyn.peak_during_step(start, power, 45.0, 2e-3)
        assert inner_peak >= float(np.max(model.core_temperatures(end))) - 1e-9

    def test_peak_during_cooling_is_initial(self, small):
        """When power drops, the within-step peak is the starting temp."""
        model, dyn = small
        hot = model.steady_state(np.array([6.0, 0.3, 0.3, 0.3]), 45.0)
        idle = np.full(4, 0.3)
        peak = dyn.peak_during_step(hot, idle, 45.0, 5e-3)
        assert peak == pytest.approx(float(np.max(hot[:4])), abs=1e-9)


class TestTimeConstants:
    def test_slowest_time_constant_positive(self, small):
        _, dyn = small
        assert dyn.slowest_time_constant_s > 0

    def test_core_time_constant_supports_sub_ms_rotation(self, dynamics16):
        """The fastest (core-level) modes must be slower than the paper's
        0.5 ms rotation epoch, otherwise rotation could not average heat."""
        fastest = float(np.min(-1.0 / dynamics16.eigenvalues))
        assert fastest > 0.5e-3

"""Analytic within-step peak detection (MatEx-style root finding)."""

import numpy as np
import pytest

from repro.thermal.floorplan import Floorplan
from repro.thermal.matex import ThermalDynamics
from repro.thermal.rc_model import MaterialStack, build_rc_model


@pytest.fixture(scope="module")
def dyn():
    return ThermalDynamics(build_rc_model(Floorplan(3, 3), MaterialStack()))


def dense_peak(dyn, temps, power, tau, samples=4000):
    _, trajectory = dyn.transient(temps, power, 45.0, tau, samples)
    cores = dyn.model.core_temperatures(trajectory)
    start = np.max(dyn.model.core_temperatures(np.asarray(temps)))
    return max(float(start), float(np.max(cores)))


class TestAnalyticPeak:
    def test_matches_dense_sampling_on_overshoot(self, dyn, rng):
        """Start hot on one core while heating another: the interior
        trajectory has a genuine maximum away from both endpoints."""
        model = dyn.model
        hot_start = model.steady_state(
            np.array([6.0, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3]), 45.0
        )
        power = np.array([0.3, 0.3, 0.3, 0.3, 6.0, 0.3, 0.3, 0.3, 0.3])
        tau = 20e-3
        analytic = dyn.analytic_peak_during_step(hot_start, power, 45.0, tau)
        dense = dense_peak(dyn, hot_start, power, tau)
        assert analytic == pytest.approx(dense, abs=1e-3)

    def test_random_cases_match_dense(self, dyn, rng):
        model = dyn.model
        for _ in range(5):
            start = model.steady_state(rng.uniform(0.0, 6.0, 9), 45.0)
            power = rng.uniform(0.0, 6.0, 9)
            tau = float(rng.uniform(1e-3, 3e-2))
            analytic = dyn.analytic_peak_during_step(start, power, 45.0, tau)
            dense = dense_peak(dyn, start, power, tau)
            assert analytic == pytest.approx(dense, abs=2e-3)

    def test_at_least_endpoint_sampling(self, dyn, rng):
        model = dyn.model
        start = model.ambient_vector(45.0)
        power = rng.uniform(0.0, 6.0, 9)
        analytic = dyn.analytic_peak_during_step(start, power, 45.0, 5e-3)
        sampled = dyn.peak_during_step(start, power, 45.0, 5e-3, n_samples=4)
        assert analytic >= sampled - 1e-9

    def test_monotone_heating_peak_is_endpoint(self, dyn):
        model = dyn.model
        start = model.ambient_vector(45.0)
        power = np.full(9, 4.0)
        tau = 5e-3
        analytic = dyn.analytic_peak_during_step(start, power, 45.0, tau)
        end = dyn.step(start, power, 45.0, tau)
        assert analytic == pytest.approx(
            float(np.max(model.core_temperatures(end))), abs=1e-6
        )

    def test_cooling_peak_is_start(self, dyn):
        model = dyn.model
        hot = model.steady_state(np.full(9, 5.0), 45.0)
        analytic = dyn.analytic_peak_during_step(hot, np.zeros(9), 45.0, 10e-3)
        assert analytic == pytest.approx(
            float(np.max(model.core_temperatures(hot))), abs=1e-9
        )

    def test_rejects_bad_tau(self, dyn):
        with pytest.raises(ValueError):
            dyn.analytic_peak_during_step(
                dyn.model.ambient_vector(45.0), np.zeros(9), 45.0, 0.0
            )

"""Eigenbasis-resident stepping vs the dense reference path.

The interval engine holds its thermal state as eigen-coefficients
(:class:`repro.thermal.SpectralThermalState`); these tests pin the fast
path to the dense ``ThermalDynamics.step`` to ``<= 1e-9`` degC over long
mixed-power traces, and check the lazy-projection contract.
"""

import numpy as np
import pytest

from repro.thermal import SpectralThermalState

_AMBIENT_C = 45.0


def _mixed_trace(dynamics, rng, n_steps):
    """A 500-interval-style trace: varied powers and step sizes."""
    n = dynamics.model.n_cores
    taus = (0.25e-3, 0.5e-3, 1e-3, 2e-3)
    for i in range(n_steps):
        power = rng.uniform(0.0, 9.0, size=n)
        if i % 7 == 0:
            power[:] = 0.3  # idle epochs
        if i % 11 == 0:
            power[rng.integers(n)] = 12.0  # a hotspot burst
        yield power, taus[i % len(taus)]


class TestEquivalence:
    def test_matches_dense_path_over_500_mixed_intervals(self, dynamics64, rng):
        model = dynamics64.model
        dense = model.ambient_vector(_AMBIENT_C)
        state = SpectralThermalState(dynamics64, _AMBIENT_C, dense)
        worst = 0.0
        for power, tau in _mixed_trace(dynamics64, rng, 500):
            dense = dynamics64.step(dense, power, _AMBIENT_C, tau)
            state.step(power, tau)
            worst = max(
                worst,
                float(np.max(np.abs(state.node_temperatures() - dense))),
            )
        assert worst <= 1e-9

    def test_core_projection_matches_node_projection(self, dynamics16):
        model = dynamics16.model
        state = SpectralThermalState(
            dynamics16, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        state.step(np.full(model.n_cores, 5.0), 1e-3)
        np.testing.assert_allclose(
            state.core_temperatures(),
            model.core_temperatures(state.node_temperatures()),
            rtol=0,
            atol=1e-12,
        )

    def test_step_spectral_matches_dense_step(self, dynamics16, rng):
        model = dynamics16.model
        temps = model.ambient_vector(_AMBIENT_C) + rng.uniform(
            0.0, 30.0, model.n_nodes
        )
        power = rng.uniform(0.0, 8.0, model.n_cores)
        dense = dynamics16.step(temps, power, _AMBIENT_C, 1e-3)
        spectral = dynamics16.step_spectral(temps, power, _AMBIENT_C, 1e-3)
        np.testing.assert_allclose(spectral, dense, rtol=0, atol=1e-9)


class TestStateContract:
    def test_roundtrip_through_set_node_temperatures(self, dynamics16, rng):
        model = dynamics16.model
        temps = model.ambient_vector(_AMBIENT_C) + rng.uniform(
            0.0, 40.0, model.n_nodes
        )
        state = SpectralThermalState(dynamics16, _AMBIENT_C, temps)
        np.testing.assert_allclose(
            state.node_temperatures(), temps, rtol=0, atol=1e-9
        )

    def test_projections_are_frozen(self, dynamics16):
        model = dynamics16.model
        state = SpectralThermalState(
            dynamics16, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        for array in (state.core_temperatures(), state.node_temperatures()):
            with pytest.raises(ValueError):
                array[0] = 0.0

    def test_projection_cache_invalidated_by_step(self, dynamics16):
        model = dynamics16.model
        state = SpectralThermalState(
            dynamics16, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        before = state.core_temperatures()
        state.step(np.full(model.n_cores, 8.0), 2e-3)
        after = state.core_temperatures()
        assert after is not before
        assert float(np.max(after)) > float(np.max(before))

    def test_step_counter_increments(self, dynamics16):
        model = dynamics16.model
        state = SpectralThermalState(
            dynamics16, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        assert state.steps == 0
        state.step(np.full(model.n_cores, 1.0), 1e-3)
        state.step(np.full(model.n_cores, 1.0), 1e-3)
        assert state.steps == 2

    def test_rejects_wrong_shape(self, dynamics16):
        with pytest.raises(ValueError, match="node temperatures"):
            SpectralThermalState(dynamics16, _AMBIENT_C, np.zeros(3))

    def test_coefficients_property_is_a_frozen_view(self, dynamics16):
        model = dynamics16.model
        state = SpectralThermalState(
            dynamics16, _AMBIENT_C, model.ambient_vector(_AMBIENT_C)
        )
        coeffs = state.coefficients
        with pytest.raises(ValueError):
            coeffs[:] = 99.0
        assert not np.allclose(state.coefficients, 99.0)
        # a view over the live buffer, not a per-read copy
        assert coeffs.base is not None

"""End-to-end tracing through the serve stack: propagation, SLO, debug.

The tentpole guarantees under test (``docs/observability.md``):

- tracing is **off by default** and responses are byte-identical with it
  on or off (metamorphic);
- N concurrent requests through the :class:`MicroBatcher` yield exactly
  N request spans linked to one ``batch.flush`` span, no orphans;
- ``/debug/traces`` serves the span buffer as JSON and waterfall HTML;
- ``/metrics`` exposes per-endpoint/per-tenant latency quantiles and
  buckets;
- a traced loadgen run exports a waterfall HTML.
"""

import asyncio
import json

import pytest

from repro.obs.detect import SpanOrphanDetector
from repro.obs.export import parse_openmetrics
from repro.serve import MicroBatcher, ServeConfig, ThermalServer
from repro.serve.loadgen import LoadgenConfig, _http_request, run_loadgen

SMALL = {"mesh_width": 2, "mesh_height": 2}

TRACED = ServeConfig(port=0, trace_spans=True)


def run_server(handler, serve_config=None):
    """Boot a server, run ``handler(server, host, port)``, tear down."""

    async def main():
        server = ThermalServer(serve_config or ServeConfig(port=0))
        await server.start()
        try:
            return await handler(server, server.config.host, server.port)
        finally:
            await server.close()

    return asyncio.run(main())


async def _post(host, port, path, payload):
    status, body = await _http_request(host, port, "POST", path, payload)
    return status, json.loads(body) if body else {}


async def _create_tenant(host, port, name, overrides=None, slo=None):
    payload = {"name": name, "config": overrides or SMALL}
    if slo is not None:
        payload["slo"] = slo
    status, body = await _post(host, port, "/v1/tenants", payload)
    assert status == 200, body
    return body


class TestDisabledByDefault:
    def test_default_config_records_nothing(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}
            )
            assert status == 200
            assert not server.tracer.enabled
            assert len(server.tracer) == 0
            assert server.tracer.finished == 0

        run_server(handler)

    def test_responses_byte_identical_with_tracing_on(self):
        """Metamorphic: tracing must not perturb a single response byte."""

        requests = [
            ("POST", "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}),
            (
                "POST",
                "/v1/peak",
                {
                    "tenant": "t0",
                    "candidates": [
                        {"power": [0.5] * 4},
                        {"power_seq": [[2.0] * 4, [0.1] * 4], "tau_s": 0.001},
                    ],
                },
            ),
            (
                "POST",
                "/v1/tau",
                {"tenant": "t0", "power_seq": [[2.0] * 4, [0.1] * 4]},
            ),
            (
                "POST",
                "/v1/simulate",
                {
                    "tenant": "t0",
                    "max_time_s": 0.005,
                    "workload": {"kind": "homogeneous", "seed": 1},
                },
            ),
            ("GET", "/v1/tenants", None),
        ]

        def collect(serve_config):
            async def handler(server, host, port):
                await _create_tenant(host, port, "t0")
                bodies = []
                for method, path, payload in requests:
                    status, body = await _http_request(
                        host, port, method, path, payload
                    )
                    assert status == 200
                    bodies.append(body)
                return bodies

            return run_server(handler, serve_config)

        untraced = collect(ServeConfig(port=0))
        traced = collect(ServeConfig(port=0, trace_spans=True))
        assert untraced == traced


class TestConcurrentPropagation:
    N = 5

    def test_n_requests_one_flush_span_n_links(self):
        """The satellite contract, end to end over TCP: N concurrent
        tenants coalesce into batch flushes whose links cover exactly the
        N request spans, and the span set has no orphans."""

        async def handler(server, host, port):
            for index in range(self.N):
                await _create_tenant(host, port, f"t{index}")
            results = await asyncio.gather(
                *(
                    _post(
                        host,
                        port,
                        "/v1/peak",
                        {"tenant": f"t{index}", "power": [1.0] * 4},
                    )
                    for index in range(self.N)
                )
            )
            assert all(status == 200 for status, _ in results)
            return list(server.tracer)

        spans = run_server(handler, TRACED)
        requests = [s for s in spans if s.name == "http.peak"]
        flushes = [s for s in spans if s.name == "batch.flush"]
        assert len(requests) == self.N
        # every request span is linked from exactly one flush
        linked = sorted(link for flush in flushes for link in flush.links)
        assert linked == sorted(s.span_id for s in requests)
        assert SpanOrphanDetector().check(spans) == []

    def test_direct_batcher_single_flush(self):
        """Without TCP interleaving, one gather = one flush linking all
        N origins (call_soon runs after every enqueue of the tick)."""
        from repro.obs.spans import SpanTracer
        from repro.thermal.calibrate import calibrated_model
        from repro.thermal.matex import ThermalDynamics
        from repro.core.peak_temperature import PeakTemperatureCalculator
        from repro import config

        cfg = config.SystemConfig(mesh_width=2, mesh_height=2)
        calculator = PeakTemperatureCalculator(
            ThermalDynamics(calibrated_model(cfg)), cfg.thermal.ambient_c
        )
        tracer = SpanTracer(enabled=True)
        batcher = MicroBatcher(tracer=tracer)
        seq = [[1.0] * 4]

        async def request(index):
            with tracer.span(f"request{index}"):
                return await batcher.evaluate_many(calculator, [seq], [None])

        async def main():
            return await asyncio.gather(*(request(i) for i in range(4)))

        results = asyncio.run(main())
        assert len({peaks[0] for peaks in results}) == 1  # identical answers
        assert batcher.flushes == 1
        spans = list(tracer)
        flushes = [s for s in spans if s.name == "batch.flush"]
        origins = sorted(
            s.span_id for s in spans if s.name.startswith("request")
        )
        assert len(flushes) == 1
        assert sorted(flushes[0].links) == origins
        assert SpanOrphanDetector().check(spans) == []

    def test_simulate_attaches_engine_phase_spans(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            status, _ = await _post(
                host,
                port,
                "/v1/simulate",
                {
                    "tenant": "t0",
                    "max_time_s": 0.005,
                    "workload": {"kind": "homogeneous", "seed": 1},
                },
            )
            assert status == 200
            return list(server.tracer)

        spans = run_server(handler, TRACED)
        request = next(s for s in spans if s.name == "http.simulate")
        phases = [s for s in spans if s.name.startswith("phase.")]
        assert phases, "engine phases should surface as spans"
        assert all(s.parent_id == request.span_id for s in phases)
        assert "phase.thermal.step" in {s.name for s in phases}

    def test_cache_eigendecomposition_span_once(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "a")
            await _create_tenant(host, port, "b")  # same config: cache hit
            return list(server.tracer)

        spans = run_server(handler, TRACED)
        eigen = [s for s in spans if s.name == "cache.eigendecomposition"]
        assert len(eigen) == 1
        tenants = [s for s in spans if s.name == "http.tenants"]
        assert eigen[0].parent_id is not None
        assert eigen[0].trace_id in {s.trace_id for s in tenants}


class TestDebugTracesEndpoint:
    def test_json_view(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}
            )
            status, body = await _http_request(
                host, port, "GET", "/debug/traces?limit=500", None
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["enabled"] is True
            names = {span["name"] for span in payload["spans"]}
            assert "http.peak" in names and "batch.flush" in names

        run_server(handler, TRACED)

    def test_html_view_and_limit(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            status, body = await _http_request(
                host, port, "GET", "/debug/traces?format=html", None
            )
            assert status == 200
            assert body.startswith(b"<!DOCTYPE html>")

            status, body = await _http_request(
                host, port, "GET", "/debug/traces?limit=1", None
            )
            assert len(json.loads(body)["spans"]) == 1

            status, _ = await _http_request(
                host, port, "GET", "/debug/traces?limit=zero", None
            )
            assert status == 400
            status, _ = await _http_request(
                host, port, "GET", "/debug/traces?format=yaml", None
            )
            assert status == 400

        run_server(handler, TRACED)

    def test_disabled_tracer_serves_empty(self):
        async def handler(server, host, port):
            status, body = await _http_request(
                host, port, "GET", "/debug/traces", None
            )
            assert status == 200
            payload = json.loads(body)
            assert payload == {
                "enabled": False,
                "buffered": 0,
                "dropped": 0,
                "spans": [],
            }

        run_server(handler)


class TestLatencyMetrics:
    def test_per_endpoint_and_tenant_quantiles_exposed(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            for _ in range(3):
                await _post(
                    host,
                    port,
                    "/v1/peak",
                    {"tenant": "t0", "power": [1.0] * 4},
                )
            status, body = await _http_request(
                host, port, "GET", "/metrics", None
            )
            assert status == 200
            return parse_openmetrics(body.decode())

        metrics = run_server(handler)
        p50 = metrics["repro_serve_http_latency_peak_p50"]
        p99 = metrics["repro_serve_http_latency_peak_p99"]
        assert 0.0 < p50 <= p99
        assert metrics["repro_serve_tenant_t0_latency_count"] == 3.0
        assert "repro_serve_tenant_t0_latency_p99" in metrics
        # cumulative buckets end at the total count
        assert (
            metrics["repro_serve_http_latency_peak_bucket_le_inf"] == 3.0
        )

    def test_slo_gauges_and_violation_fire_once(self):
        """Known-answer: an impossible 1ns SLO with a 50% budget over two
        requests exhausts on the second — exactly one violation."""

        async def handler(server, host, port):
            await _create_tenant(
                host,
                port,
                "t0",
                slo={"latency_s": 1e-9, "error_budget": 0.5},
            )
            for _ in range(4):
                await _post(
                    host,
                    port,
                    "/v1/peak",
                    {"tenant": "t0", "power": [1.0] * 4},
                )
            status, body = await _http_request(
                host, port, "GET", "/metrics", None
            )
            tenant = server.service.tenant("t0")
            return parse_openmetrics(body.decode()), tenant.slo

        metrics, slo = run_server(handler)
        assert len(slo.violations) == 1
        assert slo.violations[0].detector == "slo-latency-violation"
        assert metrics["repro_serve_tenant_t0_slo_violations"] == 1.0
        assert metrics["repro_serve_tenant_t0_slo_budget_used"] >= 1.0

    def test_tenant_info_reports_slo(self):
        async def handler(server, host, port):
            info = await _create_tenant(
                host, port, "t0", slo={"latency_s": 0.25}
            )
            assert info["slo"]["latency_target_s"] == 0.25
            assert info["slo"]["error_budget"] == 0.01  # server default
            assert info["slo"]["violations"] == 0

            status, body = await _post(
                host,
                port,
                "/v1/tenants",
                {"name": "bad", "slo": {"latency_s": -1.0}},
            )
            assert status == 400
            status, body = await _post(
                host,
                port,
                "/v1/tenants",
                {"name": "bad", "slo": {"nonsense": 1.0}},
            )
            assert status == 400

        run_server(handler)


class TestTracedLoadgen:
    def test_loadgen_writes_waterfall_and_quantiles(self, tmp_path):
        waterfall = tmp_path / "waterfall.html"
        report = run_loadgen(
            LoadgenConfig(
                n_tenants=2,
                n_distinct_configs=1,
                n_requests=12,
                arrival_rate_per_s=500.0,
                mesh_width=2,
                mesh_height=2,
                seed=7,
                trace=True,
                trace_waterfall_path=str(waterfall),
            )
        )
        assert report["http_statuses"] == {"200": 12}
        latency = report["latency_s"]
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]
        assert report["trace"]["spans"] > 0
        assert waterfall.read_text().startswith("<!DOCTYPE html>")

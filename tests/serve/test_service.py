"""Transport-free service core: validation, tau selection, degradation."""

import numpy as np
import pytest

from repro.core.hotpotato import DEFAULT_TAU_LADDER_S
from repro.serve import ServeConfig, ThermalService

#: 2x2 tenant overrides — every test tenant uses the small floorplan
SMALL = {"mesh_width": 2, "mesh_height": 2}


@pytest.fixture()
def service():
    return ThermalService(ServeConfig())


@pytest.fixture()
def tenant(service):
    service.create_tenant("t0", SMALL)
    return service.tenant("t0")


class TestTenantRegistry:
    def test_create_and_info(self, service):
        info = service.create_tenant("alpha", dict(SMALL, dtm_threshold_c=75.0))
        assert info["tenant"] == "alpha"
        assert info["n_cores"] == 4
        assert info["dtm_threshold_c"] == 75.0
        assert info["mode"] == "normal"

    def test_duplicate_name_rejected(self, service):
        service.create_tenant("dup", SMALL)
        with pytest.raises(ValueError, match="already exists"):
            service.create_tenant("dup", SMALL)

    def test_unknown_config_key_rejected(self, service):
        with pytest.raises(ValueError, match="unknown config keys"):
            service.create_tenant("bad", {"volts": 3})

    def test_capacity_enforced(self):
        service = ThermalService(ServeConfig(max_tenants=1))
        service.create_tenant("one", SMALL)
        with pytest.raises(ValueError, match="capacity"):
            service.create_tenant("two", SMALL)

    def test_delete(self, service):
        service.create_tenant("gone", SMALL)
        service.delete_tenant("gone")
        with pytest.raises(KeyError):
            service.tenant("gone")

    def test_same_config_tenants_share_calculator(self, service):
        service.create_tenant("a", SMALL)
        service.create_tenant("b", SMALL)
        a, b = service.tenant("a"), service.tenant("b")
        assert a.calculator is b.calculator
        assert a.fingerprint == b.fingerprint


class TestCandidateParsing:
    def test_single_power_vector(self, service, tenant):
        seqs, taus = service.parse_candidates(tenant, {"power": [1.0] * 4})
        assert len(seqs) == 1 and seqs[0].shape == (1, 4)
        assert taus == [None]

    def test_power_seq_with_tau(self, service, tenant):
        payload = {"power_seq": [[1.0] * 4, [0.5] * 4], "tau_s": 0.001}
        seqs, taus = service.parse_candidates(tenant, payload)
        assert seqs[0].shape == (2, 4)
        assert taus == [0.001]

    def test_candidate_array(self, service, tenant):
        payload = {
            "candidates": [
                {"power": [1.0] * 4},
                {"power_seq": [[1.0] * 4, [0.2] * 4], "tau_s": 0.002},
            ]
        }
        seqs, taus = service.parse_candidates(tenant, payload)
        assert len(seqs) == 2
        assert taus == [None, 0.002]

    def test_wrong_length_rejected(self, service, tenant):
        with pytest.raises(ValueError, match="n_cores"):
            service.parse_candidates(tenant, {"power": [1.0] * 7})

    def test_negative_power_rejected(self, service, tenant):
        with pytest.raises(ValueError, match="non-negative"):
            service.parse_candidates(tenant, {"power": [1.0, -1.0, 1.0, 1.0]})

    def test_missing_power_rejected(self, service, tenant):
        with pytest.raises(ValueError, match="power"):
            service.parse_candidates(tenant, {"tau_s": 0.001})


class TestTauSelection:
    def test_ladder_matches_default(self, service, tenant):
        seq = [[2.0] * 4, [0.1] * 4]
        seqs, taus = service.ladder_candidates(tenant, {"power_seq": seq})
        assert taus[0] is None
        assert taus[1:] == sorted(DEFAULT_TAU_LADDER_S, reverse=True)
        # rotation-off candidate is evaluated on the first epoch only
        assert seqs[0].shape == (1, 4)

    def test_single_epoch_never_rotates(self, service, tenant):
        seqs, taus = service.ladder_candidates(tenant, {"power": [1.0] * 4})
        assert all(tau is None for tau in taus)

    def test_selects_slowest_sustainable(self, service, tenant):
        taus = [None, 0.004, 0.002, 0.001]
        # target = 70 - 1 = 69; first (slowest) peak at/below target wins
        peaks = [75.0, 70.0, 68.5, 68.0]
        result = service.tau_payload(tenant, peaks, taus)
        assert result["tau_s"] == 0.002
        assert result["sustainable"] is True
        assert len(result["ladder"]) == 4

    def test_falls_back_to_best_achievable(self, service, tenant):
        taus = [None, 0.004, 0.002]
        peaks = [90.0, 85.2, 85.0]  # nothing sustainable
        result = service.tau_payload(tenant, peaks, taus)
        # slowest within 0.5 degC of the best achievable peak
        assert result["tau_s"] == 0.004
        assert result["sustainable"] is False

    def test_peak_payload_sustainability(self, service, tenant):
        body = service.peak_payload(tenant, [68.0], [None], single=True)
        assert body["sustainable"] is True
        assert body["headroom_c"] == pytest.approx(2.0)
        body = service.peak_payload(tenant, [69.5], [None], single=True)
        assert body["sustainable"] is False


class TestDegradationLadder:
    def test_failure_path_to_safe_park(self, service, tenant):
        config = service.config
        mode = service.record_simulate_failure(tenant, now_s=100.0)
        assert mode == "degraded"
        # degraded blocks simulate but not the analytic endpoints
        assert service.blocked_for(tenant, "simulate", 100.0) == pytest.approx(
            config.retry_after_s
        )
        assert service.blocked_for(tenant, "peak", 100.0) is None
        service.record_simulate_failure(tenant, now_s=100.0)
        mode = service.record_simulate_failure(tenant, now_s=100.0)
        assert mode == "safe-park"
        # safe-park blocks everything
        assert service.blocked_for(tenant, "peak", 100.0) == pytest.approx(
            config.park_retry_after_s
        )

    def test_cooldown_expiry_admits_requests(self, service, tenant):
        service.record_simulate_failure(tenant, now_s=0.0)
        after = service.config.retry_after_s + 0.1
        assert service.blocked_for(tenant, "simulate", after) is None

    def test_success_resets(self, service, tenant):
        service.record_simulate_failure(tenant, now_s=0.0)
        service.record_simulate_success(tenant)
        assert tenant.mode == "normal"
        assert tenant.failures == 0
        assert service.blocked_for(tenant, "simulate", 0.0) is None

    def test_transitions_counted(self, service, tenant):
        service.record_simulate_failure(tenant, now_s=0.0)
        service.record_simulate_success(tenant)
        gauges = service.gauges()
        assert gauges["serve.degradation.to_degraded"] == 1.0
        assert gauges["serve.degradation.to_normal"] == 1.0


class TestSimulate:
    def test_bounded_horizon_summary(self, service, tenant):
        summary = service.simulate(
            tenant,
            {
                "max_time_s": 0.005,
                "workload": {"kind": "homogeneous", "seed": 3},
            },
        )
        assert summary["scheduler"] == "hotpotato"
        assert summary["horizon_s"] == pytest.approx(0.005)
        assert summary["tasks_submitted"] >= 1

    def test_horizon_clamped(self, service, tenant):
        summary = service.simulate(
            tenant,
            {"max_time_s": 999.0, "workload": {"kind": "homogeneous"}},
        )
        assert summary["horizon_s"] == service.config.simulate_max_time_s

    def test_deterministic_across_calls(self, service, tenant):
        payload = {
            "max_time_s": 0.005,
            "scheduler": "pcmig",
            "workload": {"kind": "mixed", "n_tasks": 2, "seed": 7},
        }
        first = service.simulate(tenant, payload)
        second = service.simulate(tenant, payload)
        assert first == second

    def test_unknown_scheduler_rejected(self, service, tenant):
        with pytest.raises(ValueError, match="unknown scheduler"):
            service.simulate(
                tenant, {"scheduler": "fcfs", "workload": {"kind": "mixed"}}
            )

    def test_unknown_workload_kind_rejected(self, service, tenant):
        with pytest.raises(ValueError, match="workload kind"):
            service.simulate(tenant, {"workload": {"kind": "adversarial"}})

"""Cross-tenant cache semantics: sharing, isolation, counters."""

import numpy as np
import pytest

from repro import config
from repro.serve import ServeCache, config_fingerprint, model_fingerprint


@pytest.fixture()
def cache():
    return ServeCache()


@pytest.fixture(scope="module")
def cfg():
    return config.small_test()


class TestFingerprints:
    def test_same_config_same_fingerprints(self, cfg):
        assert config_fingerprint(cfg) == config_fingerprint(cfg)
        assert model_fingerprint(cfg) == model_fingerprint(cfg)

    def test_dtm_threshold_changes_model_fingerprint(self, cfg):
        import dataclasses

        warm = cfg.replace(
            thermal=dataclasses.replace(cfg.thermal, dtm_threshold_c=80.0)
        )
        assert model_fingerprint(warm) != model_fingerprint(cfg)
        assert config_fingerprint(warm) != config_fingerprint(cfg)

    def test_hysteresis_changes_only_config_fingerprint(self, cfg):
        import dataclasses

        tweaked = cfg.replace(
            thermal=dataclasses.replace(cfg.thermal, dtm_hysteresis_c=3.0)
        )
        assert model_fingerprint(tweaked) == model_fingerprint(cfg)
        assert config_fingerprint(tweaked) != config_fingerprint(cfg)


class TestSharing:
    def test_same_config_shares_dynamics_and_calculator(self, cache, cfg):
        assert cache.dynamics_for(cfg) is cache.dynamics_for(cfg)
        assert cache.calculator_for(cfg) is cache.calculator_for(cfg)
        stats = cache.stats()
        assert stats["dynamics.misses"] == 1
        assert stats["dynamics.hits"] >= 1

    def test_different_threshold_distinct_dynamics(self, cache, cfg):
        import dataclasses

        warm = cfg.replace(
            thermal=dataclasses.replace(cfg.thermal, dtm_threshold_c=80.0)
        )
        assert cache.dynamics_for(cfg) is not cache.dynamics_for(warm)
        assert cache.stats()["dynamics.misses"] == 2

    def test_hysteresis_variants_share_memo_store(self, cache, cfg):
        """Calculators differing only in hysteresis share one memo but
        never each other's entries (config_key in the fingerprint)."""
        import dataclasses

        tweaked = cfg.replace(
            thermal=dataclasses.replace(cfg.thermal, dtm_hysteresis_c=3.0)
        )
        calc_a = cache.calculator_for(cfg)
        calc_b = cache.calculator_for(tweaked)
        assert calc_a is not calc_b
        assert calc_a._peak_cache is calc_b._peak_cache
        assert calc_a.config_key != calc_b.config_key
        power = np.full((1, cfg.n_cores), 1.0)
        peak_a = calc_a.peak_batch([power], [None])[0]
        peak_b = calc_b.peak_batch([power], [None])[0]
        assert peak_a == peak_b  # same physics...
        # ...but cached under distinct keys: no hit crossed calculators
        assert len(calc_a._peak_cache) == 2

    def test_memo_hits_across_shared_calculator(self, cache, cfg):
        calc = cache.calculator_for(cfg)
        power = np.full((1, cfg.n_cores), 1.2)
        first = calc.peak_batch([power], [None])[0]
        again = calc.peak_batch([power], [None])[0]
        assert first == again
        assert cache.stats()["peak_memo.hits"] >= 1

    def test_context_for_reuses_substrates(self, cache, cfg):
        ctx = cache.context_for(cfg)
        assert ctx.dynamics is cache.dynamics_for(cfg)
        assert ctx.calculator is cache.calculator_for(cfg)
        # contexts themselves are private per call
        assert cache.context_for(cfg) is not ctx


class TestEviction:
    def test_retired_memo_keeps_counters_drops_data(self, cfg):
        import dataclasses

        cache = ServeCache(dynamics_capacity=1)
        calc = cache.calculator_for(cfg)
        power = np.full((1, cfg.n_cores), 1.0)
        calc.peak_batch([power], [None])
        assert cache.stats()["peak_memo.size"] == 1
        warm = cfg.replace(
            thermal=dataclasses.replace(cfg.thermal, dtm_threshold_c=80.0)
        )
        cache.dynamics_for(warm)  # evicts cfg's entry, retires its memo
        stats = cache.stats()
        assert stats["peak_memo.size"] == 0  # data dropped
        assert stats["peak_memo.misses"] >= 1  # counters preserved

"""Live-server round-trips, micro-batch equivalence, HTTP degradation.

Every test boots a real :class:`~repro.serve.http.ThermalServer` on an
ephemeral port inside ``asyncio.run`` and talks to it over TCP — the
same path ``python -m repro.serve`` serves.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import config
from repro.obs.export import parse_openmetrics
from repro.serve import MicroBatcher, ServeCache, ServeConfig, ThermalServer
from repro.serve.loadgen import _http_request

SMALL = {"mesh_width": 2, "mesh_height": 2}


def run_server(handler, serve_config=None):
    """Boot a server, run ``handler(server, host, port)``, tear down."""

    async def main():
        server = ThermalServer(serve_config or ServeConfig(port=0))
        await server.start()
        try:
            return await handler(server, server.config.host, server.port)
        finally:
            await server.close()

    return asyncio.run(main())


async def _post(host, port, path, payload):
    status, body = await _http_request(host, port, "POST", path, payload)
    return status, json.loads(body) if body else {}


async def _create_tenant(host, port, name, overrides=None):
    status, body = await _post(
        host, port, "/v1/tenants", {"name": name, "config": overrides or SMALL}
    )
    assert status == 200, body
    return body


class TestEndpointRoundTrips:
    def test_discovery_and_tenant_lifecycle(self):
        async def handler(server, host, port):
            status, body = await _http_request(host, port, "GET", "/", None)
            doc = json.loads(body)
            assert status == 200
            assert "POST /v1/peak" in doc["endpoints"]

            info = await _create_tenant(host, port, "t0")
            assert info["n_cores"] == 4

            status, body = await _http_request(
                host, port, "GET", "/v1/tenants", None
            )
            tenants = json.loads(body)["tenants"]
            assert [t["tenant"] for t in tenants] == ["t0"]

            status, _ = await _http_request(
                host, port, "DELETE", "/v1/tenants/t0", None
            )
            assert status == 200
            status, body = await _http_request(
                host, port, "GET", "/v1/tenants", None
            )
            assert json.loads(body)["tenants"] == []

        run_server(handler)

    def test_peak_tau_simulate_roundtrip(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            status, peak = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}
            )
            assert status == 200
            assert peak["t_peak_c"] > 45.0  # above ambient
            assert isinstance(peak["sustainable"], bool)

            status, tau = await _post(
                host,
                port,
                "/v1/tau",
                {"tenant": "t0", "power_seq": [[2.0] * 4, [0.1] * 4]},
            )
            assert status == 200
            assert len(tau["ladder"]) == 7  # rotation-off + 6-rung ladder

            status, sim = await _post(
                host,
                port,
                "/v1/simulate",
                {
                    "tenant": "t0",
                    "max_time_s": 0.005,
                    "workload": {"kind": "homogeneous", "seed": 1},
                },
            )
            assert status == 200
            assert sim["tenant"] == "t0"
            assert sim["scheduler"] == "hotpotato"

        run_server(handler)

    def test_peak_jsonl_streaming(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            lines = [json.dumps({"tenant": "t0"})] + [
                json.dumps({"power": [0.5 * (k + 1)] * 4}) for k in range(3)
            ]
            body = ("\n".join(lines) + "\n").encode()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                (
                    f"POST /v1/peak HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Type: application/jsonl\r\n"
                    f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert b"200" in head.splitlines()[0]
            results = [json.loads(line) for line in payload.splitlines() if line]
            assert len(results) == 3
            # more power, hotter peak
            peaks = [r["t_peak_c"] for r in results]
            assert peaks == sorted(peaks)

        run_server(handler)

    def test_error_statuses(self):
        async def handler(server, host, port):
            # unknown route
            status, _ = await _http_request(host, port, "GET", "/nope", None)
            assert status == 404
            # wrong method
            status, _ = await _http_request(host, port, "POST", "/metrics", {})
            assert status == 405
            # unknown tenant
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "ghost", "power": [1.0] * 4}
            )
            assert status == 404
            # malformed payload
            await _create_tenant(host, port, "t0")
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 3}
            )
            assert status == 400
            # server still healthy afterwards
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}
            )
            assert status == 200

        run_server(handler)

    def test_metrics_exposition_parses(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            await _post(host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4})
            status, body = await _http_request(host, port, "GET", "/metrics", None)
            assert status == 200
            metrics = parse_openmetrics(body.decode())
            assert metrics["repro_serve_tenants"] == 1.0
            assert metrics["repro_serve_http_requests"] >= 3.0
            assert "repro_serve_cache_peak_memo_hits" in metrics
            assert "repro_serve_batch_flushes" in metrics

        run_server(handler)


class TestCrossTenantCache:
    def test_shared_config_hits_and_determinism(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "a")
            await _create_tenant(host, port, "b")
            power = [1.3] * 4
            _, first = await _post(
                host, port, "/v1/peak", {"tenant": "a", "power": power}
            )
            _, second = await _post(
                host, port, "/v1/peak", {"tenant": "b", "power": power}
            )
            # same configuration, same candidate: bit-identical answer...
            assert first["t_peak_c"] == second["t_peak_c"]
            # ...served from the shared memo (tenant b hit tenant a's entry)
            stats = server.cache.stats()
            assert stats["peak_memo.hits"] >= 1
            assert stats["calculators.hits"] >= 1

        run_server(handler)

    def test_distinct_threshold_no_cross_hit(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "cool", SMALL)
            await _create_tenant(
                host, port, "warm", dict(SMALL, dtm_threshold_c=80.0)
            )
            power = [1.3] * 4
            _, cool = await _post(
                host, port, "/v1/peak", {"tenant": "cool", "power": power}
            )
            _, warm = await _post(
                host, port, "/v1/peak", {"tenant": "warm", "power": power}
            )
            # distinct calibrations: distinct dynamics entries, no sharing
            assert server.cache.stats()["dynamics.misses"] == 2
            # different T_DTM -> different sustainability verdicts are
            # possible; the headroom reflects each tenant's own threshold
            assert warm["headroom_c"] == pytest.approx(
                cool["headroom_c"] + 10.0 - (warm["t_peak_c"] - cool["t_peak_c"])
            )

        run_server(handler)


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self):
        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            payloads = [
                {"tenant": "t0", "power": [0.2 * (k + 1)] * 4} for k in range(6)
            ]
            results = await asyncio.gather(
                *(_post(host, port, "/v1/peak", p) for p in payloads)
            )
            assert all(status == 200 for status, _ in results)
            assert server.batcher.requests >= 6
            # at least one flush served several candidates at once
            assert server.batcher.coalesced >= 2
            assert server.batcher.flushes < server.batcher.requests

        run_server(handler)

    def test_batched_equals_sequential_bitwise(self):
        """Coalesced evaluation is bit-for-bit the sequential answer."""
        cfg = config.small_test()
        cache = ServeCache()
        calculator = cache.calculator_for(cfg)
        rng = np.random.default_rng(42)
        seqs = [rng.uniform(0.2, 2.0, (1, cfg.n_cores)) for _ in range(8)]
        taus = [None, 0.001, 0.002, None, 0.0005, 0.001, None, 0.004]

        async def batched():
            batcher = MicroBatcher()
            halves = await asyncio.gather(
                batcher.evaluate_many(calculator, seqs[:4], taus[:4]),
                batcher.evaluate_many(calculator, seqs[4:], taus[4:]),
            )
            assert batcher.flushes == 1  # both calls coalesced
            return halves[0] + halves[1]

        coalesced = asyncio.run(batched())
        sequential = [
            float(calculator.peak_batch([seq], [tau])[0])
            for seq, tau in zip(seqs, taus)
        ]
        assert coalesced == sequential  # exact, not approx

    def test_batch_error_propagates_per_group(self):
        class Broken:
            def peak_batch(self, seqs, taus):
                raise RuntimeError("boom")

        async def main():
            batcher = MicroBatcher()
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.evaluate_many(
                    Broken(), [np.ones((1, 4))], [None]
                )

        asyncio.run(main())


class TestSimulateBatching:
    """Coalesced /v1/simulate bursts run fused and stay byte-identical."""

    PAYLOADS = [
        {
            "tenant": "t0",
            "max_time_s": 0.02,
            "scheduler": "hotpotato",
            "workload": {"kind": "homogeneous", "seed": 1},
        },
        {
            "tenant": "t0",
            "max_time_s": 0.02,
            "scheduler": "pcmig",
            "workload": {"kind": "homogeneous", "seed": 1},
        },
        {
            "tenant": "t0",
            "max_time_s": 0.03,  # distinct horizon within one burst
            "scheduler": "hotpotato",
            "workload": {"kind": "mixed", "seed": 3, "n_tasks": 3},
        },
    ]

    def test_burst_equals_sequential_bitwise(self):
        serve_config = ServeConfig(port=0, batch_window_s=0.1)

        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            sequential = []
            for payload in self.PAYLOADS:
                status, body = await _post(
                    host, port, "/v1/simulate", payload
                )
                assert status == 200
                sequential.append(body)
            assert server.sim_batcher.simulate_fused == 0

            burst = await asyncio.gather(
                *(
                    _post(host, port, "/v1/simulate", p)
                    for p in self.PAYLOADS
                )
            )
            assert all(status == 200 for status, _ in burst)
            # the burst coalesced and its bodies (floats included) are
            # exactly the sequential ones
            assert server.sim_batcher.simulate_fused >= 2
            assert [body for _, body in burst] == sequential
            snapshot = server.registry.snapshot()
            assert snapshot["parallel.batch.width_initial"] >= 2
            assert snapshot["parallel.batch.fused_updates"] >= 1

        run_server(handler, serve_config)

    def test_burst_isolates_per_request_failures(self):
        serve_config = ServeConfig(port=0, batch_window_s=0.1)

        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            good = self.PAYLOADS[0]
            bad = dict(good, scheduler="does-not-exist")
            (s_good, body_good), (s_bad, body_bad) = await asyncio.gather(
                _post(host, port, "/v1/simulate", good),
                _post(host, port, "/v1/simulate", bad),
            )
            assert s_good == 200
            assert body_good["scheduler"] == "hotpotato"
            assert s_bad == 400
            assert "unknown scheduler" in body_bad["error"]
            # a validation error is the caller's fault, not a simulate
            # failure: the tenant's degradation ladder must not move
            assert server.service.tenant("t0").mode == "normal"

        run_server(handler, serve_config)


class TestDegradationOverHttp:
    def test_simulate_failure_maps_to_503_retry_after(self, monkeypatch):
        serve_config = ServeConfig(port=0, retry_after_s=30.0)

        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")

            def explode(tenant, payload):
                raise RuntimeError("injected fault")

            monkeypatch.setattr(server.service, "simulate", explode)
            sim = {"tenant": "t0", "workload": {"kind": "homogeneous"}}
            status, body = await _post(host, port, "/v1/simulate", sim)
            assert status == 500
            assert body["mode"] == "degraded"

            # degraded: simulate refused with Retry-After, peak still works
            reader, writer = await asyncio.open_connection(host, port)
            raw = json.dumps(sim).encode()
            writer.write(
                (
                    f"POST /v1/simulate HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(raw)}\r\nConnection: close\r\n\r\n"
                ).encode()
                + raw
            )
            await writer.drain()
            response = await reader.read()
            writer.close()
            await writer.wait_closed()
            head = response.split(b"\r\n\r\n")[0].decode()
            assert "503" in head.splitlines()[0]
            assert any(
                line.lower().startswith("retry-after:")
                for line in head.splitlines()
            )
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 4}
            )
            assert status == 200

        run_server(handler, serve_config)

    def test_safe_park_blocks_everything_until_recovery(self, monkeypatch):
        serve_config = ServeConfig(
            port=0, retry_after_s=0.0, park_after_failures=2
        )

        async def handler(server, host, port):
            await _create_tenant(host, port, "t0")
            calls = {"n": 0}
            real = server.service.simulate

            def flaky(tenant, payload):
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError("transient")
                return real(tenant, payload)

            monkeypatch.setattr(server.service, "simulate", flaky)
            sim = {
                "tenant": "t0",
                "max_time_s": 0.002,
                "workload": {"kind": "homogeneous"},
            }
            # two failures -> safe-park (cooldown 0 keeps the test instant:
            # the mode label sticks until a success, but requests re-admit)
            for _ in range(2):
                status, _ = await _post(host, port, "/v1/simulate", sim)
                assert status == 500
            assert server.service.tenant("t0").mode == "safe-park"
            # third attempt succeeds and resets the ladder
            status, body = await _post(host, port, "/v1/simulate", sim)
            assert status == 200
            assert server.service.tenant("t0").mode == "normal"
            gauges = server.service.gauges()
            assert gauges["serve.degradation.to_safe_park"] == 1.0
            assert gauges["serve.simulate.failures"] == 2.0

        run_server(handler, serve_config)

    def test_oversized_body_rejected(self):
        serve_config = ServeConfig(port=0, max_body_bytes=64)

        async def handler(server, host, port):
            status, _ = await _post(
                host, port, "/v1/peak", {"tenant": "t0", "power": [1.0] * 64}
            )
            assert status == 413

        run_server(handler, serve_config)

"""Property-based round trips for serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import trace_from_csv, trace_to_csv
from repro.thermal.trace import ThermalTrace


@settings(max_examples=25, deadline=None)
@given(
    n_cores=st.integers(1, 8),
    samples=st.lists(
        st.tuples(
            st.floats(0, 1, allow_nan=False),
            st.floats(20.0, 150.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_trace_csv_round_trip(n_cores, samples, ):
    trace = ThermalTrace(n_cores)
    rng = np.random.default_rng(0)
    time = 0.0
    for gap, base in samples:
        time += gap
        trace.record(time, base + rng.uniform(0, 5, n_cores))
    restored = trace_from_csv(trace_to_csv(trace))
    assert restored.n_cores == trace.n_cores
    assert np.array_equal(restored.times, trace.times)
    assert np.array_equal(restored.temperatures, trace.temperatures)
    assert restored.peak() == trace.peak()

"""Batched Algorithm-1 candidate evaluation (``peak_batch``) and its memo.

The scheduler's greedy scans now evaluate all (assignment, tau) candidates
through one stacked einsum; these tests pin the batched path to the scalar
formula, exercise the fingerprint memo, and bound the caches.
"""

import numpy as np
import pytest

from repro.core import PeakTemperatureCalculator


def _candidates(rng, n_cores, count=12):
    """A mixed candidate set: several deltas, several taus, one static."""
    seqs, taus = [], []
    for i in range(count):
        delta = (2, 3, 4)[i % 3]
        seq = rng.uniform(0.0, 8.0, size=(delta, n_cores))
        tau = (0.5e-3, 1e-3)[i % 2]
        seqs.append(seq)
        taus.append(tau)
    # a non-rotating candidate (tau = None evaluates the steady peak)
    seqs.append(rng.uniform(0.0, 8.0, size=(1, n_cores)))
    taus.append(None)
    return seqs, taus


class TestBatchedEquivalence:
    def test_matches_scalar_formula_for_every_candidate(
        self, dynamics16, cfg16, rng
    ):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seqs, taus = _candidates(rng, dynamics16.model.n_cores)
        batched = calc.peak_batch(seqs, taus)
        for value, seq, tau in zip(batched, seqs, taus):
            if tau is None:
                scalar = calc.steady_peak(seq[0])
            else:
                # the original scalar formula, independent of the memo
                scalar = float(np.max(calc.boundary_temperatures(seq, tau)))
            assert value == pytest.approx(scalar, abs=1e-9)

    def test_scalar_peak_delegates_to_batch(self, dynamics16, cfg16, rng):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seq = rng.uniform(0.0, 8.0, size=(3, dynamics16.model.n_cores))
        assert calc.peak(seq, 1e-3) == calc.peak_batch([seq], [1e-3])[0]

    def test_order_preserved(self, dynamics16, cfg16, rng):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seqs, taus = _candidates(rng, dynamics16.model.n_cores)
        batched = calc.peak_batch(seqs, taus)
        singles = [calc.peak_batch([s], [t])[0] for s, t in zip(seqs, taus)]
        np.testing.assert_array_equal(batched, singles)


class TestMemo:
    def test_repeat_candidates_hit_the_memo(self, dynamics16, cfg16, rng):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seqs, taus = _candidates(rng, dynamics16.model.n_cores)
        first = calc.peak_batch(seqs, taus)
        misses_after_first = calc.cache_stats()["peak_cache.misses"]
        second = calc.peak_batch(seqs, taus)
        stats = calc.cache_stats()
        np.testing.assert_array_equal(first, second)
        assert stats["peak_cache.misses"] == misses_after_first
        assert stats["peak_cache.hits"] >= len(seqs)

    def test_different_power_same_shape_not_conflated(
        self, dynamics16, cfg16, rng
    ):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        n = dynamics16.model.n_cores
        cool = np.full((2, n), 1.0)
        hot = np.full((2, n), 6.0)
        peaks = calc.peak_batch([cool, hot], [1e-3, 1e-3])
        assert peaks[1] > peaks[0] + 1.0

    def test_batch_counters_advance(self, dynamics16, cfg16, rng):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seqs, taus = _candidates(rng, dynamics16.model.n_cores, count=6)
        calc.peak_batch(seqs, taus)
        stats = calc.cache_stats()
        assert stats["batch.calls"] == 1
        assert stats["batch.candidates"] == len(seqs)


class TestValidation:
    def test_length_mismatch_rejected(self, dynamics16, cfg16):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seq = np.ones((2, dynamics16.model.n_cores))
        with pytest.raises(ValueError, match="one tau"):
            calc.peak_batch([seq], [1e-3, 2e-3])

    def test_nonpositive_tau_rejected(self, dynamics16, cfg16):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        seq = np.ones((2, dynamics16.model.n_cores))
        with pytest.raises(ValueError, match="positive"):
            calc.peak_batch([seq], [0.0])

    def test_cache_stats_keys(self, dynamics16, cfg16):
        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        stats = calc.cache_stats()
        for prefix in ("alpha_cache", "beta_cache", "peak_cache"):
            for suffix in ("hits", "misses", "evictions", "size"):
                assert f"{prefix}.{suffix}" in stats


class TestCacheBounds:
    def test_peak_memo_evicts_beyond_capacity(self, dynamics16, cfg16, rng):
        from repro.core import peak_temperature as mod

        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        n = dynamics16.model.n_cores
        extra = 5
        for i in range(mod._PEAK_CACHE_SIZE + extra):
            seq = np.full((1, n), 1.0 + i * 1e-6)
            calc.peak_batch([seq], [1e-3])
        stats = calc.cache_stats()
        assert stats["peak_cache.size"] == mod._PEAK_CACHE_SIZE
        assert stats["peak_cache.evictions"] == extra

    def test_alpha_cache_bounded(self, dynamics16, cfg16):
        from repro.core import peak_temperature as mod

        calc = PeakTemperatureCalculator(dynamics16, cfg16.thermal.ambient_c)
        n = dynamics16.model.n_cores
        seq = np.ones((2, n))
        for i in range(mod._ALPHA_CACHE_SIZE + 3):
            calc.boundary_temperatures(seq, 1e-4 * (i + 1))
        stats = calc.cache_stats()
        assert stats["alpha_cache.size"] <= mod._ALPHA_CACHE_SIZE
        assert stats["alpha_cache.evictions"] >= 3


class TestSharedMemoConfigKeys:
    """Regression: memo keys must carry the thermal configuration.

    The cross-tenant serve cache shares one peak memo store between
    calculators of tenants with the same floorplan.  Before the fix the
    fingerprint was only (tau, shape, digest), so two tenants differing
    only in ``T_DTM``/hysteresis/ambient would silently trade answers.
    """

    def test_fingerprint_includes_config_key(self, dynamics16, cfg16, rng):
        thermal = cfg16.thermal
        calc = PeakTemperatureCalculator(
            dynamics16,
            thermal.ambient_c,
            config_key=(
                thermal.ambient_c,
                thermal.dtm_threshold_c,
                thermal.dtm_hysteresis_c,
            ),
        )
        seq = rng.uniform(0.0, 8.0, size=(2, dynamics16.model.n_cores))
        key = calc._fingerprint(seq, 1e-3)
        assert key[0] == (
            thermal.ambient_c,
            thermal.dtm_threshold_c,
            thermal.dtm_hysteresis_c,
        )

    def test_shared_store_no_stale_hit_across_ambients(
        self, dynamics16, rng
    ):
        from repro._lru import LruCache

        shared = LruCache(256)
        cool = PeakTemperatureCalculator(
            dynamics16, 45.0, config_key=(45.0, 70.0, 2.0), peak_cache=shared
        )
        warm = PeakTemperatureCalculator(
            dynamics16, 55.0, config_key=(55.0, 80.0, 2.0), peak_cache=shared
        )
        seq = rng.uniform(0.0, 8.0, size=(2, dynamics16.model.n_cores))
        peak_cool = float(cool.peak_batch([seq], [1e-3])[0])
        peak_warm = float(warm.peak_batch([seq], [1e-3])[0])
        # a stale hit would have returned the 45C-ambient answer verbatim
        assert peak_warm == pytest.approx(peak_cool + 10.0, abs=1e-6)
        # both answers are cached side by side in the one shared store
        assert shared.peek(cool._fingerprint(seq, 1e-3)) == peak_cool
        assert shared.peek(warm._fingerprint(seq, 1e-3)) == peak_warm

    def test_same_config_key_shares_hits_across_calculators(
        self, dynamics16, cfg16, rng
    ):
        from repro._lru import LruCache

        shared = LruCache(256)
        key = (45.0, 70.0, 2.0)
        a = PeakTemperatureCalculator(
            dynamics16, 45.0, config_key=key, peak_cache=shared
        )
        b = PeakTemperatureCalculator(
            dynamics16, 45.0, config_key=key, peak_cache=shared
        )
        seq = rng.uniform(0.0, 8.0, size=(2, dynamics16.model.n_cores))
        first = a.peak_batch([seq], [1e-3])
        hits_before = shared.hits
        second = b.peak_batch([seq], [1e-3])
        np.testing.assert_array_equal(first, second)
        assert shared.hits == hits_before + 1

    def test_simcontext_passes_thermal_config_key(self):
        from repro import config
        from repro.sim.context import SimContext

        ctx = SimContext(config.small_test())
        thermal = ctx.config.thermal
        assert ctx.calculator.config_key == (
            thermal.ambient_c,
            thermal.dtm_threshold_c,
            thermal.dtm_hysteresis_c,
        )

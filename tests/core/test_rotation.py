"""Rotation schedule semantics."""

import numpy as np
import pytest

from repro.core.rotation import RotationGroup, RotationSchedule


@pytest.fixture()
def group():
    return RotationGroup(cores=[5, 6, 9, 10], slots=["a", "b", None, None])


class TestRotationGroup:
    def test_size_and_threads(self, group):
        assert group.size == 4
        assert group.threads == ("a", "b")

    def test_rotation_advances(self, group):
        assert group.core_of_slot(0, epoch=0) == 5
        assert group.core_of_slot(0, epoch=1) == 6
        assert group.core_of_slot(0, epoch=4) == 5  # full period

    def test_occupancy(self, group):
        occ0 = group.occupancy_at(0)
        assert occ0 == {5: "a", 6: "b"}
        occ1 = group.occupancy_at(1)
        assert occ1 == {6: "a", 9: "b"}

    def test_every_thread_visits_every_core(self, group):
        visited = {group.core_of_slot(0, e) for e in range(group.size)}
        assert visited == {5, 6, 9, 10}

    def test_validation(self):
        with pytest.raises(ValueError):
            RotationGroup([], [])
        with pytest.raises(ValueError):
            RotationGroup([1, 2], ["a"])
        with pytest.raises(ValueError):
            RotationGroup([1, 1], ["a", None])
        with pytest.raises(ValueError):
            RotationGroup([1, 2], ["a", "a"])


class TestRotationSchedule:
    def make_schedule(self, tau=0.5e-3):
        g0 = RotationGroup([5, 6, 9, 10], ["a", "b", None, None])
        g1 = RotationGroup([1, 2, 4, 7, 8, 11, 13, 14], ["c"] + [None] * 7)
        return RotationSchedule([g0, g1], tau)

    def test_period_is_lcm(self):
        sched = self.make_schedule()
        assert sched.period_epochs == 8  # lcm(4, 8)

    def test_static_schedule(self):
        sched = self.make_schedule(tau=None)
        assert not sched.rotating
        assert sched.period_epochs == 1
        assert sched.placement_at(0) == sched.placement_at(5)

    def test_placements_disjoint(self):
        sched = self.make_schedule()
        for epoch in range(8):
            cores = list(sched.placement_at(epoch).values())
            assert len(set(cores)) == len(cores)

    def test_threads_listed(self):
        assert set(self.make_schedule().threads()) == {"a", "b", "c"}

    def test_power_sequence(self):
        sched = self.make_schedule()
        seq = sched.power_sequence(
            16, {"a": 8.0, "b": 4.0, "c": 2.0}, idle_power_w=0.3
        )
        assert seq.shape == (8, 16)
        # total power constant across epochs
        totals = seq.sum(axis=1)
        assert np.allclose(totals, totals[0])
        # each epoch has exactly one core at 8 W
        assert np.all(np.sum(seq == 8.0, axis=1) == 1)
        # core 0 is outside every group: always idle
        assert np.all(seq[:, 0] == 0.3)

    def test_migrations_between_epochs(self):
        sched = self.make_schedule()
        moves = sched.migrations_between(0, 1)
        moved = {m[0] for m in moves}
        assert moved == {"a", "b", "c"}
        for thread, src, dst in moves:
            assert src != dst

    def test_no_migration_when_static(self):
        sched = self.make_schedule(tau=None)
        assert sched.migrations_between(0, 1) == []

    def test_overlap_validation(self):
        g0 = RotationGroup([1, 2], ["a", None])
        g_core_clash = RotationGroup([2, 3], ["b", None])
        with pytest.raises(ValueError):
            RotationSchedule([g0, g_core_clash], 1e-3)
        g_thread_clash = RotationGroup([3, 4], ["a", None])
        with pytest.raises(ValueError):
            RotationSchedule([g0, g_thread_clash], 1e-3)

    def test_bad_tau(self):
        with pytest.raises(ValueError):
            RotationSchedule([], 0.0)

    def test_single_core_group_never_rotates(self):
        sched = RotationSchedule([RotationGroup([3], ["a"])], 1e-3)
        assert not sched.rotating
        assert sched.placement_at(7) == {"a": 3}

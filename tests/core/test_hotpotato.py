"""HotPotato heuristic (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.hotpotato import HotPotato, ThreadInfo


@pytest.fixture()
def hp16(rings16, calculator16):
    return HotPotato(
        rings16,
        calculator16,
        t_dtm_c=70.0,
        headroom_delta_c=1.0,
        idle_power_w=0.3,
        initial_tau_s=0.5e-3,
    )


@pytest.fixture()
def hp64(rings64, calculator64):
    return HotPotato(rings64, calculator64, t_dtm_c=70.0)


def hot(i, power=8.0, cpi=0.8):
    return ThreadInfo(f"hot{i}", power, cpi)


def cold(i, power=2.2, cpi=2.6):
    return ThreadInfo(f"cold{i}", power, cpi)


class TestAdmission:
    def test_first_thread_gets_lowest_ring(self, hp16):
        ring = hp16.admit(hot(0))
        assert ring == 0

    def test_duplicate_admission_rejected(self, hp16):
        hp16.admit(hot(0))
        with pytest.raises(ValueError):
            hp16.admit(hot(0))

    def test_chip_full_rejected(self, hp16):
        for i in range(16):
            hp16.admit(cold(i))
        with pytest.raises(ValueError):
            hp16.admit(cold(99))

    def test_sustainable_admission_respects_headroom(self, hp16):
        """Every accepted sustainable placement keeps T_peak + Delta below
        T_DTM (Algorithm 2 line 3)."""
        for i in range(3):
            hp16.admit(cold(i))
            assert hp16.peak_temperature() + 1.0 < 70.0

    def test_thermally_pressured_thread_lands_outward(self, hp16):
        """Hot threads spill toward higher-AMD rings as inner rings become
        thermally saturated."""
        rings = [hp16.admit(hot(i)) for i in range(8)]
        assert rings[0] == 0
        assert max(rings) > 0
        assert rings == sorted(rings)  # monotone spill outward

    def test_cold_threads_stack_inner(self, hp16):
        rings = [hp16.admit(cold(i)) for i in range(4)]
        assert rings == [0, 0, 0, 0]


class TestRemoval:
    def test_remove_unknown(self, hp16):
        with pytest.raises(KeyError):
            hp16.remove("ghost")

    def test_remove_frees_slot(self, hp16):
        hp16.admit(hot(0))
        hp16.remove("hot0")
        assert hp16.n_threads == 0
        assert len(hp16.free_slots(0)) == 4

    def test_exit_consolidates_inward(self, hp64):
        """After hot threads leave, memory-bound threads migrate to lower
        AMD rings (Algorithm 2 lines 16-22)."""
        for i in range(16):
            hp64.admit(hot(i))
        for i in range(8):
            hp64.admit(cold(i, power=3.0, cpi=2.6))
        outer_before = max(hp64.ring_of(f"cold{i}") for i in range(8))
        for i in range(16):
            hp64.remove(f"hot{i}")
        outer_after = max(hp64.ring_of(f"cold{i}") for i in range(8))
        assert outer_after <= outer_before
        assert hp64.peak_temperature() < 70.0

    def test_rotation_stops_when_statically_sustainable(self, hp16):
        """Cold workload: Algorithm 2 lines 23-27 stop rotation."""
        for i in range(4):
            hp16.admit(cold(i))
        hp16.rebalance()
        assert hp16.tau_s is None


class TestRotationControl:
    def test_initial_tau(self, hp16):
        assert hp16.tau_s == pytest.approx(0.5e-3)

    def test_hot_load_keeps_rotating(self, hp16):
        hp16.admit(hot(0))
        hp16.rebalance()
        # one 8 W thread pinned would hit 80 C; rotation must stay on
        assert hp16.tau_s is not None

    def test_schedule_safety_invariant(self, hp16):
        """Whatever mix is admitted, the analytic peak of the final schedule
        stays below T_DTM whenever that is achievable."""
        for i in range(2):
            hp16.admit(hot(i))
        for i in range(6):
            hp16.admit(cold(i))
        assert hp16.peak_temperature() < 70.0

    def test_overload_backstop(self, hp16):
        """An impossible load is still scheduled (DTM backstops); tau does
        not crash to the fastest rung without thermal benefit."""
        for i in range(16):
            hp16.admit(hot(i, power=8.0))
        assert hp16.n_threads == 16
        peaks_tau = hp16.tau_s
        assert peaks_tau is None or peaks_tau >= 0.125e-3


class TestStateQueries:
    def test_fingerprint_changes_on_admit(self, hp16):
        before = hp16.state_fingerprint()
        hp16.admit(cold(0))
        assert hp16.state_fingerprint() != before

    def test_schedule_contains_all_threads(self, hp16):
        for i in range(5):
            hp16.admit(cold(i))
        schedule = hp16.schedule()
        assert set(schedule.threads()) == {f"cold{i}" for i in range(5)}

    def test_update_power(self, hp16):
        hp16.admit(hot(0))
        hp16.update_power("hot0", 3.3)
        assert hp16._threads["hot0"].power_w == pytest.approx(3.3)

    def test_refresh_reacts_to_cooling(self, hp16):
        hp16.admit(hot(0))
        assert hp16.tau_s is not None
        hp16.update_power("hot0", 1.0)  # thread turned out cold
        hp16.refresh()
        assert hp16.tau_s is None  # rotation stopped

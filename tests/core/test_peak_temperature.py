"""Analytic rotation peak temperature (paper Section IV / Algorithm 1).

The central validation: three independent implementations — the dense
closed form, the Algorithm-1 eigen-space formulation, and brute-force
transient simulation — must agree on the converged periodic cycle.
"""

import numpy as np
import pytest

from repro.core.peak_temperature import (
    PeakTemperatureCalculator,
    brute_force_peak,
    rotation_fixed_point,
    rotation_peak_temperature,
)


def motivational_sequence(n_cores=16, hot_w=8.0, idle_w=0.3):
    """One hot thread rotating over the 4 centre cores of the 4x4 chip."""
    cores = [5, 6, 9, 10]
    seq = np.full((4, n_cores), idle_w)
    for epoch, core in enumerate(cores):
        seq[epoch, core] = hot_w
    return seq


class TestCrossValidation:
    def test_closed_form_matches_brute_force(self, dynamics16):
        seq = motivational_sequence()
        tau = 0.5e-3
        boundaries = rotation_fixed_point(dynamics16, seq, tau, 45.0)
        _, bf_bounds = brute_force_peak(
            dynamics16, seq, tau, 45.0, n_periods=3000
        )
        assert np.allclose(boundaries, bf_bounds, atol=1e-6)

    def test_algorithm1_matches_closed_form(self, dynamics16, calculator16):
        seq = motivational_sequence()
        for tau in (0.25e-3, 0.5e-3, 2e-3):
            closed = rotation_fixed_point(dynamics16, seq, tau, 45.0)
            alg1 = calculator16.boundary_temperatures(seq, tau)
            assert np.allclose(alg1, closed[:, :16], atol=1e-8)

    def test_peaks_agree(self, dynamics16, calculator16):
        seq = motivational_sequence()
        tau = 0.5e-3
        closed = rotation_peak_temperature(dynamics16, seq, tau, 45.0)
        alg1 = calculator16.peak(seq, tau, within_epoch_samples=4)
        bf, _ = brute_force_peak(dynamics16, seq, tau, 45.0, n_periods=3000)
        assert closed == pytest.approx(alg1, abs=1e-6)
        assert closed == pytest.approx(bf, abs=1e-4)

    def test_random_sequences_agree(self, dynamics16, calculator16, rng):
        for delta in (1, 2, 3, 5):
            seq = rng.uniform(0.3, 6.0, size=(delta, 16))
            tau = float(rng.uniform(0.2e-3, 2e-3))
            closed = rotation_fixed_point(dynamics16, seq, tau, 45.0)
            alg1 = calculator16.boundary_temperatures(seq, tau)
            assert np.allclose(alg1, closed[:, :16], atol=1e-7)


class TestPhysicalProperties:
    def test_rotation_cooler_than_static(self, dynamics16, calculator16):
        """Rotating the hot thread must beat pinning it (Fig. 2a vs 2c)."""
        seq = motivational_sequence()
        rotating = calculator16.peak(seq, 0.5e-3, within_epoch_samples=4)
        static = np.full(16, 0.3)
        static[5] = 8.0
        pinned = calculator16.steady_peak(static)
        assert rotating < pinned - 5.0

    def test_faster_rotation_cooler(self, dynamics16):
        """Peak decreases monotonically as tau shrinks (less ripple)."""
        seq = motivational_sequence()
        peaks = [
            rotation_peak_temperature(dynamics16, seq, tau, 45.0)
            for tau in (4e-3, 2e-3, 1e-3, 0.5e-3, 0.25e-3)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(peaks, peaks[1:]))

    def test_tau_to_zero_approaches_average_power(self, dynamics16):
        """As tau -> 0 the rotation behaves like the time-averaged power
        map (perfect averaging)."""
        seq = motivational_sequence()
        fast = rotation_peak_temperature(dynamics16, seq, 1e-6, 45.0)
        avg_power = np.mean(seq, axis=0)
        steady = dynamics16.model.steady_state(avg_power, 45.0)
        avg_peak = float(np.max(dynamics16.model.core_temperatures(steady)))
        assert fast == pytest.approx(avg_peak, abs=0.05)

    def test_uniform_rotation_equals_steady(self, dynamics16, calculator16):
        """Rotating identical power is indistinguishable from steady state."""
        seq = np.full((4, 16), 2.0)
        rotating = calculator16.peak(seq, 0.5e-3)
        steady = calculator16.steady_peak(np.full(16, 2.0))
        assert rotating == pytest.approx(steady, abs=1e-6)

    def test_cyclic_shift_invariance(self, calculator16, rng):
        """Starting the cycle at a different epoch cannot change the peak."""
        seq = rng.uniform(0.3, 6.0, size=(4, 16))
        base = calculator16.peak(seq, 0.5e-3)
        shifted = calculator16.peak(np.roll(seq, 2, axis=0), 0.5e-3)
        assert base == pytest.approx(shifted, abs=1e-8)

    def test_more_power_hotter(self, calculator16, rng):
        seq = rng.uniform(0.3, 4.0, size=(4, 16))
        low = calculator16.peak(seq, 0.5e-3)
        high = calculator16.peak(seq + 1.0, 0.5e-3)
        assert high > low

    def test_peak_above_ambient(self, calculator16):
        seq = np.zeros((2, 16))
        assert calculator16.peak(seq, 1e-3) == pytest.approx(45.0, abs=1e-6)


class TestValidation:
    def test_rejects_wrong_width(self, dynamics16):
        with pytest.raises(ValueError):
            rotation_fixed_point(dynamics16, np.ones((2, 8)), 1e-3, 45.0)

    def test_rejects_empty_sequence(self, dynamics16):
        with pytest.raises(ValueError):
            rotation_fixed_point(dynamics16, np.ones((0, 16)), 1e-3, 45.0)

    def test_rejects_negative_power(self, dynamics16):
        seq = np.ones((2, 16))
        seq[0, 0] = -1.0
        with pytest.raises(ValueError):
            rotation_fixed_point(dynamics16, seq, 1e-3, 45.0)

    def test_rejects_nonpositive_tau(self, dynamics16, calculator16):
        seq = np.ones((2, 16))
        with pytest.raises(ValueError):
            rotation_fixed_point(dynamics16, seq, 0.0, 45.0)
        with pytest.raises(ValueError):
            calculator16.boundary_temperatures(seq, -1e-3)


class TestBruteForce:
    def test_brute_force_from_hot_start_converges_same(self, dynamics16):
        """The periodic fixed point is unique: brute force converges to it
        from any initial condition."""
        seq = motivational_sequence()
        tau = 0.5e-3
        hot_start = np.full(dynamics16.model.n_nodes, 90.0)
        _, from_hot = brute_force_peak(
            dynamics16, seq, tau, 45.0, n_periods=4000, initial_temps_c=hot_start
        )
        _, from_ambient = brute_force_peak(
            dynamics16, seq, tau, 45.0, n_periods=4000
        )
        assert np.allclose(from_hot, from_ambient, atol=1e-5)

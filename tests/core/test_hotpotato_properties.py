"""Property-based tests on HotPotato's bookkeeping invariants.

Random admit/remove/update sequences must never corrupt the slot state:
every live thread sits in exactly one slot, capacities are respected, and
the emitted schedule covers exactly the live threads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.amd import AmdRings
from repro.arch.topology import Mesh
from repro.core.hotpotato import HotPotato, ThreadInfo
from repro.core.peak_temperature import PeakTemperatureCalculator
from repro.thermal.floorplan import Floorplan
from repro.thermal.matex import ThermalDynamics
from repro.thermal.rc_model import MaterialStack, build_rc_model

_MODEL = build_rc_model(Floorplan(3, 3), MaterialStack())
_DYN = ThermalDynamics(_MODEL)
_CALC = PeakTemperatureCalculator(_DYN, 45.0)
_RINGS = AmdRings(Mesh(3, 3))


def _fresh() -> HotPotato:
    return HotPotato(
        _RINGS,
        _CALC,
        t_dtm_c=70.0,
        headroom_delta_c=1.0,
        idle_power_w=0.3,
        initial_tau_s=0.5e-3,
    )


#: an operation: (kind, thread-number, power)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["admit", "remove", "update"]),
        st.integers(0, 8),
        st.floats(0.5, 8.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


def _check_invariants(hp: HotPotato) -> None:
    # every live thread in exactly one slot
    seen = {}
    for ring_index, ring in enumerate(hp._slots):
        assert len(ring) == _RINGS.capacity(ring_index)
        for slot, thread in enumerate(ring):
            if thread is not None:
                assert thread not in seen
                seen[thread] = (ring_index, slot)
    assert set(seen) == set(hp._threads)
    # locations agree with slots
    for thread, location in hp._location.items():
        assert seen[thread] == location
    # schedule exposes exactly the live threads, on disjoint cores
    schedule = hp.schedule()
    assert set(schedule.threads()) == set(hp._threads)
    placement = schedule.placement_at(3)
    assert len(set(placement.values())) == len(placement)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_OPS)
def test_random_sequences_preserve_invariants(ops):
    hp = _fresh()
    live = set()
    for kind, number, power in ops:
        thread_id = f"t{number}"
        if kind == "admit" and thread_id not in live and len(live) < 9:
            hp.admit(ThreadInfo(thread_id, power, 1.0 + power / 10))
            live.add(thread_id)
        elif kind == "remove" and thread_id in live:
            hp.remove(thread_id)
            live.discard(thread_id)
        elif kind == "update" and thread_id in live:
            hp.update_power(thread_id, power)
        _check_invariants(hp)
    assert hp.n_threads == len(live)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    powers=st.lists(st.floats(0.5, 8.0, allow_nan=False), min_size=1, max_size=9)
)
def test_admitted_schedules_peak_is_finite_and_ordered(powers):
    """Whatever mix is admitted, the analytic peak is a sane temperature
    and refreshing never corrupts the state."""
    hp = _fresh()
    for index, power in enumerate(powers):
        hp.admit(ThreadInfo(f"t{index}", power, 1.0))
    peak = hp.peak_temperature()
    assert 45.0 <= peak < 200.0
    hp.refresh()
    _check_invariants(hp)


@settings(max_examples=15, deadline=None)
@given(
    powers=st.lists(
        st.floats(0.5, 3.0, allow_nan=False), min_size=2, max_size=6
    )
)
def test_remove_everything_restores_empty_state(powers):
    hp = _fresh()
    for index, power in enumerate(powers):
        hp.admit(ThreadInfo(f"t{index}", power, 1.0))
    for index in range(len(powers)):
        hp.remove(f"t{index}")
    assert hp.n_threads == 0
    assert all(s is None for ring in hp._slots for s in ring)
    # cold chip: rotation off
    assert hp.tau_s is None

"""Algorithm 1 design-time caches must not interfere across (tau, delta)."""

import numpy as np
import pytest

from repro.core.peak_temperature import (
    PeakTemperatureCalculator,
    rotation_fixed_point,
)
from repro.thermal.floorplan import Floorplan
from repro.thermal.matex import ThermalDynamics
from repro.thermal.rc_model import MaterialStack, build_rc_model


@pytest.fixture(scope="module")
def setup():
    model = build_rc_model(Floorplan(3, 3), MaterialStack())
    dyn = ThermalDynamics(model)
    return dyn, PeakTemperatureCalculator(dyn, 45.0)


def test_interleaved_tau_delta_queries_stay_correct(setup, rng):
    """Query the calculator with alternating (tau, delta) combinations and
    cross-check every answer against the cache-free closed form."""
    dyn, calc = setup
    combos = [(0.5e-3, 2), (1e-3, 4), (0.5e-3, 3), (2e-3, 2), (1e-3, 4)]
    for tau, delta in combos * 2:
        seq = rng.uniform(0.3, 6.0, size=(delta, 9))
        cached = calc.boundary_temperatures(seq, tau)
        reference = rotation_fixed_point(dyn, seq, tau, 45.0)[:, :9]
        assert np.allclose(cached, reference, atol=1e-7), (tau, delta)


def test_cache_entries_accumulate(setup):
    dyn, calc = setup
    before = len(calc._alpha_cache)
    calc.peak(np.full((5, 9), 1.0), 0.7e-3)
    calc.peak(np.full((6, 9), 1.0), 0.7e-3)
    calc.peak(np.full((5, 9), 1.0), 0.9e-3)
    after = len(calc._alpha_cache)
    assert after >= before + 3


def test_same_query_uses_cache(setup):
    dyn, calc = setup
    seq = np.full((4, 9), 2.0)
    first = calc.peak(seq, 0.5e-3)
    second = calc.peak(seq, 0.5e-3)
    assert first == second

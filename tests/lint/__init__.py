"""Tests for the domain lint (``repro.lint``)."""

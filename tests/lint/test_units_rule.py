"""Unit-safety family: positive and negative snippets."""

from .conftest import rule_ids

DOC = '"""doc."""\n'


class TestRawScaleLiteral:
    def test_assignment_to_suffixed_name_fires(self, lint_files):
        findings = lint_files(
            {"mod.py": DOC + "tau_s = 0.5e-3\n"}, select="unit-raw-literal"
        )
        assert rule_ids(findings) == ["unit-raw-literal"]
        assert "repro.units" in findings[0].message

    def test_annotated_class_field_fires(self, lint_files):
        code = DOC + (
            "class C:\n"
            "    hop_latency_s: float = 1.5e-9\n"
        )
        findings = lint_files({"mod.py": code}, select="unit-raw-literal")
        assert rule_ids(findings) == ["unit-raw-literal"]

    def test_function_default_fires(self, lint_files):
        code = DOC + "def run(tau_s=0.5e-3):\n    return tau_s\n"
        findings = lint_files({"mod.py": code}, select="unit-raw-literal")
        assert rule_ids(findings) == ["unit-raw-literal"]

    def test_keyword_argument_fires(self, lint_files):
        code = DOC + "def f(**kw):\n    return kw\n\nf(window_s=10.0e-3)\n"
        findings = lint_files({"mod.py": code}, select="unit-raw-literal")
        assert rule_ids(findings) == ["unit-raw-literal"]

    def test_tuple_of_literals_fires_per_element(self, lint_files):
        code = DOC + "LADDER_S = (4.0e-3, 2.0e-3)\n"
        findings = lint_files({"mod.py": code}, select="unit-raw-literal")
        assert rule_ids(findings) == ["unit-raw-literal"] * 2

    def test_frequency_and_area_suffixes_fire(self, lint_files):
        code = DOC + "f_max_hz = 4.0e9\ncore_area_m2 = 0.81e-6\n"
        findings = lint_files({"mod.py": code}, select="unit-raw-literal")
        assert rule_ids(findings) == ["unit-raw-literal"] * 2

    def test_units_helper_calls_are_clean(self, lint_files):
        code = DOC + (
            "from repro import units\n"
            "tau_s = units.ms(0.5)\n"
            "f_max_hz = units.ghz(4.0)\n"
        )
        assert lint_files({"mod.py": code}, select="unit-raw-literal") == []

    def test_unsuffixed_tolerance_is_clean(self, lint_files):
        code = DOC + "TOLERANCE = 1e-9\nepsilon = 1e-6\n"
        assert lint_files({"mod.py": code}, select="unit-raw-literal") == []

    def test_plain_decimal_is_clean(self, lint_files):
        # Without scientific notation there is no scale factor to misread.
        code = DOC + "ambient_c = 45.0\nwait_s = 2.0\n"
        assert lint_files({"mod.py": code}, select="unit-raw-literal") == []

    def test_units_module_itself_is_exempt(self, lint_files):
        code = DOC + "MILLISECONDS_S = 1e-3\n"
        assert lint_files({"units.py": code}, select="unit-safety") == []


class TestKelvin:
    def test_literal_offset_fires_anywhere(self, lint_files):
        code = DOC + "def to_k(c):\n    return c + 273.15\n"
        findings = lint_files({"mod.py": code}, select="unit-kelvin-literal")
        assert rule_ids(findings) == ["unit-kelvin-literal"]

    def test_offset_arithmetic_fires(self, lint_files):
        code = DOC + (
            "from repro.units import KELVIN_OFFSET\n"
            "def to_k(c):\n"
            "    return c + KELVIN_OFFSET\n"
        )
        findings = lint_files({"mod.py": code}, select="unit-kelvin-arith")
        assert rule_ids(findings) == ["unit-kelvin-arith"]

    def test_attribute_offset_arithmetic_fires(self, lint_files):
        code = DOC + (
            "from repro import units\n"
            "def to_c(k):\n"
            "    return k - units.KELVIN_OFFSET\n"
        )
        findings = lint_files({"mod.py": code}, select="unit-kelvin-arith")
        assert rule_ids(findings) == ["unit-kelvin-arith"]

    def test_conversion_helpers_are_clean(self, lint_files):
        code = DOC + (
            "from repro import units\n"
            "def to_k(c):\n"
            "    return units.celsius_to_kelvin(c)\n"
        )
        assert lint_files({"mod.py": code}, select="unit-safety") == []

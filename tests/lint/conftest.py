"""Fixtures for the lint tests.

``lint_files`` writes hand-written snippet files into a temp tree and runs
the engine over it, so every rule family is exercised against positive and
negative cases without touching the real sources.  Snippets that must fall
inside a scoped package (e.g. determinism rules only fire in
``repro.sim``/``sched``/``thermal``/``core``) simply use a relative path
like ``repro/sim/snippet.py`` — the engine scopes by path, not by import.
"""

import textwrap
from typing import Dict, List, Optional

import pytest

from repro.lint import Finding, default_rules, run_lint


@pytest.fixture()
def lint_files(tmp_path):
    """Write ``{relpath: code}`` under a temp dir and lint it."""

    def _lint(
        files: Dict[str, str], select: Optional[str] = None
    ) -> List[Finding]:
        for relpath, code in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(code))
        rules = None
        if select is not None:
            rules = [
                r
                for r in default_rules()
                if r.id == select or r.family == select
            ]
            assert rules, f"no rules match {select!r}"
        return run_lint([tmp_path], rules=rules)

    return _lint


def rule_ids(findings: List[Finding]) -> List[str]:
    """The rule ids of ``findings``, in report order."""
    return [f.rule for f in findings]

"""Family ``faults``: fault-robustness conventions in scheduler code."""

from .conftest import rule_ids

SELECT = "fault-unguarded-reading"


class TestUnguardedReading:
    def test_flags_ground_truth_read_in_a_scheduler(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/greedy.py": '''
                """doc."""
                class GreedyScheduler:
                    def decide(self):
                        temps = self.ctx.core_temperatures_c()
                        return temps.argmin()
                ''',
            },
            select=SELECT,
        )
        assert rule_ids(findings) == [SELECT]
        assert "observed_temperatures" in findings[0].message

    def test_flags_every_occurrence(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/greedy.py": '''
                """doc."""
                def a(ctx):
                    return ctx.core_temperatures_c()
                def b(ctx):
                    return ctx.core_temperatures_c()
                ''',
            },
            select=SELECT,
        )
        assert rule_ids(findings) == [SELECT, SELECT]

    def test_observed_temperatures_is_clean(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/greedy.py": '''
                """doc."""
                class GreedyScheduler:
                    def decide(self):
                        return self.observed_temperatures().argmin()
                ''',
            },
            select=SELECT,
        )
        assert findings == []

    def test_base_module_is_exempt(self, lint_files):
        # base.py implements observed_temperatures itself: its ground-truth
        # fallback read is the one legal one in the package
        findings = lint_files(
            {
                "repro/sched/base.py": '''
                """doc."""
                def observed_temperatures(self):
                    return self.ctx.core_temperatures_c()
                ''',
            },
            select=SELECT,
        )
        assert findings == []

    def test_engine_code_is_out_of_scope(self, lint_files):
        # ground truth feeds DTM and the trace recorder: legal outside sched/
        findings = lint_files(
            {
                "repro/sim/engine_like.py": '''
                """doc."""
                def step(state):
                    return state.core_temperatures_c()
                ''',
                "repro/obs/probe.py": '''
                """doc."""
                def sample(ctx):
                    return ctx.core_temperatures_c()
                ''',
            },
            select=SELECT,
        )
        assert findings == []

"""Self-check: the committed tree lints clean and the CLI gate works.

This is the tier-1 wiring of the domain lint: ``src/repro`` must produce
zero findings (the committed baseline is empty), and introducing a
positive-case snippet from any of the six rule families must flip the
CLI to exit status 1.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"

#: One positive-case snippet per rule family, written under the path at
#: which its family applies.
FAMILY_SNIPPETS = {
    "unit-safety": ("repro/mod.py", '"""doc."""\ntau_s = 0.5e-3\n'),
    "determinism": (
        "repro/sim/mod.py",
        '"""doc."""\nimport time\nstamp = time.time()\n',
    ),
    "frozen-config": (
        "repro/mod.py",
        '"""doc."""\ndef f(cfg):\n    cfg.mesh_width = 2\n',
    ),
    "scheduler-contract": (
        "repro/sched/mod.py",
        '"""doc."""\n'
        "from .base import Scheduler\n"
        "class LonelyScheduler(Scheduler):\n"
        "    def decide(self):\n"
        "        return None\n",
    ),
    "public-api": ("repro/mod.py", '"""doc."""\n__all__ = ["ghost"]\n'),
    "faults": (
        "repro/sched/mod.py",
        '"""doc."""\ndef f(ctx):\n    return ctx.core_temperatures_c()\n',
    ),
}


def _cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


@pytest.mark.lint
class TestTreeIsClean:
    def test_library_self_check(self):
        findings = run_lint([SRC])
        assert findings == [], [f.to_dict() for f in findings]

    def test_cli_gate_with_committed_baseline(self):
        result = _cli(
            "check", str(SRC), "--baseline", str(BASELINE), "--json"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []

    def test_committed_baseline_is_empty(self):
        data = json.loads(BASELINE.read_text())
        assert data["fingerprints"] == []


@pytest.mark.lint
class TestGateFiresPerFamily:
    @pytest.mark.parametrize(
        "family", sorted(FAMILY_SNIPPETS), ids=sorted(FAMILY_SNIPPETS)
    )
    def test_positive_snippet_flips_exit_to_1(self, tmp_path, family):
        relpath, code = FAMILY_SNIPPETS[family]
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
        result = _cli("check", str(tmp_path), "--json", cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        families = {f["family"] for f in payload["findings"]}
        assert family in families

    def test_error_exit_is_2(self, tmp_path):
        result = _cli("check", str(tmp_path / "missing"), cwd=tmp_path)
        assert result.returncode == 2
        assert "error:" in result.stderr

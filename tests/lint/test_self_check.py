"""Self-check: the committed tree lints clean and the CLI gate works.

This is the tier-1 wiring of the domain lint: ``src/repro`` must produce
zero findings (the committed baseline is empty), and introducing a
positive-case snippet from any of the seven rule families must flip the
CLI to exit status 1.  The ``async-safety`` snippet is deliberately
*transitive* — the async def reaches ``time.sleep`` only through a sync
helper, which is exactly what the per-file rules could never see.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"

#: One positive-case snippet per rule family, written under the path at
#: which its family applies.
FAMILY_SNIPPETS = {
    "unit-safety": ("repro/mod.py", '"""doc."""\ntau_s = 0.5e-3\n'),
    "determinism": (
        "repro/sim/mod.py",
        '"""doc."""\nimport time\nstamp = time.time()\n',
    ),
    "frozen-config": (
        "repro/mod.py",
        '"""doc."""\ndef f(cfg):\n    cfg.mesh_width = 2\n',
    ),
    "scheduler-contract": (
        "repro/sched/mod.py",
        '"""doc."""\n'
        "from .base import Scheduler\n"
        "class LonelyScheduler(Scheduler):\n"
        "    def decide(self):\n"
        "        return None\n",
    ),
    "public-api": ("repro/mod.py", '"""doc."""\n__all__ = ["ghost"]\n'),
    "async-safety": (
        "repro/serve/mod.py",
        '"""doc."""\n'
        "import time\n"
        "def helper():\n"
        "    time.sleep(0.1)\n"
        "async def handler():\n"
        "    return helper()\n",
    ),
    "faults": (
        "repro/sched/mod.py",
        '"""doc."""\ndef f(ctx):\n    return ctx.core_temperatures_c()\n',
    ),
}


def _cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


@pytest.mark.lint
class TestTreeIsClean:
    def test_library_self_check(self):
        findings = run_lint([SRC])
        assert findings == [], [f.to_dict() for f in findings]

    def test_cli_gate_with_committed_baseline(self):
        result = _cli(
            "check", str(SRC), "--baseline", str(BASELINE), "--json"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []

    def test_committed_baseline_is_empty(self):
        data = json.loads(BASELINE.read_text())
        assert data["fingerprints"] == []


@pytest.mark.lint
class TestGateFiresPerFamily:
    @pytest.mark.parametrize(
        "family", sorted(FAMILY_SNIPPETS), ids=sorted(FAMILY_SNIPPETS)
    )
    def test_positive_snippet_flips_exit_to_1(self, tmp_path, family):
        relpath, code = FAMILY_SNIPPETS[family]
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
        result = _cli("check", str(tmp_path), "--json", cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        families = {f["family"] for f in payload["findings"]}
        assert family in families

    def test_error_exit_is_2(self, tmp_path):
        result = _cli("check", str(tmp_path / "missing"), cwd=tmp_path)
        assert result.returncode == 2
        assert "error:" in result.stderr


@pytest.mark.lint
class TestFamilySelection:
    """Families are selectors everywhere rule ids are (satellite fix)."""

    def test_select_family_runs_all_members(self, tmp_path):
        result = _cli("rules", "--select", "async-safety", "--json")
        assert result.returncode == 0, result.stderr
        rules = json.loads(result.stdout)
        assert {r["id"] for r in rules} == {
            "async-blocking-call",
            "async-contextvar-leak",
            "async-lock-across-blocking",
            "async-shared-mutation",
            "async-unawaited-coroutine",
        }
        assert all(r["family"] == "async-safety" for r in rules)

    def test_check_json_records_carry_family(self, tmp_path):
        relpath, code = FAMILY_SNIPPETS["async-safety"]
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
        result = _cli(
            "check", str(tmp_path), "--select", "async-safety", "--json",
            cwd=tmp_path,
        )
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["families"] == ["async-safety"]
        assert all(
            f["family"] == "async-safety" for f in payload["findings"]
        )

    def test_unknown_family_is_usage_error(self, tmp_path):
        result = _cli("check", "--select", "no-such-family", cwd=tmp_path)
        assert result.returncode == 2
        assert "unknown rule ids/families" in result.stderr


@pytest.mark.lint
class TestIncrementalCache:
    def test_warm_run_hits_every_file(self, tmp_path):
        relpath = "repro/mod.py"
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('"""doc."""\nx = 1\n')
        first = _cli("check", str(tmp_path), "--json", cwd=tmp_path)
        assert json.loads(first.stdout)["cache"] == {
            "hits": 0, "misses": 1
        }
        second = _cli("check", str(tmp_path), "--json", cwd=tmp_path)
        assert json.loads(second.stdout)["cache"] == {
            "hits": 1, "misses": 0
        }
        assert (tmp_path / ".lint-cache.json").exists()

    def test_no_cache_flag_skips_cache(self, tmp_path):
        relpath = "repro/mod.py"
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('"""doc."""\nx = 1\n')
        result = _cli(
            "check", str(tmp_path), "--no-cache", "--json", cwd=tmp_path
        )
        assert "cache" not in json.loads(result.stdout)
        assert not (tmp_path / ".lint-cache.json").exists()


@pytest.mark.lint
class TestGraphDump:
    def test_dump_is_json_with_function_summaries(self):
        result = _cli(
            "check", str(SRC / "serve" / "http.py"), "--graph-dump"
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        functions = payload["functions"]
        handler = functions[
            "repro.serve.http.ThermalServer._handle_connection"
        ]
        assert handler["async"] is True
        assert handler["awaits"] >= 3

"""The incremental findings cache: hits, invalidation, soundness.

The contract under test (see :mod:`repro.lint.cache`): unchanged files
are served from the cache, any content change is a miss, project-pass
rules re-run every time, and a corrupt or mismatched cache degrades to
a cold run — never to wrong findings.
"""

import json
import textwrap

from repro.lint import (
    LintCache,
    default_rules,
    has_project_pass,
    run_lint,
    rules_signature,
)


def write_tree(tmp_path, files):
    for relpath, code in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))


def make_cache(tmp_path):
    signature = rules_signature(r.id for r in default_rules())
    return LintCache(tmp_path / "cache.json", signature)


class TestCacheFlow:
    def test_second_run_hits_for_unchanged_files(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/a.py": '"""doc."""\nx = 1\n',
                "repro/b.py": '"""doc."""\ny = 2\n',
            },
        )
        cold = make_cache(tmp_path)
        first = run_lint([tmp_path / "repro"], cache=cold)
        assert cold.misses == 2 and cold.hits == 0
        warm = make_cache(tmp_path)
        second = run_lint([tmp_path / "repro"], cache=warm)
        assert warm.hits == 2 and warm.misses == 0
        assert first == second

    def test_changed_file_misses_others_hit(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/a.py": '"""doc."""\nx = 1\n',
                "repro/b.py": '"""doc."""\ny = 2\n',
            },
        )
        run_lint([tmp_path / "repro"], cache=make_cache(tmp_path))
        (tmp_path / "repro" / "a.py").write_text(
            '"""doc."""\ntau_s = 0.5e-3\n'
        )
        warm = make_cache(tmp_path)
        findings = run_lint([tmp_path / "repro"], cache=warm)
        assert warm.hits == 1 and warm.misses == 1
        assert [f.rule for f in findings] == ["unit-raw-literal"]

    def test_cached_findings_round_trip_exactly(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/a.py": '"""doc."""\ntau_s = 0.5e-3\n'},
        )
        first = run_lint([tmp_path / "repro"], cache=make_cache(tmp_path))
        warm = make_cache(tmp_path)
        second = run_lint([tmp_path / "repro"], cache=warm)
        assert warm.hits == 1
        assert first == second
        assert [f.to_dict() for f in first] == [f.to_dict() for f in second]

    def test_suppressed_findings_stay_suppressed_from_cache(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/a.py": (
                    '"""doc."""\n'
                    "tau_s = 0.5e-3  # lint: ignore[unit-raw-literal]\n"
                ),
            },
        )
        assert run_lint([tmp_path / "repro"], cache=make_cache(tmp_path)) == []
        warm = make_cache(tmp_path)
        assert run_lint([tmp_path / "repro"], cache=warm) == []
        assert warm.hits == 1


class TestInvalidation:
    def test_different_rule_selection_invalidates(self, tmp_path):
        write_tree(tmp_path, {"repro/a.py": '"""doc."""\nx = 1\n'})
        run_lint([tmp_path / "repro"], cache=make_cache(tmp_path))
        narrowed = LintCache(
            tmp_path / "cache.json", rules_signature(["unit-raw-literal"])
        )
        run_lint(
            [tmp_path / "repro"],
            rules=[
                r for r in default_rules() if r.id == "unit-raw-literal"
            ],
            cache=narrowed,
        )
        assert narrowed.hits == 0 and narrowed.misses == 1

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        write_tree(tmp_path, {"repro/a.py": '"""doc."""\nx = 1\n'})
        (tmp_path / "cache.json").write_text("{not json")
        cache = make_cache(tmp_path)
        findings = run_lint([tmp_path / "repro"], cache=cache)
        assert findings == []
        assert cache.misses == 1

    def test_deleted_file_is_pruned_on_save(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/a.py": '"""doc."""\nx = 1\n',
                "repro/b.py": '"""doc."""\ny = 2\n',
            },
        )
        run_lint([tmp_path / "repro"], cache=make_cache(tmp_path))
        (tmp_path / "repro" / "b.py").unlink()
        run_lint([tmp_path / "repro"], cache=make_cache(tmp_path))
        payload = json.loads((tmp_path / "cache.json").read_text())
        assert len(payload["files"]) == 1


class TestProjectPassSoundness:
    def test_project_rules_rerun_on_warm_cache(self, tmp_path):
        # a transitive blocking chain spans two files; editing only the
        # *helper* must still flip the finding in the handler's file,
        # which a per-file cache would hide if project passes were cached.
        write_tree(
            tmp_path,
            {
                "repro/serve/helper.py": (
                    '"""doc."""\n\n\ndef persist(path):\n    return path\n'
                ),
                "repro/serve/handler.py": (
                    '"""doc."""\n'
                    "from .helper import persist\n\n\n"
                    "async def handle(path):\n"
                    "    return persist(path)\n"
                ),
            },
        )
        assert run_lint([tmp_path / "repro"], cache=make_cache(tmp_path)) == []
        (tmp_path / "repro" / "serve" / "helper.py").write_text(
            '"""doc."""\n\n\ndef persist(path):\n    return open(path)\n'
        )
        warm = make_cache(tmp_path)
        findings = run_lint([tmp_path / "repro"], cache=warm)
        assert warm.hits == 1  # handler.py untouched — served from cache
        assert [f.rule for f in findings] == ["async-blocking-call"]
        assert findings[0].path.endswith("handler.py")

    def test_project_pass_rules_are_detected(self):
        project_rules = {
            r.id for r in default_rules() if has_project_pass(r)
        }
        assert "sched-export" in project_rules
        assert "async-blocking-call" in project_rules
        assert "async-contextvar-leak" in project_rules
        assert "unit-raw-literal" not in project_rules

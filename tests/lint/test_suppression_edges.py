"""Suppression and baseline edge cases.

Satellite coverage for the corners the happy-path tests skip: a family
suppression on a line carrying findings from *two* families must
silence only its own; baseline fingerprints are line-independent (they
survive edits that shift code) but path-*dependent* (renaming a file
deliberately resurfaces its grandfathered findings for re-triage).
"""

import textwrap

from .conftest import rule_ids
from repro.lint import load_baseline, partition, run_lint, save_baseline


class TestFamilySuppressionOnMultiFindingLine:
    # one line, two findings from different families: a raw unit literal
    # (unit-safety) and a wall-clock read (determinism, in repro/sim/)
    CODE = '"""doc."""\nimport time\ntau_s = 0.5e-3; stamp = time.time(){comment}\n'

    def write(self, tmp_path, comment=""):
        path = tmp_path / "repro" / "sim" / "mod.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(self.CODE.format(comment=comment)))
        return tmp_path / "repro"

    def test_both_findings_without_suppression(self, tmp_path):
        findings = run_lint([self.write(tmp_path)])
        assert sorted(rule_ids(findings)) == [
            "det-wallclock",
            "unit-raw-literal",
        ]

    def test_family_comment_silences_only_its_member(self, tmp_path):
        root = self.write(tmp_path, comment="  # lint: ignore[determinism]")
        findings = run_lint([root])
        assert rule_ids(findings) == ["unit-raw-literal"]

    def test_two_families_in_one_comment(self, tmp_path):
        root = self.write(
            tmp_path, comment="  # lint: ignore[determinism, unit-safety]"
        )
        assert run_lint([root]) == []

    def test_blanket_comment_silences_both(self, tmp_path):
        root = self.write(tmp_path, comment="  # lint: ignore")
        assert run_lint([root]) == []

    def test_mixed_id_and_family_tokens(self, tmp_path):
        root = self.write(
            tmp_path,
            comment="  # lint: ignore[det-wallclock, unit-safety]",
        )
        assert run_lint([root]) == []


class TestBaselineFingerprintStability:
    CODE = '"""doc."""\ntau_s = 0.5e-3\n'

    def write(self, tmp_path, relpath, prefix=""):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prefix + textwrap.dedent(self.CODE))
        return path

    def test_line_shift_stays_grandfathered(self, tmp_path):
        self.write(tmp_path, "repro/mod.py")
        baseline_path = tmp_path / "baseline.json"
        findings = run_lint([tmp_path / "repro"])
        assert len(findings) == 1
        save_baseline(baseline_path, findings)
        # shift the finding down by several lines: same file, same rule,
        # same message — the fingerprint must not notice
        self.write(
            tmp_path, "repro/mod.py", prefix="# one\n# two\n# three\n"
        )
        shifted = run_lint([tmp_path / "repro"])
        assert shifted[0].line != findings[0].line
        new, grandfathered = partition(
            shifted, load_baseline(baseline_path)
        )
        assert new == []
        assert len(grandfathered) == 1

    def test_rename_resurfaces_the_finding(self, tmp_path):
        # the path is deliberately part of the fingerprint: moving a file
        # is a re-review event, not something a baseline should mask
        old = self.write(tmp_path, "repro/mod.py")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, run_lint([tmp_path / "repro"]))
        old.rename(tmp_path / "repro" / "renamed.py")
        findings = run_lint([tmp_path / "repro"])
        new, grandfathered = partition(
            findings, load_baseline(baseline_path)
        )
        assert len(new) == 1
        assert grandfathered == []

    def test_baseline_round_trips_through_disk(self, tmp_path):
        self.write(tmp_path, "repro/mod.py")
        baseline_path = tmp_path / "baseline.json"
        findings = run_lint([tmp_path / "repro"])
        save_baseline(baseline_path, findings)
        fingerprints = load_baseline(baseline_path)
        assert fingerprints == {f.fingerprint for f in findings}

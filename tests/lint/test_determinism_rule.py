"""Determinism family: scoped to repro.sim/sched/thermal/core paths."""

from .conftest import rule_ids

DOC = '"""doc."""\n'


class TestGlobalRandom:
    def test_stdlib_random_import_fires_in_sim(self, lint_files):
        code = DOC + "import random\nx = random.random()\n"
        findings = lint_files(
            {"repro/sim/snippet.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_from_random_import_fires(self, lint_files):
        code = DOC + "from random import shuffle\n"
        findings = lint_files(
            {"repro/sched/snippet.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_np_random_module_function_fires(self, lint_files):
        code = DOC + "import numpy as np\nx = np.random.rand(4)\n"
        findings = lint_files(
            {"repro/thermal/snippet.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_seeded_generator_is_clean(self, lint_files):
        code = DOC + (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "x = rng.normal()\n"
        )
        assert (
            lint_files({"repro/core/snippet.py": code}, select="determinism")
            == []
        )

    def test_outside_scoped_packages_is_clean(self, lint_files):
        code = DOC + "import random\nx = random.random()\n"
        assert (
            lint_files(
                {"repro/workload/snippet.py": code}, select="determinism"
            )
            == []
        )


class TestUnseededRng:
    def test_unseeded_default_rng_fires(self, lint_files):
        code = DOC + "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_files(
            {"repro/sim/snippet.py": code}, select="det-unseeded-rng"
        )
        assert rule_ids(findings) == ["det-unseeded-rng"]

    def test_unseeded_imported_default_rng_fires(self, lint_files):
        code = DOC + (
            "from numpy.random import default_rng\nrng = default_rng()\n"
        )
        findings = lint_files(
            {"repro/sim/snippet.py": code}, select="det-unseeded-rng"
        )
        assert rule_ids(findings) == ["det-unseeded-rng"]

    def test_seeded_default_rng_is_clean(self, lint_files):
        code = DOC + (
            "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        )
        assert (
            lint_files(
                {"repro/sim/snippet.py": code}, select="det-unseeded-rng"
            )
            == []
        )

    def test_local_function_named_default_rng_is_clean(self, lint_files):
        code = DOC + (
            "def default_rng():\n    return 4\n\nrng = default_rng()\n"
        )
        assert (
            lint_files(
                {"repro/sim/snippet.py": code}, select="det-unseeded-rng"
            )
            == []
        )


class TestWallClock:
    def test_time_time_fires(self, lint_files):
        code = DOC + "import time\nstamp = time.time()\n"
        findings = lint_files(
            {"repro/sim/snippet.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_aliased_time_import_fires(self, lint_files):
        code = DOC + "import time as _time\nstamp = _time.time()\n"
        findings = lint_files(
            {"repro/sched/snippet.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_datetime_now_fires(self, lint_files):
        code = DOC + (
            "import datetime\nstamp = datetime.datetime.now()\n"
        )
        findings = lint_files(
            {"repro/core/snippet.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_perf_counter_telemetry_is_clean(self, lint_files):
        code = DOC + "import time as _time\nstart = _time.perf_counter()\n"
        assert (
            lint_files(
                {"repro/sim/snippet.py": code}, select="det-wallclock"
            )
            == []
        )


class TestTopLevelDeterministicModules:
    """repro/parallel.py is held to the determinism rules despite living
    at the package top level (its serial/parallel equivalence depends on
    never consulting the wall clock or global RNG state)."""

    def test_wallclock_in_parallel_module_fires(self, lint_files):
        code = DOC + "import time\nseed = int(time.time())\n"
        findings = lint_files(
            {"repro/parallel.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_global_random_in_parallel_module_fires(self, lint_files):
        code = DOC + "import random\nseed = random.randint(0, 99)\n"
        findings = lint_files(
            {"repro/parallel.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_perf_counter_in_parallel_module_is_clean(self, lint_files):
        code = DOC + "import time as _time\nstart = _time.perf_counter()\n"
        assert (
            lint_files({"repro/parallel.py": code}, select="determinism")
            == []
        )

    def test_other_top_level_modules_stay_unscoped(self, lint_files):
        code = DOC + "import time\nstamp = time.time()\n"
        assert (
            lint_files({"repro/units.py": code}, select="determinism") == []
        )

    def test_committed_parallel_module_is_clean(self):
        from pathlib import Path

        from repro.lint import run_lint

        src = (
            Path(__file__).resolve().parent.parent.parent
            / "src"
            / "repro"
            / "parallel.py"
        )
        determinism = [
            f for f in run_lint([src]) if f.family == "determinism"
        ]
        assert determinism == []


class TestServePackageIsDeterministic:
    """repro/serve/ joined DETERMINISTIC_MODULES: identical request
    payloads must yield identical answers and the loadgen request tape
    is a pure function of its seed, so calendar time and global RNG are
    banned; monotonic clocks (latency measurement) stay allowed."""

    def test_wallclock_in_serve_fires(self, lint_files):
        code = DOC + "import time\nstamp = time.time()\n"
        findings = lint_files(
            {"repro/serve/snippet.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_global_random_in_serve_fires(self, lint_files):
        code = DOC + "import random\nport = random.randint(1024, 65535)\n"
        findings = lint_files(
            {"repro/serve/snippet.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_perf_counter_in_serve_is_clean(self, lint_files):
        code = DOC + "import time\nstart = time.perf_counter()\n"
        assert (
            lint_files({"repro/serve/snippet.py": code}, select="determinism")
            == []
        )

    def test_committed_serve_package_is_clean(self):
        from pathlib import Path

        from repro.lint import run_lint

        serve = (
            Path(__file__).resolve().parent.parent.parent
            / "src"
            / "repro"
            / "serve"
        )
        sources = sorted(serve.glob("*.py"))
        assert sources, "serve package sources not found"
        determinism = [
            f for f in run_lint(sources) if f.family == "determinism"
        ]
        assert determinism == []


class TestSpansModuleIsDeterministic:
    """repro/obs/spans.py joined DETERMINISTIC_MODULES: trace and span
    ids are monotonic counters and durations come from ``perf_counter``,
    so a replayed request tape produces an identical span tree; wall
    clock and global RNG would break that silently."""

    def test_wallclock_in_spans_fires(self, lint_files):
        code = DOC + "import time\nstart_s = time.time()\n"
        findings = lint_files(
            {"repro/obs/spans.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_global_random_in_spans_fires(self, lint_files):
        code = DOC + "import random\nspan_id = random.getrandbits(64)\n"
        findings = lint_files(
            {"repro/obs/spans.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_perf_counter_in_spans_is_clean(self, lint_files):
        code = DOC + "import time\nstart_s = time.perf_counter()\n"
        assert (
            lint_files({"repro/obs/spans.py": code}, select="determinism")
            == []
        )

    def test_rest_of_obs_package_stays_unscoped(self, lint_files):
        code = DOC + "import time\nstamp = time.time()\n"
        assert (
            lint_files({"repro/obs/export.py": code}, select="determinism")
            == []
        )

    def test_committed_spans_module_is_clean(self):
        from pathlib import Path

        from repro.lint import run_lint

        spans = (
            Path(__file__).resolve().parent.parent.parent
            / "src"
            / "repro"
            / "obs"
            / "spans.py"
        )
        determinism = [
            f for f in run_lint([spans]) if f.family == "determinism"
        ]
        assert determinism == []


class TestTrafficPackageIsDeterministic:
    """repro/traffic/ joined DETERMINISTIC_MODULES: every arrival
    schedule and JSONL trace is a pure function of its seed (the
    scenario-matrix suite and the loadgen byte-compat guarantee depend
    on it), so calendar time and global RNG are banned."""

    def test_wallclock_in_traffic_fires(self, lint_files):
        code = DOC + "import time\nstamp = time.time()\n"
        findings = lint_files(
            {"repro/traffic/snippet.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_global_random_in_traffic_fires(self, lint_files):
        code = DOC + "import random\ngap = random.expovariate(30.0)\n"
        findings = lint_files(
            {"repro/traffic/snippet.py": code}, select="det-global-random"
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_perf_counter_in_traffic_is_clean(self, lint_files):
        code = DOC + "import time\nstart = time.perf_counter()\n"
        assert (
            lint_files(
                {"repro/traffic/snippet.py": code}, select="determinism"
            )
            == []
        )

    def test_committed_traffic_package_is_clean(self):
        from pathlib import Path

        from repro.lint import run_lint

        traffic = (
            Path(__file__).resolve().parent.parent.parent
            / "src"
            / "repro"
            / "traffic"
        )
        sources = sorted(traffic.glob("*.py"))
        assert sources, "traffic package sources not found"
        determinism = [
            f for f in run_lint(sources) if f.family == "determinism"
        ]
        assert determinism == []


class TestBatchedEngineIsDeterministic:
    """The batched engine rides the sim/ and thermal/ scoping: a fused
    sweep's whole contract is byte-identity with solo runs, so a wall
    clock or global-RNG read in ``sim/batch.py`` or
    ``thermal/batched_state.py`` is a determinism finding like any other
    engine module's."""

    def test_wallclock_in_sim_batch_fires(self, lint_files):
        code = DOC + "import time\nround_started = time.time()\n"
        findings = lint_files(
            {"repro/sim/batch.py": code}, select="det-wallclock"
        )
        assert rule_ids(findings) == ["det-wallclock"]

    def test_global_random_in_batched_state_fires(self, lint_files):
        code = DOC + "import random\njitter = random.random()\n"
        findings = lint_files(
            {"repro/thermal/batched_state.py": code},
            select="det-global-random",
        )
        assert rule_ids(findings) == ["det-global-random"]

    def test_committed_batched_modules_are_clean(self):
        from pathlib import Path

        from repro.lint import run_lint

        src = Path(__file__).resolve().parent.parent.parent / "src" / "repro"
        sources = [
            src / "sim" / "batch.py",
            src / "thermal" / "batched_state.py",
        ]
        for source in sources:
            assert source.exists(), source
        determinism = [
            f for f in run_lint(sources) if f.family == "determinism"
        ]
        assert determinism == []

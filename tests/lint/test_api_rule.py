"""Public-API family: __all__ resolution and module docstrings."""

from .conftest import rule_ids

DOC = '"""doc."""\n'


class TestAllResolves:
    def test_unresolved_export_fires(self, lint_files):
        code = DOC + "__all__ = ['exists', 'ghost']\n\ndef exists():\n    pass\n"
        findings = lint_files({"mod.py": code}, select="api-all-unresolved")
        assert rule_ids(findings) == ["api-all-unresolved"]
        assert "ghost" in findings[0].message

    def test_duplicate_export_fires(self, lint_files):
        code = DOC + "__all__ = ['f', 'f']\n\ndef f():\n    pass\n"
        findings = lint_files({"mod.py": code}, select="api-all-unresolved")
        assert rule_ids(findings) == ["api-all-unresolved"]

    def test_dynamic_all_fires(self, lint_files):
        code = DOC + "__all__ = [n for n in ('a',)]\n"
        findings = lint_files({"mod.py": code}, select="api-all-unresolved")
        assert rule_ids(findings) == ["api-all-unresolved"]

    def test_resolved_exports_are_clean(self, lint_files):
        code = DOC + (
            "from json import dumps\n"
            "__all__ = ['dumps', 'VERSION', 'helper', 'Thing']\n"
            "VERSION = 1\n"
            "def helper():\n    pass\n"
            "class Thing:\n    pass\n"
        )
        assert lint_files({"mod.py": code}, select="api-all-unresolved") == []

    def test_module_without_all_is_clean(self, lint_files):
        assert (
            lint_files({"mod.py": DOC + "x = 1\n"}, select="api-all-unresolved")
            == []
        )


class TestModuleDocstring:
    def test_missing_docstring_fires_as_warning(self, lint_files):
        findings = lint_files(
            {"mod.py": "x = 1\n"}, select="api-module-docstring"
        )
        assert rule_ids(findings) == ["api-module-docstring"]
        assert findings[0].severity == "warning"

    def test_empty_module_is_exempt(self, lint_files):
        assert lint_files({"mod.py": ""}, select="api-module-docstring") == []

    def test_documented_module_is_clean(self, lint_files):
        assert (
            lint_files(
                {"mod.py": DOC + "x = 1\n"}, select="api-module-docstring"
            )
            == []
        )

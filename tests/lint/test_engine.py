"""Rule engine mechanics: findings, suppression, baseline, registry."""

import json

import pytest

from repro.lint import (
    Finding,
    default_rules,
    load_baseline,
    partition,
    rule_families,
    rule_ids,
    run_lint,
    save_baseline,
)
from repro.lint.engine import PARSE_ERROR_RULE


class TestFinding:
    def test_ordering_is_by_location_then_rule(self):
        a = Finding("a.py", 3, "rule-b", "m")
        b = Finding("a.py", 5, "rule-a", "m")
        c = Finding("b.py", 1, "rule-a", "m")
        assert sorted([c, b, a]) == [a, b, c]

    def test_round_trips_through_dict(self):
        finding = Finding(
            "x.py", 7, "unit-raw-literal", "msg", "error", "unit-safety"
        )
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_fingerprint_ignores_line(self):
        a = Finding("x.py", 7, "r", "m")
        b = Finding("x.py", 99, "r", "m")
        assert a.fingerprint == b.fingerprint

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("x.py", 1, "r", "m", severity="fatal")


class TestRegistry:
    def test_default_rules_cover_the_seven_families(self):
        families = {rule.family for rule in default_rules()}
        assert families == {
            "unit-safety",
            "determinism",
            "frozen-config",
            "scheduler-contract",
            "public-api",
            "faults",
            "async-safety",
        }

    def test_rule_families_sorted_and_distinct(self):
        families = rule_families()
        assert families == sorted(set(families))
        assert "async-safety" in families

    def test_rule_ids_unique_and_sorted(self):
        ids = rule_ids()
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_every_rule_has_description(self):
        for rule in default_rules():
            assert rule.id and rule.family and rule.description


class TestEngine:
    def test_syntax_error_becomes_parse_finding(self, lint_files):
        findings = lint_files({"broken.py": "def broken(:\n"})
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/dir"])

    def test_findings_sorted_by_path_and_line(self, lint_files):
        findings = lint_files(
            {
                "b.py": "tau_s = 1.0e-3\n",
                "a.py": '"""doc."""\nwindow_s = 1.0e-3\nother_s = 2.0e-3\n',
            }
        )
        locations = [(f.path, f.line) for f in findings]
        assert locations == sorted(locations)


class TestSuppression:
    def test_bare_ignore_suppresses_everything(self, lint_files):
        findings = lint_files(
            {"mod.py": '"""doc."""\ntau_s = 1.0e-3  # lint: ignore\n'}
        )
        assert findings == []

    def test_ignore_by_rule_id(self, lint_files):
        findings = lint_files(
            {
                "mod.py": (
                    '"""doc."""\n'
                    "tau_s = 1.0e-3  # lint: ignore[unit-raw-literal]\n"
                )
            }
        )
        assert findings == []

    def test_ignore_by_family(self, lint_files):
        findings = lint_files(
            {
                "mod.py": (
                    '"""doc."""\n'
                    "tau_s = 1.0e-3  # lint: ignore[unit-safety]\n"
                )
            }
        )
        assert findings == []

    def test_ignore_of_other_rule_does_not_suppress(self, lint_files):
        findings = lint_files(
            {
                "mod.py": (
                    '"""doc."""\n'
                    "tau_s = 1.0e-3  # lint: ignore[det-wallclock]\n"
                )
            }
        )
        assert [f.rule for f in findings] == ["unit-raw-literal"]


class TestBaseline:
    def test_round_trip_and_partition(self, tmp_path):
        old = Finding("x.py", 3, "unit-raw-literal", "legacy")
        new = Finding("y.py", 9, "det-wallclock", "fresh")
        path = tmp_path / "baseline.json"
        save_baseline(path, [old])
        fingerprints = load_baseline(path)
        fresh, grandfathered = partition([old, new], fingerprints)
        assert fresh == [new]
        assert grandfathered == [old]

    def test_baseline_survives_line_drift(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [Finding("x.py", 3, "r", "m")])
        moved = Finding("x.py", 33, "r", "m")
        fresh, grandfathered = partition([moved], load_baseline(path))
        assert fresh == []
        assert grandfathered == [moved]

    def test_rejects_malformed_baseline(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": []}))
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_baseline(path)

"""The project call graph: naming, resolution, summaries, reachability.

These tests build small snippet trees (same convention as ``conftest``:
paths under ``repro/...`` scope exactly like the real sources) and
inspect the :class:`repro.lint.graph.ProjectGraph` directly — the
``async-safety`` rules are tested separately on top of it
(``test_asyncsafety_rule.py``).
"""

import json
import textwrap

import pytest

from repro.lint import Project, ProjectGraph
from repro.lint.engine import collect_files, parse_module
from repro.lint.graph import blocking_kind, module_dotted_name


def build_graph(tmp_path, files):
    """Write ``{relpath: code}`` and build the graph over the tree."""
    for relpath, code in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
    modules = []
    for path in collect_files([tmp_path]):
        module, parse_finding = parse_module(path)
        assert parse_finding is None, parse_finding
        modules.append(module)
    return Project(modules).graph()


class TestModuleNaming:
    def test_plain_module_and_package_init(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/http.py": "def f():\n    pass\n",
                "repro/serve/__init__.py": "",
            },
        )
        assert set(graph.modules_by_name) == {
            "repro.serve.http",
            "repro.serve",
        }
        assert "repro.serve.http.f" in graph.functions

    def test_module_dotted_name_outside_repro_tree(self, tmp_path):
        (tmp_path / "loose.py").write_text("x = 1\n")
        module, _ = parse_module(tmp_path / "loose.py")
        assert module_dotted_name(module) == "loose"


class TestResolution:
    def test_local_function_call(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "def helper():\n"
                    "    pass\n"
                    "def caller():\n"
                    "    helper()\n"
                ),
            },
        )
        summary = graph.functions["repro.serve.m.caller"]
        assert [c.target for c in summary.calls] == ["repro.serve.m.helper"]
        assert summary.calls[0].kind == "project"

    def test_absolute_and_relative_imports(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/a.py": "def target():\n    pass\n",
                "repro/serve/b.py": (
                    "from .a import target\n"
                    "from repro.serve.a import target as absolute\n"
                    "def f():\n"
                    "    target()\n"
                    "    absolute()\n"
                ),
            },
        )
        targets = [
            c.target for c in graph.functions["repro.serve.b.f"].calls
        ]
        assert targets == ["repro.serve.a.target", "repro.serve.a.target"]

    def test_self_method_and_attr_method(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "class Helper:\n"
                    "    def work(self):\n"
                    "        pass\n"
                    "class Server:\n"
                    "    def __init__(self):\n"
                    "        self.helper = Helper()\n"
                    "    def own(self):\n"
                    "        pass\n"
                    "    def run(self):\n"
                    "        self.own()\n"
                    "        self.helper.work()\n"
                ),
            },
        )
        targets = [
            c.target for c in graph.functions["repro.serve.m.Server.run"].calls
        ]
        assert targets == [
            "repro.serve.m.Server.own",
            "repro.serve.m.Helper.work",
        ]

    def test_method_inherited_from_project_base(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        pass\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        self.shared()\n"
                ),
            },
        )
        calls = graph.functions["repro.serve.m.Child.run"].calls
        assert calls[0].target == "repro.serve.m.Base.shared"

    def test_instantiation_edges_to_init(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def make():\n"
                    "    return Thing()\n"
                ),
            },
        )
        calls = graph.functions["repro.serve.m.make"].calls
        assert calls[0].target == "repro.serve.m.Thing.__init__"

    def test_reexport_through_package_init(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/impl.py": "def real():\n    pass\n",
                "repro/serve/__init__.py": "from .impl import real\n",
                "repro/obs/user.py": (
                    "from repro.serve import real\n"
                    "def f():\n"
                    "    real()\n"
                ),
            },
        )
        calls = graph.functions["repro.obs.user.f"].calls
        assert calls[0].target == "repro.serve.impl.real"

    def test_unresolvable_call_produces_no_edge(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "def f(callback):\n"
                    "    callback()\n"
                    "    (lambda: 1)()\n"
                ),
            },
        )
        summary = graph.functions["repro.serve.m.f"]
        assert all(c.kind == "unresolved" for c in summary.calls)


class TestSummaries:
    def test_awaits_reads_writes_and_locks(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "import asyncio\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = asyncio.Lock()\n"
                    "        self.count = 0\n"
                    "    async def tick(self):\n"
                    "        n = self.count\n"
                    "        await asyncio.sleep(0)\n"
                    "        async with self._lock:\n"
                    "            self.count = n + 1\n"
                ),
            },
        )
        summary = graph.functions["repro.serve.m.S.tick"]
        assert summary.is_async
        assert summary.awaits == 2  # the await and the async-with acquire
        assert "count" in summary.self_reads
        assert "count" in summary.self_writes
        assert summary.locks_held == ["self._lock"]

    def test_nested_defs_are_separate_summaries(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "import time\n"
                    "async def outer():\n"
                    "    async def inner():\n"
                    "        time.sleep(1)\n"
                    "    return inner\n"
                ),
            },
        )
        outer = graph.functions["repro.serve.m.outer"]
        assert not outer.blocking  # inner's body is not outer's
        inner = graph.functions["repro.serve.m.outer.<locals>.inner"]
        assert [c.target for c in inner.blocking] == ["time.sleep"]


class TestBlockingReachability:
    def test_direct_and_transitive_chain(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "import time\n"
                    "def deep():\n"
                    "    time.sleep(1)\n"
                    "def middle():\n"
                    "    deep()\n"
                    "def top():\n"
                    "    middle()\n"
                ),
            },
        )
        chain = graph.blocking_chain("repro.serve.m.top")
        assert chain == (
            "repro.serve.m.top",
            "repro.serve.m.middle",
            "repro.serve.m.deep",
            "time.sleep",
        )

    def test_chain_stops_at_core_boundary(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/sim/engine.py": (
                    "def core_helper():\n"
                    "    open('x')\n"
                ),
                "repro/serve/m.py": (
                    "from repro.sim.engine import core_helper\n"
                    "def handler_helper():\n"
                    "    core_helper()\n"
                ),
            },
        )
        # the sim package is outside the async traversal scope: the edge
        # exists but is never followed, so no chain is reported.
        assert graph.blocking_chain("repro.serve.m.handler_helper") is None

    def test_cycle_tolerance(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "def a():\n"
                    "    b()\n"
                    "def b():\n"
                    "    a()\n"
                ),
            },
        )
        assert graph.blocking_chain("repro.serve.m.a") is None

    def test_pathlib_chained_call_is_blocking(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "from pathlib import Path\n"
                    "def dump(p, text):\n"
                    "    Path(p).write_text(text)\n"
                ),
            },
        )
        summary = graph.functions["repro.serve.m.dump"]
        assert [c.target for c in summary.blocking] == [
            "pathlib.Path.write_text"
        ]

    def test_blocking_kind_vocabulary(self):
        assert blocking_kind("time.sleep")
        assert blocking_kind("subprocess.run")
        assert blocking_kind("requests.get")
        assert blocking_kind("open")
        assert blocking_kind("pathlib.Path.read_text")
        assert blocking_kind("asyncio.sleep") is None
        assert blocking_kind("math.sqrt") is None
        assert blocking_kind(None) is None


class TestGraphDump:
    def test_to_dict_is_json_serializable_and_sorted(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "repro/serve/m.py": (
                    "import time\n"
                    "def helper():\n"
                    "    time.sleep(1)\n"
                    "async def handler():\n"
                    "    helper()\n"
                ),
            },
        )
        payload = json.loads(json.dumps(graph.to_dict()))
        functions = payload["functions"]
        assert list(functions) == sorted(functions)
        handler = functions["repro.serve.m.handler"]
        assert handler["async"] is True
        assert handler["calls"] == ["repro.serve.m.helper"]
        assert functions["repro.serve.m.helper"]["blocking"] == ["time.sleep"]


class TestRealTree:
    """The graph over the real sources resolves the serve hot path."""

    @pytest.fixture(scope="class")
    def graph(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        modules = []
        for path in collect_files([src]):
            module, _ = parse_module(path)
            if module is not None:
                modules.append(module)
        return Project(modules).graph()

    def test_serve_handlers_are_roots(self, graph):
        roots = {s.qualname for s in graph.async_roots()}
        assert "repro.serve.http.ThermalServer._handle_connection" in roots
        assert "repro.serve.http.ThermalServer._dispatch" in roots

    def test_dispatch_resolves_into_service_layer(self, graph):
        summary = graph.functions[
            "repro.serve.http.ThermalServer._observe_latency"
        ]
        targets = {c.target for c in summary.calls if c.kind == "project"}
        assert "repro.serve.service.ThermalService.tenant" in targets

    def test_no_committed_async_root_reaches_blocking(self, graph):
        for root in graph.async_roots():
            for site in root.calls:
                if site.kind != "project":
                    continue
                callee = graph.functions.get(site.target)
                if callee is None or callee.is_async:
                    continue
                if not graph.in_async_scope(callee.module):
                    continue
                chain = graph.blocking_chain(site.target)
                assert chain is None, (root.qualname, chain)

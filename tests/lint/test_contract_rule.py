"""Scheduler-contract family: hook presence, signatures, exports."""

from .conftest import rule_ids

DOC = '"""doc."""\n'

COMPLETE = DOC + (
    "from .base import Scheduler, SchedulerDecision\n"
    "class GoodScheduler(Scheduler):\n"
    "    def _can_admit(self, task):\n"
    "        return True\n"
    "    def _admit(self, task, now_s):\n"
    "        pass\n"
    "    def _release(self, task, now_s):\n"
    "        pass\n"
    "    def decide(self, now_s):\n"
    "        return None\n"
)

INIT_EXPORTING = DOC + "__all__ = ['GoodScheduler']\n"


class TestMissingHook:
    def test_missing_release_fires(self, lint_files):
        code = DOC + (
            "from .base import Scheduler\n"
            "class BadScheduler(Scheduler):\n"
            "    def _can_admit(self, task):\n"
            "        return True\n"
            "    def _admit(self, task, now_s):\n"
            "        pass\n"
            "    def decide(self, now_s):\n"
            "        return None\n"
        )
        findings = lint_files(
            {
                "repro/sched/bad.py": code,
                "repro/sched/__init__.py": DOC + "__all__ = ['BadScheduler']\n",
            },
            select="sched-missing-hook",
        )
        assert rule_ids(findings) == ["sched-missing-hook"]
        assert "_release" in findings[0].message

    def test_complete_scheduler_is_clean(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/__init__.py": INIT_EXPORTING,
            },
            select="scheduler-contract",
        )
        assert findings == []

    def test_derived_scheduler_inherits_hooks_cleanly(self, lint_files):
        # Subclass of a concrete scheduler needn't redefine the hooks.
        derived = DOC + (
            "from .good import GoodScheduler\n"
            "class DerivedScheduler(GoodScheduler):\n"
            "    def decide(self, now_s):\n"
            "        return None\n"
        )
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/derived.py": derived,
                "repro/sched/__init__.py": DOC
                + "__all__ = ['GoodScheduler', 'DerivedScheduler']\n",
            },
            select="sched-missing-hook",
        )
        assert findings == []


class TestHookSignature:
    def test_wrong_decide_arity_fires(self, lint_files):
        code = DOC + (
            "from .base import Scheduler\n"
            "class OddScheduler(Scheduler):\n"
            "    def _can_admit(self, task):\n"
            "        return True\n"
            "    def _admit(self, task, now_s):\n"
            "        pass\n"
            "    def _release(self, task, now_s):\n"
            "        pass\n"
            "    def decide(self):\n"
            "        return None\n"
        )
        findings = lint_files(
            {
                "repro/sched/odd.py": code,
                "repro/sched/__init__.py": DOC + "__all__ = ['OddScheduler']\n",
            },
            select="sched-hook-signature",
        )
        assert rule_ids(findings) == ["sched-hook-signature"]

    def test_renamed_parameter_fires(self, lint_files):
        code = DOC + (
            "from .good import GoodScheduler\n"
            "class RenamedScheduler(GoodScheduler):\n"
            "    def _admit(self, job, now_s):\n"
            "        pass\n"
        )
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/renamed.py": code,
                "repro/sched/__init__.py": DOC
                + "__all__ = ['GoodScheduler', 'RenamedScheduler']\n",
            },
            select="sched-hook-signature",
        )
        assert rule_ids(findings) == ["sched-hook-signature"]

    def test_extra_defaulted_parameter_is_clean(self, lint_files):
        code = DOC + (
            "from .good import GoodScheduler\n"
            "class TunedScheduler(GoodScheduler):\n"
            "    def decide(self, now_s, horizon_factor=2.0):\n"
            "        return None\n"
        )
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/tuned.py": code,
                "repro/sched/__init__.py": DOC
                + "__all__ = ['GoodScheduler', 'TunedScheduler']\n",
            },
            select="sched-hook-signature",
        )
        assert findings == []


class TestExport:
    def test_unexported_scheduler_fires(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/__init__.py": DOC + "__all__ = []\n",
            },
            select="sched-export",
        )
        assert rule_ids(findings) == ["sched-export"]
        assert "GoodScheduler" in findings[0].message

    def test_exported_scheduler_is_clean(self, lint_files):
        findings = lint_files(
            {
                "repro/sched/good.py": COMPLETE,
                "repro/sched/__init__.py": INIT_EXPORTING,
            },
            select="sched-export",
        )
        assert findings == []

    def test_private_helper_class_is_exempt(self, lint_files):
        helper = DOC + (
            "from .base import Scheduler\n"
            "class _ProbeScheduler(Scheduler):\n"
            "    pass\n"
        )
        findings = lint_files(
            {
                "repro/sched/helper.py": helper,
                "repro/sched/__init__.py": DOC + "__all__ = []\n",
            },
            select="sched-export",
        )
        assert findings == []

    def test_without_init_module_rule_is_silent(self, lint_files):
        findings = lint_files(
            {"repro/sched/good.py": COMPLETE}, select="sched-export"
        )
        assert findings == []

"""Frozen-config family: positive and negative snippets."""

from .conftest import rule_ids

DOC = '"""doc."""\n'


class TestFrozenSetattr:
    def test_setattr_outside_post_init_fires(self, lint_files):
        code = DOC + (
            "def hack(cfg):\n"
            "    object.__setattr__(cfg, 'mesh_width', 99)\n"
        )
        findings = lint_files({"mod.py": code}, select="frozen-setattr")
        assert rule_ids(findings) == ["frozen-setattr"]

    def test_module_level_setattr_fires(self, lint_files):
        code = DOC + "object.__setattr__(object(), 'x', 1)\n"
        findings = lint_files({"mod.py": code}, select="frozen-setattr")
        assert rule_ids(findings) == ["frozen-setattr"]

    def test_setattr_inside_post_init_is_clean(self, lint_files):
        code = DOC + (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class C:\n"
            "    x: int = 0\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', abs(self.x))\n"
        )
        assert lint_files({"mod.py": code}, select="frozen-setattr") == []

    def test_nested_function_inside_post_init_still_fires(self, lint_files):
        # A helper *defined* in __post_init__ is not __post_init__ itself.
        code = DOC + (
            "class C:\n"
            "    def __post_init__(self):\n"
            "        def helper(other):\n"
            "            object.__setattr__(other, 'x', 1)\n"
            "        helper(self)\n"
        )
        findings = lint_files({"mod.py": code}, select="frozen-setattr")
        assert rule_ids(findings) == ["frozen-setattr"]


class TestFrozenConfigAssign:
    def test_direct_config_attribute_assignment_fires(self, lint_files):
        code = DOC + (
            "def tweak(cfg):\n"
            "    cfg.mesh_width = 16\n"
        )
        findings = lint_files({"mod.py": code}, select="frozen-config-assign")
        assert rule_ids(findings) == ["frozen-config-assign"]

    def test_nested_config_attribute_assignment_fires(self, lint_files):
        code = DOC + (
            "def tweak(self):\n"
            "    self.config.thermal_limit = 75.0\n"
        )
        findings = lint_files({"mod.py": code}, select="frozen-config-assign")
        assert rule_ids(findings) == ["frozen-config-assign"]

    def test_augmented_assignment_fires(self, lint_files):
        code = DOC + (
            "def tweak(run_cfg):\n"
            "    run_cfg.budget_w += 1.0\n"
        )
        findings = lint_files({"mod.py": code}, select="frozen-config-assign")
        assert rule_ids(findings) == ["frozen-config-assign"]

    def test_binding_config_attribute_on_self_is_clean(self, lint_files):
        # ``self.config = cfg`` stores a reference; it mutates nothing.
        code = DOC + (
            "class Engine:\n"
            "    def __init__(self, cfg):\n"
            "        self.config = cfg\n"
        )
        assert (
            lint_files({"mod.py": code}, select="frozen-config-assign") == []
        )

    def test_replace_is_clean(self, lint_files):
        code = DOC + (
            "def tweak(cfg):\n"
            "    return cfg.replace(mesh_width=16)\n"
        )
        assert (
            lint_files({"mod.py": code}, select="frozen-config-assign") == []
        )

"""Known answers for the ``async-safety`` family.

One mini-package per scenario (written under ``repro/serve/`` so the
rules' scope applies), exercising every rule positively *and*
negatively.  The negative cases encode the zero-false-positive design:
unresolved calls, core-boundary edges, lock-guarded mutations and
token-disciplined ContextVars must all stay silent.
"""

from .conftest import rule_ids


def select(lint_files, files):
    return lint_files(files, select="async-safety")


class TestBlockingCall:
    def test_direct_blocking_in_async_def(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import time
                async def handler():
                    time.sleep(0.5)
                """,
            },
        )
        assert rule_ids(findings) == ["async-blocking-call"]
        assert "time.sleep" in findings[0].message

    def test_transitive_through_two_sync_helpers(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/io_helpers.py": """
                def write_report(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """,
                "repro/serve/m.py": """
                from .io_helpers import write_report
                def persist(path, text):
                    write_report(path, text)
                async def handler(path):
                    persist(path, "done")
                """,
            },
        )
        assert rule_ids(findings) == ["async-blocking-call"]
        message = findings[0].message
        assert "open" in message and "persist" in message

    def test_subprocess_and_requests_style(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import subprocess
                import urllib.request
                async def shell():
                    subprocess.run(["ls"])
                async def fetch(url):
                    urllib.request.urlopen(url)
                """,
            },
        )
        assert rule_ids(findings) == [
            "async-blocking-call",
            "async-blocking-call",
        ]

    def test_asyncio_sleep_is_fine(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                async def handler():
                    await asyncio.sleep(0.5)
                """,
            },
        )
        assert findings == []

    def test_core_boundary_not_traversed(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/sim/engine.py": """
                def trace_open(path):
                    return open(path)
                """,
                "repro/serve/m.py": """
                from repro.sim.engine import trace_open
                async def handler(path):
                    trace_open(path)
                """,
            },
        )
        assert findings == []

    def test_sync_caller_of_blocking_not_flagged(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import time
                def warmup():
                    time.sleep(0.1)
                """,
            },
        )
        assert findings == []

    def test_async_def_outside_scope_not_flagged(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/experiments/m.py": """
                import time
                async def campaign():
                    time.sleep(1.0)
                """,
            },
        )
        assert findings == []


class TestSharedMutation:
    def test_read_await_write_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class Server:
                    def __init__(self):
                        self._conn = object()
                    async def close(self):
                        if self._conn is not None:
                            await asyncio.sleep(0)
                            self._conn = None
                """,
            },
        )
        assert rule_ids(findings) == ["async-shared-mutation"]
        assert "_conn" in findings[0].message

    def test_detach_before_await_is_clean(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class Server:
                    def __init__(self):
                        self._conn = object()
                    async def close(self):
                        conn, self._conn = self._conn, None
                        if conn is not None:
                            await asyncio.sleep(0)
                """,
            },
        )
        assert findings == []

    def test_write_under_lock_is_clean(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class Counter:
                    def __init__(self):
                        self._lock = asyncio.Lock()
                        self.total = 0
                    async def add(self, value):
                        n = self.total
                        await asyncio.sleep(0)
                        async with self._lock:
                            self.total = n + value
                """,
            },
        )
        assert findings == []

    def test_augassign_across_await_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class Counter:
                    def __init__(self):
                        self.total = 0
                    async def add(self, value):
                        _ = self.total
                        await asyncio.sleep(0)
                        self.total += value
                """,
            },
        )
        assert rule_ids(findings) == ["async-shared-mutation"]

    def test_container_mutation_not_flagged(self, lint_files):
        # append/setitem mutate the container, they do not re-bind the
        # attribute — the MicroBatcher pattern, deliberately legal.
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class Batcher:
                    def __init__(self):
                        self.pending = []
                    async def submit(self, item):
                        self.pending.append(item)
                        await asyncio.sleep(0)
                        self.pending.append(item)
                """,
            },
        )
        assert findings == []

    def test_write_without_await_not_flagged(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                class Server:
                    def __init__(self):
                        self.state = 0
                    async def reset(self):
                        n = self.state
                        self.state = n + 1
                """,
            },
        )
        assert findings == []


class TestUnawaitedCoroutine:
    def test_bare_call_of_async_def_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                async def job():
                    pass
                async def handler():
                    job()
                """,
            },
        )
        assert rule_ids(findings) == ["async-unawaited-coroutine"]

    def test_bare_call_from_sync_function_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                async def job():
                    pass
                def kick():
                    job()
                """,
            },
        )
        assert rule_ids(findings) == ["async-unawaited-coroutine"]

    def test_awaited_gathered_and_scheduled_are_clean(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                async def job():
                    pass
                async def handler():
                    await job()
                    await asyncio.gather(job(), job())
                    task = asyncio.create_task(job())
                    await task
                    return job()
                """,
            },
        )
        assert findings == []


class TestLockAcrossBlocking:
    def test_blocking_inside_lock_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                import time
                class S:
                    def __init__(self):
                        self._lock = asyncio.Lock()
                    async def slow(self):
                        async with self._lock:
                            time.sleep(0.5)
                """,
            },
        )
        ids = rule_ids(findings)
        assert "async-lock-across-blocking" in ids
        # the same call also stalls the loop — both rules fire
        assert "async-blocking-call" in ids

    def test_transitive_blocking_inside_lock_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                import time
                def helper():
                    time.sleep(0.5)
                class S:
                    def __init__(self):
                        self._lock = asyncio.Lock()
                    async def slow(self):
                        async with self._lock:
                            helper()
                """,
            },
        )
        assert "async-lock-across-blocking" in rule_ids(findings)

    def test_pure_critical_section_is_clean(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import asyncio
                class S:
                    def __init__(self):
                        self._lock = asyncio.Lock()
                        self.n = 0
                    async def bump(self):
                        async with self._lock:
                            self.n = self.n + 1
                """,
            },
        )
        assert findings == []


class TestContextvarLeak:
    def test_discarded_token_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                from contextvars import ContextVar
                STATE = ContextVar("state", default=None)
                async def handler():
                    STATE.set("tenant-1")
                """,
            },
        )
        assert rule_ids(findings) == ["async-contextvar-leak"]
        assert "discards the token" in findings[0].message

    def test_token_without_finally_reset_flags(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                from contextvars import ContextVar
                STATE = ContextVar("state", default=None)
                async def handler():
                    token = STATE.set("tenant-1")
                    STATE.reset(token)
                """,
            },
        )
        # reset exists but not in a finally: an exception path leaks
        assert rule_ids(findings) == ["async-contextvar-leak"]
        assert "finally" in findings[0].message

    def test_token_disciplined_pattern_is_clean(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                from contextvars import ContextVar
                STATE = ContextVar("state", default=None)
                async def handler(work):
                    token = STATE.set("tenant-1")
                    try:
                        await work()
                    finally:
                        STATE.reset(token)
                """,
            },
        )
        assert findings == []

    def test_non_contextvar_set_not_flagged(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                async def handler(store):
                    store.set("value")
                """,
            },
        )
        assert findings == []


class TestScopeAndSuppression:
    def test_family_suppression_comment(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import time
                async def handler():
                    time.sleep(0.5)  # lint: ignore[async-safety]
                """,
            },
        )
        assert findings == []

    def test_rule_id_suppression_comment(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/serve/m.py": """
                import time
                async def handler():
                    time.sleep(0.5)  # lint: ignore[async-blocking-call]
                """,
            },
        )
        assert findings == []

    def test_obs_package_is_in_scope(self, lint_files):
        findings = select(
            lint_files,
            {
                "repro/obs/m.py": """
                import time
                async def exporter():
                    time.sleep(0.5)
                """,
            },
        )
        assert rule_ids(findings) == ["async-blocking-call"]

"""Shared fixtures: a hand-built miniature trace with known answers.

The ``mini_trace`` is a 2-core, 4-interval rotation (tau = 1 ms, period
delta = 2) whose every derived statistic can be computed by hand:

====================  ========================================================
duration              4 ms (4 intervals of 1 ms)
placements            thread ``t0`` alternates core 0 -> 1 -> 0 -> 1
power                 active core 2.0 W, idle core 0.3 W
temperatures          active core 50 C, idle core 46 C — except interval 2,
                      where core 0 spikes to 72 C (the single hot interval)
DTM                   core 0 throttled during interval 2 only
                      (engage at 2 ms, release at 3 ms)
migrations            3 ``ThreadMigrated`` events (1 ms, 2 ms, 3 ms),
                      penalty 10 us each; destinations 1, 0, 1
epoch boundaries      0, 1, 2, 3 ms; epochs 0..3; tau exactly 1 ms
====================  ========================================================

With the DTM threshold at 70 C (or an analytic bound anywhere in
(50, 72)), the trace violates in **exactly one interval**: interval 2,
start time 2 ms, core 0.
"""

import pytest

from repro.obs import TraceRecorder


IDLE_W = 0.3
ACTIVE_W = 2.0
TAU_S = 1e-3
PENALTY_S = 1e-5
#: (start, placements, power, temps, throttled) per interval.
MINI_INTERVALS = [
    (0e-3, {"t0": 0}, (ACTIVE_W, IDLE_W), (50.0, 46.0), ()),
    (1e-3, {"t0": 1}, (IDLE_W, ACTIVE_W), (46.0, 50.0), ()),
    (2e-3, {"t0": 0}, (ACTIVE_W, IDLE_W), (72.0, 46.0), (0,)),
    (3e-3, {"t0": 1}, (IDLE_W, ACTIVE_W), (46.0, 50.0), ()),
]


def build_mini_trace(recorder: TraceRecorder = None) -> TraceRecorder:
    """Record the miniature rotation into ``recorder`` (or a fresh one)."""
    from repro.sim.events import DtmEngaged, DtmReleased, ThreadMigrated

    trace = recorder if recorder is not None else TraceRecorder()
    last_core = None
    for epoch, (start, placements, power, temps, throttled) in enumerate(
        MINI_INTERVALS
    ):
        trace.record_epoch(start, epoch=epoch, tau_s=TAU_S)
        core = placements["t0"]
        if last_core is not None and core != last_core:
            trace.record_event(
                ThreadMigrated(
                    time_s=start,
                    thread_id="t0",
                    src_core=last_core,
                    dst_core=core,
                    penalty_s=PENALTY_S,
                )
            )
        last_core = core
        trace.record_interval(
            time_s=start,
            dt_s=TAU_S,
            placements=placements,
            power_w=power,
            temps_c=temps,
            frequencies_hz=(4.0e9, 4.0e9),
            dtm_throttled=throttled,
        )
    trace.record_event(DtmEngaged(time_s=2e-3, core=0, temperature_c=72.0))
    trace.record_event(DtmReleased(time_s=3e-3, core=0, temperature_c=46.0))
    return trace


@pytest.fixture
def mini_trace() -> TraceRecorder:
    return build_mini_trace()

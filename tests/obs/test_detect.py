"""Violation detectors: the miniature trace and targeted corner cases."""

import pytest

from repro.obs import (
    BoundDetector,
    DtmThrashDetector,
    PowerMapDetector,
    RotationStallDetector,
    ThresholdDetector,
    TraceRecorder,
    default_detectors,
    event_callback,
    run_detectors,
)

from .conftest import IDLE_W


class TestThresholdDetector:
    def test_exactly_one_violation_at_the_hot_interval(self, mini_trace):
        violations = run_detectors(mini_trace, [ThresholdDetector(70.0)])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.detector == "thermal-threshold"
        assert violation.time_s == pytest.approx(2e-3)
        assert violation.core == 0
        assert violation.value == 72.0
        assert violation.limit == 70.0
        assert violation.severity == "critical"

    def test_tolerance_absorbs_the_excursion(self, mini_trace):
        violations = run_detectors(
            mini_trace, [ThresholdDetector(70.0, tolerance_c=2.5)]
        )
        assert violations == []

    def test_sustained_excursion_is_one_episode(self):
        trace = TraceRecorder()
        for i, temp in enumerate([60.0, 75.0, 76.0, 74.0, 60.0, 75.0]):
            trace.record_interval(
                i * 1e-3, 1e-3, {}, (IDLE_W,), (temp,), (4e9,)
            )
        violations = run_detectors(trace, [ThresholdDetector(70.0)])
        # two onsets (intervals 1 and 5), not four hot intervals
        assert [v.time_s for v in violations] == [
            pytest.approx(1e-3),
            pytest.approx(5e-3),
        ]


class TestBoundDetector:
    def test_locates_the_single_bound_breaking_interval(self, mini_trace):
        violations = run_detectors(mini_trace, [BoundDetector(71.0)])
        assert len(violations) == 1
        assert violations[0].detector == "analytic-bound"
        assert violations[0].time_s == pytest.approx(2e-3)
        assert violations[0].core == 0

    def test_silent_when_bound_holds(self, mini_trace):
        assert run_detectors(mini_trace, [BoundDetector(75.0)]) == []


class TestDtmThrashDetector:
    def _thrashy_trace(self, transitions: int) -> TraceRecorder:
        from repro.sim.events import DtmEngaged, DtmReleased

        trace = TraceRecorder()
        for i in range(transitions):
            cls = DtmEngaged if i % 2 == 0 else DtmReleased
            trace.record_event(
                cls(time_s=i * 1e-3, core=0, temperature_c=70.0)
            )
        return trace

    def test_fires_once_per_thrash_episode(self):
        trace = self._thrashy_trace(9)
        violations = run_detectors(
            trace, [DtmThrashDetector(window_s=10e-3, max_transitions=6)]
        )
        assert len(violations) == 1
        assert violations[0].detector == "dtm-thrash"
        assert violations[0].severity == "warning"
        assert violations[0].core == 0

    def test_quiet_below_the_transition_budget(self):
        trace = self._thrashy_trace(4)
        violations = run_detectors(
            trace, [DtmThrashDetector(window_s=10e-3, max_transitions=6)]
        )
        assert violations == []

    def test_mini_trace_is_not_thrashy(self, mini_trace):
        assert run_detectors(mini_trace, [DtmThrashDetector()]) == []

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            DtmThrashDetector(window_s=0.0)


class TestRotationStallDetector:
    def test_fires_once_when_boundaries_stop(self):
        trace = TraceRecorder()
        trace.record_epoch(0.0, epoch=0, tau_s=1e-3)
        for i in range(6):  # placed intervals marching past 3 * tau
            trace.record_interval(
                i * 1e-3, 1e-3, {"t0": 0}, (2.0,), (50.0,), (4e9,)
            )
        violations = run_detectors(trace, [RotationStallDetector(3.0)])
        assert len(violations) == 1
        assert violations[0].detector == "rotation-stall"
        assert violations[0].time_s > 3e-3

    def test_quiet_while_rotating(self, mini_trace):
        assert run_detectors(mini_trace, [RotationStallDetector()]) == []

    def test_idle_intervals_do_not_stall(self):
        trace = TraceRecorder()
        trace.record_epoch(0.0, epoch=0, tau_s=1e-3)
        for i in range(6):  # nothing placed -> nothing to rotate
            trace.record_interval(i * 1e-3, 1e-3, {}, (IDLE_W,), (46.0,), (4e9,))
        assert run_detectors(trace, [RotationStallDetector()]) == []

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError, match="stall factor"):
            RotationStallDetector(stall_factor=1.0)


class TestPowerMapDetector:
    def test_consistent_trace_is_clean(self, mini_trace):
        assert run_detectors(mini_trace, [PowerMapDetector(IDLE_W)]) == []

    def test_unplaced_core_drawing_power(self):
        trace = TraceRecorder()
        trace.record_interval(
            0.0, 1e-3, {}, (IDLE_W, 1.0), (46.0, 48.0), (4e9, 4e9)
        )
        violations = run_detectors(trace, [PowerMapDetector(IDLE_W)])
        assert len(violations) == 1
        assert violations[0].core == 1
        assert "unplaced" in violations[0].message

    def test_placed_core_below_idle(self):
        trace = TraceRecorder()
        trace.record_interval(
            0.0, 1e-3, {"t0": 0}, (0.1, IDLE_W), (46.0, 46.0), (4e9, 4e9)
        )
        violations = run_detectors(trace, [PowerMapDetector(IDLE_W)])
        assert len(violations) == 1
        assert violations[0].core == 0
        assert "placed thread" in violations[0].message


class TestRegistryAndOrdering:
    def test_default_set_skips_optional_detectors(self):
        names = {d.name for d in default_detectors()}
        assert names == {
            "thermal-threshold",
            "dtm-thrash",
            "rotation-stall",
            "faults-unsafe-degradation",
            "qos-deadline-violation",
        }
        names = {
            d.name for d in default_detectors(idle_power_w=0.3, bound_c=70.0)
        }
        assert "power-map" in names and "analytic-bound" in names

    def test_violations_sorted_by_time(self, mini_trace):
        detectors = default_detectors(
            dtm_threshold_c=45.0, idle_power_w=IDLE_W, bound_c=49.0
        )
        violations = run_detectors(mini_trace, detectors)
        assert violations
        times = [v.time_s for v in violations]
        assert times == sorted(times)

    def test_to_dict_omits_unset_fields(self, mini_trace):
        (violation,) = run_detectors(mini_trace, [ThresholdDetector(70.0)])
        data = violation.to_dict()
        assert data["core"] == 0 and data["limit"] == 70.0
        stall = RotationStallDetector()
        stall.emit(1.0, "no core attached")
        assert "core" not in stall.violations[0].to_dict()


class TestOnlineDetection:
    def test_event_callback_matches_offline(self, mini_trace):
        """Feeding live events through the subscription path agrees with
        replaying the recorded trace offline."""
        from repro.sim.events import DtmEngaged, DtmReleased, EventLog

        offline = run_detectors(
            mini_trace, [DtmThrashDetector(window_s=10e-3, max_transitions=1)]
        )
        online_detector = DtmThrashDetector(window_s=10e-3, max_transitions=1)
        log = EventLog()
        log.subscribe(event_callback([online_detector]))
        for record in mini_trace.events():
            cls = {"DtmEngaged": DtmEngaged, "DtmReleased": DtmReleased}.get(
                record.event
            )
            if cls is None:
                continue
            log.record(cls(time_s=record.time_s, **record.data))
        offline_dtm = [v for v in offline if v.detector == "dtm-thrash"]
        assert online_detector.violations == offline_dtm


class TestSloLatencyViolationDetector:
    def _detector(self):
        from repro.obs import SloLatencyViolationDetector, SloTarget

        # budget: at most 10% of requests may exceed 10 ms
        return SloLatencyViolationDetector(
            SloTarget(latency_s=0.010, error_budget=0.1), tenant="acme"
        )

    def test_fires_exactly_once_per_exhaustion_episode(self):
        detector = self._detector()
        # Known-answer tape: 9 fast, then one slow request exhausts the
        # 10% budget exactly at t=9 — one violation, and further slow
        # requests (still exhausted) never re-fire.
        for index in range(9):
            detector.observe_latency(float(index), 0.001)
        assert detector.violations == []
        detector.observe_latency(9.0, 0.5)
        assert len(detector.violations) == 1
        for index in range(10, 15):
            detector.observe_latency(float(index), 0.5)
        assert len(detector.violations) == 1
        violation = detector.violations[0]
        assert violation.detector == "slo-latency-violation"
        assert violation.time_s == 9.0
        assert violation.severity == "critical"
        assert "acme" in violation.message
        assert violation.value == pytest.approx(0.1)
        assert violation.limit == pytest.approx(0.1)

    def test_refires_after_budget_recovers(self):
        detector = self._detector()
        detector.observe_latency(0.0, 0.5)  # 1/1 slow: instantly exhausted
        assert len(detector.violations) == 1
        # a long run of fast requests repays the budget (1/21 < 10%)...
        for index in range(1, 21):
            detector.observe_latency(float(index), 0.001)
        assert not detector.tracker.exhausted
        # ...so the next exhaustion is a new episode
        for index in range(21, 26):
            detector.observe_latency(float(index), 0.5)
        assert len(detector.violations) == 2

    def test_fast_only_traffic_never_fires(self):
        detector = self._detector()
        for index in range(100):
            detector.observe_latency(float(index), 0.001)
        assert detector.violations == []


class TestSpanOrphanDetector:
    def _spans(self):
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer(enabled=True)
        with tracer.span("request"):
            with tracer.span("inner"):
                pass
        return list(tracer)

    def test_intact_trace_has_no_orphans(self):
        from repro.obs import SpanOrphanDetector

        assert SpanOrphanDetector().check(self._spans()) == []

    def test_missing_parent_is_reported(self):
        from repro.obs import SpanOrphanDetector

        spans = self._spans()
        orphaned = [s for s in spans if s.parent_id is not None]
        violations = SpanOrphanDetector().check(orphaned)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.detector == "span-orphan"
        assert violation.severity == "warning"
        assert str(orphaned[0].parent_id) in violation.message

    def test_links_are_not_parent_edges(self):
        from repro.obs import SpanOrphanDetector
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer(enabled=True)
        with tracer.span("flush", links=(12345,)):
            pass
        # a dangling *link* is fine; only parent_id edges count
        assert SpanOrphanDetector().check(list(tracer)) == []


class TestQosDeadlineViolationDetector:
    """Deadlines are learned from TaskArrived events in the trace itself."""

    def _trace(self, events):
        trace = TraceRecorder()
        for event in events:
            trace.record_event(event)
        return trace

    def test_late_completion_is_critical(self):
        from repro.obs import QosDeadlineViolationDetector
        from repro.sim.events import TaskArrived, TaskCompleted

        trace = self._trace(
            [
                TaskArrived(
                    time_s=0.0,
                    task_id=0,
                    benchmark="blackscholes",
                    n_threads=2,
                    deadline_s=0.010,
                ),
                TaskCompleted(
                    time_s=0.050,
                    task_id=0,
                    benchmark="blackscholes",
                    response_time_s=0.050,
                ),
            ]
        )
        violations = run_detectors(trace, [QosDeadlineViolationDetector()])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.detector == "qos-deadline-violation"
        assert violation.severity == "critical"
        assert violation.time_s == pytest.approx(0.050)
        assert violation.limit == pytest.approx(0.010)
        assert "task 0" in violation.message

    def test_on_time_completion_is_silent(self):
        from repro.obs import QosDeadlineViolationDetector
        from repro.sim.events import TaskArrived, TaskCompleted

        trace = self._trace(
            [
                TaskArrived(
                    time_s=0.0,
                    task_id=0,
                    benchmark="blackscholes",
                    n_threads=2,
                    deadline_s=1.0,
                ),
                TaskCompleted(
                    time_s=0.5,
                    task_id=0,
                    benchmark="blackscholes",
                    response_time_s=0.5,
                ),
            ]
        )
        assert run_detectors(trace, [QosDeadlineViolationDetector()]) == []

    def test_shed_task_warns_at_finish(self):
        """A task whose deadline passes with no completion (parked under
        overload, or still queued when the trace ends) is a warning."""
        from repro.obs import QosDeadlineViolationDetector
        from repro.sim.events import TaskArrived

        trace = self._trace(
            [
                TaskArrived(
                    time_s=0.0,
                    task_id=7,
                    benchmark="canneal",
                    n_threads=1,
                    deadline_s=0.010,
                )
            ]
        )
        # push the trace end past the deadline
        trace.record_interval(0.1, 1e-3, {}, (IDLE_W,), (50.0,), (4e9,))
        violations = run_detectors(trace, [QosDeadlineViolationDetector()])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.severity == "warning"
        assert violation.time_s == pytest.approx(0.010)
        assert "never completed" in violation.message

    def test_still_running_before_its_deadline_is_silent(self):
        from repro.obs import QosDeadlineViolationDetector
        from repro.sim.events import TaskArrived

        trace = self._trace(
            [
                TaskArrived(
                    time_s=0.0,
                    task_id=7,
                    benchmark="canneal",
                    n_threads=1,
                    deadline_s=10.0,
                )
            ]
        )
        trace.record_interval(0.1, 1e-3, {}, (IDLE_W,), (50.0,), (4e9,))
        assert run_detectors(trace, [QosDeadlineViolationDetector()]) == []

    def test_deadline_free_trace_is_silent(self, mini_trace):
        from repro.obs import QosDeadlineViolationDetector

        assert run_detectors(mini_trace, [QosDeadlineViolationDetector()]) == []

    def test_included_in_default_detectors(self):
        from repro.obs import QosDeadlineViolationDetector

        detectors = default_detectors(dtm_threshold_c=70.0)
        assert any(
            isinstance(d, QosDeadlineViolationDetector) for d in detectors
        )

"""Metrics registry: instruments, snapshots, export, run determinism."""

import csv
import io
import json

import pytest

from repro import config
from repro.obs import MetricsRegistry
from repro.sched import HotPotatoScheduler
from repro.sim import IntervalSimulator
from repro.workload import PARSEC, Task


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.migrations")
        counter.inc()
        counter.inc(3)
        assert registry.counter("engine.migrations").value == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("tau_s").set(0.5e-3)
        registry.gauge("tau_s").set(0.25e-3)
        assert registry.gauge("tau_s").value == 0.25e-3

    def test_histogram_summary_stats(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 6.0
        assert histogram.mean == 3.0

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1
        assert "a" in registry


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.gauge").set(1.5)
        histogram = registry.histogram("c.hist")
        histogram.observe(2.0)
        histogram.observe(4.0)
        registry.histogram("d.wall_s", timing=True).observe(0.1)
        return registry

    def test_snapshot_is_flat_and_sorted(self):
        snapshot = self._populated().snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a.gauge"] == 1.5
        assert snapshot["b.count"] == 2.0
        assert snapshot["c.hist.count"] == 2.0
        assert snapshot["c.hist.mean"] == 3.0

    def test_exclude_timing_drops_wall_clock_instruments(self):
        snapshot = self._populated().snapshot(exclude_timing=True)
        assert not any(key.startswith("d.wall_s") for key in snapshot)
        assert "c.hist.count" in snapshot

    def test_empty_histogram_snapshot_is_finite(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snapshot = registry.snapshot()
        assert snapshot["h.min"] == 0.0
        assert snapshot["h.max"] == 0.0
        assert snapshot["h.mean"] == 0.0

    def test_json_export_parses_back(self):
        registry = self._populated()
        assert json.loads(registry.to_json()) == registry.snapshot()

    def test_csv_export_parses_back(self):
        registry = self._populated()
        rows = list(csv.reader(io.StringIO(registry.to_csv())))
        assert rows[0] == ["metric", "value"]
        parsed = {name: float(value) for name, value in rows[1:]}
        assert parsed == registry.snapshot()

    def test_save_by_suffix(self, tmp_path):
        registry = self._populated()
        registry.save(tmp_path / "m.json")
        registry.save(tmp_path / "m.csv")
        assert json.loads((tmp_path / "m.json").read_text()) == registry.snapshot()
        assert (tmp_path / "m.csv").read_text().startswith("metric,value")


class TestRunDeterminism:
    def _run_snapshot(self):
        cfg = config.motivational().with_observability(metrics=True)
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(cfg, HotPotatoScheduler(), [task])
        result = sim.run(max_time_s=0.1)  # long enough for the task to finish
        return sim.observer.metrics.snapshot(exclude_timing=True), result

    def test_two_identical_runs_snapshot_identically(self):
        snapshot_a, result_a = self._run_snapshot()
        snapshot_b, result_b = self._run_snapshot()
        assert snapshot_a == snapshot_b
        assert result_a.sim_time_s == result_b.sim_time_s

    def test_result_snapshot_carries_engine_and_scheduler_metrics(self):
        _, result = self._run_snapshot()
        snapshot = result.metrics_snapshot
        assert snapshot["engine.intervals"] > 0
        assert snapshot["engine.tasks.arrived"] == 1.0
        assert snapshot["engine.tasks.completed"] == 1.0
        assert snapshot["engine.migrations"] == result.migration_count
        # per-ring migration counters sum to the total
        per_ring = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("engine.migrations.to_ring.")
        )
        assert per_ring == result.migration_count
        assert "sched.rotation_epochs" in snapshot
        assert "thermal.exp_cache.hits" in snapshot
        # decision latency histogram observes every decide() call
        assert (
            snapshot["scheduler.decision_latency_s.count"]
            == result.metrics_snapshot["engine.intervals"]
        )

    def test_thermal_cache_hit_rate_is_high(self):
        # the eigenbasis-resident hot loop consults the decay-vector cache
        # (the dense exp_cache is only a validation/reference path now)
        _, result = self._run_snapshot()
        snapshot = result.metrics_snapshot
        hits = snapshot["thermal.decay_cache.hits"]
        misses = snapshot["thermal.decay_cache.misses"]
        assert hits + misses > 0
        # the interval loop reuses a handful of step sizes
        assert hits / (hits + misses) > 0.5

    def test_disabled_metrics_leave_result_snapshot_empty(self):
        cfg = config.motivational()
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(cfg, HotPotatoScheduler(), [task])
        result = sim.run(max_time_s=0.02)
        assert sim.observer is None
        assert result.metrics_snapshot == {}


class TestHistogramStddev:
    def test_known_population_stddev(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            histogram.observe(value)
        assert histogram.stddev == pytest.approx(2.0)  # textbook population

    def test_empty_and_single_sample_are_zero(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.stddev == 0.0
        histogram.observe(3.0)
        assert histogram.stddev == 0.0

    def test_stddev_in_snapshot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        histogram.observe(1.0)
        histogram.observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["lat.stddev"] == pytest.approx(1.0)
        assert list(snapshot) == sorted(snapshot)

    def test_catastrophic_cancellation_clamped(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(3):
            histogram.observe(1e8 + 0.1)
        assert histogram.stddev >= 0.0


class TestSaveSuffixValidation:
    def test_unknown_suffix_rejected(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        for bad in ("m.txt", "m.yaml", "m"):
            with pytest.raises(ValueError, match="suffix"):
                registry.save(tmp_path / bad)
        assert list(tmp_path.iterdir()) == []  # nothing was written


class TestHistogramQuantiles:
    def test_constant_stream_is_exact(self):
        histogram = MetricsRegistry().histogram("lat")
        for _ in range(100):
            histogram.observe(0.003)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.003)

    def test_extremes_are_exact(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (0.001, 0.004, 0.042):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(0.001)
        assert histogram.quantile(1.0) == pytest.approx(0.042)

    def test_estimate_within_bucket_of_truth(self):
        histogram = MetricsRegistry().histogram("lat")
        values = [0.0001 * (i + 1) for i in range(1000)]  # 0.1ms .. 100ms
        for value in values:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.99):
            true = values[int(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            # 1-2-5 buckets: estimate within a factor 2.5 of the truth
            assert true / 2.5 <= estimate <= true * 2.5

    def test_p99_never_exceeds_max(self):
        histogram = MetricsRegistry().histogram("lat")
        for _ in range(99):
            histogram.observe(0.001)
        histogram.observe(0.0015)
        assert histogram.quantile(0.99) <= histogram.max

    def test_empty_histogram_returns_zero(self):
        assert MetricsRegistry().histogram("lat").quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        histogram = MetricsRegistry().histogram("lat")
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                histogram.quantile(bad)

    def test_overflow_bucket_uses_streaming_max(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(120.0)  # beyond the last bound (50 s)
        assert histogram.quantile(0.5) == pytest.approx(120.0)

    def test_bucket_counts_are_cumulative_compatible(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (0.0000005, 0.003, 0.003, 70.0):
            histogram.observe(value)
        assert sum(histogram.bucket_counts) == histogram.count

    def test_registry_histograms_view(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("b")
        registry.histogram("a")
        assert list(registry.histograms()) == ["a", "b"]

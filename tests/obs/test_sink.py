"""Streaming JSONL trace sink: on-disk behaviour and recorder equivalence."""

import pytest

from repro.obs import JsonlTraceSink, TraceRecorder

from .conftest import build_mini_trace


class TestStreaming:
    def test_records_stream_to_disk(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceSink(path, flush_every=1) as sink:
            build_mini_trace(sink)
            # readable mid-run, before close
            partial = TraceRecorder.read_jsonl(path)
            assert len(partial.intervals()) == 4
        assert sink.closed

    def test_disk_trace_equals_in_memory_recorder(self, tmp_path):
        with JsonlTraceSink(tmp_path / "run.jsonl") as sink:
            build_mini_trace(sink)
            reloaded = sink.reload()
        assert reloaded == build_mini_trace()

    def test_memory_stays_empty_by_default(self, tmp_path):
        with JsonlTraceSink(tmp_path / "run.jsonl") as sink:
            build_mini_trace(sink)
            assert sink.records == []
            assert len(sink) == 13  # records written, not buffered

    def test_buffer_in_memory_keeps_records(self, tmp_path):
        with JsonlTraceSink(tmp_path / "run.jsonl", buffer_in_memory=True) as sink:
            build_mini_trace(sink)
            assert len(sink.records) == 13
            assert sink.intervals() == build_mini_trace().intervals()

    def test_recording_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.record_epoch(0.0, epoch=0, tau_s=1e-3)

    def test_close_and_flush_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "run.jsonl")
        sink.close()
        sink.close()
        sink.flush()  # safe no-op after close

    def test_bad_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlTraceSink(tmp_path / "run.jsonl", flush_every=0)


class TestEngineIntegration:
    def test_engine_streams_through_config(self, tmp_path):
        from repro import config
        from repro.sched.hotpotato_runtime import HotPotatoScheduler
        from repro.sim.engine import IntervalSimulator
        from repro.workload.benchmarks import PARSEC
        from repro.workload.task import Task

        path = tmp_path / "run.jsonl"
        cfg = config.small_test().with_observability(trace_path=str(path))
        sim = IntervalSimulator(
            cfg, HotPotatoScheduler(), [Task(0, PARSEC["blackscholes"], 1, seed=1)]
        )
        sim.run(max_time_s=0.01)
        assert isinstance(sim.observer.trace, JsonlTraceSink)
        # the engine's end-of-run flush makes the file complete on disk
        trace = TraceRecorder.read_jsonl(path)
        assert len(trace.intervals()) > 0
        total = sum(r.dt_s for r in trace.intervals())
        assert total == pytest.approx(0.01, rel=1e-6)
        sim.observer.close()
        assert sim.observer.trace.closed

"""Exporters: OpenMetrics line-format validation and HTML self-containedness."""

import math
import re

import pytest

from repro.obs import (
    ThresholdDetector,
    analyze,
    html_report,
    openmetrics_name,
    parse_openmetrics,
    run_detectors,
    to_openmetrics,
    write_html_report,
    write_openmetrics,
)


class TestOpenMetricsNames:
    def test_dotted_names_sanitize(self):
        assert (
            openmetrics_name("engine.migrations.to_ring.2")
            == "repro_engine_migrations_to_ring_2"
        )

    def test_prefix_optional(self):
        assert openmetrics_name("dtm.triggers", prefix="") == "dtm_triggers"

    def test_leading_digit_without_prefix_rejected(self):
        with pytest.raises(ValueError, match="sanitize"):
            openmetrics_name("0bad", prefix="")


class TestOpenMetricsRendering:
    SNAPSHOT = {
        "engine.intervals": 100.0,
        "dtm.duty_cycle": 0.125,
        "thermal.peak_c": 72.0,
    }

    def test_line_format(self):
        text = to_openmetrics(self.SNAPSHOT)
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert text.endswith("# EOF\n")
        # every metric contributes exactly HELP, TYPE, sample — in order
        assert len(lines) == 3 * len(self.SNAPSHOT) + 1
        for i in range(0, len(lines) - 1, 3):
            name = lines[i].split()[2]
            assert lines[i].startswith(f"# HELP {name} ")
            assert lines[i + 1] == f"# TYPE {name} gauge"
            assert re.match(
                rf"^{re.escape(name)} \S+$", lines[i + 2]
            ), lines[i + 2]

    def test_round_trip_through_parser(self):
        parsed = parse_openmetrics(to_openmetrics(self.SNAPSHOT))
        assert parsed == {
            "repro_engine_intervals": 100.0,
            "repro_dtm_duty_cycle": 0.125,
            "repro_thermal_peak_c": 72.0,
        }

    def test_special_values_round_trip(self):
        text = to_openmetrics({"a": math.inf, "b": -math.inf, "c": math.nan})
        parsed = parse_openmetrics(text)
        assert parsed["repro_a"] == math.inf
        assert parsed["repro_b"] == -math.inf
        assert math.isnan(parsed["repro_c"])

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="collision"):
            to_openmetrics({"a.b": 1.0, "a_b": 2.0})

    def test_file_write(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_openmetrics(self.SNAPSHOT, path)
        assert parse_openmetrics(path.read_text())


class TestOpenMetricsParserStrictness:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_a 1.0\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("repro_a 1.0 extra\n# EOF")

    def test_duplicate_metric_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_openmetrics("repro_a 1.0\nrepro_a 2.0\n# EOF")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_openmetrics("repro_a one\n# EOF")


class TestHtmlReport:
    @pytest.fixture
    def report(self, mini_trace):
        analysis = analyze(
            mini_trace,
            limit_c=70.0,
            ring_of=lambda core: core,
            peak_fn=lambda seq, tau: 71.0,
        )
        violations = run_detectors(mini_trace, [ThresholdDetector(70.0)])
        return html_report(mini_trace, analysis, violations, title="mini run")

    def test_self_contained(self, report):
        assert report.startswith("<!DOCTYPE html>")
        # no external fetches of any kind
        assert not re.search(r"(src|href)\s*=", report)
        assert "http://" not in report and "https://" not in report

    def test_svg_timeline_present(self, report):
        assert "<svg" in report
        # one polyline per core plus dashed reference levels
        assert report.count("<polyline") == 2
        assert "T_DTM" in report and "analytic T_peak" in report

    def test_sections_render(self, report):
        for fragment in (
            "mini run",
            "Per-core thermal stress",
            "Migrations by destination AMD ring",
            "Violations",
            "thermal-threshold",
        ):
            assert fragment in report

    def test_all_clear_without_violations(self, mini_trace):
        report = html_report(mini_trace)
        assert "No violations detected." in report

    def test_file_write(self, tmp_path, mini_trace):
        path = tmp_path / "report.html"
        write_html_report(path, mini_trace)
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestHistogramExposition:
    def _histogram(self):
        from repro.obs import Histogram

        histogram = Histogram("serve.latency_s")
        for _ in range(99):
            histogram.observe(0.003)
        histogram.observe(0.030)
        return histogram

    def test_quantile_and_bucket_keys(self):
        from repro.obs import histogram_exposition

        flat = histogram_exposition("serve.latency_s", self._histogram())
        # 99x 3ms lands in the (2ms, 5ms] bucket: the p50 estimate stays
        # inside that bucket, and p99 never exceeds the streaming max.
        assert 0.002 <= flat["serve.latency_s.p50"] <= 0.005
        assert flat["serve.latency_s.p99"] <= 0.030
        assert flat["serve.latency_s.bucket.le_inf"] == 100.0
        # cumulative: each bucket >= the previous one
        buckets = [
            value for key, value in flat.items() if ".bucket." in key
        ]
        assert buckets == sorted(buckets)

    def test_exposition_renders_as_valid_openmetrics(self):
        from repro.obs import histogram_exposition

        flat = histogram_exposition("serve.latency_s", self._histogram())
        text = to_openmetrics(flat)
        parsed = parse_openmetrics(text)
        assert parsed == pytest.approx(
            {openmetrics_name(name): value for name, value in flat.items()}
        )

    def test_bucket_labels_distinguish_exponent_signs(self):
        from repro.obs.export import bucket_label

        # 0.1 and 10.0 must not collide after name sanitization
        assert bucket_label(0.1) != bucket_label(10.0)
        assert openmetrics_name(
            f"h.bucket.le_{bucket_label(0.1)}"
        ) != openmetrics_name(f"h.bucket.le_{bucket_label(10.0)}")


class TestTraceWaterfall:
    def _spans(self):
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer(enabled=True)
        for _ in range(2):
            with tracer.span("http.peak", endpoint="peak"):
                with tracer.span("batch.wait"):
                    pass
        return list(tracer)

    def test_waterfall_is_self_contained_html(self):
        from repro.obs import trace_waterfall_html

        html = trace_waterfall_html(self._spans(), title="test run")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "test run" in html
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_every_span_renders_a_bar(self):
        from repro.obs import trace_waterfall_html

        spans = self._spans()
        html = trace_waterfall_html(spans)
        assert html.count("<rect") == len(spans)

    def test_max_traces_cap_is_stated(self):
        from repro.obs import trace_waterfall_html
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer(enabled=True)
        for index in range(5):
            with tracer.span(f"r{index}"):
                pass
        html = trace_waterfall_html(list(tracer), max_traces=2)
        assert "3 faster traces omitted" in html

    def test_write_trace_waterfall(self, tmp_path):
        from repro.obs import write_trace_waterfall

        path = tmp_path / "waterfall.html"
        write_trace_waterfall(path, self._spans())
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_empty_span_set_renders(self):
        from repro.obs import trace_waterfall_html

        html = trace_waterfall_html([])
        assert "no spans recorded" in html

"""Trace analytics against the hand-built miniature trace (known answers)."""

import numpy as np
import pytest

from repro.obs import (
    analysis_to_flat,
    analyze,
    compare_peak_to_bound,
    dtm_stats,
    infer_rotation_period,
    migration_stats,
    rotation_stats,
    thermal_stats,
)

from .conftest import ACTIVE_W, IDLE_W, PENALTY_S, TAU_S


class TestThermalStats:
    def test_chip_peak_located(self, mini_trace):
        summary = thermal_stats(mini_trace, limit_c=70.0)
        assert summary.peak_c == 72.0
        assert summary.peak_core == 0
        assert summary.peak_time_s == pytest.approx(2e-3)
        assert summary.duration_s == pytest.approx(4e-3)

    def test_per_core_means_are_time_weighted(self, mini_trace):
        summary = thermal_stats(mini_trace, limit_c=70.0)
        assert summary.cores[0].mean_c == pytest.approx((50 + 46 + 72 + 46) / 4)
        assert summary.cores[1].mean_c == pytest.approx((46 + 50 + 46 + 50) / 4)

    def test_stress_and_residency(self, mini_trace):
        summary = thermal_stats(mini_trace, limit_c=70.0)
        core0 = summary.cores[0]
        # exactly one 1 ms interval at 72 C against a 70 C limit
        assert core0.time_above_limit_s == pytest.approx(1e-3)
        assert core0.stress_cs == pytest.approx(2.0 * 1e-3)
        assert summary.cores[1].time_above_limit_s == 0.0
        assert summary.cores[1].stress_cs == 0.0

    def test_empty_trace_rejected(self):
        from repro.obs import TraceRecorder

        with pytest.raises(ValueError, match="no interval records"):
            thermal_stats(TraceRecorder(), limit_c=70.0)


class TestDtmStats:
    def test_duty_cycle(self, mini_trace):
        stats = dtm_stats(mini_trace)
        # 1 ms throttled core-time over 4 ms x 2 cores
        assert stats.duty_cycle == pytest.approx(1e-3 / 8e-3)
        assert stats.per_core_duty[0] == pytest.approx(0.25)
        assert stats.per_core_duty[1] == 0.0
        assert stats.throttled_core_time_s == pytest.approx(1e-3)

    def test_thrash_rate_from_events(self, mini_trace):
        stats = dtm_stats(mini_trace)
        assert stats.engaged == 1
        assert stats.released == 1
        assert stats.thrash_rate_hz == pytest.approx(2 / 4e-3)


class TestMigrationStats:
    def test_counts_and_penalties(self, mini_trace):
        stats = migration_stats(mini_trace)
        assert stats.count == 3
        assert stats.rate_hz == pytest.approx(3 / 4e-3)
        assert stats.total_penalty_s == pytest.approx(3 * PENALTY_S)
        assert stats.mean_penalty_s == pytest.approx(PENALTY_S)
        assert stats.per_dst_ring == {}

    def test_ring_breakdown(self, mini_trace):
        # identity ring map: destinations were cores 1, 0, 1
        stats = migration_stats(mini_trace, ring_of=lambda core: core)
        assert stats.per_dst_ring == {0: 1, 1: 2}
        assert stats.per_dst_ring_rate_hz[1] == pytest.approx(2 / 4e-3)


class TestRotationStats:
    def test_exact_adherence(self, mini_trace):
        stats = rotation_stats(mini_trace)
        assert stats.epochs == 4
        assert stats.tau_values_s == (TAU_S,)
        assert stats.final_tau_s == TAU_S
        assert stats.max_deviation == pytest.approx(0.0, abs=1e-9)
        assert stats.max_gap_s == pytest.approx(TAU_S)
        assert stats.trailing_gap_s == pytest.approx(TAU_S)

    def test_none_without_epochs(self):
        from repro.obs import TraceRecorder

        trace = TraceRecorder()
        trace.record_interval(0.0, 1e-3, {}, (IDLE_W,), (46.0,), (4e9,))
        assert rotation_stats(trace) is None


class TestBoundComparison:
    def test_rotation_period_inferred(self, mini_trace):
        # placements alternate A,B,A,B -> smallest repeating period is 2
        assert infer_rotation_period(mini_trace) == 2

    def test_power_pattern_is_slotwise_max(self, mini_trace):
        captured = {}

        def peak_fn(seq, tau):
            captured["seq"] = np.array(seq)
            captured["tau"] = tau
            return 80.0

        compare_peak_to_bound(mini_trace, peak_fn)
        # slots aligned so the last epoch lands on slot delta-1 = 1:
        # slot 0 holds epochs 0 and 2 (core 0 active), slot 1 epochs 1 and 3
        np.testing.assert_allclose(
            captured["seq"], [[ACTIVE_W, IDLE_W], [IDLE_W, ACTIVE_W]]
        )
        assert captured["tau"] == pytest.approx(TAU_S)

    def test_bound_held(self, mini_trace):
        result = compare_peak_to_bound(mini_trace, lambda seq, tau: 75.0)
        assert result.observed_peak_c == 72.0
        assert result.analytic_peak_c == 75.0
        assert result.margin_c == pytest.approx(3.0)
        assert result.delta == 2
        assert result.epochs_used == 4
        assert not result.exceeded

    def test_bound_exceeded(self, mini_trace):
        result = compare_peak_to_bound(mini_trace, lambda seq, tau: 71.0)
        assert result.exceeded
        assert result.margin_c == pytest.approx(-1.0)

    def test_tolerance_suppresses_exceedance(self, mini_trace):
        result = compare_peak_to_bound(
            mini_trace, lambda seq, tau: 71.0, tolerance_c=1.5
        )
        assert not result.exceeded

    def test_none_without_rotation(self):
        from repro.obs import TraceRecorder

        trace = TraceRecorder()
        trace.record_interval(0.0, 1e-3, {}, (IDLE_W,), (46.0,), (4e9,))
        assert compare_peak_to_bound(trace, lambda seq, tau: 0.0) is None

    def test_envelope_fallback_when_placements_never_repeat(self):
        """Adaptive schedulers re-tune placements so no exact period exists;
        the comparison then uses the whole-run power envelope (delta = 1)."""
        from repro.obs import TraceRecorder

        trace = TraceRecorder()
        powers = [(2.0, IDLE_W), (IDLE_W, 3.0), (1.5, 1.5)]
        for epoch, power in enumerate(powers):
            trace.record_epoch(epoch * TAU_S, epoch=epoch, tau_s=TAU_S)
            trace.record_interval(
                epoch * TAU_S,
                TAU_S,
                {"t0": epoch % 2},  # never two identical windows
                power,
                (50.0, 50.0),
                (4e9, 4e9),
            )
        assert infer_rotation_period(trace) is None
        captured = {}

        def peak_fn(seq, tau):
            captured["seq"] = np.array(seq)
            return 60.0

        result = compare_peak_to_bound(trace, peak_fn)
        assert result.delta == 1
        np.testing.assert_allclose(captured["seq"], [[2.0, 3.0]])
        assert not result.exceeded


class TestAnalyzeBundle:
    def test_bundle_and_flattening(self, mini_trace):
        analysis = analyze(
            mini_trace,
            limit_c=70.0,
            ring_of=lambda core: core,
            peak_fn=lambda seq, tau: 75.0,
        )
        flat = analysis_to_flat(analysis)
        assert flat["thermal.peak_c"] == 72.0
        assert flat["thermal.core.0.stress_cs"] == pytest.approx(2e-3)
        assert flat["dtm.duty_cycle"] == pytest.approx(0.125)
        assert flat["migration.count"] == 3.0
        assert flat["migration.to_ring.1"] == 2.0
        assert flat["rotation.epochs"] == 4.0
        assert flat["bound.exceeded"] == 0.0
        assert list(flat) == sorted(flat)
        assert all(isinstance(v, float) for v in flat.values())

    def test_bound_skipped_without_peak_fn(self, mini_trace):
        analysis = analyze(mini_trace, limit_c=70.0)
        assert analysis.bound is None
        assert "bound.margin_c" not in analysis_to_flat(analysis)

"""Observer construction and precedence: explicit beats configured."""

from repro import config
from repro.obs import JsonlTraceSink, MetricsRegistry, Observer, TraceRecorder
from repro.sched.naive import PeakFrequencyScheduler
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def _task():
    return Task(0, PARSEC["blackscholes"], n_threads=1, seed=1)


class TestFromConfig:
    def test_all_off_yields_none(self):
        assert Observer.from_config(config.ObservabilityConfig()) is None
        assert config.small_test().obs.any_enabled is False

    def test_components_follow_flags(self):
        obs = Observer.from_config(
            config.ObservabilityConfig(trace=True, metrics=True)
        )
        assert isinstance(obs.trace, TraceRecorder)
        assert isinstance(obs.metrics, MetricsRegistry)
        assert obs.profiler is None

    def test_trace_path_builds_a_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observer.from_config(
            config.ObservabilityConfig(trace_path=str(path))
        )
        assert isinstance(obs.trace, JsonlTraceSink)
        assert obs.trace.path == path
        obs.close()
        assert obs.trace.closed

    def test_trace_path_wins_over_trace_flag(self, tmp_path):
        obs = Observer.from_config(
            config.ObservabilityConfig(
                trace=True, trace_path=str(tmp_path / "run.jsonl")
            )
        )
        assert isinstance(obs.trace, JsonlTraceSink)
        obs.close()


class TestEnginePrecedence:
    def test_explicit_observer_wins_over_config(self):
        """An explicitly passed observer overrides ``SystemConfig.obs``."""
        cfg = config.small_test().with_observability(trace=True, profiling=True)
        mine = Observer(metrics=MetricsRegistry())
        sim = IntervalSimulator(
            cfg, PeakFrequencyScheduler(), [_task()], observer=mine
        )
        assert sim.observer is mine
        result = sim.run(max_time_s=0.005)
        # only the explicit observer's components were active
        assert mine.trace is None and mine.profiler is None
        assert result.metrics_snapshot  # the explicit registry was used
        assert not result.profile

    def test_config_used_when_no_explicit_observer(self):
        cfg = config.small_test().with_observability(trace=True)
        sim = IntervalSimulator(cfg, PeakFrequencyScheduler(), [_task()])
        assert isinstance(sim.observer.trace, TraceRecorder)
        assert sim.observer.metrics is None

    def test_disabled_config_means_no_observer(self):
        sim = IntervalSimulator(
            config.small_test(), PeakFrequencyScheduler(), [_task()]
        )
        assert sim.observer is None
        result = sim.run(max_time_s=0.005)
        assert result.metrics_snapshot == {}

"""Profiling hooks: accurate when enabled, free when disabled."""

import pytest

from repro import config
from repro.obs import Observer, PhaseProfiler
from repro.sched import HotPotatoScheduler
from repro.sim import IntervalSimulator
from repro.workload import PARSEC, Task


class TestPhaseProfiler:
    def test_begin_end_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            token = profiler.begin("phase")
            profiler.end("phase", token)
        stat = profiler.records["phase"]
        assert stat.count == 3
        assert stat.total_s >= 0.0
        assert stat.min_s <= stat.max_s

    def test_context_manager_records(self):
        profiler = PhaseProfiler()
        with profiler.time("block"):
            pass
        assert profiler.records["block"].count == 1

    def test_disabled_profiler_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        token = profiler.begin("phase")
        profiler.end("phase", token)
        with profiler.time("block"):
            pass
        assert len(profiler) == 0
        assert profiler.records == {}
        assert profiler.summary() == {}

    def test_summary_sorted_by_total_descending(self):
        profiler = PhaseProfiler()
        with profiler.time("outer"):
            with profiler.time("inner"):
                pass
        summary = profiler.summary()
        totals = [stat["total_s"] for stat in summary.values()]
        assert totals == sorted(totals, reverse=True)
        for stat in summary.values():
            assert set(stat) == {"count", "total_s", "mean_s", "min_s", "max_s"}

    def test_render_mentions_phases(self):
        profiler = PhaseProfiler()
        with profiler.time("thermal.step"):
            pass
        assert "thermal.step" in profiler.render()
        assert "disabled" in PhaseProfiler(enabled=False).render()


class TestEngineProfiling:
    def _run(self, observer):
        cfg = config.motivational()
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(
            cfg, HotPotatoScheduler(), [task], observer=observer
        )
        return sim.run(max_time_s=0.02)

    def test_enabled_profiler_covers_engine_phases(self):
        observer = Observer(profiler=PhaseProfiler())
        result = self._run(observer)
        assert set(result.profile) == {
            "scheduler.decide",
            "power_map.build",
            "thermal.step",
        }
        counts = {stat["count"] for stat in result.profile.values()}
        assert len(counts) == 1  # every phase runs once per interval
        assert all(stat["total_s"] > 0 for stat in result.profile.values())

    def test_disabled_profiler_adds_zero_records(self):
        profiler = PhaseProfiler(enabled=False)
        result = self._run(Observer(profiler=profiler))
        assert len(profiler) == 0
        assert result.profile == {}

    def test_no_observer_means_no_profile(self):
        result = self._run(None)
        assert result.profile == {}

    def test_profiling_via_config_flag(self):
        cfg = config.motivational().with_observability(profiling=True)
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(cfg, HotPotatoScheduler(), [task])
        result = sim.run(max_time_s=0.02)
        assert sim.observer is not None
        assert sim.observer.profiler is not None
        assert result.profile  # phases recorded
        # trace/metrics were not requested, so they stay off
        assert sim.observer.trace is None
        assert sim.observer.metrics is None

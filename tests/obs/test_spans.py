"""Span tracer: identity, nesting, ring buffer, JSONL round-trip, SLO."""

import asyncio
import json

import pytest

from repro.obs.slo import SloTarget, SloTracker
from repro.obs.spans import (
    SpanRecord,
    SpanTracer,
    read_spans_jsonl,
    span_to_json_line,
    spans_from_jsonl,
    spans_to_jsonl,
)


class TestDisabledTracer:
    def test_disabled_by_default(self):
        tracer = SpanTracer()
        assert not tracer.enabled
        with tracer.span("anything") as span:
            span.annotate(key=1.0)
            span.add_link(7)
        assert len(tracer) == 0
        assert tracer.finished == 0

    def test_disabled_span_has_no_identity(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            assert tracer.current_span_id() is None
            assert tracer.current_trace_id() is None

    def test_record_phases_noop_when_disabled(self):
        tracer = SpanTracer()
        tracer.record_phases({"phase": {"count": 1.0, "total_s": 0.5}})
        assert len(tracer) == 0


class TestIdentityAndNesting:
    def test_root_spans_get_fresh_traces(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        spans = list(tracer)
        assert [s.parent_id for s in spans] == [None, None]
        assert spans[0].trace_id != spans[1].trace_id

    def test_nested_span_is_child_in_same_trace(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("parent") as parent:
            with tracer.span("child"):
                pass
        child, parent_record = list(tracer)
        assert child.name == "child"
        assert child.trace_id == parent_record.trace_id
        assert child.parent_id == parent_record.span_id
        assert parent.span_id == parent_record.span_id

    def test_root_flag_breaks_out_of_ambient_trace(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("detached", root=True):
                pass
        detached, outer = list(tracer)
        assert detached.parent_id is None
        assert detached.trace_id != outer.trace_id

    def test_ids_are_deterministic_counters(self):
        tracer = SpanTracer(enabled=True)
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert [s.span_id for s in tracer] == [1, 2, 3]
        assert [s.trace_id for s in tracer] == [1, 2, 3]

    def test_duration_and_ordering(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("timed"):
            pass
        (span,) = list(tracer)
        assert span.duration_s >= 0.0
        assert span.end_s == pytest.approx(span.start_s + span.duration_s)

    def test_exception_marks_status_and_propagates(self):
        tracer = SpanTracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = list(tracer)
        assert span.status == "error:ValueError"

    def test_annotations_and_links(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("s", links=(5,), kind="test") as span:
            span.annotate(count=3)
            span.add_link(9)
        (record,) = list(tracer)
        assert record.attrs == {"kind": "test", "count": 3}
        assert record.links == (5, 9)


class TestAsyncioPropagation:
    def test_concurrent_tasks_have_isolated_contexts(self):
        tracer = SpanTracer(enabled=True)

        async def request(name):
            with tracer.span(name):
                await asyncio.sleep(0)
                with tracer.span(f"{name}.child"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(*(request(f"r{i}") for i in range(4)))

        asyncio.run(main())
        spans = list(tracer)
        roots = {s.span_id: s for s in spans if s.parent_id is None}
        children = [s for s in spans if s.parent_id is not None]
        assert len(roots) == 4 and len(children) == 4
        for child in children:
            parent = roots[child.parent_id]
            assert child.trace_id == parent.trace_id
            assert child.name == f"{parent.name}.child"


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tracer = SpanTracer(enabled=True, capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.finished == 5
        assert [s.name for s in tracer] == ["s2", "s3", "s4"]

    def test_clear_resets_buffer_not_counters(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.finished == 1

    def test_stats_shape(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("s"):
            pass
        stats = tracer.stats()
        assert stats["spans.enabled"] == 1.0
        assert stats["spans.buffered"] == 1.0
        assert stats["spans.finished"] == 1.0
        assert stats["spans.dropped"] == 0.0


class TestJsonlRoundTrip:
    def _traced(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("parent", links=(99,), endpoint="peak") as span:
            span.annotate(status=200)
            with tracer.span("child"):
                pass
        return tracer

    def test_round_trip_preserves_records(self):
        spans = list(self._traced())
        recovered = spans_from_jsonl(spans_to_jsonl(spans))
        assert recovered == spans

    def test_json_lines_are_tagged_and_sorted(self):
        spans = list(self._traced())
        payload = json.loads(span_to_json_line(spans[0]))
        assert payload["kind"] == "span"
        assert list(payload) == sorted(payload)

    def test_write_and_read_file(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        assert read_spans_jsonl(path) == list(tracer)

    def test_sink_streams_while_tracing(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with SpanTracer(enabled=True, sink_path=path) as tracer:
            with tracer.span("a"):
                pass
            tracer.flush()
            assert len(read_spans_jsonl(path)) == 1
        assert read_spans_jsonl(path) == list(tracer)

    def test_malformed_line_reports_line_number(self):
        good = span_to_json_line(list(self._traced())[0])
        with pytest.raises(ValueError, match="line 2"):
            spans_from_jsonl(good + "\nnot json\n")
        with pytest.raises(ValueError, match="line 2"):
            spans_from_jsonl(good + '\n{"kind": "span"}\n')


class TestRecordPhases:
    def test_phases_become_children_of_ambient_span(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("http.simulate"):
            tracer.record_phases(
                {
                    "thermal.step": {
                        "count": 4.0,
                        "total_s": 0.02,
                        "mean_s": 0.005,
                    },
                    "scheduler.decide": {
                        "count": 4.0,
                        "total_s": 0.01,
                        "mean_s": 0.0025,
                    },
                }
            )
        spans = {s.name: s for s in tracer}
        request = spans["http.simulate"]
        for phase in ("phase.thermal.step", "phase.scheduler.decide"):
            assert spans[phase].parent_id == request.span_id
            assert spans[phase].trace_id == request.trace_id
        assert spans["phase.thermal.step"].duration_s == pytest.approx(0.02)
        assert spans["phase.thermal.step"].attrs["count"] == 4.0

    def test_no_ambient_span_is_a_noop(self):
        tracer = SpanTracer(enabled=True)
        tracer.record_phases({"p": {"count": 1.0, "total_s": 0.1}})
        assert len(tracer) == 0


class TestSloTracker:
    def test_target_validation(self):
        with pytest.raises(ValueError):
            SloTarget(latency_s=0.0)
        with pytest.raises(ValueError):
            SloTarget(latency_s=0.1, error_budget=0.0)
        with pytest.raises(ValueError):
            SloTarget(latency_s=0.1, error_budget=1.5)

    def test_budget_accounting(self):
        tracker = SloTracker(SloTarget(latency_s=0.010, error_budget=0.1))
        for index in range(9):
            assert not tracker.record(float(index), 0.001)
        assert not tracker.exhausted
        assert tracker.record(9.0, 0.5)
        assert tracker.violation_fraction == pytest.approx(0.1)
        assert tracker.budget_used == pytest.approx(1.0)
        assert tracker.exhausted

    def test_burn_rate_windowing(self):
        tracker = SloTracker(
            SloTarget(latency_s=0.010, error_budget=0.5), burn_window_s=10.0
        )
        tracker.record(0.0, 1.0)
        tracker.record(1.0, 1.0)
        assert tracker.burn_rate(1.0) == pytest.approx(2.0)
        # both slow samples age out of the window
        assert tracker.burn_rate(50.0) == 0.0

    def test_snapshot_is_flat(self):
        tracker = SloTracker(SloTarget(latency_s=0.010))
        tracker.record(0.0, 0.5)
        snapshot = tracker.snapshot()
        assert snapshot["slo.requests"] == 1.0
        assert snapshot["slo.slow_requests"] == 1.0
        assert all(isinstance(v, float) for v in snapshot.values())

"""``python -m repro.obs`` smoke tests: real subprocess, real run artifacts."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import config
from repro.obs import parse_openmetrics
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

from .conftest import build_mini_trace

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(*args):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def _record_run(trace_path, result_path):
    from repro.io import save_result

    cfg = config.small_test().with_observability(trace=True, metrics=True)
    tasks = [Task(0, PARSEC["blackscholes"], n_threads=2, seed=3)]
    sim = IntervalSimulator(cfg, FixedRotationScheduler(), tasks)
    result = sim.run(max_time_s=0.01)
    sim.observer.trace.write_jsonl(trace_path)
    save_result(result, result_path)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two identical-seed ``fixed_rotation`` runs plus the synthetic trace."""
    root = tmp_path_factory.mktemp("cli")
    _record_run(root / "run_a.jsonl", root / "run_a.json")
    _record_run(root / "run_b.jsonl", root / "run_b.json")
    build_mini_trace().write_jsonl(root / "mini.jsonl")
    return root


class TestSummarize:
    def test_human_output(self, artifacts):
        proc = run_cli(
            "summarize", str(artifacts / "run_a.jsonl"), "--config", "small_test"
        )
        assert proc.returncode == 0, proc.stderr
        assert "peak" in proc.stdout
        assert "derived statistics" in proc.stdout

    def test_json_output_is_flat(self, artifacts):
        proc = run_cli("summarize", str(artifacts / "run_a.jsonl"), "--json")
        assert proc.returncode == 0, proc.stderr
        flat = json.loads(proc.stdout)
        assert flat["thermal.peak_c"] > 0
        assert all(isinstance(v, (int, float)) for v in flat.values())


class TestCheck:
    def test_clean_run_exits_zero(self, artifacts):
        proc = run_cli(
            "check", str(artifacts / "run_a.jsonl"), "--config", "small_test"
        )
        assert proc.returncode == 0, proc.stderr
        assert "no violations detected" in proc.stdout

    def test_violating_trace_exits_nonzero_and_locates(self, artifacts):
        # the synthetic trace breaks a 71 C bound in exactly one interval:
        # start 2 ms, core 0
        proc = run_cli(
            "check", str(artifacts / "mini.jsonl"), "--bound-c", "71", "--json"
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        violations = json.loads(proc.stdout)
        located = [v for v in violations if v["detector"] == "analytic-bound"]
        assert len(located) == 1
        assert located[0]["time_s"] == pytest.approx(2e-3)
        assert located[0]["core"] == 0


class TestDiff:
    def test_identical_seed_runs_do_not_drift(self, artifacts):
        proc = run_cli(
            "diff",
            str(artifacts / "run_a.jsonl"),
            str(artifacts / "run_b.jsonl"),
            "--config",
            "small_test",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no drift" in proc.stdout

    def test_snapshot_drift_detected(self, artifacts, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps({"m.count": 1.0}))
        (tmp_path / "b.json").write_text(json.dumps({"m.count": 3.0}))
        proc = run_cli("diff", str(tmp_path / "a.json"), str(tmp_path / "b.json"))
        assert proc.returncode == 1
        assert "m.count" in proc.stdout
        # ...and a wide-enough tolerance accepts it
        proc = run_cli(
            "diff",
            str(tmp_path / "a.json"),
            str(tmp_path / "b.json"),
            "--tolerance",
            "5",
        )
        assert proc.returncode == 0


class TestExport:
    def test_openmetrics_from_result_json(self, artifacts, tmp_path):
        out = tmp_path / "metrics.prom"
        proc = run_cli(
            "export",
            str(artifacts / "run_a.json"),
            "--format",
            "openmetrics",
            "-o",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        parsed = parse_openmetrics(out.read_text())
        assert parsed  # non-empty, strictly valid exposition

    def test_html_from_trace(self, artifacts, tmp_path):
        out = tmp_path / "report.html"
        proc = run_cli(
            "export",
            str(artifacts / "run_a.jsonl"),
            "--format",
            "html",
            "-o",
            str(out),
            "--config",
            "small_test",
        )
        assert proc.returncode == 0, proc.stderr
        report = out.read_text()
        assert report.startswith("<!DOCTYPE html>")
        assert "<svg" in report

    def test_bad_input_reports_error(self, tmp_path):
        proc = run_cli(
            "export",
            str(tmp_path / "missing.json"),
            "--format",
            "openmetrics",
            "-o",
            str(tmp_path / "out.prom"),
        )
        assert proc.returncode == 2
        assert "error:" in proc.stderr


class TestSpansSubcommand:
    @pytest.fixture(scope="class")
    def span_file(self, tmp_path_factory):
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer(enabled=True)
        for index in range(3):
            with tracer.span("http.peak", endpoint="peak"):
                with tracer.span("batch.wait"):
                    pass
        path = tmp_path_factory.mktemp("spans") / "spans.jsonl"
        tracer.write_jsonl(path)
        return path

    def test_summarize_json(self, span_file):
        proc = run_cli("spans", "summarize", str(span_file), "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["spans"] == 6
        assert payload["traces"] == 3
        assert payload["by_name"]["http.peak"]["count"] == 3

    def test_summarize_human(self, span_file):
        proc = run_cli("spans", "summarize", str(span_file))
        assert proc.returncode == 0, proc.stderr
        assert "http.peak" in proc.stdout and "batch.wait" in proc.stdout

    def test_slowest_ranks_by_duration(self, span_file):
        proc = run_cli("spans", "slowest", str(span_file), "--json", "--limit", "2")
        assert proc.returncode == 0, proc.stderr
        ranked = json.loads(proc.stdout)
        assert len(ranked) == 2
        durations = [entry["duration_s"] for entry in ranked]
        assert durations == sorted(durations, reverse=True)
        assert all(entry["root"] == "http.peak" for entry in ranked)

    def test_export_waterfall(self, span_file, tmp_path):
        out = tmp_path / "waterfall.html"
        proc = run_cli("spans", "export", str(span_file), "-o", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_empty_file_reports_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        proc = run_cli("spans", "summarize", str(empty))
        assert proc.returncode != 0

"""Trace recorder: structured records and lossless JSONL round-trips."""

import math

import pytest

from repro import config
from repro.obs import EpochRecord, EventRecord, IntervalRecord, TraceRecorder
from repro.sched import FixedRotationScheduler, HotPotatoScheduler
from repro.sim import IntervalSimulator, TaskArrived, ThreadMigrated
from repro.workload import PARSEC, Task


def _sample_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.record_event(TaskArrived(0.0, 7, "blackscholes", 2))
    recorder.record_interval(
        time_s=0.0,
        dt_s=0.5e-3,
        placements={"7.0": 5, "7.1": 6},
        power_w=[0.3, 8.0, 0.3, 0.3],
        temps_c=[46.0, 61.5, 45.2, 45.1],
        frequencies_hz=[4.0e9] * 4,
        dtm_throttled=[1],
    )
    recorder.record_epoch(0.5e-3, 1, 0.5e-3)
    recorder.record_event(ThreadMigrated(0.5e-3, "7.0", 5, 9, 25e-6))
    return recorder


class TestRecording:
    def test_records_are_typed_and_ordered(self):
        recorder = _sample_recorder()
        assert len(recorder) == 4
        assert len(recorder.intervals()) == 1
        assert len(recorder.epochs()) == 1
        assert len(recorder.events()) == 2
        assert len(recorder.events("ThreadMigrated")) == 1
        times = [r.time_s for r in recorder]
        assert times == sorted(times)

    def test_interval_record_coerces_and_sorts(self):
        recorder = TraceRecorder()
        record = recorder.record_interval(
            time_s=0,
            dt_s=1,
            placements={"b": 1, "a": 0},
            power_w=[1, 2],
            temps_c=[45, 46],
            frequencies_hz=[1e9, 2e9],
        )
        assert list(record.placements) == ["a", "b"]
        assert record.power_w == (1.0, 2.0)
        assert record.dtm_throttled == ()
        assert isinstance(record.dt_s, float)

    def test_event_record_strips_timestamp_into_field(self):
        recorder = TraceRecorder()
        record = recorder.record_event(TaskArrived(0.25, 3, "x264", 4))
        assert record.time_s == 0.25
        assert record.event == "TaskArrived"
        assert record.data == {
            "task_id": 3,
            "benchmark": "x264",
            "n_threads": 4,
            "deadline_s": None,
        }

    def test_record_event_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            TraceRecorder().record_event(object())


class TestJsonlRoundTrip:
    def test_manual_records_round_trip_exactly(self):
        recorder = _sample_recorder()
        reloaded = TraceRecorder.from_jsonl(recorder.to_jsonl())
        assert reloaded == recorder
        assert reloaded.records == recorder.records

    def test_round_trip_preserves_awkward_floats(self):
        recorder = TraceRecorder()
        recorder.record_interval(
            time_s=1.0 / 3.0,
            dt_s=0.1 + 0.2,  # famously not 0.3
            placements={"0.0": 0},
            power_w=[math.pi],
            temps_c=[45.000000001],
            frequencies_hz=[4.0e9],
        )
        reloaded = TraceRecorder.from_jsonl(recorder.to_jsonl())
        assert reloaded == recorder

    def test_file_round_trip(self, tmp_path):
        recorder = _sample_recorder()
        path = tmp_path / "trace.jsonl"
        recorder.write_jsonl(path)
        assert TraceRecorder.read_jsonl(path) == recorder

    def test_empty_recorder_round_trips(self):
        recorder = TraceRecorder()
        assert recorder.to_jsonl() == ""
        assert TraceRecorder.from_jsonl("") == recorder

    def test_bad_json_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            TraceRecorder.from_jsonl("{not json\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            TraceRecorder.from_jsonl('{"kind": "mystery", "time_s": 0}\n')

    def test_record_types_from_jsonl(self):
        reloaded = TraceRecorder.from_jsonl(_sample_recorder().to_jsonl())
        kinds = [type(r) for r in reloaded]
        assert kinds == [EventRecord, IntervalRecord, EpochRecord, EventRecord]


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        cfg = config.motivational().with_observability(trace=True)
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(cfg, HotPotatoScheduler(), [task])
        result = sim.run(max_time_s=0.05)
        return sim, result

    def test_engine_trace_round_trips(self, traced_run, tmp_path):
        sim, _ = traced_run
        recorder = sim.observer.trace
        assert len(recorder.intervals()) > 0
        path = tmp_path / "run.jsonl"
        recorder.write_jsonl(path)
        assert TraceRecorder.read_jsonl(path) == recorder

    def test_interval_records_cover_the_run(self, traced_run):
        sim, result = traced_run
        intervals = sim.observer.trace.intervals()
        # contiguous, non-overlapping coverage of simulated time
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur.time_s == pytest.approx(prev.time_s + prev.dt_s)
        assert intervals[-1].time_s + intervals[-1].dt_s == pytest.approx(
            result.sim_time_s
        )

    def test_interval_records_carry_engine_state(self, traced_run):
        sim, _ = traced_run
        cfg = sim.config
        busy = [r for r in sim.observer.trace.intervals() if r.placements]
        assert busy, "no interval carried placements"
        for record in busy:
            assert len(record.power_w) == cfg.n_cores
            assert len(record.temps_c) == cfg.n_cores
            assert len(record.frequencies_hz) == cfg.n_cores
            assert all(p >= cfg.thermal.idle_power_w - 1e-12 for p in record.power_w)
            assert all(0 <= c < cfg.n_cores for c in record.placements.values())

    def test_events_mirrored_into_trace(self, traced_run):
        sim, result = traced_run
        recorder = sim.observer.trace
        assert len(recorder.events("TaskArrived")) == 1
        # every engine migration appears as a ThreadMigrated event record
        assert len(recorder.events("ThreadMigrated")) == result.migration_count

    def test_rotation_epochs_recorded(self):
        cfg = config.motivational().with_observability(trace=True)
        task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
        sim = IntervalSimulator(cfg, FixedRotationScheduler(tau_s=1e-3), [task])
        sim.run(max_time_s=0.02)
        epochs = sim.observer.trace.epochs()
        assert len(epochs) >= 2
        assert [e.epoch for e in epochs] == list(range(len(epochs)))
        for record in epochs:
            assert record.tau_s == pytest.approx(1e-3)


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _sample_recorder().write_jsonl(path)
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("old content that must fully disappear\n" * 100)
        recorder = _sample_recorder()
        recorder.write_jsonl(path)
        assert TraceRecorder.read_jsonl(path) == recorder

    def test_failed_write_preserves_existing_file(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        original = _sample_recorder()
        original.write_jsonl(path)
        before = path.read_text()
        broken = _sample_recorder()
        monkeypatch.setattr(
            type(broken), "to_jsonl", lambda self: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError, match="disk"):
            broken.write_jsonl(path)
        # the target is untouched and the temp file was cleaned up
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

"""The deterministic parallel experiment runner (``repro.parallel``).

The load-bearing property: a parallel sweep is *byte-identical* to a serial
one — per-cell seeds are pure functions of cell identity, collation is
ordered, and pool failures degrade to the serial path.
"""

import numpy as np
import pytest

from repro import config
from repro.parallel import Cell, derive_seed, run_cells
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("cell exploded")


def _simulate(seed, config_obj, model, max_time_s):
    """Module-level simulation cell (process pools must pickle it)."""
    task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=seed)
    sim = IntervalSimulator(
        config_obj,
        FixedRotationScheduler(tau_s=0.5e-3),
        [task],
        ctx=SimContext(config_obj, model),
        record_trace=False,
    )
    result = sim.run(max_time_s=max_time_s)
    return {
        "makespan_s": result.makespan_s,
        "response_s": result.mean_response_time_s,
        "migrations": result.migration_count,
    }


class TestDeriveSeed:
    def test_is_deterministic(self):
        assert derive_seed(42, "canneal", 0.5) == derive_seed(42, "canneal", 0.5)

    def test_distinguishes_parts_and_base(self):
        seeds = {
            derive_seed(42, "canneal", 0.5),
            derive_seed(42, "canneal", 1.0),
            derive_seed(42, "dedup", 0.5),
            derive_seed(43, "canneal", 0.5),
        }
        assert len(seeds) == 4

    def test_fits_in_32_bits(self):
        for i in range(100):
            assert 0 <= derive_seed(7, i) < 2**32


class TestRunCells:
    def test_serial_collates_in_order(self):
        cells = [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(5)]
        results = run_cells(cells, jobs=1)
        assert list(results) == [0, 1, 2, 3, 4]
        assert results == {i: i * i for i in range(5)}

    def test_parallel_collates_in_order(self):
        cells = [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(6)]
        results = run_cells(cells, jobs=3)
        assert list(results) == list(range(6))
        assert results == {i: i * i for i in range(6)}

    def test_duplicate_keys_rejected(self):
        cells = [Cell(key="a", fn=_square, kwargs={"x": 1})] * 2
        with pytest.raises(ValueError, match="unique"):
            run_cells(cells, jobs=1)

    def test_cell_exception_propagates_serially(self):
        with pytest.raises(RuntimeError, match="exploded"):
            run_cells([Cell(key=0, fn=_boom)], jobs=1)

    def test_single_cell_skips_the_pool(self):
        results = run_cells([Cell(key="only", fn=_square, kwargs={"x": 9})], jobs=8)
        assert results == {"only": 81}


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def cfg(self):
        return config.motivational()

    @pytest.fixture(scope="class")
    def model(self, cfg):
        return SimContext(cfg).thermal_model

    def _cells(self, cfg, model):
        return [
            Cell(
                key=("blackscholes", i),
                fn=_simulate,
                kwargs=dict(
                    seed=derive_seed(42, "blackscholes", i),
                    config_obj=cfg,
                    model=model,
                    max_time_s=0.2,  # long enough for the task to finish
                ),
            )
            for i in range(4)
        ]

    def test_jobs4_identical_to_serial(self, cfg, model):
        serial = run_cells(self._cells(cfg, model), jobs=1)
        parallel = run_cells(self._cells(cfg, model), jobs=4)
        assert list(serial) == list(parallel)
        for key in serial:
            # byte-identical metrics, not merely approximately equal
            assert serial[key] == parallel[key], key

    def test_repeated_serial_runs_identical(self, cfg, model):
        a = run_cells(self._cells(cfg, model), jobs=1)
        b = run_cells(self._cells(cfg, model), jobs=1)
        assert a == b

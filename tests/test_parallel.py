"""The deterministic parallel experiment runner (``repro.parallel``).

The load-bearing property: a parallel sweep is *byte-identical* to a serial
one — per-cell seeds are pure functions of cell identity, collation is
ordered, and pool failures degrade to the serial path.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import config
from repro.parallel import (
    Cell,
    CellTimeoutError,
    RetryPolicy,
    SweepCheckpoint,
    canonical_key,
    derive_seed,
    run_cells,
)
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("cell exploded")


def _simulate(seed, config_obj, model, max_time_s):
    """Module-level simulation cell (process pools must pickle it)."""
    task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=seed)
    sim = IntervalSimulator(
        config_obj,
        FixedRotationScheduler(tau_s=0.5e-3),
        [task],
        ctx=SimContext(config_obj, model),
        record_trace=False,
    )
    result = sim.run(max_time_s=max_time_s)
    return {
        "makespan_s": result.makespan_s,
        "response_s": result.mean_response_time_s,
        "migrations": result.migration_count,
    }


class TestDeriveSeed:
    def test_is_deterministic(self):
        assert derive_seed(42, "canneal", 0.5) == derive_seed(42, "canneal", 0.5)

    def test_distinguishes_parts_and_base(self):
        seeds = {
            derive_seed(42, "canneal", 0.5),
            derive_seed(42, "canneal", 1.0),
            derive_seed(42, "dedup", 0.5),
            derive_seed(43, "canneal", 0.5),
        }
        assert len(seeds) == 4

    def test_fits_in_32_bits(self):
        for i in range(100):
            assert 0 <= derive_seed(7, i) < 2**32


class TestRunCells:
    def test_serial_collates_in_order(self):
        cells = [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(5)]
        results = run_cells(cells, jobs=1)
        assert list(results) == [0, 1, 2, 3, 4]
        assert results == {i: i * i for i in range(5)}

    def test_parallel_collates_in_order(self):
        cells = [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(6)]
        results = run_cells(cells, jobs=3)
        assert list(results) == list(range(6))
        assert results == {i: i * i for i in range(6)}

    def test_duplicate_keys_rejected(self):
        cells = [Cell(key="a", fn=_square, kwargs={"x": 1})] * 2
        with pytest.raises(ValueError, match="unique"):
            run_cells(cells, jobs=1)

    def test_cell_exception_propagates_serially(self):
        with pytest.raises(RuntimeError, match="exploded"):
            run_cells([Cell(key=0, fn=_boom)], jobs=1)

    def test_single_cell_skips_the_pool(self):
        results = run_cells([Cell(key="only", fn=_square, kwargs={"x": 9})], jobs=8)
        assert results == {"only": 81}


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def cfg(self):
        return config.motivational()

    @pytest.fixture(scope="class")
    def model(self, cfg):
        return SimContext(cfg).thermal_model

    def _cells(self, cfg, model):
        return [
            Cell(
                key=("blackscholes", i),
                fn=_simulate,
                kwargs=dict(
                    seed=derive_seed(42, "blackscholes", i),
                    config_obj=cfg,
                    model=model,
                    max_time_s=0.2,  # long enough for the task to finish
                ),
            )
            for i in range(4)
        ]

    def test_jobs4_identical_to_serial(self, cfg, model):
        serial = run_cells(self._cells(cfg, model), jobs=1)
        parallel = run_cells(self._cells(cfg, model), jobs=4)
        assert list(serial) == list(parallel)
        for key in serial:
            # byte-identical metrics, not merely approximately equal
            assert serial[key] == parallel[key], key

    def test_repeated_serial_runs_identical(self, cfg, model):
        a = run_cells(self._cells(cfg, model), jobs=1)
        b = run_cells(self._cells(cfg, model), jobs=1)
        assert a == b


# -- retry / timeout / checkpoint (the repro.faults hardening layer) -------------


def _flaky(counter_path, succeed_on):
    """Fail until attempt ``succeed_on``; a tmp file counts real invocations."""
    path = Path(counter_path)
    attempt = int(path.read_text()) + 1 if path.exists() else 1
    path.write_text(str(attempt))
    if attempt < succeed_on:
        raise RuntimeError(f"flaky attempt {attempt}")
    return attempt


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _count_and_square(counter_path, x):
    path = Path(counter_path)
    path.write_text(str(int(path.read_text()) + 1 if path.exists() else 1))
    return x * x


def _enc(x):
    return {"payload": x}


def _dec(d):
    return d["payload"]


class TestRetryPolicy:
    def test_delay_is_pure_and_deterministic(self):
        policy = RetryPolicy(retries=3, seed=7)
        assert policy.delay_s("cell", 1) == policy.delay_s("cell", 1)
        assert policy.delay_s("cell", 1) != policy.delay_s("cell", 2)
        assert policy.delay_s("cell", 1) != policy.delay_s("other", 1)

    def test_delay_bounded_by_capped_exponential(self):
        policy = RetryPolicy(retries=8, backoff_base_s=0.05, backoff_cap_s=0.4)
        for attempt in range(1, 9):
            bound = min(0.4, 0.05 * 2 ** (attempt - 1))
            delay = policy.delay_s(("k", attempt), attempt)
            assert 0.0 <= delay <= bound

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s("k", 0)

    def test_seed_changes_schedule(self):
        a = RetryPolicy(seed=1).delay_s("k", 1)
        b = RetryPolicy(seed=2).delay_s("k", 1)
        assert a != b


class TestRetryExecution:
    def test_serial_retry_recovers_flaky_cell(self, tmp_path):
        counter = tmp_path / "attempts"
        cells = [
            Cell(
                key="flaky",
                fn=_flaky,
                kwargs={"counter_path": str(counter), "succeed_on": 3},
            )
        ]
        policy = RetryPolicy(retries=2, backoff_base_s=1e-4)
        assert run_cells(cells, jobs=1, retry=policy) == {"flaky": 3}
        assert counter.read_text() == "3"

    def test_exhausted_retries_propagate(self, tmp_path):
        counter = tmp_path / "attempts"
        cells = [
            Cell(
                key="flaky",
                fn=_flaky,
                kwargs={"counter_path": str(counter), "succeed_on": 5},
            )
        ]
        policy = RetryPolicy(retries=1, backoff_base_s=1e-4)
        with pytest.raises(RuntimeError, match="flaky attempt 2"):
            run_cells(cells, jobs=1, retry=policy)

    def test_pool_retry_recovers_flaky_cell(self, tmp_path):
        counter = tmp_path / "attempts"
        cells = [
            Cell(
                key="flaky",
                fn=_flaky,
                kwargs={"counter_path": str(counter), "succeed_on": 2},
            ),
            Cell(key="ok", fn=_square, kwargs={"x": 3}),
        ]
        policy = RetryPolicy(retries=1, backoff_base_s=1e-4)
        results = run_cells(cells, jobs=2, retry=policy)
        assert results == {"flaky": 2, "ok": 9}


class TestTimeout:
    def test_pool_timeout_raises_cell_timeout(self):
        cells = [
            Cell(key="hang", fn=_sleep_then_return, kwargs={"seconds": 60, "value": 1}),
            Cell(key="fast", fn=_square, kwargs={"x": 2}),
        ]
        with pytest.raises(CellTimeoutError):
            run_cells(cells, jobs=2, timeout_s=0.5)

    def test_fast_cells_unaffected_by_generous_timeout(self):
        cells = [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(4)]
        assert run_cells(cells, jobs=2, timeout_s=30.0) == {
            i: i * i for i in range(4)
        }


class TestSweepCheckpoint:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert SweepCheckpoint(tmp_path / "none.jsonl").load() == {}

    def test_append_load_roundtrip(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        ckpt.append(("a", 1), {"v": 1.5})
        ckpt.append(("b", 2), {"v": 2.5})
        assert ckpt.load() == {
            canonical_key(("a", 1)): {"v": 1.5},
            canonical_key(("b", 2)): {"v": 2.5},
        }

    def test_torn_tail_tolerated(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        ckpt.append("good", {"v": 1})
        with ckpt.path.open("a") as handle:
            handle.write('{"key": "torn", "res')  # kill mid-write
        assert ckpt.load() == {canonical_key("good"): {"v": 1}}

    def test_finalize_is_order_canonical(self, tmp_path):
        a = SweepCheckpoint(tmp_path / "a.jsonl")
        b = SweepCheckpoint(tmp_path / "b.jsonl")
        a.append("x", 1)
        a.append("y", 2)
        b.append("y", 2)  # completion order differs
        b.append("x", 1)
        order = [("x", 1), ("y", 2)]
        a.finalize(order)
        b.finalize(order)
        assert a.path.read_bytes() == b.path.read_bytes()


class TestRunCellsCheckpointing:
    def _cells(self, counter):
        return [
            Cell(
                key=i,
                fn=_count_and_square,
                kwargs={"counter_path": str(counter), "x": i},
            )
            for i in range(3)
        ]

    def test_checkpoint_written_and_finalized(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        results = run_cells(self._cells(tmp_path / "n1"), checkpoint_path=path)
        assert results == {0: 0, 1: 1, 2: 4}
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(l)["key"] for l in lines] == ["0", "1", "2"]

    def test_resume_skips_done_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        counter = tmp_path / "n2"
        run_cells(self._cells(counter), checkpoint_path=path)
        assert counter.read_text() == "3"
        # resume: nothing recomputed, same collation
        results = run_cells(
            self._cells(counter), checkpoint_path=path, resume=True
        )
        assert counter.read_text() == "3"
        assert results == {0: 0, 1: 1, 2: 4}

    def test_partial_checkpoint_resumes_only_missing(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        counter = tmp_path / "n3"
        SweepCheckpoint(path).append(1, 1)  # cell 1 already done
        results = run_cells(
            self._cells(counter), checkpoint_path=path, resume=True
        )
        assert counter.read_text() == "2"  # only cells 0 and 2 ran
        assert results == {0: 0, 1: 1, 2: 4}
        # finalized file is in submission order despite the odd history
        keys = [json.loads(l)["key"] for l in path.read_text().splitlines()]
        assert keys == ["0", "1", "2"]

    def test_without_resume_existing_checkpoint_is_discarded(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepCheckpoint(path).append(1, 999)  # stale result
        results = run_cells(self._cells(tmp_path / "n4"), checkpoint_path=path)
        assert results[1] == 1  # recomputed, stale value gone

    def test_fresh_results_pass_through_encode_decode(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cells = [Cell(key="k", fn=_square, kwargs={"x": 4})]
        results = run_cells(
            cells, checkpoint_path=path, encode=_enc, decode=_dec
        )
        assert results == {"k": 16}
        stored = json.loads(path.read_text().splitlines()[0])
        assert stored["result"] == {"payload": 16}

    def test_parallel_checkpoint_matches_serial(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        pool_path = tmp_path / "pool.jsonl"
        cells = lambda: [
            Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(5)
        ]
        a = run_cells(cells(), jobs=1, checkpoint_path=serial_path)
        b = run_cells(cells(), jobs=3, checkpoint_path=pool_path)
        assert a == b
        assert serial_path.read_bytes() == pool_path.read_bytes()


def _sum_array(values, offset):
    return float(np.sum(values)) + offset


def _echo_runner(cells, on_done):
    """Minimal vectorized policy: run each cell in-process."""
    return [on_done(cell, cell.fn(**cell.kwargs)) for cell in cells]


def _broken_runner(cells, on_done):
    raise RuntimeError("cannot batch these cells")


class TestResolvePolicy:
    """The ``jobs`` argument maps to serial / vectorized / fork."""

    def test_auto_prefers_vectorized_with_runner(self):
        from repro.parallel import _resolve_policy

        assert _resolve_policy("auto", 4, True) == ("vectorized", 1)

    def test_auto_single_cell_is_serial(self):
        from repro.parallel import _resolve_policy

        assert _resolve_policy("auto", 1, True) == ("serial", 1)
        assert _resolve_policy("auto", 0, False) == ("serial", 1)

    def test_auto_without_runner_follows_core_count(self, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert parallel._resolve_policy("auto", 4, False) == ("fork", 4)
        assert parallel._resolve_policy("auto", 16, False) == ("fork", 8)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert parallel._resolve_policy("auto", 4, False) == ("serial", 1)

    def test_explicit_jobs_keep_old_semantics(self):
        from repro.parallel import _resolve_policy

        assert _resolve_policy(1, 4, True) == ("serial", 1)
        assert _resolve_policy(3, 4, True) == ("fork", 3)

    def test_bad_string_rejected(self):
        from repro.parallel import _resolve_policy

        with pytest.raises(ValueError, match="auto"):
            _resolve_policy("fast", 4, True)


class TestAutoPolicy:
    def _cells(self):
        return [Cell(key=i, fn=_square, kwargs={"x": i}) for i in range(4)]

    def test_vectorized_equals_serial(self):
        report = {}
        auto = run_cells(
            self._cells(),
            jobs="auto",
            batch_runner=_echo_runner,
            report=report,
        )
        assert auto == run_cells(self._cells(), jobs=1)
        assert report["policy"] == "vectorized"
        assert report["cells"] == 4

    def test_runner_failure_falls_back_to_serial(self):
        report = {}
        results = run_cells(
            self._cells(),
            jobs="auto",
            batch_runner=_broken_runner,
            report=report,
        )
        assert results == {i: i * i for i in range(4)}
        assert report["policy"] == "serial"
        assert report["fallback_from"] == "vectorized"

    def test_vectorized_results_round_trip_checkpoint(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        results = run_cells(
            self._cells(),
            jobs="auto",
            batch_runner=_echo_runner,
            checkpoint_path=path,
            encode=_enc,
            decode=_dec,
        )
        assert results == {i: i * i for i in range(4)}
        resumed = run_cells(
            self._cells(),
            jobs="auto",
            batch_runner=_echo_runner,
            checkpoint_path=path,
            resume=True,
            encode=_enc,
            decode=_dec,
        )
        assert resumed == results


class TestSharedMemoryTransport:
    def test_pack_dedupes_and_round_trips(self):
        from repro.parallel import (
            _execute_cell,
            _pack_shared_arrays,
            _release_segments,
            _ShmRef,
        )

        big = np.arange(200_000, dtype=np.float64)  # 1.6 MB, over threshold
        small = np.ones(8)
        cells = [
            Cell(key=i, fn=_sum_array, kwargs={"values": big, "offset": float(i)})
            for i in range(3)
        ] + [Cell(key=3, fn=_sum_array, kwargs={"values": small, "offset": 0.0})]
        packed, segments = _pack_shared_arrays(cells)
        try:
            # one segment no matter how many cells reference the array
            assert len(segments) == 1
            refs = [c.kwargs["values"] for c in packed[:3]]
            assert all(isinstance(r, _ShmRef) for r in refs)
            assert len({r.name for r in refs}) == 1
            # small arrays ride the normal pickle path untouched
            assert packed[3].kwargs["values"] is small
            expected = float(np.sum(big))
            for i, cell in enumerate(packed[:3]):
                assert _execute_cell(cell) == expected + i
        finally:
            _release_segments(segments)

    def test_pool_sweep_with_large_shared_array(self):
        big = np.arange(200_000, dtype=np.float64)
        cells = [
            Cell(key=i, fn=_sum_array, kwargs={"values": big, "offset": float(i)})
            for i in range(4)
        ]
        results = run_cells(cells, jobs=2)
        assert results == {i: float(np.sum(big)) + i for i in range(4)}

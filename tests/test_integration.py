"""Cross-module integration tests: the paper's claims at reduced scale.

These exercise the full stack (workload -> scheduler -> simulator ->
thermal) and assert the qualitative results the evaluation section reports,
sized to run in seconds.
"""

import numpy as np
import pytest

from repro import config
from repro.sched import (
    FixedRotationScheduler,
    HotPotatoScheduler,
    PCGovScheduler,
    PCMigScheduler,
    PeakFrequencyScheduler,
)
from repro.sim import IntervalSimulator, SimContext
from repro.workload import PARSEC, Task, homogeneous_fill, materialize


@pytest.fixture(scope="module")
def ctx16(cfg16, model16):
    return SimContext(cfg16, model16)


def run16(cfg16, model16, scheduler, tasks=None, **kwargs):
    if tasks is None:
        tasks = [Task(0, PARSEC["blackscholes"], 2, seed=1)]
    sim = IntervalSimulator(
        cfg16, scheduler, tasks, ctx=SimContext(cfg16, model16), **kwargs
    )
    return sim.run(max_time_s=2.0)


class TestMotivationalClaims:
    """Section I / Fig. 2: the observations motivating the paper."""

    def test_rotation_penalty_below_dvfs_penalty(self, cfg16, model16):
        """The paper's core observation: the performance penalty of
        synchronous migration is lower than that of DVFS."""
        none = run16(cfg16, model16, PeakFrequencyScheduler(), dtm_enabled=False)
        rotation = run16(cfg16, model16, FixedRotationScheduler(tau_s=0.5e-3))
        dvfs = run16(cfg16, model16, PCGovScheduler(budget_mode="worst-case"))
        t_none = none.tasks[0].response_time_s
        t_rot = rotation.tasks[0].response_time_s
        t_dvfs = dvfs.tasks[0].response_time_s
        assert t_none < t_rot < t_dvfs

    def test_rotation_is_thermally_safe(self, cfg16, model16):
        rotation = run16(
            cfg16,
            model16,
            FixedRotationScheduler(tau_s=0.5e-3),
            warm_start_uniform_power_w=2.8,
        )
        assert (
            rotation.peak_temperature_c < cfg16.thermal.dtm_threshold_c
        )

    def test_unmanaged_is_not(self, cfg16, model16):
        none = run16(
            cfg16,
            model16,
            PeakFrequencyScheduler(),
            dtm_enabled=False,
            warm_start_uniform_power_w=2.8,
        )
        assert none.peak_temperature_c > cfg16.thermal.dtm_threshold_c


class TestSchedulerComparison:
    """Fig. 4(a) at reduced scale: 16 cores, hot vs cold benchmark."""

    @pytest.fixture(scope="class")
    def outcomes(self, cfg16, model16):
        results = {}
        for bench in ("blackscholes", "canneal"):
            for scheduler_cls in (PCMigScheduler, HotPotatoScheduler):
                tasks = materialize(homogeneous_fill(bench, 16, seed=5))
                sim = IntervalSimulator(
                    cfg16,
                    scheduler_cls(),
                    tasks,
                    ctx=SimContext(cfg16, model16),
                )
                results[(bench, scheduler_cls.name)] = sim.run(max_time_s=4.0)
        return results

    def test_all_tasks_complete(self, outcomes):
        for result in outcomes.values():
            assert result.tasks, "workload did not finish"

    def test_hotpotato_competitive_on_hot_benchmark(self, outcomes):
        pcmig = outcomes[("blackscholes", "pcmig")].makespan_s
        hotpotato = outcomes[("blackscholes", "hotpotato")].makespan_s
        assert hotpotato < pcmig * 1.05

    def test_cold_benchmark_is_a_wash(self, outcomes):
        pcmig = outcomes[("canneal", "pcmig")].makespan_s
        hotpotato = outcomes[("canneal", "hotpotato")].makespan_s
        assert abs(hotpotato / pcmig - 1.0) < 0.10

    def test_both_thermally_reasonable(self, outcomes):
        for result in outcomes.values():
            assert result.peak_temperature_c < 72.5


class TestAnalyticVsSimulated:
    """The scheduler's analytic peak must predict the simulated trace."""

    def test_fixed_rotation_peak_prediction(self, cfg16, model16):
        ctx = SimContext(cfg16, model16)
        # build the same power pattern the simulator will realize:
        # one 8 W thread rotating over the centre ring, master phase
        from repro.core.peak_temperature import rotation_peak_temperature

        seq = np.full((4, 16), cfg16.thermal.idle_power_w)
        for epoch, core in enumerate((5, 6, 9, 10)):
            seq[epoch, core] = 8.0
        analytic = rotation_peak_temperature(
            ctx.dynamics, seq, 0.5e-3, cfg16.thermal.ambient_c
        )
        simulated = run16(
            cfg16,
            model16,
            FixedRotationScheduler(tau_s=0.5e-3),
            dtm_enabled=False,
        )
        # the analytic steady-cycle peak upper-bounds the (shorter,
        # cold-started) simulated run and is in its ballpark
        assert simulated.peak_temperature_c <= analytic + 0.5
        assert analytic - 10.0 <= simulated.peak_temperature_c


class TestDeterminism:
    def test_identical_runs_identical_results(self, cfg16, model16):
        a = run16(cfg16, model16, HotPotatoScheduler())
        b = run16(cfg16, model16, HotPotatoScheduler())
        assert a.makespan_s == b.makespan_s
        assert a.migration_count == b.migration_count
        assert a.peak_temperature_c == pytest.approx(b.peak_temperature_c)

    def test_energy_accounting_consistent(self, cfg16, model16):
        result = run16(cfg16, model16, PeakFrequencyScheduler())
        # average chip power must lie between all-idle and all-max
        avg_power = result.energy_j / result.sim_time_s
        assert 16 * 0.2 < avg_power < 16 * 9.0

"""Docs cannot silently rot: every reference must resolve.

Scans every markdown file under ``docs/`` (plus the top-level README) for

- dotted references like ``repro.sched.HotPotatoScheduler`` or
  ``repro.workload.characterize`` (module paths and attribute paths),
- ``from repro.x import a, b`` / ``import repro.x`` lines inside code
  fences, and
- relative markdown links like ``[serve.md](serve.md)`` or
  ``[README](../README.md)``,

then imports the module part and asserts every referenced attribute
actually exists, and resolves every relative link against the linking
file's directory and asserts the target file exists.  A failing entry
names the documentation file and the dangling symbol or link, so a
rename in ``src/repro/`` (or a moved document) that is not propagated
to the docs fails CI immediately.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

#: dotted reference: repro(.identifier)+ — stops before non-identifier chars.
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
#: import statements inside fenced code blocks (or inline snippets).
_FROM_IMPORT = re.compile(
    r"^\s*from\s+(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\s+import\s+(.+)$"
)
_PLAIN_IMPORT = re.compile(r"^\s*import\s+(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\s*$")
#: markdown inline link: [text](target) — target captured up to ')'.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _references(text: str):
    """All ``repro...`` references in one document, as dotted strings."""
    refs = set(_DOTTED.findall(text))
    for line in text.splitlines():
        match = _FROM_IMPORT.match(line)
        if match:
            module, names = match.groups()
            for name in names.split(","):
                name = name.split(" as ")[0].strip().strip("()")
                if name and name != "*":
                    refs.add(f"{module}.{name}")
            continue
        match = _PLAIN_IMPORT.match(line)
        if match:
            refs.add(match.group(1))
    return sorted(refs)


def _resolve(ref: str) -> None:
    """Import the longest module prefix of ``ref``, getattr the rest."""
    parts = ref.split(".")
    module = None
    index = len(parts)
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ModuleNotFoundError:
            index -= 1
    if module is None:
        raise AssertionError(f"no importable module prefix in {ref!r}")
    obj = module
    for attr in parts[index:]:
        if not hasattr(obj, attr):
            raise AssertionError(
                f"{ref!r}: {type(obj).__name__} {'.'.join(parts[:index])!r} "
                f"has no attribute {attr!r}"
            )
        obj = getattr(obj, attr)


def _collect_params():
    params = []
    for path in DOC_FILES:
        for ref in _references(path.read_text()):
            rel = path.relative_to(REPO_ROOT)
            params.append(pytest.param(ref, id=f"{rel}:{ref}"))
    return params


@pytest.mark.parametrize("ref", _collect_params())
def test_documented_symbol_resolves(ref):
    _resolve(ref)


def _relative_links(text: str):
    """All relative (non-http, non-anchor) link targets in a document."""
    targets = []
    for target in _MD_LINK.findall(text):
        target = target.strip()
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]  # drop any anchor
        if path:
            targets.append(path)
    return targets


def _collect_link_params():
    params = []
    for path in DOC_FILES:
        rel = path.relative_to(REPO_ROOT)
        for target in _relative_links(path.read_text()):
            params.append(pytest.param(path, target, id=f"{rel}:{target}"))
    return params


@pytest.mark.parametrize("doc, target", _collect_link_params())
def test_documented_link_resolves(doc, target):
    """Every relative link in the docs points at an existing file."""
    resolved = (doc.parent / target).resolve()
    assert resolved.exists(), f"{doc.name}: dead link {target!r}"
    # stay honest: a link must not escape the repository
    assert REPO_ROOT in resolved.parents or resolved == REPO_ROOT


def test_docs_are_actually_scanned():
    """The scan must see the doc set this repo ships (guards the glob)."""
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md",
        "observability.md",
        "simulator.md",
        "schedulers.md",
        "thermal_model.md",
        "workloads.md",
        "faults.md",
        "serve.md",
        "architecture.md",
    } <= names


def test_reference_extraction_understands_both_forms():
    text = (
        "Use `repro.sched.HotPotatoScheduler` here.\n"
        "```python\n"
        "from repro.workload import PARSEC, Task\n"
        "import repro.io\n"
        "```\n"
    )
    assert _references(text) == [
        "repro.io",
        "repro.sched.HotPotatoScheduler",
        "repro.workload",  # the dotted scan also sees the import's module
        "repro.workload.PARSEC",
        "repro.workload.Task",
    ]


def test_resolver_rejects_dangling_symbols():
    with pytest.raises(AssertionError):
        _resolve("repro.sched.NoSuchScheduler")


def test_link_extraction_skips_external_and_anchors():
    text = (
        "[index](README.md) [deep](../README.md#quickstart)\n"
        "[web](https://example.org/x.md) [frag](#section)\n"
    )
    assert _relative_links(text) == ["README.md", "../README.md"]


def test_dead_link_would_fail():
    doc = DOC_FILES[0]
    resolved = (doc.parent / "no_such_file.md").resolve()
    assert not resolved.exists()

"""Interval simulator engine: end-to-end behaviour on the small platform."""

import numpy as np
import pytest

from repro import config
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sched.naive import PeakFrequencyScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


@pytest.fixture(scope="module")
def cfg():
    return config.motivational()


@pytest.fixture(scope="module")
def shared_model(cfg):
    from repro.thermal.calibrate import calibrated_model

    return calibrated_model(cfg)


def make_sim(cfg, model, scheduler, tasks, **kwargs):
    return IntervalSimulator(
        cfg, scheduler, tasks, ctx=SimContext(cfg, model), **kwargs
    )


class TestBasicRun:
    def test_single_task_completes(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=2.0)
        assert len(result.tasks) == 1
        assert result.tasks[0].benchmark == "canneal"
        assert 0 < result.tasks[0].response_time_s < 2.0

    def test_work_conservation(self, cfg, shared_model):
        task = Task(0, PARSEC["x264"], 4, seed=2)
        total = task.total_instructions()
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), [task])
        sim.run(max_time_s=2.0)
        assert task.instructions_retired() == pytest.approx(total, rel=1e-9)

    def test_trace_recorded(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=2.0)
        assert result.trace is not None
        assert len(result.trace) > 10
        assert result.peak_temperature_c > cfg.thermal.ambient_c

    def test_trace_can_be_disabled(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(
            cfg, shared_model, PeakFrequencyScheduler(), tasks, record_trace=False
        )
        assert sim.run(max_time_s=2.0).trace is None

    def test_energy_positive_and_bounded(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=2.0)
        max_possible = 16 * 9.0 * result.sim_time_s
        assert 0 < result.energy_j < max_possible

    def test_max_time_respected(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["canneal"], 2, seed=1, work_scale=1000.0)]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=0.02)
        assert result.sim_time_s <= 0.02 + 1e-9
        assert len(result.tasks) == 0  # did not finish


class TestArrivals:
    def test_arrival_time_honoured(self, cfg, shared_model):
        tasks = [
            Task(0, PARSEC["canneal"], 2, arrival_time_s=0.0, seed=1),
            Task(1, PARSEC["canneal"], 2, arrival_time_s=0.0303, seed=2),
        ]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=2.0)
        second = result.response_time_of(1)
        assert result.tasks[1].completion_s > 0.0303
        assert second == pytest.approx(
            result.tasks[1].completion_s - 0.0303, abs=1e-9
        )

    def test_idle_gap_fast_forward(self, cfg, shared_model):
        """A long gap before the first arrival is skipped in one thermal
        step, not simulated interval by interval."""
        tasks = [Task(0, PARSEC["canneal"], 2, arrival_time_s=5.0, seed=1)]
        sim = make_sim(cfg, shared_model, PeakFrequencyScheduler(), tasks)
        result = sim.run(max_time_s=10.0)
        assert len(result.tasks) == 1
        # far fewer decisions than 10 s / 0.5 ms
        assert result.scheduler_invocations < 2000


class TestMigrationAccounting:
    def test_rotation_charges_migrations(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        sim = make_sim(
            cfg, shared_model, FixedRotationScheduler(tau_s=0.5e-3), tasks
        )
        result = sim.run(max_time_s=2.0)
        assert result.migration_count > 100
        assert result.migration_penalty_s > 0

    def test_rotation_slower_than_static(self, cfg, shared_model):
        """Migration debt must cost wall-clock time (the paper's ~8 %)."""
        static = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            dtm_enabled=False,
        ).run(2.0)
        rotating = make_sim(
            cfg,
            shared_model,
            FixedRotationScheduler(tau_s=0.5e-3),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            dtm_enabled=False,
        ).run(2.0)
        assert rotating.makespan_s > static.makespan_s * 1.02

    def test_rotation_cools_the_chip(self, cfg, shared_model):
        static = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            dtm_enabled=False,
        ).run(2.0)
        rotating = make_sim(
            cfg,
            shared_model,
            FixedRotationScheduler(tau_s=0.5e-3),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            dtm_enabled=False,
        ).run(2.0)
        assert rotating.peak_temperature_c < static.peak_temperature_c - 5.0


class TestDtmIntegration:
    # the unmanaged motivational run crosses the threshold only from a warm
    # package (HotSniper-style ROI warm-up, see repro.experiments.fig2)
    WARM_W = 2.8

    def test_dtm_contains_temperature(self, cfg, shared_model):
        """With DTM on, an unmanaged hot workload stays near the threshold
        instead of running away."""
        tasks = [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        sim = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            tasks,
            warm_start_uniform_power_w=self.WARM_W,
        )
        result = sim.run(max_time_s=2.0)
        assert result.dtm_triggers > 0
        assert result.peak_temperature_c < 72.5

    def test_dtm_off_lets_it_burn(self, cfg, shared_model):
        tasks = [Task(0, PARSEC["blackscholes"], 2, seed=1)]
        sim = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            tasks,
            dtm_enabled=False,
            warm_start_uniform_power_w=self.WARM_W,
        )
        result = sim.run(max_time_s=2.0)
        assert result.dtm_triggers == 0
        assert result.peak_temperature_c > cfg.thermal.dtm_threshold_c

    def test_dtm_costs_performance(self, cfg, shared_model):
        with_dtm = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            warm_start_uniform_power_w=self.WARM_W,
        ).run(2.0)
        without = make_sim(
            cfg,
            shared_model,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            dtm_enabled=False,
            warm_start_uniform_power_w=self.WARM_W,
        ).run(2.0)
        assert with_dtm.makespan_s > without.makespan_s


class TestSchedulerValidation:
    def test_duplicate_core_rejected(self, cfg, shared_model):
        from repro.sched.base import Scheduler, SchedulerDecision

        class BrokenScheduler(Scheduler):
            name = "broken"

            def _can_admit(self, task):
                return True

            def _admit(self, task, now_s):
                pass

            def _release(self, task, now_s):
                pass

            def decide(self, now_s):
                return SchedulerDecision(
                    placements={"0.0": 3, "0.1": 3},
                    frequencies=np.full(16, 4.0e9),
                )

        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(cfg, shared_model, BrokenScheduler(), tasks)
        with pytest.raises(ValueError, match="two threads"):
            sim.run(max_time_s=0.1)

    def test_missing_thread_rejected(self, cfg, shared_model):
        from repro.sched.base import Scheduler, SchedulerDecision

        class ForgetfulScheduler(Scheduler):
            name = "forgetful"

            def _can_admit(self, task):
                return True

            def _admit(self, task, now_s):
                pass

            def _release(self, task, now_s):
                pass

            def decide(self, now_s):
                return SchedulerDecision(
                    placements={"0.0": 3}, frequencies=np.full(16, 4.0e9)
                )

        tasks = [Task(0, PARSEC["canneal"], 2, seed=1)]
        sim = make_sim(cfg, shared_model, ForgetfulScheduler(), tasks)
        with pytest.raises(ValueError, match="mismatch"):
            sim.run(max_time_s=0.1)

"""Per-thread time stacks (compute / stall / migration / wait / queued)."""

import pytest

from repro.sched import FixedRotationScheduler, PeakFrequencyScheduler
from repro.sim import IntervalSimulator, SimContext
from repro.sim.metrics import TimeBreakdown
from repro.workload import PARSEC, Task


class TestTimeBreakdownDataclass:
    def test_total_and_fraction(self):
        stack = TimeBreakdown(compute_s=0.6, stall_s=0.2, migration_s=0.1,
                              wait_s=0.1, queued_s=0.0)
        assert stack.total_s == pytest.approx(1.0)
        assert stack.fraction("compute") == pytest.approx(0.6)
        assert stack.fraction("queued") == 0.0

    def test_empty_fraction(self):
        assert TimeBreakdown().fraction("compute") == 0.0
        assert TimeBreakdown().render() == "(no time accounted)"

    def test_render(self):
        text = TimeBreakdown(compute_s=1e-3).render()
        assert "compute 1.0 ms (100%)" in text


class TestEngineAccounting:
    @pytest.fixture(scope="class")
    def static_result(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            dtm_enabled=False,
        )
        return sim.run(max_time_s=2.0)

    @pytest.fixture(scope="class")
    def rotating_result(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16,
            FixedRotationScheduler(tau_s=0.5e-3),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            dtm_enabled=False,
        )
        return sim.run(max_time_s=2.0)

    def test_every_thread_accounted(self, static_result):
        assert set(static_result.time_breakdown) == {"0.0", "0.1"}

    def test_totals_match_runtime(self, static_result):
        """Placed time must equal the thread's residency (here: the whole
        run, no queueing)."""
        for stack in static_result.time_breakdown.values():
            assert stack.total_s == pytest.approx(
                static_result.makespan_s, rel=0.02
            )

    def test_master_slave_split(self, static_result):
        """In 2-thread blackscholes the two threads alternate: each spends
        a large share of its life waiting at barriers."""
        for stack in static_result.time_breakdown.values():
            assert stack.wait_s > 0.2 * stack.total_s
            assert stack.compute_s > 0.1 * stack.total_s

    def test_static_run_pays_only_cold_start(self, static_result):
        """No migrations ever happen, so the only 'migration' time is the
        one-off cold-start refill of each thread's private cache."""
        for stack in static_result.time_breakdown.values():
            assert stack.migration_s < 100e-6  # one refill, tens of us
            assert stack.queued_s == 0.0

    def test_rotation_pays_migration_time(self, rotating_result):
        aggregate = rotating_result.aggregate_breakdown()
        assert aggregate.migration_s > 0.0
        # the paper's ~8 % penalty shows up as the migration share of the
        # busy (non-wait) time
        busy = aggregate.compute_s + aggregate.stall_s + aggregate.migration_s
        assert 0.02 < aggregate.migration_s / busy < 0.25

    def test_compute_dominates_stall_for_blackscholes(self, static_result):
        aggregate = static_result.aggregate_breakdown()
        assert aggregate.compute_s > 10 * aggregate.stall_s

    def test_queued_time_recorded(self, cfg16, model16):
        tasks = [
            Task(0, PARSEC["canneal"], 8, seed=1),
            Task(1, PARSEC["canneal"], 8, seed=2),
            Task(2, PARSEC["canneal"], 2, seed=3),  # must queue
        ]
        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            tasks,
            ctx=SimContext(cfg16, model16),
        )
        result = sim.run(max_time_s=4.0)
        queued = result.time_breakdown["2.0"]
        assert queued.queued_s > 0.0

"""Energy accounting: per-core integrals, EDP, J/instruction, gauges.

The engine integrates per-core power into ``energy_per_core_j`` alongside
the existing chip total, counts retired instructions, and — when metrics
are attached — publishes the ``energy.*`` gauge family plus response-time
percentiles at finalization (docs/observability.md).
"""

import pytest

from repro.io import result_from_dict, result_to_dict
from repro.obs import MetricsRegistry, Observer
from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task


@pytest.fixture(scope="module")
def energy_run(cfg4):
    tasks = [
        Task(0, PARSEC["blackscholes"], 2, seed=0, work_scale=0.5),
        Task(1, PARSEC["swaptions"], 2, arrival_time_s=0.005, seed=1,
             work_scale=0.5),
    ]
    observer = Observer(metrics=MetricsRegistry())
    sim = IntervalSimulator(
        cfg4,
        HotPotatoScheduler(),
        tasks,
        ctx=SimContext(cfg4),
        record_trace=False,
        observer=observer,
    )
    result = sim.run(max_time_s=2.0)
    return cfg4, result


class TestEnergyIntegrals:
    def test_per_core_energy_sums_to_chip_total(self, energy_run):
        cfg, result = energy_run
        assert len(result.energy_per_core_j) == cfg.n_cores
        assert sum(result.energy_per_core_j) == pytest.approx(
            result.energy_j, rel=1e-9
        )

    def test_every_core_burned_at_least_idle_energy(self, energy_run):
        cfg, result = energy_run
        floor = cfg.thermal.idle_power_w * result.sim_time_s
        for core_energy in result.energy_per_core_j:
            assert core_energy >= floor * (1 - 1e-9)

    def test_instructions_retired_matches_the_workload(self, energy_run):
        _, result = energy_run
        assert result.instructions_retired > 0
        assert result.tasks, "both tasks should have completed"

    def test_edp_is_energy_times_span(self, energy_run):
        _, result = energy_run
        assert result.edp_js == pytest.approx(
            result.energy_j * result.sim_time_s
        )

    def test_energy_per_instruction(self, energy_run):
        _, result = energy_run
        expected = result.energy_j / result.instructions_retired
        assert result.energy_per_instruction_j == pytest.approx(expected)

    def test_response_time_quantiles_bracket_the_tasks(self, energy_run):
        _, result = energy_run
        times = sorted(t.response_time_s for t in result.tasks)
        assert result.response_time_quantile_s(0.0) == pytest.approx(times[0])
        assert result.response_time_quantile_s(1.0) == pytest.approx(times[-1])
        p50 = result.response_time_quantile_s(0.5)
        assert times[0] <= p50 <= times[-1]


class TestEnergyGauges:
    def test_energy_gauges_published(self, energy_run):
        _, result = energy_run
        snapshot = result.metrics_snapshot
        assert snapshot["energy.total_j"] == pytest.approx(result.energy_j)
        assert snapshot["energy.edp_js"] == pytest.approx(result.edp_js)
        assert snapshot["energy.j_per_instruction"] == pytest.approx(
            result.energy_per_instruction_j
        )
        assert snapshot["energy.per_core_max_j"] == pytest.approx(
            max(result.energy_per_core_j)
        )
        assert snapshot["energy.per_core_mean_j"] == pytest.approx(
            sum(result.energy_per_core_j) / len(result.energy_per_core_j)
        )

    def test_response_time_percentiles_published(self, energy_run):
        _, result = energy_run
        snapshot = result.metrics_snapshot
        assert snapshot["engine.response_time_p50_s"] > 0
        assert (
            snapshot["engine.response_time_p99_s"]
            >= snapshot["engine.response_time_p50_s"]
        )


class TestEnergyRoundTrip:
    def test_io_round_trips_the_new_fields(self, energy_run):
        _, result = energy_run
        back = result_from_dict(result_to_dict(result))
        assert back.energy_per_core_j == pytest.approx(
            result.energy_per_core_j
        )
        assert back.instructions_retired == pytest.approx(
            result.instructions_retired
        )

    def test_pre_energy_dicts_still_load(self, energy_run):
        """Back-compat: dicts from before per-core accounting load with
        empty per-core data and zero retired instructions."""
        _, result = energy_run
        data = result_to_dict(result)
        data.pop("energy_per_core_j")
        data.pop("instructions_retired")
        back = result_from_dict(data)
        assert back.energy_per_core_j == []
        assert back.instructions_retired == 0.0
        assert back.energy_j == pytest.approx(result.energy_j)

"""Engine edge cases."""

import numpy as np
import pytest

from repro.sched import FixedRotationScheduler, PeakFrequencyScheduler
from repro.sim import IntervalSimulator, SimContext
from repro.workload import PARSEC, Task


class TestEdgeCases:
    def test_empty_task_list(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16, PeakFrequencyScheduler(), [], ctx=SimContext(cfg16, model16)
        )
        result = sim.run(max_time_s=0.1)
        assert result.tasks == []
        assert result.sim_time_s == 0.0

    def test_arrival_at_exact_interval_boundary(self, cfg16, model16):
        tasks = [
            Task(0, PARSEC["canneal"], 2, arrival_time_s=0.0, seed=1),
            Task(1, PARSEC["canneal"], 2, arrival_time_s=0.0005, seed=2),
        ]
        sim = IntervalSimulator(
            cfg16, PeakFrequencyScheduler(), tasks, ctx=SimContext(cfg16, model16)
        )
        result = sim.run(max_time_s=2.0)
        assert len(result.tasks) == 2

    def test_arrival_mid_interval_lands_exactly(self, cfg16, model16):
        """The engine clips intervals so arrivals are processed at their
        exact timestamp, not rounded to the next boundary."""
        tasks = [Task(0, PARSEC["canneal"], 2, arrival_time_s=0.00037, seed=1)]
        sim = IntervalSimulator(
            cfg16, PeakFrequencyScheduler(), tasks, ctx=SimContext(cfg16, model16)
        )
        result = sim.run(max_time_s=2.0)
        record = result.tasks[0]
        assert record.arrival_s == pytest.approx(0.00037)
        assert record.completion_s > record.arrival_s

    def test_simultaneous_arrivals(self, cfg16, model16):
        tasks = [
            Task(i, PARSEC["canneal"], 2, arrival_time_s=0.005, seed=i)
            for i in range(3)
        ]
        sim = IntervalSimulator(
            cfg16, PeakFrequencyScheduler(), tasks, ctx=SimContext(cfg16, model16)
        )
        result = sim.run(max_time_s=2.0)
        assert len(result.tasks) == 3

    def test_warm_start_sets_initial_trace_sample(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            warm_start_uniform_power_w=3.0,
        )
        result = sim.run(max_time_s=0.01)
        first = result.trace.temperatures[0]
        assert np.max(first) > 55.0  # clearly pre-heated

    def test_single_core_task_on_rotating_scheduler(self, cfg16, model16):
        """A 1-thread task still rotates over the whole ring."""
        sim = IntervalSimulator(
            cfg16,
            FixedRotationScheduler(tau_s=0.5e-3),
            [Task(0, PARSEC["swaptions"], 1, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        result = sim.run(max_time_s=2.0)
        assert result.tasks
        assert result.migration_count > 10

    def test_scheduler_wall_time_measured(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        result = sim.run(max_time_s=1.0)
        assert result.scheduler_invocations > 0
        assert result.scheduler_wall_time_s > 0.0

    def test_trace_times_strictly_increasing_samples(self, cfg16, model16):
        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        result = sim.run(max_time_s=1.0)
        times = result.trace.times
        assert np.all(np.diff(times) > 0)

"""Hardware DTM controller."""

import numpy as np
import pytest

from repro.sim.dtm import DtmController


@pytest.fixture()
def dtm():
    return DtmController(4, threshold_c=70.0, hysteresis_c=2.0, f_min_hz=1.0e9)


class TestTriggering:
    def test_cool_cores_untouched(self, dtm):
        mask = dtm.update(np.array([60.0, 65.0, 69.9, 50.0]))
        assert not mask.any()
        assert dtm.trigger_count == 0

    def test_hot_core_throttles(self, dtm):
        mask = dtm.update(np.array([71.0, 60.0, 60.0, 60.0]))
        assert mask.tolist() == [True, False, False, False]
        assert dtm.trigger_count == 1

    def test_hysteresis_keeps_throttling(self, dtm):
        dtm.update(np.array([71.0, 60.0, 60.0, 60.0]))
        # cooled below threshold but not below threshold - hysteresis
        mask = dtm.update(np.array([69.0, 60.0, 60.0, 60.0]))
        assert mask[0]
        # cooled enough: released
        mask = dtm.update(np.array([67.9, 60.0, 60.0, 60.0]))
        assert not mask[0]

    def test_retrigger_counts_again(self, dtm):
        dtm.update(np.array([71.0, 60.0, 60.0, 60.0]))
        dtm.update(np.array([60.0, 60.0, 60.0, 60.0]))
        dtm.update(np.array([71.0, 60.0, 60.0, 60.0]))
        assert dtm.trigger_count == 2

    def test_sustained_heat_counts_once(self, dtm):
        for _ in range(5):
            dtm.update(np.array([75.0, 60.0, 60.0, 60.0]))
        assert dtm.trigger_count == 1

    def test_wrong_shape_rejected(self, dtm):
        with pytest.raises(ValueError):
            dtm.update(np.zeros(3))

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            DtmController(4, 70.0, -1.0, 1e9)


class TestApply:
    def test_clamps_to_fmin(self, dtm):
        dtm.update(np.array([75.0, 60.0, 60.0, 60.0]))
        freqs = dtm.apply(np.full(4, 4.0e9), interval_s=1e-3)
        assert freqs[0] == pytest.approx(1.0e9)
        assert np.all(freqs[1:] == 4.0e9)

    def test_does_not_raise_low_frequencies(self, dtm):
        dtm.update(np.array([75.0, 60.0, 60.0, 60.0]))
        freqs = dtm.apply(np.full(4, 0.5e9), interval_s=1e-3)
        assert freqs[0] == pytest.approx(0.5e9)

    def test_accounts_throttled_time(self, dtm):
        dtm.update(np.array([75.0, 75.0, 60.0, 60.0]))
        dtm.apply(np.full(4, 4.0e9), interval_s=1e-3)
        assert dtm.throttled_core_time_s == pytest.approx(2e-3)

    def test_readonly_mask(self, dtm):
        with pytest.raises(ValueError):
            dtm.throttled[0] = True

"""Migration debt accounting."""

import pytest

from repro.arch.cache import MigrationCostModel
from repro.arch.topology import Mesh
from repro.sim.migration import MigrationAccountant


@pytest.fixture()
def accountant():
    return MigrationAccountant(MigrationCostModel(Mesh(4, 4)))


class TestCharging:
    def test_new_thread_pays_cold_start(self, accountant):
        moves = accountant.charge_moves({}, {"a": 5})
        assert moves == []  # cold start is not a migration
        assert accountant.outstanding_debt_s("a") > 0
        assert accountant.migration_count == 0

    def test_move_charged(self, accountant):
        accountant.charge_moves({}, {"a": 5})
        debt_before = accountant.outstanding_debt_s("a")
        moves = accountant.charge_moves({"a": 5}, {"a": 6})
        assert moves == [("a", 5, 6)]
        assert accountant.migration_count == 1
        assert accountant.outstanding_debt_s("a") > debt_before

    def test_stationary_thread_not_charged(self, accountant):
        accountant.charge_moves({}, {"a": 5})
        accountant.consume_debt("a", 1.0)
        accountant.charge_moves({"a": 5}, {"a": 5})
        assert accountant.outstanding_debt_s("a") == 0.0

    def test_total_penalty_accumulates(self, accountant):
        accountant.charge_moves({}, {"a": 5, "b": 6})
        base = accountant.total_penalty_s
        accountant.charge_moves({"a": 5, "b": 6}, {"a": 6, "b": 5})
        assert accountant.total_penalty_s > base
        assert accountant.migration_count == 2


class TestDebtConsumption:
    def test_debt_pays_down(self, accountant):
        accountant.charge_moves({}, {"a": 5})
        debt = accountant.outstanding_debt_s("a")
        left = accountant.consume_debt("a", debt / 2)
        assert left == 0.0
        assert accountant.outstanding_debt_s("a") == pytest.approx(debt / 2)

    def test_surplus_time_returned(self, accountant):
        accountant.charge_moves({}, {"a": 5})
        debt = accountant.outstanding_debt_s("a")
        left = accountant.consume_debt("a", debt + 1e-3)
        assert left == pytest.approx(1e-3)
        assert accountant.outstanding_debt_s("a") == 0.0

    def test_no_debt_full_time(self, accountant):
        assert accountant.consume_debt("z", 5e-4) == pytest.approx(5e-4)

    def test_negative_time_rejected(self, accountant):
        with pytest.raises(ValueError):
            accountant.consume_debt("a", -1.0)

    def test_forget(self, accountant):
        accountant.charge_moves({}, {"a": 5})
        accountant.forget("a")
        assert accountant.outstanding_debt_s("a") == 0.0

"""Simulation metrics."""

import pytest

from repro.sim.metrics import SimulationResult, TaskRecord
from repro.thermal.trace import ThermalTrace


def make_result():
    trace = ThermalTrace(2)
    trace.record(0.0, [45.0, 45.0])
    trace.record(0.05, [66.0, 55.0])
    return SimulationResult(
        scheduler_name="test",
        sim_time_s=0.1,
        tasks=[
            TaskRecord(0, "canneal", 4, arrival_s=0.0, completion_s=0.08),
            TaskRecord(1, "x264", 2, arrival_s=0.02, completion_s=0.06),
        ],
        trace=trace,
        dtm_triggers=3,
        migration_count=10,
        scheduler_wall_time_s=0.002,
        scheduler_invocations=4,
    )


class TestDerivedMetrics:
    def test_makespan(self):
        assert make_result().makespan_s == pytest.approx(0.08)

    def test_mean_response(self):
        # responses: 0.08 and 0.04
        assert make_result().mean_response_time_s == pytest.approx(0.06)

    def test_response_of(self):
        result = make_result()
        assert result.response_time_of(1) == pytest.approx(0.04)
        with pytest.raises(KeyError):
            result.response_time_of(9)

    def test_peak_temperature(self):
        assert make_result().peak_temperature_c == pytest.approx(66.0)

    def test_scheduler_overhead(self):
        assert make_result().mean_scheduler_overhead_s() == pytest.approx(5e-4)

    def test_empty_results_raise(self):
        empty = SimulationResult("x", 0.0)
        with pytest.raises(ValueError):
            _ = empty.makespan_s
        with pytest.raises(ValueError):
            _ = empty.mean_response_time_s
        assert empty.mean_scheduler_overhead_s() == 0.0

    def test_summary_mentions_key_numbers(self):
        text = make_result().summary()
        assert "makespan" in text
        assert "test" in text
        assert "DTM" in text

"""Structured event log, standalone and engine-integrated."""

import pytest

from repro.sim.events import (
    DtmEngaged,
    DtmReleased,
    EventLog,
    TaskArrived,
    TaskCompleted,
    ThreadMigrated,
)


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(TaskArrived(0.0, 1, "canneal", 4))
        log.record(ThreadMigrated(1e-3, "1.0", 5, 6, 30e-6))
        log.record(TaskCompleted(2e-3, 1, "canneal", 2e-3))
        assert len(log) == 3
        assert log.count(ThreadMigrated) == 1
        assert log.of_type(TaskArrived)[0].benchmark == "canneal"
        assert log.last(TaskCompleted).response_time_s == pytest.approx(2e-3)

    def test_between(self):
        log = EventLog()
        for t in (0.0, 1e-3, 2e-3, 3e-3):
            log.record(TaskArrived(t, int(t * 1e3), "x264", 2))
        assert len(log.between(0.5e-3, 2.5e-3)) == 2

    def test_rejects_time_regression(self):
        log = EventLog()
        log.record(TaskArrived(1e-3, 0, "x264", 2))
        with pytest.raises(ValueError):
            log.record(TaskArrived(0.5e-3, 1, "x264", 2))

    def test_last_missing(self):
        assert EventLog().last(DtmEngaged) is None

    def test_render(self):
        log = EventLog()
        log.record(TaskArrived(0.0, 1, "dedup", 2))
        text = log.render()
        assert "TaskArrived" in text
        assert "dedup" in text
        assert EventLog().render() == "(no events)"

    def test_render_limit(self):
        log = EventLog()
        for i in range(10):
            log.record(TaskArrived(i * 1e-3, i, "x264", 2))
        text = log.render(limit=3)
        assert "7 more" in text


class TestEngineIntegration:
    def test_engine_records_lifecycle(self, cfg16, model16):
        from repro.sched import FixedRotationScheduler
        from repro.sim import IntervalSimulator, SimContext
        from repro.workload import PARSEC, Task

        sim = IntervalSimulator(
            cfg16,
            FixedRotationScheduler(tau_s=0.5e-3),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            record_events=True,
        )
        result = sim.run(max_time_s=1.0)
        log = sim.events
        assert log.count(TaskArrived) == 1
        assert log.count(TaskCompleted) == 1
        assert log.count(ThreadMigrated) == result.migration_count
        completed = log.last(TaskCompleted)
        assert completed.response_time_s == pytest.approx(
            result.tasks[0].response_time_s
        )

    def test_dtm_events_paired(self, cfg16, model16):
        from repro.sched import PeakFrequencyScheduler
        from repro.sim import IntervalSimulator, SimContext
        from repro.workload import PARSEC, Task

        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["blackscholes"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
            record_events=True,
            warm_start_uniform_power_w=2.8,
        )
        result = sim.run(max_time_s=1.0)
        engaged = sim.events.count(DtmEngaged)
        released = sim.events.count(DtmReleased)
        assert engaged == result.dtm_triggers
        assert engaged >= released >= engaged - 16

    def test_events_off_by_default(self, cfg16, model16):
        from repro.sched import PeakFrequencyScheduler
        from repro.sim import IntervalSimulator, SimContext
        from repro.workload import PARSEC, Task

        sim = IntervalSimulator(
            cfg16,
            PeakFrequencyScheduler(),
            [Task(0, PARSEC["canneal"], 2, seed=1)],
            ctx=SimContext(cfg16, model16),
        )
        sim.run(max_time_s=0.2)
        assert sim.events is None

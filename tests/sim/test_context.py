"""SimContext wiring and construction."""

import numpy as np
import pytest

from repro import config
from repro.sim.context import SimContext


class TestConstruction:
    def test_builds_all_models(self, cfg16, model16):
        ctx = SimContext(cfg16, model16)
        assert ctx.n_cores == 16
        assert ctx.mesh.n_cores == 16
        assert ctx.rings.n_rings == 3
        assert ctx.thermal_model is model16
        assert ctx.calculator.dynamics.model is model16

    def test_default_model_is_calibrated(self):
        ctx = SimContext(config.small_test())
        # the calibrated stack's knobs, not the raw defaults
        assert ctx.thermal_model.stack.lateral_scale != 1.0

    def test_tsp_uses_config_thresholds(self, cfg16, model16):
        ctx = SimContext(cfg16, model16)
        assert ctx.tsp.threshold_c == cfg16.thermal.dtm_threshold_c
        assert ctx.tsp.ambient_c == cfg16.thermal.ambient_c


class TestObservationWiring:
    def test_unwired_observations_raise(self, cfg16, model16):
        ctx = SimContext(cfg16, model16)
        with pytest.raises(RuntimeError):
            ctx.thread_power_w("x")
        with pytest.raises(RuntimeError):
            ctx.core_temperatures_c()
        with pytest.raises(RuntimeError):
            ctx.thread_recent_power_w("x")

    def test_wired_observations_delegate(self, cfg16, model16):
        ctx = SimContext(cfg16, model16)
        temps = np.full(16, 50.0)
        ctx.wire_observations(
            lambda tid: 3.5, lambda: temps, lambda tid: 4.2
        )
        assert ctx.thread_power_w("a") == 3.5
        assert ctx.thread_recent_power_w("a") == 4.2
        assert np.array_equal(ctx.core_temperatures_c(), temps)

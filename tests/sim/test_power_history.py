"""The sliding-window power history (the paper's 10 ms signal)."""

import pytest

from repro.sim.engine import _PowerHistory


@pytest.fixture()
def history():
    return _PowerHistory(window_s=10e-3)


class TestWindowAverage:
    def test_single_sample(self, history):
        history.record("t", 0.0, 5.0, 1e-3)
        assert history.average("t") == pytest.approx(5.0)

    def test_time_weighted(self, history):
        history.record("t", 0.0, 8.0, 1e-3)
        history.record("t", 1e-3, 2.0, 3e-3)
        # (8*1 + 2*3) / 4
        assert history.average("t") == pytest.approx(3.5)

    def test_window_eviction(self, history):
        history.record("t", 0.0, 100.0, 1e-3)
        for k in range(1, 25):
            history.record("t", k * 1e-3, 2.0, 1e-3)
        # the 100 W sample is > 10 ms old: evicted
        assert history.average("t") == pytest.approx(2.0)

    def test_recent_returns_last_sample(self, history):
        history.record("t", 0.0, 8.0, 1e-3)
        history.record("t", 1e-3, 2.0, 1e-3)
        assert history.recent("t") == pytest.approx(2.0)

    def test_unknown_thread_raises(self, history):
        with pytest.raises(KeyError):
            history.average("ghost")
        with pytest.raises(KeyError):
            history.recent("ghost")

    def test_forget(self, history):
        history.record("t", 0.0, 5.0, 1e-3)
        history.forget("t")
        with pytest.raises(KeyError):
            history.average("t")

    def test_threads_isolated(self, history):
        history.record("a", 0.0, 8.0, 1e-3)
        history.record("b", 0.0, 2.0, 1e-3)
        assert history.average("a") == pytest.approx(8.0)
        assert history.average("b") == pytest.approx(2.0)

"""Lock-step batched sweeps are byte-identical to solo runs.

The acceptance bar for ``repro.sim.batch``: driving S simulators through
one :class:`BatchedSimulatorSet` — including both detach paths (finish
and interval-length divergence) and fault-injected configs — produces
*exactly* the results of S independent ``sim.run()`` calls.  Same floats
bit for bit, traces included.
"""

import numpy as np
import pytest

from repro import config
from repro.io import result_to_dict
from repro.sched.fixed_rotation import FixedRotationScheduler
from repro.sched.hotpotato_runtime import HotPotatoScheduler
from repro.sched.pcmig import PCMigScheduler
from repro.sim.batch import BatchedSimulatorSet
from repro.sim.context import SimContext
from repro.sim.engine import IntervalSimulator
from repro.thermal.matex import ThermalDynamics
from repro.workload.benchmarks import PARSEC
from repro.workload.task import Task

MAX_TIME_S = 0.25


@pytest.fixture(scope="module")
def cfg():
    return config.small_test()


@pytest.fixture(scope="module")
def model(cfg):
    return SimContext(cfg).thermal_model


def _tasks(variant):
    """Per-cell workloads with staggered finish times (exercises the
    finish-detach path: cells leave the batch one by one)."""
    plans = [
        [("x264", 2, 1), ("canneal", 2, 2)],
        [("blackscholes", 2, 3)],
        [("swaptions", 1, 4), ("streamcluster", 2, 5)],
        [("canneal", 2, 6)],
    ]
    return [
        Task(i, PARSEC[name], threads, seed=seed)
        for i, (name, threads, seed) in enumerate(plans[variant])
    ]


def _fingerprint(result):
    """Everything a run produced, wall-clock telemetry excluded."""
    data = result_to_dict(result)
    data.pop("scheduler_wall_time_s", None)
    data.pop("profile", None)
    if result.trace is not None:
        data["trace_temps"] = result.trace.temperatures.tolist()
        data["trace_times"] = result.trace.times.tolist()
    return data


def _solo_results(cfg, model, scheduler_cls, n_cells=4):
    results = []
    for variant in range(n_cells):
        sim = IntervalSimulator(
            cfg,
            scheduler_cls(),
            _tasks(variant),
            ctx=SimContext(cfg, model),
        )
        results.append(sim.run(max_time_s=MAX_TIME_S))
    return results


def _batched_sims(cfg, model, scheduler_cls, n_cells=4):
    dynamics = ThermalDynamics(model)
    return [
        IntervalSimulator(
            cfg,
            scheduler_cls(),
            _tasks(variant),
            ctx=SimContext(cfg, dynamics=dynamics),
        )
        for variant in range(n_cells)
    ]


class TestByteIdentity:
    @pytest.mark.parametrize(
        "scheduler_cls", [HotPotatoScheduler, PCMigScheduler]
    )
    @pytest.mark.parametrize("faults", [False, True])
    def test_batched_equals_solo(self, cfg, model, scheduler_cls, faults):
        run_cfg = (
            cfg.with_faults(
                seed=7,
                sensor_noise_sigma_c=0.4,
                sensor_dropout_prob=0.05,
                power_spike_prob=0.05,
                power_spike_w=1.0,
            )
            if faults
            else cfg
        )
        solo = _solo_results(run_cfg, model, scheduler_cls)
        batch = BatchedSimulatorSet(
            _batched_sims(run_cfg, model, scheduler_cls)
        )
        batched = batch.run_all(MAX_TIME_S)
        assert [_fingerprint(r) for r in batched] == [
            _fingerprint(r) for r in solo
        ]
        stats = batch.stats()
        assert stats["width_initial"] == 4
        assert stats["detached_finished"] + stats["detached_diverged"] == 4
        assert stats["rounds"] >= 1

    def test_divergent_cell_detaches_and_matches(self, cfg, model):
        """A cell whose rotation interval matches nobody leaves the batch
        mid-sweep via the divergence path — and still matches its solo run."""

        def sims(ctx_of):
            taus = (0.5e-3, 0.5e-3, 0.8e-3)  # the odd one diverges
            return [
                IntervalSimulator(
                    cfg,
                    FixedRotationScheduler(tau_s=tau),
                    _tasks(i % 4),
                    ctx=ctx_of(),
                )
                for i, tau in enumerate(taus)
            ]

        solo = [s.run(max_time_s=MAX_TIME_S) for s in sims(lambda: SimContext(cfg, model))]
        dynamics = ThermalDynamics(model)
        batch = BatchedSimulatorSet(
            sims(lambda: SimContext(cfg, dynamics=dynamics)), detach_after=2
        )
        batched = batch.run_all(MAX_TIME_S)
        assert batch.stats()["detached_diverged"] >= 1
        assert [_fingerprint(r) for r in batched] == [
            _fingerprint(r) for r in solo
        ]

    def test_per_sim_horizons(self, cfg, model):
        """A horizon sequence bounds each cell independently."""
        horizons = [0.1, 0.25]
        solo = []
        for variant, horizon in enumerate(horizons):
            sim = IntervalSimulator(
                cfg,
                HotPotatoScheduler(),
                _tasks(variant),
                ctx=SimContext(cfg, model),
            )
            solo.append(sim.run(max_time_s=horizon))
        batch = BatchedSimulatorSet(_batched_sims(cfg, model, HotPotatoScheduler, 2))
        batched = batch.run_all(horizons)
        assert [_fingerprint(r) for r in batched] == [
            _fingerprint(r) for r in solo
        ]


class TestDriverContract:
    def test_requires_shared_dynamics(self, cfg, model):
        sims = [
            IntervalSimulator(
                cfg,
                HotPotatoScheduler(),
                _tasks(i),
                ctx=SimContext(cfg, model),  # each builds its own dynamics
            )
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="share one ThermalDynamics"):
            BatchedSimulatorSet(sims)

    def test_rejects_empty_and_bad_detach(self, cfg, model):
        with pytest.raises(ValueError, match="at least one"):
            BatchedSimulatorSet([])
        sims = _batched_sims(cfg, model, HotPotatoScheduler, 1)
        with pytest.raises(ValueError, match="detach_after"):
            BatchedSimulatorSet(sims, detach_after=0)

    def test_cell_view_refuses_direct_stepping(self, cfg, model):
        sims = _batched_sims(cfg, model, HotPotatoScheduler, 2)
        batch = BatchedSimulatorSet(sims)

        seen = {}

        def on_finish(index, result):
            # while any cell is still attached, its adopted state is the
            # batch view and direct stepping must fail loudly
            for other, sim in enumerate(sims):
                if other not in seen and other != index:
                    state = sim.thermal_state
                    if batch._cell_of[other] is not None:
                        with pytest.raises(RuntimeError, match="fused batch"):
                            state.step(np.zeros(cfg.n_cores), 1e-3)
            seen[index] = result

        batch.run_all(MAX_TIME_S, on_finish=on_finish)
        assert set(seen) == {0, 1}

    def test_on_finish_replacement(self, cfg, model):
        sims = _batched_sims(cfg, model, HotPotatoScheduler, 2)
        batch = BatchedSimulatorSet(sims)
        results = batch.run_all(
            MAX_TIME_S, on_finish=lambda index, result: ("wrapped", index)
        )
        assert results == [("wrapped", 0), ("wrapped", 1)]

"""The interval thermal simulator (HotSniper analogue).

HotSniper couples the Sniper interval core simulator with HotSpot thermal
integration: execution advances in fixed intervals, each interval produces a
power map, and the thermal state advances under that (piecewise-constant)
power.  This engine reproduces that loop on top of our substrates:

1. deliver task arrivals to the scheduler;
2. obtain the scheduler's placement + frequency decision;
3. charge migration debt for every thread that moved (and the cold-start
   refill of new arrivals);
4. let per-core hardware DTM clamp frequencies where the threshold was
   crossed;
5. advance every placed thread by the instructions its core/frequency
   allows (after paying migration debt), with barrier-phase semantics;
6. build the per-core power map from each thread's compute/stall split and
   advance the RC thermal state **exactly** (matrix-exponential step — no
   integration error regardless of interval length).  The state lives in
   the eigenbasis (:class:`~repro.thermal.spectral_state.SpectralThermalState`):
   each step is an ``O(N)`` elementwise decay plus an ``O(N n)``
   steady-coefficient update, and temperatures are projected back only
   when the scheduler, DTM layer or a trace recorder reads them — no
   dense ``exp(C tau)`` matrix and no linear solve in the hot loop
   (``docs/performance.md``);
7. record traces/metrics, deliver completions, repeat.

The engine steps at the scheduler's preferred interval (so synchronous
rotation epochs align with simulation intervals) clipped to the configured
base interval, and lands exactly on task arrival instants.

**Observability** (``docs/observability.md``): when ``SystemConfig.obs``
enables any component (or an :class:`~repro.obs.Observer` is passed
explicitly), the loop additionally feeds a structured trace recorder
(per-interval placement/power/temperature/DTM records, rotation-epoch
boundaries, all structured events), a metrics registry (migrations per
ring, thermal-solver cache hit rates, scheduler decision latency, ...)
and wall-clock profiling hooks around the scheduler-decision,
power-map-build and thermal-step phases.  Everything is off by default;
the disabled path costs only ``None`` checks.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..obs.observer import Observer
from ..sched.base import MigrationFailure, Scheduler, SchedulerDecision
from ..thermal.spectral_state import SpectralThermalState
from ..thermal.trace import ThermalTrace
from ..workload.task import Task
from .context import SimContext
from .dtm import DtmController
from .events import (
    DegradationChanged,
    DtmEngaged,
    DtmReleased,
    EventLog,
    MigrationFailed,
    TaskArrived,
    TaskCompleted,
    ThreadMigrated,
)
from .metrics import SimulationResult, TaskRecord, TimeBreakdown
from .migration import MigrationAccountant

#: Floating-point slack for time comparisons [s].
_TIME_EPS = 1e-12


class IntervalPlan:
    """One prepared interval, ready for its thermal step.

    The interval loop is split into *prepare* (arrivals, decision, DTM,
    execution, power map) -> *thermal step* -> *complete* (energy, traces,
    completions) so a batched driver
    (:class:`~repro.sim.batch.BatchedSimulatorSet`) can own the middle
    phase and fuse it across many simulators.  ``kind`` is ``"active"``
    for a scheduled interval or ``"idle"`` for a fast-forward gap between
    arrivals.
    """

    __slots__ = ("kind", "start_s", "dt_s", "power_w", "decision", "freqs")

    def __init__(self, kind, start_s, dt_s, power_w, decision, freqs):
        self.kind = kind
        self.start_s = start_s
        self.dt_s = dt_s
        self.power_w = power_w
        self.decision = decision
        self.freqs = freqs


class _PowerHistory:
    """Sliding-window average power per thread (paper: last 10 ms)."""

    def __init__(self, window_s: float):
        self.window_s = window_s
        self._samples: Dict[str, Deque[Tuple[float, float, float]]] = {}
        # schedulers read the same average several times per interval; the
        # window only changes in record/forget, so memoizing the summed
        # value between mutations is byte-exact and saves the re-summation
        self._avg_cache: Dict[str, float] = {}

    def record(self, thread: str, now_s: float, power_w: float, dt_s: float) -> None:
        queue = self._samples.setdefault(thread, deque())
        queue.append((now_s, power_w, dt_s))
        cutoff = now_s - self.window_s
        while queue and queue[0][0] < cutoff:
            queue.popleft()
        self._avg_cache.pop(thread, None)

    def average(self, thread: str) -> float:
        cached = self._avg_cache.get(thread)
        if cached is not None:
            return cached
        queue = self._samples.get(thread)
        if not queue:
            raise KeyError(f"no power history for thread {thread}")
        total_energy = sum(p * dt for _, p, dt in queue)
        total_time = sum(dt for _, _, dt in queue)
        value = total_energy / total_time
        self._avg_cache[thread] = value
        return value

    def recent(self, thread: str) -> float:
        """Most recent power sample (burst detection)."""
        queue = self._samples.get(thread)
        if not queue:
            raise KeyError(f"no power history for thread {thread}")
        return queue[-1][1]

    def forget(self, thread: str) -> None:
        self._samples.pop(thread, None)
        self._avg_cache.pop(thread, None)


class IntervalSimulator:
    """Run one scheduler over one task set on one platform."""

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        tasks: List[Task],
        ctx: Optional[SimContext] = None,
        dtm_enabled: bool = True,
        record_trace: bool = True,
        record_events: bool = False,
        warm_start_uniform_power_w: Optional[float] = None,
        observer: Optional[Observer] = None,
    ):
        self.config = config
        self.ctx = ctx if ctx is not None else SimContext(config)
        self.scheduler = scheduler
        self.dtm_enabled = dtm_enabled
        self.record_trace = record_trace
        self._pending: Deque[Task] = deque(
            sorted(tasks, key=lambda t: t.arrival_time_s)
        )
        self._running: List[Task] = []
        self._history = _PowerHistory(config.power_history_window_s)
        self._accountant = MigrationAccountant(self.ctx.migration)
        self._dtm = DtmController(
            self.ctx.n_cores,
            config.thermal.dtm_threshold_c,
            config.thermal.dtm_hysteresis_c,
            config.dvfs.f_min_hz,
        )
        # warm start: by default the chip has been idling long enough to
        # reach the all-idle steady state.  Passing
        # ``warm_start_uniform_power_w`` instead pre-heats the package to
        # the steady state of that uniform load — HotSniper's ROI warm-up
        # (the paper's Fig. 2 traces start near 58 degC, not at ambient).
        warm = (
            config.thermal.idle_power_w
            if warm_start_uniform_power_w is None
            else warm_start_uniform_power_w
        )
        self._state = SpectralThermalState(
            self.ctx.dynamics,
            config.thermal.ambient_c,
            self.ctx.thermal_model.steady_state(
                np.full(self.ctx.n_cores, warm), config.thermal.ambient_c
            ),
        )
        self._prev_placements: Dict[str, int] = {}
        self._sched_wall_s = 0.0
        self._sched_calls = 0
        #: fault injector (None on the fault-free fast path: every fault
        #: hook below is guarded so disabled runs stay byte-identical).
        #: Imported lazily: ``repro.faults`` consumes ``repro.sim.events``,
        #: so a module-level import here would be circular.
        if config.faults.enabled:
            from ..faults import FaultInjector

            self._injector: Optional["FaultInjector"] = FaultInjector(config)
        else:
            self._injector = None
        self._prev_degradation: Optional[str] = None
        #: observability bundle (explicit argument wins over ``config.obs``)
        self.observer: Optional[Observer] = (
            observer if observer is not None else Observer.from_config(config.obs)
        )
        self._recorder = self.observer.trace if self.observer else None
        self._metrics = self.observer.metrics if self.observer else None
        self._profiler = self.observer.profiler if self.observer else None
        #: structured event log (populated when ``record_events`` is set, or
        #: when a trace recorder needs events to subscribe to)
        record_events = record_events or self._recorder is not None
        self.events: Optional[EventLog] = EventLog() if record_events else None
        if self._recorder is not None:
            self.events.subscribe(self._recorder.record_event)
        # rotation-epoch tracker (trace recording only)
        self._obs_tau: Optional[float] = None
        self._obs_epoch = 0
        self._obs_epoch_start_s = 0.0
        self._breakdown: Dict[str, TimeBreakdown] = {}
        self.ctx.wire_observations(
            self._history.average, self._core_temps, self._history.recent
        )
        if self._injector is not None:
            self.ctx.attach_sensors(self._injector.sensors)
        self.scheduler.attach(self.ctx)

    # -- observation hooks -------------------------------------------------------

    def _core_temps(self) -> np.ndarray:
        return self._state.core_temperatures()

    # -- helpers -------------------------------------------------------------------

    def _timed_scheduler_call(self, fn, *args, metric: str = "callback"):
        start = _time.perf_counter()
        result = fn(*args)
        elapsed = _time.perf_counter() - start
        self._sched_wall_s += elapsed
        self._sched_calls += 1
        if self._metrics is not None:
            self._metrics.histogram(
                f"scheduler.{metric}_latency_s", timing=True
            ).observe(elapsed)
        return result

    def _track_epoch(self, now_s: float, tau_s: Optional[float]) -> None:
        """Record rotation-epoch boundaries into the trace recorder.

        A boundary is recorded when rotation starts, when the scheduler
        changes tau (the epoch counter restarts), and whenever the current
        epoch's tau has fully elapsed.
        """
        if tau_s is None:
            self._obs_tau = None
            return
        if self._obs_tau is None or abs(tau_s - self._obs_tau) > _TIME_EPS:
            self._obs_tau = tau_s
            self._obs_epoch = 0
            self._obs_epoch_start_s = now_s
            self._recorder.record_epoch(now_s, 0, tau_s)
            return
        while now_s >= self._obs_epoch_start_s + tau_s - _TIME_EPS:
            self._obs_epoch += 1
            self._obs_epoch_start_s += tau_s
            self._recorder.record_epoch(
                self._obs_epoch_start_s, self._obs_epoch, tau_s
            )

    def _thread_of(self, thread_id: str) -> Tuple[Task, int]:
        task_id_str, index_str = thread_id.rsplit(".", 1)
        task_id = int(task_id_str)
        for task in self._running:
            if task.task_id == task_id:
                return task, int(index_str)
        raise KeyError(f"thread {thread_id} belongs to no running task")

    def _validate(self, decision: SchedulerDecision) -> None:
        live = {
            thread.thread_id for task in self._running for thread in task.threads
        }
        placed = set(decision.placements)
        if placed & decision.waiting:
            raise ValueError("a thread is both placed and waiting")
        accounted = placed | decision.waiting
        if accounted != live:
            missing = live - accounted
            extra = accounted - live
            raise ValueError(
                f"scheduler placement mismatch: missing={sorted(missing)[:4]} "
                f"extra={sorted(extra)[:4]}"
            )
        cores = list(decision.placements.values())
        if len(set(cores)) != len(cores):
            raise ValueError("scheduler placed two threads on one core")
        if decision.frequencies.shape != (self.ctx.n_cores,):
            raise ValueError("frequency vector has wrong shape")
        if not np.all(np.isfinite(np.asarray(decision.frequencies, dtype=float))):
            # a NaN sensor reading that leaked through scheduler arithmetic
            # would otherwise silently poison power, energy and temperatures
            raise ValueError("scheduler produced non-finite frequencies")

    def _apply_faults(
        self, decision: SchedulerDecision, now_s: float
    ) -> SchedulerDecision:
        """Migration-failure repair and the graceful-degradation contract.

        Only ever called when fault injection is active.  Draws which of
        the decision's planned hops abort, lets the scheduler re-plan
        around them (:meth:`~repro.sched.base.Scheduler.repair_decision`),
        then finalizes the decision through the degradation ladder and
        emits a :class:`DegradationChanged` event on every transition.
        """
        planned = []
        for thread_id, dst in decision.placements.items():
            src = self._prev_placements.get(thread_id)
            if src is not None and src != dst:
                planned.append((thread_id, src, dst))
        failed = self._injector.migration_failures(planned)
        if failed:
            failures = [MigrationFailure(t, s, d) for t, s, d in failed]
            decision = self._timed_scheduler_call(
                self.scheduler.repair_decision,
                decision,
                failures,
                now_s,
                metric="repair",
            )
            self._validate(decision)
            if self.events is not None:
                for failure in failures:
                    self.events.record(
                        MigrationFailed(
                            now_s,
                            failure.thread_id,
                            failure.src_core,
                            failure.dst_core,
                        )
                    )
            if self._metrics is not None:
                self._metrics.counter("engine.migration_failures").inc(
                    len(failures)
                )
        decision = self.scheduler.finalize_decision(decision, now_s)
        mode = decision.degradation
        if mode is not None and mode != self._prev_degradation:
            if self.events is not None:
                self.events.record(
                    DegradationChanged(
                        now_s,
                        self.scheduler.name,
                        self._prev_degradation or "normal",
                        mode,
                        self._injector.sensors.max_staleness_s(now_s),
                    )
                )
            if self._metrics is not None:
                self._metrics.counter(f"engine.degradation.{mode}").inc()
            self._prev_degradation = mode
        return decision

    # -- main loop --------------------------------------------------------------------

    def run(self, max_time_s: float = 10.0) -> SimulationResult:
        """Simulate until all tasks finish (or ``max_time_s`` elapses)."""
        self.begin_run(max_time_s)
        return self.drive_to_completion()

    def drive_to_completion(self) -> SimulationResult:
        """Drive the phase loop until no intervals remain, then finalize.

        Requires a prior :meth:`begin_run`.  The batched sweep driver
        calls this on a cell after detaching it from the batch — the
        re-adopted scalar state continues the run byte-identically.
        """
        while True:
            plan = self.prepare_interval()
            if plan is None:
                break
            self.step_thermal(plan)
            self.complete_interval(plan)
        return self.finalize()

    # -- phase API (run == begin_run + [prepare/step/complete]* + finalize) ---

    def begin_run(self, max_time_s: float = 10.0) -> None:
        """Phase 0: reset the per-run accumulators, record the initial trace.

        The phase split (``begin_run`` -> repeated :meth:`prepare_interval`
        / :meth:`step_thermal` / :meth:`complete_interval` ->
        :meth:`finalize`) exists so
        :class:`~repro.sim.batch.BatchedSimulatorSet` can interleave many
        simulators and fuse their thermal steps; :meth:`run` drives the
        same phases for the solo case.
        """
        self._max_time_s = max_time_s
        self._run_trace = (
            ThermalTrace(self.ctx.n_cores) if self.record_trace else None
        )
        self._run_records: List[TaskRecord] = []
        self._run_energy_j = 0.0
        #: per-core energy integral [J] (energy accounting, docs/traffic.md)
        self._energy_per_core_j = np.zeros(self.ctx.n_cores)
        #: instructions retired across all threads (J/instruction metric)
        self._instructions_retired = 0.0
        self._now = 0.0
        self._idle_power = self.ctx.power_model.idle_power_w()
        if self._run_trace is not None:
            self._run_trace.record(self._now, self._core_temps())

    @property
    def finished(self) -> bool:
        """True once no interval remains (tasks done or horizon reached)."""
        return not (
            (self._pending or self._running)
            and self._now < self._max_time_s - _TIME_EPS
        )

    @property
    def thermal_state(self):
        """The live thermal state (scalar, or a batch-cell view)."""
        return self._state

    def adopt_thermal_state(self, state) -> None:
        """Swap the thermal state object — the batched-state injection point.

        The replacement must expose the :class:`SpectralThermalState`
        read interface (``core_temperatures``/``node_temperatures``) plus
        ``step`` when this simulator keeps driving itself; the batched
        driver installs a batch-cell view whose stepping happens in the
        fused batch instead, and re-adopts a scalar state on detach.
        """
        self._state = state

    def prepare_interval(self) -> Optional[IntervalPlan]:
        """Phases 1-6: arrivals, decision, DTM, execution, power map.

        Returns the prepared interval, or ``None`` when the run is over.
        The caller must follow with :meth:`step_thermal` (or a fused
        batch step) and :meth:`complete_interval`.
        """
        cfg = self.config
        now = self._now
        if not (
            (self._pending or self._running)
            and now < self._max_time_s - _TIME_EPS
        ):
            return None

        # 1. arrivals due now
        while self._pending and self._pending[0].arrival_time_s <= now + _TIME_EPS:
            task = self._pending.popleft()
            self._running.append(task)
            self._timed_scheduler_call(
                self.scheduler.on_task_arrival, task, now
            )
            if self._metrics is not None:
                self._metrics.counter("engine.tasks.arrived").inc()
            if self.events is not None:
                self.events.record(
                    TaskArrived(
                        now,
                        task.task_id,
                        task.profile.name,
                        task.n_threads,
                        task.deadline_time_s,
                    )
                )

        if not self._running:
            # idle gap until the next arrival: fast-forward thermally
            next_arrival = self._pending[0].arrival_time_s
            gap = min(next_arrival, self._max_time_s) - now
            idle_vec = np.full(self.ctx.n_cores, self._idle_power)
            return IntervalPlan("idle", now, gap, idle_vec, None, None)

        # 2. interval length: scheduler preference, base interval, next arrival
        dt = cfg.sim_interval_s
        preferred = self.scheduler.preferred_interval_s()
        if preferred is not None:
            dt = min(dt, preferred)
        if self._pending:
            until_arrival = self._pending[0].arrival_time_s - now
            if _TIME_EPS < until_arrival < dt:
                dt = until_arrival

        # 2b. fault injection: draw this interval's fault episodes
        # against ground truth before the scheduler looks at anything
        if self._injector is not None:
            for event in self._injector.advance(now, self._core_temps()):
                if self.events is not None:
                    self.events.record(event)
            self._dtm.set_stuck(self._injector.stuck_mask())

        # 3. scheduler decision
        if self._profiler is not None:
            token = self._profiler.begin("scheduler.decide")
            decision = self._timed_scheduler_call(
                self.scheduler.decide, now, metric="decision"
            )
            self._profiler.end("scheduler.decide", token)
        else:
            decision = self._timed_scheduler_call(
                self.scheduler.decide, now, metric="decision"
            )
        self._validate(decision)
        if self._injector is not None:
            decision = self._apply_faults(decision, now)
        if self._recorder is not None:
            self._track_epoch(now, decision.tau_s)
        moves = self._accountant.charge_moves(
            self._prev_placements, decision.placements
        )
        if self.events is not None:
            for thread, src, dst in moves:
                self.events.record(
                    ThreadMigrated(
                        now,
                        thread,
                        src,
                        dst,
                        self.ctx.migration.migration_penalty_s(src, dst),
                    )
                )
        if self._metrics is not None and moves:
            self._metrics.counter("engine.migrations").inc(len(moves))
            for _, _, dst in moves:
                ring = self.ctx.rings.ring_of(dst)
                self._metrics.counter(
                    f"engine.migrations.to_ring.{ring}"
                ).inc()
        self._prev_placements = dict(decision.placements)

        # 4. DTM
        if self.dtm_enabled:
            before = self._dtm.throttled.copy()
            temps_now = self._core_temps()
            after = self._dtm.update(temps_now)
            if self.events is not None:
                for core in np.nonzero(after & ~before)[0]:
                    self.events.record(
                        DtmEngaged(now, int(core), float(temps_now[core]))
                    )
                for core in np.nonzero(before & ~after)[0]:
                    self.events.record(
                        DtmReleased(now, int(core), float(temps_now[core]))
                    )
            if self._metrics is not None:
                engaged = int(np.count_nonzero(after & ~before))
                released = int(np.count_nonzero(before & ~after))
                if engaged:
                    self._metrics.counter("engine.dtm.engaged").inc(engaged)
                if released:
                    self._metrics.counter("engine.dtm.released").inc(released)
            freqs = self._dtm.apply(decision.frequencies, dt)
        else:
            freqs = np.asarray(decision.frequencies, dtype=float)

        # 5. execution + 6. power map
        power_token = (
            self._profiler.begin("power_map.build")
            if self._profiler is not None
            else 0.0
        )
        power = np.full(self.ctx.n_cores, self._idle_power)
        for thread_id, core in decision.placements.items():
            task, index = self._thread_of(thread_id)
            profile = task.profile
            f_hz = float(freqs[core])
            exec_time = self._accountant.consume_debt(thread_id, dt)
            migration_time = dt - exec_time
            tpi = self.ctx.perf.time_per_instruction_s(profile, core, f_hz)
            wanted = exec_time / tpi
            retired = task.advance(index, wanted)
            self._instructions_retired += retired
            busy_time = retired * tpi
            compute_b, stall_b = self.ctx.perf.activity_fractions(
                profile, core, f_hz
            )
            # migration debt keeps the memory system busy (refills)
            compute_frac = compute_b * busy_time / dt
            stall_frac = stall_b * busy_time / dt + migration_time / dt
            power[core] = self.ctx.power_model.core_power_w(
                profile.p_dyn_ref_w, f_hz, compute_frac, stall_frac
            )
            self._history.record(thread_id, now, power[core], dt)
            stack = self._breakdown.setdefault(thread_id, TimeBreakdown())
            stack.compute_s += compute_b * busy_time
            stack.stall_s += stall_b * busy_time
            stack.migration_s += migration_time
            stack.wait_s += exec_time - busy_time
        for thread_id in decision.waiting:
            stack = self._breakdown.setdefault(thread_id, TimeBreakdown())
            stack.queued_s += dt
        if self._profiler is not None:
            self._profiler.end("power_map.build", power_token)
        if self._injector is not None:
            # transient power spikes are ground truth: they heat the
            # silicon and count toward the energy budget
            power = self._injector.perturb_power(power)

        return IntervalPlan("active", now, dt, power, decision, freqs)

    def step_thermal(self, plan: IntervalPlan) -> None:
        """Phase 7: exact thermal step (eigenbasis-resident: O(N) decay +
        O(N n) steady-coefficient update, no dense matrices)."""
        if plan.kind == "active" and self._profiler is not None:
            step_token = self._profiler.begin("thermal.step")
            self._state.step(plan.power_w, plan.dt_s)
            self._profiler.end("thermal.step", step_token)
        else:
            self._state.step(plan.power_w, plan.dt_s)

    def complete_interval(self, plan: IntervalPlan) -> None:
        """Phases 7b-8: energy/trace accounting, barriers and completions.

        Assumes the thermal state has just advanced by ``plan.dt_s`` —
        either via :meth:`step_thermal` or a fused batch step.
        """
        cfg = self.config
        trace = self._run_trace
        dt = plan.dt_s

        if plan.kind == "idle":
            self._run_energy_j += self._idle_power * self.ctx.n_cores * dt
            self._energy_per_core_j += plan.power_w * dt
            self._now += dt
            now = self._now
            if trace is not None:
                trace.record(now, self._core_temps())
            if self._recorder is not None:
                self._recorder.record_interval(
                    time_s=now - dt,
                    dt_s=dt,
                    placements={},
                    power_w=plan.power_w,
                    temps_c=self._core_temps(),
                    frequencies_hz=np.full(
                        self.ctx.n_cores, cfg.dvfs.f_max_hz
                    ),
                    dtm_throttled=np.nonzero(self._dtm.throttled)[0],
                )
            return

        decision = plan.decision
        power = plan.power_w
        self._run_energy_j += float(np.sum(power)) * dt
        self._energy_per_core_j += power * dt
        self._now += dt
        now = self._now
        if trace is not None:
            trace.record(now, self._core_temps())
        if self._metrics is not None:
            self._metrics.counter("engine.intervals").inc()
        if self._recorder is not None:
            self._recorder.record_interval(
                time_s=now - dt,
                dt_s=dt,
                placements=decision.placements,
                power_w=power,
                temps_c=self._core_temps(),
                frequencies_hz=plan.freqs,
                dtm_throttled=np.nonzero(self._dtm.throttled)[0],
            )

        # 8. barriers and completions
        finished: List[Task] = []
        for task in self._running:
            task.try_advance_phase()
            if task.complete:
                finished.append(task)
        for task in finished:
            task.mark_complete(now)
            self._running.remove(task)
            for thread in task.threads:
                self._prev_placements.pop(thread.thread_id, None)
                self._accountant.forget(thread.thread_id)
                self._history.forget(thread.thread_id)
            self._timed_scheduler_call(
                self.scheduler.on_task_complete, task, now
            )
            if self._metrics is not None:
                self._metrics.counter("engine.tasks.completed").inc()
                # deterministic (sim-time) response-time distribution:
                # p50/p99 are published as gauges at finalize
                self._metrics.histogram("engine.response_time_s").observe(
                    now - task.arrival_time_s
                )
            self._run_records.append(
                TaskRecord(
                    task_id=task.task_id,
                    benchmark=task.profile.name,
                    n_threads=task.n_threads,
                    arrival_s=task.arrival_time_s,
                    completion_s=now,
                )
            )
            if self.events is not None:
                self.events.record(
                    TaskCompleted(
                        now,
                        task.task_id,
                        task.profile.name,
                        now - task.arrival_time_s,
                    )
                )

    def finalize(self) -> SimulationResult:
        """Publish end-of-run gauges and assemble the result."""
        if self._metrics is not None:
            for key, value in self.ctx.dynamics.cache_stats().items():
                self._metrics.gauge(f"thermal.{key}").set(value)
            for key, value in self.scheduler.metrics().items():
                self._metrics.gauge(f"sched.{key}").set(value)
            if self._injector is not None:
                for key, value in self._injector.metrics().items():
                    self._metrics.gauge(f"faults.{key}").set(value)
            # energy accounting (docs/traffic.md): total, EDP, J/instr,
            # and the per-core spread of the energy integral
            self._metrics.gauge("energy.total_j").set(self._run_energy_j)
            self._metrics.gauge("energy.edp_js").set(
                self._run_energy_j * self._now
            )
            if self._instructions_retired > 0:
                self._metrics.gauge("energy.j_per_instruction").set(
                    self._run_energy_j / self._instructions_retired
                )
            self._metrics.gauge("energy.per_core_max_j").set(
                float(np.max(self._energy_per_core_j))
            )
            self._metrics.gauge("energy.per_core_mean_j").set(
                float(np.mean(self._energy_per_core_j))
            )
            if self._run_records:
                response = self._metrics.histogram("engine.response_time_s")
                self._metrics.gauge("engine.response_time_p50_s").set(
                    response.quantile(0.5)
                )
                self._metrics.gauge("engine.response_time_p99_s").set(
                    response.quantile(0.99)
                )
        if self._recorder is not None:
            # streaming sinks persist everything recorded so far; the
            # in-memory recorder's flush is a no-op
            self._recorder.flush()

        return SimulationResult(
            scheduler_name=self.scheduler.name,
            sim_time_s=self._now,
            tasks=sorted(self._run_records, key=lambda r: r.task_id),
            trace=self._run_trace,
            dtm_triggers=self._dtm.trigger_count,
            dtm_core_time_s=self._dtm.throttled_core_time_s,
            migration_count=self._accountant.migration_count,
            migration_penalty_s=self._accountant.total_penalty_s,
            energy_j=self._run_energy_j,
            energy_per_core_j=[float(e) for e in self._energy_per_core_j],
            instructions_retired=self._instructions_retired,
            scheduler_wall_time_s=self._sched_wall_s,
            scheduler_invocations=self._sched_calls,
            time_breakdown=dict(self._breakdown),
            metrics_snapshot=(
                self._metrics.snapshot() if self._metrics is not None else {}
            ),
            profile=(
                self._profiler.summary() if self._profiler is not None else {}
            ),
        )

"""Structured simulation event log.

Optional (``IntervalSimulator(record_events=True)``): every noteworthy
simulation occurrence — task arrivals/completions, thread migrations, DTM
engagements — is recorded as a typed event, queryable afterwards.  Useful
for debugging scheduler behaviour and for the examples' narratives; the
metrics object carries only aggregates.

Observability integrations subscribe to the log
(:meth:`EventLog.subscribe`) to mirror events elsewhere — the
:class:`~repro.obs.trace.TraceRecorder` serializes them into its JSONL
trace via :func:`event_to_dict` / :func:`event_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterator, List, Optional, Type, TypeVar


@dataclass(frozen=True)
class Event:
    """Base event: a timestamped occurrence."""

    time_s: float


@dataclass(frozen=True)
class TaskArrived(Event):
    task_id: int
    benchmark: str
    n_threads: int
    #: absolute QoS deadline [s] (arrival + relative deadline), or None —
    #: defaulted so traces recorded before QoS annotations still load.
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class TaskCompleted(Event):
    task_id: int
    benchmark: str
    response_time_s: float


@dataclass(frozen=True)
class ThreadMigrated(Event):
    thread_id: str
    src_core: int
    dst_core: int
    penalty_s: float


@dataclass(frozen=True)
class DtmEngaged(Event):
    core: int
    temperature_c: float


@dataclass(frozen=True)
class DtmReleased(Event):
    core: int
    temperature_c: float


@dataclass(frozen=True)
class SensorFaultInjected(Event):
    """A thermal-sensor fault episode started on one core.

    ``kind`` is ``"dropout"`` (readings become NaN) or ``"stuck"`` (the
    reading latches its current value); ground truth is never affected.
    """

    core: int
    kind: str
    duration_s: float


@dataclass(frozen=True)
class PowerSpikeInjected(Event):
    """A transient ground-truth power spike started on one core."""

    core: int
    extra_power_w: float
    duration_s: float


@dataclass(frozen=True)
class CoreStuckFault(Event):
    """A core got stuck throttled at ``f_min`` regardless of temperature."""

    core: int
    duration_s: float


@dataclass(frozen=True)
class MigrationFailed(Event):
    """A planned migration hop aborted; the thread stays on ``src_core``."""

    thread_id: str
    src_core: int
    dst_core: int


@dataclass(frozen=True)
class DegradationChanged(Event):
    """A scheduler moved along the graceful-degradation ladder."""

    scheduler: str
    old_mode: str
    new_mode: str
    staleness_s: float


_E = TypeVar("_E", bound=Event)

#: Every concrete event class, by name (the serialization registry).
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.__name__: cls
    for cls in (
        TaskArrived,
        TaskCompleted,
        ThreadMigrated,
        DtmEngaged,
        DtmReleased,
        SensorFaultInjected,
        PowerSpikeInjected,
        CoreStuckFault,
        MigrationFailed,
        DegradationChanged,
    )
}


def event_to_dict(event: Event) -> Dict[str, object]:
    """Plain-dict form of an event: ``{"type": <class name>, <fields...>}``."""
    data: Dict[str, object] = {"type": type(event).__name__}
    for field in fields(event):
        data[field.name] = getattr(event, field.name)
    return data


def event_from_dict(data: Dict[str, object]) -> Event:
    """Rebuild an event from :func:`event_to_dict` output."""
    payload = dict(data)
    type_name = payload.pop("type", None)
    cls = EVENT_TYPES.get(str(type_name))
    if cls is None:
        raise ValueError(f"unknown event type {type_name!r}")
    return cls(**payload)


class EventLog:
    """Append-only, time-ordered event store (with subscriber fan-out)."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Call ``callback`` with every subsequently recorded event."""
        self._subscribers.append(callback)

    def record(self, event: Event) -> None:
        """Append an event (times must be non-decreasing)."""
        if self._events and event.time_s < self._events[-1].time_s - 1e-12:
            raise ValueError("event log times must be non-decreasing")
        self._events.append(event)
        for callback in self._subscribers:
            callback(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_type(self, event_type: Type[_E]) -> List[_E]:
        """All events of one type, in time order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def between(self, t_start_s: float, t_end_s: float) -> List[Event]:
        """Events within ``[t_start_s, t_end_s]``."""
        return [e for e in self._events if t_start_s <= e.time_s <= t_end_s]

    def count(self, event_type: Type[Event]) -> int:
        """Number of events of one type."""
        return sum(1 for e in self._events if isinstance(e, event_type))

    def last(self, event_type: Type[_E]) -> Optional[_E]:
        """Most recent event of one type, if any."""
        for event in reversed(self._events):
            if isinstance(event, event_type):
                return event
        return None

    def render(self, limit: int = 50) -> str:
        """Human-readable dump of the first ``limit`` events."""
        lines = []
        for event in self._events[:limit]:
            name = type(event).__name__
            fields = {
                k: v for k, v in vars(event).items() if k != "time_s"
            }
            detail = ", ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"{event.time_s * 1e3:9.3f} ms  {name:<15s} {detail}")
        if len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more)")
        return "\n".join(lines) if lines else "(no events)"

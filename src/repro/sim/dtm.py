"""Hardware Dynamic Thermal Management (DTM).

The paper defines ``T_DTM`` as "the temperature at which [the] many-core
triggers the hardware-controlled DTM that crashes the many-core's operating
frequency to save it from damage" (Section V).  Mirroring HotSniper, DTM is
a per-core mechanism outside any scheduler's control: a core that crosses
the threshold is forced to the minimum frequency and stays throttled until
it has cooled ``hysteresis`` below the threshold.

DTM is the safety net both schedulers run against; the point of the paper's
analytics is to make thermally-safe decisions so DTM (and its brutal
performance cost) never fires.
"""

from __future__ import annotations

import numpy as np


class DtmController:
    """Per-core threshold throttling with hysteresis."""

    def __init__(
        self,
        n_cores: int,
        threshold_c: float,
        hysteresis_c: float,
        f_min_hz: float,
    ):
        if hysteresis_c < 0:
            raise ValueError("hysteresis must be non-negative")
        self.n_cores = n_cores
        self.threshold_c = threshold_c
        self.hysteresis_c = hysteresis_c
        self.f_min_hz = f_min_hz
        self._throttled = np.zeros(n_cores, dtype=bool)
        self._stuck = np.zeros(n_cores, dtype=bool)
        #: number of cool->throttled transitions observed
        self.trigger_count = 0
        #: accumulated core-seconds spent throttled
        self.throttled_core_time_s = 0.0

    @property
    def throttled(self) -> np.ndarray:
        """Current per-core throttle mask (read-only, includes stuck cores)."""
        view = (self._throttled | self._stuck).view()
        view.flags.writeable = False
        return view

    def set_stuck(self, stuck_mask: np.ndarray) -> None:
        """Pin cores at ``f_min`` regardless of temperature (fault model).

        A stuck-throttled fault clamps the core exactly like a thermal
        throttle but bypasses the hysteresis state machine: it neither
        counts as a DTM trigger nor needs the core to cool down to clear —
        the mask is simply replaced each interval by the fault injector.
        """
        mask = np.asarray(stuck_mask, dtype=bool)
        if mask.shape != (self.n_cores,):
            raise ValueError("stuck mask has wrong shape")
        self._stuck = mask.copy()

    def update(self, core_temps_c: np.ndarray) -> np.ndarray:
        """Advance the hysteresis state machine; returns the throttle mask."""
        temps = np.asarray(core_temps_c, dtype=float)
        if temps.shape != (self.n_cores,):
            raise ValueError("temperature vector has wrong shape")
        newly_hot = (~self._throttled) & (temps > self.threshold_c)
        self.trigger_count += int(np.sum(newly_hot))
        cooled = self._throttled & (
            temps < self.threshold_c - self.hysteresis_c
        )
        self._throttled = (self._throttled | newly_hot) & ~cooled
        return self._throttled.copy()

    def apply(self, frequencies_hz: np.ndarray, interval_s: float) -> np.ndarray:
        """Clamp throttled cores to ``f_min`` and account throttled time."""
        freqs = np.asarray(frequencies_hz, dtype=float).copy()
        clamped = self._throttled | self._stuck
        freqs[clamped] = np.minimum(freqs[clamped], self.f_min_hz)
        self.throttled_core_time_s += float(np.sum(clamped)) * interval_s
        return freqs

"""Simulation metrics: the quantities the paper's evaluation reports.

- **response time** per task (completion - arrival; Fig. 2 quotes these for
  the motivational example, Fig. 4b for the open system);
- **makespan** of a closed-system batch (Fig. 4a reports it normalized);
- thermal statistics (peak, threshold violations, DTM activity);
- scheduling overheads (migrations, penalty time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..thermal.trace import ThermalTrace


@dataclass
class TaskRecord:
    """Outcome of one task."""

    task_id: int
    benchmark: str
    n_threads: int
    arrival_s: float
    completion_s: float

    @property
    def response_time_s(self) -> float:
        """Completion minus arrival."""
        return self.completion_s - self.arrival_s


@dataclass
class TimeBreakdown:
    """Where one thread's wall time went (Sniper-style time stack).

    ``compute + stall + migration + wait`` accounts for every placed
    interval; ``queued`` counts time before admission.
    """

    compute_s: float = 0.0
    #: S-NUCA memory-stall share of busy time
    stall_s: float = 0.0
    #: migration debt (private-cache refill)
    migration_s: float = 0.0
    #: barrier wait (placed but no phase work)
    wait_s: float = 0.0
    #: waiting in the admission queue
    queued_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total accounted wall time."""
        return (
            self.compute_s
            + self.stall_s
            + self.migration_s
            + self.wait_s
            + self.queued_s
        )

    def fraction(self, component: str) -> float:
        """Share of one component (``compute``/``stall``/``migration``/
        ``wait``/``queued``) in the accounted time."""
        total = self.total_s
        if total <= 0:
            return 0.0
        value = getattr(self, f"{component}_s")
        return value / total

    def render(self) -> str:
        total = self.total_s
        if total <= 0:
            return "(no time accounted)"
        parts = []
        for name in ("compute", "stall", "migration", "wait", "queued"):
            value = getattr(self, f"{name}_s")
            parts.append(f"{name} {value * 1e3:.1f} ms ({value / total:.0%})")
        return "  ".join(parts)


@dataclass
class SimulationResult:
    """Everything a finished simulation reports."""

    scheduler_name: str
    sim_time_s: float
    tasks: List[TaskRecord] = field(default_factory=list)
    trace: Optional[ThermalTrace] = None
    #: count of DTM trigger events (cool -> throttled transitions)
    dtm_triggers: int = 0
    #: core-seconds spent DTM-throttled
    dtm_core_time_s: float = 0.0
    migration_count: int = 0
    migration_penalty_s: float = 0.0
    #: total chip energy [J]
    energy_j: float = 0.0
    #: per-core energy integral [J] (empty when not tracked, e.g. results
    #: deserialized from pre-energy-accounting campaigns)
    energy_per_core_j: List[float] = field(default_factory=list)
    #: instructions retired across all threads over the run
    instructions_retired: float = 0.0
    #: wall-clock spent inside scheduler decisions [s] (overhead study)
    scheduler_wall_time_s: float = 0.0
    scheduler_invocations: int = 0
    annotations: Dict[str, float] = field(default_factory=dict)
    #: per-thread wall-time breakdown (thread id -> TimeBreakdown)
    time_breakdown: Dict[str, "TimeBreakdown"] = field(default_factory=dict)
    #: flat metrics-registry snapshot (empty unless metrics were enabled;
    #: see :class:`repro.obs.MetricsRegistry`)
    metrics_snapshot: Dict[str, float] = field(default_factory=dict)
    #: per-phase wall-clock profile (empty unless profiling was enabled;
    #: see :class:`repro.obs.PhaseProfiler`)
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Completion time of the last task (closed-system metric)."""
        if not self.tasks:
            raise ValueError("no completed tasks")
        return max(t.completion_s for t in self.tasks)

    @property
    def mean_response_time_s(self) -> float:
        """Average task response time (open-system metric)."""
        if not self.tasks:
            raise ValueError("no completed tasks")
        return float(np.mean([t.response_time_s for t in self.tasks]))

    @property
    def peak_temperature_c(self) -> float:
        """Hottest observed core temperature."""
        if self.trace is None or len(self.trace) == 0:
            raise ValueError("no thermal trace recorded")
        return self.trace.peak()

    def time_above_c(self, threshold_c: float) -> float:
        """Time any core spent above ``threshold_c``."""
        if self.trace is None:
            return 0.0
        return self.trace.time_above(threshold_c)

    def response_time_of(self, task_id: int) -> float:
        """Response time of one task."""
        for record in self.tasks:
            if record.task_id == task_id:
                return record.response_time_s
        raise KeyError(f"task {task_id} not completed")

    @property
    def edp_js(self) -> float:
        """Energy-delay product [J*s]: total energy times the run's span."""
        return self.energy_j * self.sim_time_s

    @property
    def energy_per_instruction_j(self) -> float:
        """Average energy per retired instruction [J] (0 when no work ran)."""
        if self.instructions_retired <= 0:
            return 0.0
        return self.energy_j / self.instructions_retired

    def response_time_quantile_s(self, q: float) -> float:
        """Exact response-time quantile over completed tasks.

        (The metrics snapshot additionally carries the log-bucketed
        estimator's p50/p99 as ``engine.response_time_p50_s`` /
        ``..._p99_s`` gauges when metrics are enabled.)
        """
        if not self.tasks:
            raise ValueError("no completed tasks")
        values = sorted(t.response_time_s for t in self.tasks)
        return float(np.quantile(np.asarray(values), q))

    def mean_scheduler_overhead_s(self) -> float:
        """Mean wall-clock time of one scheduler invocation."""
        if self.scheduler_invocations == 0:
            return 0.0
        return self.scheduler_wall_time_s / self.scheduler_invocations

    def aggregate_breakdown(self) -> "TimeBreakdown":
        """Chip-wide time stack: the per-thread breakdowns summed."""
        total = TimeBreakdown()
        for breakdown in self.time_breakdown.values():
            total.compute_s += breakdown.compute_s
            total.stall_s += breakdown.stall_s
            total.migration_s += breakdown.migration_s
            total.wait_s += breakdown.wait_s
            total.queued_s += breakdown.queued_s
        return total

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"scheduler={self.scheduler_name}  sim_time={self.sim_time_s * 1e3:.1f} ms",
            f"tasks completed: {len(self.tasks)}",
        ]
        if self.tasks:
            lines.append(
                f"makespan={self.makespan_s * 1e3:.1f} ms  "
                f"mean response={self.mean_response_time_s * 1e3:.1f} ms"
            )
        if self.trace is not None and len(self.trace):
            lines.append(f"peak temperature={self.peak_temperature_c:.2f} C")
        lines.append(
            f"DTM triggers={self.dtm_triggers}  "
            f"throttled core-time={self.dtm_core_time_s * 1e3:.1f} ms"
        )
        lines.append(
            f"migrations={self.migration_count}  "
            f"penalty={self.migration_penalty_s * 1e3:.2f} ms  "
            f"energy={self.energy_j:.1f} J"
        )
        if self.metrics_snapshot:
            lines.append(f"metrics recorded: {len(self.metrics_snapshot)}")
        if self.profile:
            lines.append(f"profiled phases: {', '.join(self.profile)}")
        return "\n".join(lines)

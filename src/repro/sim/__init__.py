"""Interval thermal simulation substrate (HotSniper analogue)."""

from .context import SimContext
from .dtm import DtmController
from .engine import IntervalSimulator
from .events import (
    DtmEngaged,
    DtmReleased,
    Event,
    EventLog,
    TaskArrived,
    TaskCompleted,
    ThreadMigrated,
)
from .metrics import SimulationResult, TaskRecord
from .migration import MigrationAccountant

__all__ = [
    "DtmController",
    "DtmEngaged",
    "DtmReleased",
    "Event",
    "EventLog",
    "IntervalSimulator",
    "MigrationAccountant",
    "SimContext",
    "SimulationResult",
    "TaskArrived",
    "TaskCompleted",
    "TaskRecord",
    "ThreadMigrated",
]

"""Interval thermal simulation substrate (HotSniper analogue)."""

from .batch import BatchedSimulatorSet
from .context import SimContext
from .dtm import DtmController
from .engine import IntervalSimulator
from .events import (
    EVENT_TYPES,
    DtmEngaged,
    DtmReleased,
    Event,
    EventLog,
    TaskArrived,
    TaskCompleted,
    ThreadMigrated,
    event_from_dict,
    event_to_dict,
)
from .metrics import SimulationResult, TaskRecord
from .migration import MigrationAccountant

__all__ = [
    "BatchedSimulatorSet",
    "DtmController",
    "DtmEngaged",
    "DtmReleased",
    "EVENT_TYPES",
    "Event",
    "EventLog",
    "IntervalSimulator",
    "MigrationAccountant",
    "SimContext",
    "SimulationResult",
    "TaskArrived",
    "TaskCompleted",
    "TaskRecord",
    "ThreadMigrated",
    "event_from_dict",
    "event_to_dict",
]

"""Migration accounting during simulation.

The engine diffs consecutive placement decisions; every thread that moved
owes a migration penalty (private-L1 flush + demand refill, see
:class:`repro.arch.cache.MigrationCostModel`).  The penalty is charged as
*execution-time debt*: the thread makes no forward progress until its debt
is paid.  Debt larger than one interval carries over.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..arch.cache import MigrationCostModel


class MigrationAccountant:
    """Tracks per-thread migration debt and aggregate statistics."""

    def __init__(self, cost_model: MigrationCostModel):
        self.cost_model = cost_model
        self._debt_s: Dict[str, float] = {}
        #: total number of migrations charged
        self.migration_count = 0
        #: total execution time lost to migrations [thread-seconds]
        self.total_penalty_s = 0.0

    def charge_moves(
        self, previous: Mapping[str, int], current: Mapping[str, int]
    ) -> List[Tuple[str, int, int]]:
        """Charge every thread that moved between two placements.

        Returns the list of ``(thread, src, dst)`` moves.  Threads appearing
        only in ``current`` (new arrivals) are charged a cold-start refill
        from their initial placement (their caches start empty, which costs
        the same refill).
        """
        moves = []
        for thread, dst in current.items():
            src = previous.get(thread)
            if src is None:
                penalty = self.cost_model.refill_time_s(dst)
                self._debt_s[thread] = self._debt_s.get(thread, 0.0) + penalty
                self.total_penalty_s += penalty
                continue
            if src != dst:
                penalty = self.cost_model.migration_penalty_s(src, dst)
                self._debt_s[thread] = self._debt_s.get(thread, 0.0) + penalty
                self.total_penalty_s += penalty
                self.migration_count += 1
                moves.append((thread, src, dst))
        return moves

    def consume_debt(self, thread: str, available_s: float) -> float:
        """Pay down a thread's debt; returns execution time remaining."""
        if available_s < 0:
            raise ValueError("available time must be non-negative")
        debt = self._debt_s.get(thread, 0.0)
        if debt <= 0.0:
            return available_s
        paid = min(debt, available_s)
        remaining_debt = debt - paid
        if remaining_debt > 0:
            self._debt_s[thread] = remaining_debt
        else:
            self._debt_s.pop(thread, None)
        return available_s - paid

    def outstanding_debt_s(self, thread: str) -> float:
        """Unpaid migration debt of a thread."""
        return self._debt_s.get(thread, 0.0)

    def forget(self, thread: str) -> None:
        """Drop bookkeeping for an exited thread."""
        self._debt_s.pop(thread, None)

"""Lock-step batched driver: many simulators, one fused thermal step.

A sweep runs S independent :class:`~repro.sim.engine.IntervalSimulator`
instances over the same floorplan.  Everything *decision-shaped* about
those runs — scheduler logic, DTM, fault streams, migration accounting —
is scalar control flow that must stay per-cell (the schedulers are
stateful and their branches depend on their own cell's history).  The
*thermal* hot loop, however, is shape-polymorphic: the exact MatEx step
is the same elementwise update for every cell, so S states stack into
one :class:`~repro.thermal.batched_state.BatchedSpectralState` and step
as one fused broadcast per distinct interval length.

:class:`BatchedSimulatorSet` drives the engine's phase API in lock-step:

1. every attached simulator prepares its next interval
   (:meth:`~repro.sim.engine.IntervalSimulator.prepare_interval` —
   arrivals, decision, DTM, execution, power map, all per-cell);
2. the prepared power maps are stacked and the batch advances every cell
   in one :meth:`~repro.thermal.batched_state.BatchedSpectralState.step`
   call (cells are grouped by interval length inside, so a lock-step
   sweep costs one or two fused updates per round);
3. every simulator completes its interval (energy, traces, completions).

Cells leave the batch two ways, both bit-exact:

- **finish** — ``prepare_interval`` returns ``None``; the cell is
  finalized and its coefficient row dropped;
- **divergence** — a cell whose interval length matched no other
  attached cell for ``detach_after`` consecutive rounds is handed its
  coefficients back as a scalar
  :class:`~repro.thermal.spectral_state.SpectralThermalState` and runs
  to completion solo (:meth:`IntervalSimulator.drive_to_completion`) —
  lock-step with a diverged cell would otherwise serialize the batch on
  its odd-sized steps without fusing anything.

Byte-identity with S solo runs holds because the fused step is bit-equal
per row (``repro.thermal.batched_state``), the detach/adopt handoff
copies coefficients without a temperature round-trip, and the only state
shared between cells (eigendecomposition caches, peak-temperature memos)
is pure memoization of deterministic values.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..thermal.batched_state import BatchedSpectralState
from .engine import IntervalPlan, IntervalSimulator
from .metrics import SimulationResult

__all__ = ["BatchedSimulatorSet"]

#: Consecutive rounds a cell's interval length must stay unique before it
#: detaches to a solo run.  One odd-sized step (an arrival-clipped
#: interval) is normal; a sustained mismatch means the cell's scheduler
#: settled on a different rotation epoch than everyone else.
DEFAULT_DETACH_AFTER = 8


class _BatchCellView:
    """Thermal-state stand-in installed into a batched simulator.

    Exposes the read interface the engine's prepare/complete phases use
    (``core_temperatures``/``node_temperatures``), routed through the
    live batch row.  Stepping is the batch driver's job — a stray
    ``step`` call means a simulator is being driven outside the set, so
    it fails loudly instead of silently double-stepping.
    """

    __slots__ = ("_set", "_sim_index")

    def __init__(self, owner: "BatchedSimulatorSet", sim_index: int):
        self._set = owner
        self._sim_index = sim_index

    def _cell(self) -> int:
        return self._set._cell_of[self._sim_index]

    def core_temperatures(self) -> np.ndarray:
        return self._set._batch.core_temperatures(self._cell())

    def node_temperatures(self) -> np.ndarray:
        return self._set._batch.node_temperatures(self._cell())

    def step(self, core_power_w, tau_s) -> None:
        raise RuntimeError(
            "batched cell: thermal stepping happens in the fused batch "
            "(detach the cell before driving its simulator directly)"
        )


class BatchedSimulatorSet:
    """Drive S simulators in lock-step with fused thermal stepping.

    All simulators must share one ``ThermalDynamics`` instance (their
    contexts built with an injected ``dynamics=``); callers batching
    across configurations group by dynamics first — one set per basis.
    """

    def __init__(
        self,
        sims: Sequence[IntervalSimulator],
        detach_after: int = DEFAULT_DETACH_AFTER,
        metrics=None,
    ):
        """``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        receives the ``parallel.batch.*`` gauges after :meth:`run_all`.
        It is deliberately *not* the per-simulator registries: the cells'
        own metrics snapshots must stay byte-identical to solo runs."""
        if not sims:
            raise ValueError("need at least one simulator to batch")
        if detach_after < 1:
            raise ValueError("detach_after must be at least 1")
        dynamics = sims[0].ctx.dynamics
        for sim in sims[1:]:
            if sim.ctx.dynamics is not dynamics:
                raise ValueError(
                    "all batched simulators must share one ThermalDynamics; "
                    "group cells by calibration fingerprint first"
                )
        self.sims: List[IntervalSimulator] = list(sims)
        self.detach_after = detach_after
        self._metrics = metrics
        self._batch: Optional[BatchedSpectralState] = None
        #: simulator index -> current row in the (compacting) batch
        self._cell_of: List[Optional[int]] = [None] * len(self.sims)
        self._solo_streak = [0] * len(self.sims)
        #: counters for the ``parallel.batch.*`` gauges
        self.initial_width = len(self.sims)
        self.max_width = len(self.sims)
        self.rounds = 0
        self.detached_finished = 0
        self.detached_diverged = 0

    # -- bookkeeping ---------------------------------------------------------

    def _drop_cell(self, sim_index: int) -> int:
        """Forget a simulator's row; rows above it compact down by one."""
        row = self._cell_of[sim_index]
        self._cell_of[sim_index] = None
        for other, cell in enumerate(self._cell_of):
            if cell is not None and cell > row:
                self._cell_of[other] = cell - 1
        return row

    def stats(self) -> Dict[str, int]:
        """Counters for the ``parallel.batch.*`` gauges."""
        data = {
            "width_initial": int(self.initial_width),
            "width_max": int(self.max_width),
            "rounds": int(self.rounds),
            "detached_finished": int(self.detached_finished),
            "detached_diverged": int(self.detached_diverged),
        }
        if self._batch is not None:
            batch = self._batch.stats()
            data["fused_updates"] = batch["fused_updates"]
            data["rows_stepped"] = batch["rows_stepped"]
        return data

    # -- the lock-step loop ----------------------------------------------------

    def run_all(
        self,
        max_time_s=10.0,
        on_finish: Optional[Callable[[int, SimulationResult], Any]] = None,
    ) -> List[SimulationResult]:
        """Run every simulator to completion; results in input order.

        ``max_time_s`` is a scalar horizon shared by every cell, or a
        per-simulator sequence (a serve burst may mix horizons; cells
        that hit their shorter horizon simply finish and detach early).

        ``on_finish(index, result)`` fires as each cell finishes — in
        completion order, not input order — so a checkpointing callback
        makes every finished cell durable while the rest keep running
        (the same contract as :func:`repro.parallel.run_cells`'s serial
        path).  When it returns a value, that value replaces the result.
        """
        horizons = np.broadcast_to(
            np.asarray(max_time_s, dtype=float), (len(self.sims),)
        )
        for sim, horizon in zip(self.sims, horizons):
            sim.begin_run(float(horizon))
        self._batch = BatchedSpectralState.from_states(
            [sim.thermal_state for sim in self.sims]
        )
        for index, sim in enumerate(self.sims):
            self._cell_of[index] = index
            sim.adopt_thermal_state(_BatchCellView(self, index))

        results: List[Optional[SimulationResult]] = [None] * len(self.sims)

        def _finish(index: int, result: SimulationResult) -> None:
            if on_finish is not None:
                replaced = on_finish(index, result)
                if replaced is not None:
                    result = replaced
            results[index] = result

        attached = list(range(len(self.sims)))
        while attached:
            self.rounds += 1
            plans: List[tuple] = []
            for index in list(attached):
                plan = self.sims[index].prepare_interval()
                if plan is None:
                    self._batch.detach(self._drop_cell(index))
                    attached.remove(index)
                    self.detached_finished += 1
                    _finish(index, self.sims[index].finalize())
                else:
                    plans.append((index, plan))
            if not plans:
                break

            # one fused step for the whole round: the batch groups the
            # stacked rows by interval length internally
            rows = [self._cell_of[index] for index, _ in plans]
            stacked = np.stack([plan.power_w for _, plan in plans])
            taus = np.array([plan.dt_s for _, plan in plans])
            self._batch.step(stacked, taus, cells=rows)
            for index, plan in plans:
                self.sims[index].complete_interval(plan)

            # divergence detection: a cell alone in its dt-group for
            # detach_after consecutive rounds leaves the batch
            if len(plans) > 1:
                counts: Dict[float, int] = {}
                for _, plan in plans:
                    counts[plan.dt_s] = counts.get(plan.dt_s, 0) + 1
                for index, plan in plans:
                    if counts[plan.dt_s] == 1:
                        self._solo_streak[index] += 1
                    else:
                        self._solo_streak[index] = 0
                for index, _ in plans:
                    if (
                        self._solo_streak[index] >= self.detach_after
                        and len(attached) > 1
                    ):
                        self._detach_solo(index, attached, _finish)

            # a lone survivor fuses nothing: hand it back to itself
            if len(attached) == 1:
                self._detach_solo(attached[0], attached, _finish)

        if self._metrics is not None:
            for key, value in self.stats().items():
                self._metrics.gauge(f"parallel.batch.{key}").set(value)
        return results

    def _detach_solo(self, index: int, attached: List[int], finish) -> None:
        """Hand a cell its scalar state back and run it to completion."""
        state = self._batch.detach(self._drop_cell(index))
        attached.remove(index)
        self.detached_diverged += 1
        sim = self.sims[index]
        sim.adopt_thermal_state(state)
        finish(index, sim.drive_to_completion())

"""The model bundle a scheduler operates on.

A :class:`SimContext` packages every substrate model built for one simulated
platform — floorplan, RC thermal model and its dynamics, mesh/AMD rings,
S-NUCA performance model, power model, DVFS table, TSP budgets, migration
costs — plus run-time observation hooks that the engine wires up (thread
power history, current temperatures).  Schedulers receive it via
``attach()`` and must treat it as read-only.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..arch.amd import AmdRings
from ..arch.cache import MigrationCostModel
from ..arch.topology import Mesh
from ..config import SystemConfig
from ..core.peak_temperature import PeakTemperatureCalculator
from ..power.dvfs import DvfsController
from ..power.model import PowerModel
from ..power.tsp import Tsp
from ..thermal.calibrate import calibrated_model
from ..thermal.matex import ThermalDynamics
from ..thermal.rc_model import RCThermalModel
from ..workload.perf import PerformanceModel


class SimContext:
    """All platform models for one simulation, built from a SystemConfig."""

    def __init__(
        self,
        config: SystemConfig,
        model: Optional[RCThermalModel] = None,
        dynamics: Optional[ThermalDynamics] = None,
        calculator: Optional[PeakTemperatureCalculator] = None,
    ):
        self.config = config
        self.mesh = Mesh(config.mesh_width, config.mesh_height)
        self.rings = AmdRings(self.mesh)
        # the expensive substrates can be injected prebuilt: the serve
        # layer (repro.serve.ServeCache) shares one eigendecomposition and
        # one Algorithm-1 calculator across every tenant with the same
        # floorplan/config fingerprint instead of redoing the O(N^3) work
        # per tenant
        if dynamics is not None:
            self.thermal_model = dynamics.model
            self.dynamics = dynamics
        else:
            self.thermal_model = (
                model if model is not None else calibrated_model(config)
            )
            self.dynamics = ThermalDynamics(self.thermal_model)
        thermal = config.thermal
        self.calculator = (
            calculator
            if calculator is not None
            else PeakTemperatureCalculator(
                self.dynamics,
                thermal.ambient_c,
                # every thermal parameter a cached peak's interpretation
                # depends on: a shared memo keyed without these could
                # serve one tenant another tenant's answer
                config_key=(
                    thermal.ambient_c,
                    thermal.dtm_threshold_c,
                    thermal.dtm_hysteresis_c,
                ),
            )
        )
        self.power_model = PowerModel(config.dvfs, config.thermal)
        self.dvfs = DvfsController(config.dvfs, self.power_model)
        self.perf = PerformanceModel(
            self.mesh, config.cache, config.noc, config.dvfs
        )
        self.migration = MigrationCostModel(self.mesh, config.cache, config.noc)
        self.tsp = Tsp(
            self.thermal_model,
            config.thermal.ambient_c,
            config.thermal.dtm_threshold_c,
            config.thermal.idle_power_w,
        )
        # run-time observation hooks, wired by the engine before use
        self._power_history_fn: Optional[Callable[[str], float]] = None
        self._core_temps_fn: Optional[Callable[[], np.ndarray]] = None
        self._power_recent_fn: Optional[Callable[[str], float]] = None
        #: scheduler-visible sensor bus; ``None`` means perfect sensors
        #: (attached by the engine when fault injection is enabled)
        self.sensors = None

    @property
    def n_cores(self) -> int:
        """Number of cores of the simulated platform."""
        return self.mesh.n_cores

    # -- run-time observations ---------------------------------------------------

    def wire_observations(
        self,
        power_history_fn: Callable[[str], float],
        core_temps_fn: Callable[[], np.ndarray],
        power_recent_fn: Optional[Callable[[str], float]] = None,
    ) -> None:
        """Engine hook: install the run-time observation callbacks."""
        self._power_history_fn = power_history_fn
        self._core_temps_fn = core_temps_fn
        self._power_recent_fn = power_recent_fn

    def thread_power_w(self, thread_id: str) -> float:
        """Average power of a thread over the last 10 ms window."""
        if self._power_history_fn is None:
            raise RuntimeError("observations not wired; is the engine running?")
        return self._power_history_fn(thread_id)

    def thread_recent_power_w(self, thread_id: str) -> float:
        """Most recent per-interval power sample of a thread."""
        if self._power_recent_fn is None:
            raise RuntimeError("observations not wired; is the engine running?")
        return self._power_recent_fn(thread_id)

    def attach_sensors(self, sensors) -> None:
        """Engine hook: install the faulty sensor bus schedulers read.

        ``sensors`` is a :class:`~repro.faults.SensorShim`; once attached,
        :meth:`repro.sched.base.Scheduler.observed_temperatures` routes
        through it instead of the ground-truth temperatures.
        """
        self.sensors = sensors

    def core_temperatures_c(self) -> np.ndarray:
        """Instantaneous ground-truth core temperatures.

        Schedulers must not call this directly — they read
        :meth:`repro.sched.base.Scheduler.observed_temperatures`, which
        honours the sensor shim when fault injection is active (enforced
        by the ``fault-unguarded-reading`` lint rule).
        """
        if self._core_temps_fn is None:
            raise RuntimeError("observations not wired; is the engine running?")
        return self._core_temps_fn()

"""Rotation schedules: who runs where at which epoch.

A :class:`RotationGroup` is one AMD ring with an ordered list of slots, one
per ring core.  A slot holds a thread id or ``None`` (idle core).  Under
synchronous rotation with epoch length ``tau``, the occupant of slot ``j``
executes on ring core ``cores[(j + k) % len(cores)]`` during epoch ``k`` —
after ``len(cores)`` epochs every thread has visited every core of its ring
and is back where it started (the paper's rotation period ``delta``).

A :class:`RotationSchedule` combines the groups of all rings and answers the
two questions the system asks:

- the simulator asks *"which core does thread t occupy at epoch k?"*;
- the peak-temperature method asks *"what is the per-core power vector of
  each epoch of one full period?"* (the global period is the lcm of ring
  sizes, so the pattern is truly periodic).
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

ThreadId = str


class RotationGroup:
    """One ring's slot assignment."""

    def __init__(self, cores: Sequence[int], slots: Sequence[Optional[ThreadId]]):
        if len(cores) < 1:
            raise ValueError("a rotation group needs at least one core")
        if len(slots) != len(cores):
            raise ValueError("need exactly one slot per core")
        if len(set(cores)) != len(cores):
            raise ValueError("duplicate cores in rotation group")
        occupied = [s for s in slots if s is not None]
        if len(set(occupied)) != len(occupied):
            raise ValueError("a thread appears in multiple slots")
        self.cores: Tuple[int, ...] = tuple(cores)
        self.slots: Tuple[Optional[ThreadId], ...] = tuple(slots)

    @property
    def size(self) -> int:
        """Ring size = rotation period of this group (in epochs)."""
        return len(self.cores)

    @property
    def threads(self) -> Tuple[ThreadId, ...]:
        """Occupied slots in slot order."""
        return tuple(s for s in self.slots if s is not None)

    def core_of_slot(self, slot: int, epoch: int) -> int:
        """Core hosting ``slot`` at rotation ``epoch``."""
        return self.cores[(slot + epoch) % self.size]

    def occupancy_at(self, epoch: int) -> Dict[int, ThreadId]:
        """Mapping core -> thread for one epoch (idle cores omitted)."""
        result = {}
        for slot, thread in enumerate(self.slots):
            if thread is not None:
                result[self.core_of_slot(slot, epoch)] = thread
        return result


class RotationSchedule:
    """Complete chip schedule: one group per occupied ring plus ``tau``.

    ``tau_s = None`` encodes rotation switched off (threads pinned to the
    epoch-0 placement) — the terminal state of Algorithm 2 when the workload
    is thermally sustainable without rotation.
    """

    def __init__(self, groups: Sequence[RotationGroup], tau_s: Optional[float]):
        if tau_s is not None and tau_s <= 0:
            raise ValueError("tau must be positive (or None for no rotation)")
        seen_cores: set = set()
        seen_threads: set = set()
        for group in groups:
            if seen_cores.intersection(group.cores):
                raise ValueError("rotation groups overlap in cores")
            seen_cores.update(group.cores)
            threads = set(group.threads)
            if seen_threads.intersection(threads):
                raise ValueError("a thread appears in multiple groups")
            seen_threads.update(threads)
        self.groups: Tuple[RotationGroup, ...] = tuple(groups)
        self.tau_s = tau_s

    @property
    def rotating(self) -> bool:
        """True when synchronous rotation is active."""
        return self.tau_s is not None and any(g.size > 1 for g in self.groups)

    @property
    def period_epochs(self) -> int:
        """Global period: lcm of the occupied ring sizes (1 if static)."""
        if not self.rotating:
            return 1
        sizes = [g.size for g in self.groups if g.threads]
        if not sizes:
            return 1
        return reduce(math.lcm, sizes, 1)

    def threads(self) -> Tuple[ThreadId, ...]:
        """All scheduled threads."""
        return tuple(t for g in self.groups for t in g.threads)

    def placement_at(self, epoch: int) -> Dict[ThreadId, int]:
        """Mapping thread -> core at rotation ``epoch``."""
        if not self.rotating:
            epoch = 0
        result: Dict[ThreadId, int] = {}
        for group in self.groups:
            for core, thread in group.occupancy_at(epoch).items():
                result[thread] = core
        return result

    def power_sequence(
        self,
        n_cores: int,
        thread_power_w: Mapping[ThreadId, float],
        idle_power_w: float,
    ) -> np.ndarray:
        """Per-epoch per-core power over one full period, shape
        ``(period_epochs, n_cores)``.

        ``thread_power_w`` supplies each thread's power draw (the
        scheduler's 10 ms history average, or a profile estimate for new
        threads).  Cores outside any group and empty slots burn idle power.
        """
        period = self.period_epochs
        seq = np.full((period, n_cores), float(idle_power_w))
        epochs = np.arange(period)[:, None]
        for group in self.groups:
            occupied = [
                (slot, float(thread_power_w[thread]))
                for slot, thread in enumerate(group.slots)
                if thread is not None
            ]
            if not occupied:
                continue
            # Slot j sits on core cores[(j + k) % size] at epoch k; gather
            # the whole period at once.  Pure assignment of the same float64
            # values the scalar loop wrote, so the result is byte-identical.
            slot_idx = np.array([slot for slot, _ in occupied])
            values = np.array([value for _, value in occupied])
            cores_arr = np.asarray(group.cores)
            core_ids = cores_arr[(slot_idx[None, :] + epochs) % group.size]
            seq[epochs, core_ids] = values[None, :]
        return seq

    def migrations_between(
        self, epoch_a: int, epoch_b: int
    ) -> List[Tuple[ThreadId, int, int]]:
        """Thread moves from ``epoch_a`` to ``epoch_b`` as ``(thread, src, dst)``."""
        place_a = self.placement_at(epoch_a)
        place_b = self.placement_at(epoch_b)
        moves = []
        for thread, src in place_a.items():
            dst = place_b.get(thread)
            if dst is not None and dst != src:
                moves.append((thread, src, dst))
        return moves

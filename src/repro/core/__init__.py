"""The paper's primary contribution: analytic rotation peak temperature
(Section IV / Algorithm 1) and the HotPotato heuristic (Section V /
Algorithm 2)."""

from .hotpotato import DEFAULT_TAU_LADDER_S, HotPotato, ThreadInfo
from .peak_temperature import (
    PeakTemperatureCalculator,
    brute_force_peak,
    rotation_fixed_point,
    rotation_peak_temperature,
)
from .rotation import RotationGroup, RotationSchedule

__all__ = [
    "DEFAULT_TAU_LADDER_S",
    "HotPotato",
    "PeakTemperatureCalculator",
    "RotationGroup",
    "RotationSchedule",
    "ThreadInfo",
    "brute_force_peak",
    "rotation_fixed_point",
    "rotation_peak_temperature",
]

"""The HotPotato scheduling heuristic (paper Section V, Algorithm 2).

HotPotato maintains, per AMD ring, an ordered slot assignment of threads and
a global rotation interval ``tau``.  Its decisions are driven exclusively by
the analytic peak temperature of candidate schedules
(:class:`~repro.core.peak_temperature.PeakTemperatureCalculator`,
Algorithm 1) — no DVFS is ever used:

- **Arrival** — try rings from the lowest AMD (fastest) outward; within a
  ring evaluate every empty slot and keep the coolest; accept the first ring
  whose peak leaves the headroom ``Delta`` below ``T_DTM``.  If even the
  outermost ring is unsustainable, place there anyway, then (lines 8-14)
  migrate the *lowest-CPI* (hottest, compute-bound) threads outward and
  speed up the rotation until the schedule is sustainable or the knobs are
  exhausted (hardware DTM remains as the backstop).
- **Exit / headroom** — while more than ``Delta`` of headroom remains
  (lines 16-27), migrate the *highest-CPI* (memory-bound, benefits most
  from a low-AMD ring) threads inward as long as that stays sustainable;
  then slow the rotation stepwise — and stop rotating entirely — as long as
  the peak stays below ``T_DTM``.

The class is simulator-agnostic: callers feed it per-thread power estimates
(the 10 ms history average) and effective CPIs, and read back a
:class:`~repro.core.rotation.RotationSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import units
from ..arch.amd import AmdRings
from .peak_temperature import PeakTemperatureCalculator
from .rotation import RotationGroup, RotationSchedule, ThreadId

#: Rotation-interval ladder [s], slowest first.  ``None`` (appended
#: implicitly at the slow end) means rotation off.  The paper starts at
#: 0.5 ms and adjusts from there.
DEFAULT_TAU_LADDER_S: Tuple[float, ...] = (
    units.ms(4.0),
    units.ms(2.0),
    units.ms(1.0),
    units.ms(0.5),
    units.ms(0.25),
    units.ms(0.125),
)


@dataclass(frozen=True)
class ThreadInfo:
    """What HotPotato knows about one thread."""

    thread_id: ThreadId
    #: current power estimate [W] (10 ms history average, or a profile
    #: estimate on arrival)
    power_w: float
    #: effective cycles per instruction (high = memory-bound = cold)
    cpi: float

    def with_power(self, power_w: float) -> "ThreadInfo":
        """Copy with an updated power estimate."""
        return replace(self, power_w=power_w)


class HotPotato:
    """Algorithm 2: greedy thermally-safe ring assignment with rotation."""

    def __init__(
        self,
        rings: AmdRings,
        calculator: PeakTemperatureCalculator,
        t_dtm_c: float,
        headroom_delta_c: float = 1.0,
        idle_power_w: float = 0.3,
        initial_tau_s: float = units.ms(0.5),
        tau_ladder_s: Sequence[float] = DEFAULT_TAU_LADDER_S,
        max_mitigation_steps: int = 128,
    ):
        self.rings = rings
        self.calculator = calculator
        self.t_dtm_c = t_dtm_c
        self.headroom_delta_c = headroom_delta_c
        self.idle_power_w = idle_power_w
        ladder = sorted(set(tau_ladder_s), reverse=True)
        if initial_tau_s not in ladder:
            ladder.append(initial_tau_s)
            ladder.sort(reverse=True)
        #: index 0 = no rotation; larger index = faster rotation
        self._tau_ladder: List[Optional[float]] = [None] + ladder
        self._tau_index = self._tau_ladder.index(initial_tau_s)
        #: energy-relaxation bias: :meth:`_select_tau` backs off this many
        #: ladder rungs toward slower rotation (fewer migrations, less
        #: energy) from the rung it would otherwise pick.  QoS-aware
        #: callers raise it when sustained thermal headroom is observed;
        #: 0 reproduces the paper's selection exactly.
        self.tau_bias = 0
        self.max_mitigation_steps = max_mitigation_steps
        self._slots: List[List[Optional[ThreadId]]] = [
            [None] * rings.capacity(i) for i in range(rings.n_rings)
        ]
        self._threads: Dict[ThreadId, ThreadInfo] = {}
        self._location: Dict[ThreadId, Tuple[int, int]] = {}  # ring, slot

    # -- state queries ----------------------------------------------------------

    @property
    def tau_s(self) -> Optional[float]:
        """Current rotation interval (``None`` = rotation off)."""
        return self._tau_ladder[self._tau_index]

    @property
    def n_threads(self) -> int:
        """Number of threads currently scheduled."""
        return len(self._threads)

    def free_slots(self, ring: int) -> List[int]:
        """Indices of the empty slots in ``ring``."""
        return [i for i, t in enumerate(self._slots[ring]) if t is None]

    def ring_of(self, thread_id: ThreadId) -> int:
        """Ring a thread is currently assigned to."""
        return self._location[thread_id][0]

    def schedule(self) -> RotationSchedule:
        """The current chip-wide rotation schedule."""
        return self._schedule_for(self._slots, self.tau_s)

    def state_fingerprint(self) -> tuple:
        """Hashable snapshot of (tau, slot assignment) for change detection."""
        return (self._tau_index, tuple(tuple(ring) for ring in self._slots))

    def peak_temperature(self) -> float:
        """Analytic peak temperature of the current schedule."""
        return self._peak_for(self._slots, self.tau_s)

    # -- internal evaluation ---------------------------------------------------

    def _schedule_for(
        self, slots: Sequence[Sequence[Optional[ThreadId]]], tau_s: Optional[float]
    ) -> RotationSchedule:
        groups = [
            RotationGroup(self.rings.ring(i), slots[i])
            for i in range(self.rings.n_rings)
        ]
        return RotationSchedule(groups, tau_s)

    def _power_seq_for(
        self, slots: Sequence[Sequence[Optional[ThreadId]]], tau_s: Optional[float]
    ) -> Tuple[np.ndarray, Optional[float]]:
        """Candidate in :meth:`PeakTemperatureCalculator.peak_batch` form:
        the periodic power sequence and the *effective* rotation interval
        (``None`` when the schedule does not actually rotate)."""
        schedule = self._schedule_for(slots, tau_s)
        powers = {t: info.power_w for t, info in self._threads.items()}
        n_cores = self.rings.mesh.n_cores
        seq = schedule.power_sequence(n_cores, powers, self.idle_power_w)
        return seq, (schedule.tau_s if schedule.rotating else None)

    def _peak_for(
        self, slots: Sequence[Sequence[Optional[ThreadId]]], tau_s: Optional[float]
    ) -> float:
        seq, effective_tau = self._power_seq_for(slots, tau_s)
        return float(self.calculator.peak_batch([seq], [effective_tau])[0])

    def _sustainable(self, peak_c: float) -> bool:
        return peak_c + self.headroom_delta_c < self.t_dtm_c

    def _copy_slots(self) -> List[List[Optional[ThreadId]]]:
        return [list(ring) for ring in self._slots]

    # -- Algorithm 2: arrival -----------------------------------------------------

    def admit(self, info: ThreadInfo) -> int:
        """Place a new thread; returns the ring index it landed in.

        Implements Algorithm 2 lines 1-14.  Raises ``ValueError`` when the
        chip has no free core at all.
        """
        if info.thread_id in self._threads:
            raise ValueError(f"thread {info.thread_id} already scheduled")
        self._threads[info.thread_id] = info

        best_unsustainable: Optional[Tuple[float, int, int]] = None
        for ring in range(self.rings.n_rings):
            placement = self._best_slot_in_ring(ring, info.thread_id)
            if placement is None:
                continue
            peak_c, slot = placement
            if self._sustainable(peak_c):
                self._place(info.thread_id, ring, slot)
                return ring
            candidate = (peak_c, ring, slot)
            if best_unsustainable is None or peak_c < best_unsustainable[0]:
                best_unsustainable = candidate

        if best_unsustainable is None:
            del self._threads[info.thread_id]
            raise ValueError("no free core for the arriving thread")

        # Even the outermost ring is unsustainable: place at the coolest
        # found slot, then mitigate (lines 8-14).
        _, ring, slot = best_unsustainable
        self._place(info.thread_id, ring, slot)
        self._mitigate()
        return self.ring_of(info.thread_id)

    def _best_slot_in_ring(
        self, ring: int, thread_id: ThreadId
    ) -> Optional[Tuple[float, int]]:
        """Coolest empty slot of ``ring`` (evaluates all, Algorithm 2 line 4)."""
        free = self.free_slots(ring)
        if not free:
            return None
        # evaluate the whole slot scan as one batched candidate set: every
        # trial shares the same tau, so all of them ride one stacked einsum.
        # The candidates differ only in which free slot hosts the new
        # thread, so only the first needs a full schedule construction:
        # every other sequence is the first one with the thread's power
        # moved to the other slot's rotation track (pure assignment of the
        # same floats the full construction writes — byte-identical).
        trial = self._copy_slots()
        trial[ring][free[0]] = thread_id
        first, effective_tau = self._power_seq_for(trial, self.tau_s)
        trial[ring][free[0]] = None
        seqs: List[np.ndarray] = [first]
        taus: List[Optional[float]] = [effective_tau]
        if len(free) > 1:
            cores_arr = np.asarray(self.rings.ring(ring))
            size = cores_arr.shape[0]
            period = first.shape[0]
            epochs = np.arange(period)
            # slots only move when the candidate schedule actually rotates
            shift = epochs if effective_tau is not None else np.zeros(
                period, dtype=int
            )
            idle = float(self.idle_power_w)
            thread_power = float(self._threads[thread_id].power_w)
            first_track = cores_arr[(free[0] + shift) % size]
            for slot in free[1:]:
                seq = first.copy()
                seq[epochs, first_track] = idle
                seq[epochs, cores_arr[(slot + shift) % size]] = thread_power
                seqs.append(seq)
                taus.append(effective_tau)
        peaks = self.calculator.peak_batch(seqs, taus)
        best = int(np.argmin(peaks))  # first minimum = lowest slot index
        return (float(peaks[best]), free[best])

    def _place(self, thread_id: ThreadId, ring: int, slot: int) -> None:
        if self._slots[ring][slot] is not None:
            raise ValueError("slot already occupied")
        self._slots[ring][slot] = thread_id
        self._location[thread_id] = (ring, slot)

    def _unplace(self, thread_id: ThreadId) -> None:
        ring, slot = self._location.pop(thread_id)
        self._slots[ring][slot] = None

    def _mitigate(self) -> None:
        """Lines 8-14: outward migrations, then rotation-interval update."""
        steps = 0
        while (
            not self._sustainable(self.peak_temperature())
            and steps < self.max_mitigation_steps
        ):
            if not self._migrate_coolest_knob_outward():
                break
            steps += 1
        if not self._sustainable(self.peak_temperature()):
            self._select_tau()

    def _select_tau(self) -> None:
        """Pick the rotation interval for the current assignment.

        Rotation costs migration overhead, so among thermally equivalent
        options the *slowest* interval wins:

        - if the assignment is sustainable without rotation, rotation stops
          (Algorithm 2 lines 23-27: "rotations stop to maximize
          performance");
        - otherwise the slowest interval that achieves sustainability;
        - if no interval is sustainable (overload — DTM will backstop), the
          slowest interval within 0.5 degC of the best achievable peak, so
          hopeless extra rotation speed is never paid for.
        """
        # the assignment is fixed across the ladder, so every candidate's
        # power sequence depends only on whether it rotates (the period
        # never depends on the tau value): build at most two sequences and
        # evaluate the whole ladder as one batch
        cached: Dict[bool, Tuple[np.ndarray, Optional[float]]] = {}
        seqs: List[np.ndarray] = []
        taus: List[Optional[float]] = []
        for tau in self._tau_ladder:
            rotates = self._schedule_for(self._slots, tau).rotating
            if rotates not in cached:
                cached[rotates] = self._power_seq_for(self._slots, tau)
            seq, _ = cached[rotates]
            seqs.append(seq)
            taus.append(tau if rotates else None)
        peaks = self.calculator.peak_batch(seqs, taus)
        target = max(
            self.t_dtm_c - self.headroom_delta_c, float(np.min(peaks)) + 0.5
        )
        for index, peak_c in enumerate(peaks):
            if peak_c <= target:
                # the energy-relaxation bias backs off toward slower
                # rungs; it never pushes *past* the slowest choice (index
                # 0 = rotation off), and with bias 0 this is exactly the
                # paper's slowest-sustainable selection
                self._tau_index = max(0, index - max(0, int(self.tau_bias)))
                return

    def _migrate_coolest_knob_outward(self) -> bool:
        """Move the lowest-CPI (hottest) migratable thread one ring outward.

        A move is only taken when it strictly lowers the analytic peak —
        blindly pushing threads outward can otherwise pile them into an
        even denser (hotter) cluster.
        """
        current_peak = self.peak_temperature()
        by_cpi = sorted(self._threads.values(), key=lambda i: i.cpi)
        for info in by_cpi:
            ring, slot = self._location[info.thread_id]
            for target in range(ring + 1, self.rings.n_rings):
                free = self.free_slots(target)
                if not free:
                    continue
                self._unplace(info.thread_id)
                placement = self._best_slot_in_ring(target, info.thread_id)
                assert placement is not None
                peak_c, best_slot = placement
                if peak_c < current_peak - 1e-9:
                    self._place(info.thread_id, target, best_slot)
                    return True
                self._place(info.thread_id, ring, slot)  # revert
        return False

    # -- Algorithm 2: exit / headroom ------------------------------------------------

    def remove(self, thread_id: ThreadId) -> None:
        """Remove a finished thread and re-optimize (lines 15-27)."""
        if thread_id not in self._threads:
            raise KeyError(f"unknown thread {thread_id}")
        self._unplace(thread_id)
        del self._threads[thread_id]
        self.rebalance()

    def rebalance(self) -> None:
        """Consume surplus headroom: inward migrations, then slower rotation.

        Called after exits and whenever the caller observes a drastic power
        change (the paper's ``Delta`` trigger).
        """
        steps = 0
        while (
            self.t_dtm_c - self.peak_temperature() > self.headroom_delta_c
            and steps < self.max_mitigation_steps
        ):
            if not self._migrate_memory_bound_inward():
                break
            steps += 1
        # re-select the rotation interval: slow down (and eventually stop)
        # when the new headroom allows it
        self._select_tau()

    def _migrate_memory_bound_inward(self) -> bool:
        """Move the highest-CPI thread to the lowest sustainable ring."""
        by_cpi = sorted(self._threads.values(), key=lambda i: -i.cpi)
        for info in by_cpi:
            ring, slot = self._location[info.thread_id]
            for target in range(ring):  # lowest AMD first
                free = self.free_slots(target)
                if not free:
                    continue
                self._unplace(info.thread_id)
                placement = self._best_slot_in_ring(target, info.thread_id)
                assert placement is not None
                peak_c, best_slot = placement
                if peak_c < self.t_dtm_c:
                    self._place(info.thread_id, target, best_slot)
                    return True
                self._place(info.thread_id, ring, slot)  # revert
        return False

    # -- run-time refresh ----------------------------------------------------------

    def update_power(self, thread_id: ThreadId, power_w: float) -> None:
        """Refresh a thread's power estimate (10 ms history average)."""
        self._threads[thread_id] = self._threads[thread_id].with_power(power_w)

    def refresh(self) -> None:
        """React to drifted power estimates (paper's sudden-change handling).

        If the schedule became unsustainable, mitigate; if surplus headroom
        appeared, rebalance.
        """
        peak_c = self.peak_temperature()
        if not self._sustainable(peak_c):
            self._mitigate()
        elif self.t_dtm_c - peak_c > self.headroom_delta_c:
            self.rebalance()

"""Analytic peak temperature of a synchronous thread rotation (Section IV).

A rotation applies a **periodic** piecewise-constant power pattern: during
epoch ``k`` (length ``tau``) the chip sees the per-core power vector
``P_k``, and the pattern repeats with period ``delta`` epochs.  In
ambient-shifted coordinates one epoch evolves the node temperatures as

    x_{k+1} = E x_k + W P_k,      E = exp(C tau),  W = (I - E) B^{-1}

(paper Eq. 5, ``W`` is the *rotational factor* ``w``).  Because every
eigenvalue of ``C`` is negative, the epoch-boundary temperatures converge to
the unique periodic fixed point

    x_e* = sum_j E^{(e-j) mod delta} (I - E^delta)^{-1} W P_j

which is exactly the paper's Eq. (10) once ``(I - E^delta)^{-1}`` is
expanded in the eigenbasis via the geometric series of Eqs. (8)-(9).  The
peak temperature (Eq. 11) is the maximum core entry over the ``delta``
boundary vectors, plus the ambient offset.

Three implementations are provided and cross-validated in the test suite:

- :func:`rotation_fixed_point` — dense closed form (Horner accumulation +
  one linear solve);
- :class:`PeakTemperatureCalculator` — the paper's Algorithm 1: a
  design-time phase precomputing eigen-space auxiliaries, and an ``O(delta^2
  N + delta N^2)`` run-time phase, suitable for per-scheduling-decision use;
- :func:`brute_force_peak` — transient simulation over many periods
  (ground truth; used for validation only).

Boundary temperatures can slightly undershoot the continuous-time peak
within an epoch; ``within_epoch_samples`` bounds that error by sampling the
exact transient inside each epoch of the converged cycle.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .._lru import LruCache
from ..thermal.matex import ThermalDynamics

#: Bounds of the Algorithm-1 design-time caches.  The alpha tensors are
#: ``O(delta^2 N)`` each, the beta matrices ``O(N n)``; the peak memo holds
#: plain floats keyed by a power-sequence fingerprint.
_ALPHA_CACHE_SIZE = 64
_BETA_CACHE_SIZE = 64
_PEAK_CACHE_SIZE = 4096


def _validate_sequence(
    dynamics: ThermalDynamics, core_power_seq: np.ndarray
) -> np.ndarray:
    seq = np.asarray(core_power_seq, dtype=float)
    if seq.ndim != 2 or seq.shape[1] != dynamics.model.n_cores:
        raise ValueError(
            f"power sequence must have shape (delta, {dynamics.model.n_cores})"
        )
    if seq.shape[0] < 1:
        raise ValueError("power sequence needs at least one epoch")
    if np.any(seq < 0):
        raise ValueError("power must be non-negative")
    return seq


def rotation_fixed_point(
    dynamics: ThermalDynamics,
    core_power_seq: np.ndarray,
    tau_s: float,
    ambient_c: float,
) -> np.ndarray:
    """Epoch-boundary node temperatures of the converged periodic cycle.

    Returns shape ``(delta, N)`` in absolute degrees Celsius; row ``e`` is
    the temperature right after the epoch that applied ``P_e`` (i.e. the
    boundary between epochs ``e`` and ``e+1``).
    """
    seq = _validate_sequence(dynamics, core_power_seq)
    if tau_s <= 0:
        raise ValueError("epoch length tau must be positive")
    delta = seq.shape[0]
    n_nodes = dynamics.model.n_nodes
    e_mat, w_mat = dynamics.propagator(tau_s)

    # Horner accumulation of S = sum_{j=1..delta} E^{delta-j} W P_j
    acc = np.zeros(n_nodes)
    for j in range(delta):
        acc = e_mat @ acc + w_mat @ dynamics.model.expand_power(seq[j])

    # fixed point right after the last epoch of a period
    e_period = dynamics.exp_c(delta * tau_s)
    x_last = np.linalg.solve(np.eye(n_nodes) - e_period, acc)

    # propagate through one period to recover every boundary
    boundaries = np.empty((delta, n_nodes))
    x = x_last
    for e in range(delta):
        x = e_mat @ x + w_mat @ dynamics.model.expand_power(seq[e])
        boundaries[e] = x
    return boundaries + ambient_c


def rotation_peak_temperature(
    dynamics: ThermalDynamics,
    core_power_seq: np.ndarray,
    tau_s: float,
    ambient_c: float,
    within_epoch_samples: int = 4,
) -> float:
    """Peak core temperature of the converged rotation cycle (Eq. 11).

    With ``within_epoch_samples > 0`` the exact transient inside each epoch
    is sampled as well, bounding the boundary-only undershoot.
    """
    seq = _validate_sequence(dynamics, core_power_seq)
    boundaries = rotation_fixed_point(dynamics, seq, tau_s, ambient_c)
    model = dynamics.model
    peak = float(np.max(model.core_temperatures(boundaries)))
    if within_epoch_samples > 0:
        # One batched eigenbasis evaluation over all (epoch, sample, core)
        # triples: a single multi-RHS solve yields every epoch's steady
        # state, then T[e, s] = T_ss,e + V diag(e^{lambda t_s}) V^{-1}
        # (start_e - T_ss,e) for the whole grid at once.  The epoch-start
        # temperatures themselves are boundary rows, already in ``peak``.
        delta = seq.shape[0]
        n = model.n_cores
        p_nodes = np.stack([model.expand_power(seq[e]) for e in range(delta)])
        rises = np.linalg.solve(model.b_matrix, p_nodes.T).T  # (d, N)
        t_steady = rises + ambient_c
        starts = boundaries[np.arange(delta) - 1]  # row -1 = state before epoch 0
        coeffs = (starts - t_steady) @ dynamics.eigenvectors_inv.T  # (d, N)
        times = np.linspace(
            tau_s / within_epoch_samples, tau_s, within_epoch_samples
        )
        decay = np.exp(np.outer(times, dynamics.eigenvalues))  # (S, N)
        v_core = dynamics.eigenvectors[:n]  # (n, N)
        temps = np.einsum("sk,ek,ck->esc", decay, coeffs, v_core, optimize=True)
        temps += t_steady[:, None, :n]
        peak = max(peak, float(np.max(temps)))
    return peak


class PeakTemperatureCalculator:
    """Algorithm 1: efficient peak temperature with a design-time phase.

    The design-time phase (construction) fixes the floorplan-derived
    eigendecomposition and precomputes ``V^{-1} W`` once.  Each call to
    :meth:`peak` then evaluates, per epoch pair ``(e, j)``, the diagonal
    factor ``exp(lambda tau ((e-j) mod delta)) / (1 - exp(lambda delta
    tau))`` — the paper's alpha/beta split — at run-time cost
    ``O(delta^2 N + delta N^2)``.

    Unlike :func:`rotation_fixed_point` this never forms or solves an
    ``N x N`` system at run time, which is what makes it viable inside a
    scheduler invoked every epoch.

    ``config_key`` is a hashable fingerprint of every configuration input
    the cached peak values (or their downstream interpretation) depend on
    beyond the power sequence itself — the DTM threshold/hysteresis and
    ambient of the owning :class:`~repro.config.SystemConfig`.  It is
    baked into every memo key so that a ``peak_cache`` *shared between
    calculators* (the cross-tenant :class:`repro.serve.ServeCache` does
    this) can never return a stale hit to a tenant whose thermal
    configuration differs only in ``T_DTM`` or hysteresis.  When omitted
    it defaults to the ambient temperature, which a single private cache
    always agrees on.

    ``peak_cache`` optionally injects that shared memo store; by default
    each calculator owns a private bounded LRU.
    """

    def __init__(
        self,
        dynamics: ThermalDynamics,
        ambient_c: float,
        config_key: Optional[Hashable] = None,
        peak_cache: Optional[LruCache] = None,
    ):
        self.dynamics = dynamics
        self.ambient_c = ambient_c
        #: memo-key component identifying the thermal configuration this
        #: calculator answers for (see the class docstring)
        self.config_key: Hashable = (
            config_key if config_key is not None else (float(ambient_c),)
        )
        self._v = dynamics.eigenvectors
        self._v_core = self._v[: dynamics.model.n_cores]
        self._lambda = dynamics.eigenvalues
        # beta: V^{-1} W restricted to core (power-carrying) columns
        n = dynamics.model.n_cores
        b_inv_cores = dynamics.b_inverse[:, :n]
        self._beta_base = dynamics.eigenvectors_inv @ b_inv_cores  # (N, n)
        # bounded LRU caches; counters surface through :meth:`cache_stats`
        self._tau_cache = LruCache(_BETA_CACHE_SIZE)
        self._alpha_cache = LruCache(_ALPHA_CACHE_SIZE)
        self._peak_cache = (
            peak_cache if peak_cache is not None else LruCache(_PEAK_CACHE_SIZE)
        )
        self._batch_calls = 0
        self._batch_candidates = 0

    def _beta(self, tau_s: float) -> np.ndarray:
        """``V^{-1} (I - E) B^{-1}`` on core columns (cached per tau)."""
        cached = self._tau_cache.get(tau_s)
        if cached is None:
            decay = 1.0 - np.exp(self._lambda * tau_s)  # (N,)
            cached = decay[:, None] * self._beta_base
            self._tau_cache[tau_s] = cached
        return cached

    def _alpha(self, tau_s: float, delta: int) -> np.ndarray:
        """Design-time decay tensor: ``alpha[e, j, k] = exp(lambda_k tau
        ((e - j) mod delta)) / (1 - exp(lambda_k delta tau))`` — the paper's
        auxiliary alpha matrices, cached per (tau, delta)."""
        key = (tau_s, delta)
        cached = self._alpha_cache.get(key)
        if cached is None:
            lam_tau = self._lambda * tau_s
            geometric = 1.0 / (1.0 - np.exp(delta * lam_tau))  # (N,)
            epoch_idx = np.arange(delta)
            offsets = (epoch_idx[:, None] - epoch_idx[None, :]) % delta
            cached = np.exp(np.multiply.outer(offsets, lam_tau))  # (d, d, N)
            cached *= geometric[None, None, :]
            self._alpha_cache[key] = cached
        return cached

    def boundary_temperatures(
        self, core_power_seq: np.ndarray, tau_s: float
    ) -> np.ndarray:
        """Core temperatures at every epoch boundary of the cycle, shape
        ``(delta, n_cores)``, absolute degrees Celsius."""
        seq = _validate_sequence(self.dynamics, core_power_seq)
        if tau_s <= 0:
            raise ValueError("epoch length tau must be positive")
        delta = seq.shape[0]
        coeffs = self._beta(tau_s) @ seq.T  # (N, delta): c_j in eigenspace
        alpha = self._alpha(tau_s, delta)
        weighted = np.einsum("ejn,nj->en", alpha, coeffs)
        temps = weighted @ self._v_core.T  # (delta, n_cores)
        return temps + self.ambient_c

    def peak(
        self,
        core_power_seq: np.ndarray,
        tau_s: float,
        within_epoch_samples: int = 0,
    ) -> float:
        """Peak core temperature of the rotation (Eq. 11).

        The default skips within-epoch sampling: for scheduler use the
        boundary maximum plus the configured headroom ``Delta`` absorbs the
        small undershoot, exactly as the paper's run-time phase does.
        """
        if within_epoch_samples <= 0:
            # boundary-only queries route through the batched/memoized path
            # so scalar and batch evaluation are one and the same code
            return float(self.peak_batch([core_power_seq], [tau_s])[0])
        return rotation_peak_temperature(
            self.dynamics,
            core_power_seq,
            tau_s,
            self.ambient_c,
            within_epoch_samples,
        )

    # -- batched candidate evaluation (run-time phase, vectorized) -----------

    def _fingerprint(
        self, seq: np.ndarray, tau_s: Optional[float]
    ) -> Tuple[Hashable, Optional[float], Tuple[int, ...], bytes]:
        """Memo key for a (power sequence, rotation interval) candidate.

        The sequence content is digested (BLAKE2b) rather than stored: ring
        power sequences can reach hundreds of kilobytes at large rotation
        periods, and the memo only needs equality.  ``config_key`` leads
        the tuple so two calculators sharing one memo store (different
        tenants of :class:`repro.serve.ServeCache`) never collide when
        their DTM threshold/hysteresis/ambient configuration differs.
        """
        digest = hashlib.blake2b(
            np.ascontiguousarray(seq).tobytes(), digest_size=16
        ).digest()
        return (
            self.config_key,
            None if tau_s is None else float(tau_s),
            seq.shape,
            digest,
        )

    def peak_batch(
        self,
        core_power_seqs: Sequence[np.ndarray],
        taus_s: Sequence[Optional[float]],
    ) -> np.ndarray:
        """Peak temperature of every ``(power sequence, tau)`` candidate.

        The scheduler's greedy scans (slot choice, interval ladder) generate
        many candidates that share the floorplan's alpha/beta tensors;
        evaluating them through one stacked einsum per ``(tau, delta)`` group
        amortizes those tensors across the whole scan instead of re-walking
        them per candidate.  ``tau = None`` denotes a non-rotating candidate
        and evaluates the steady-state peak of the sequence's first epoch.

        Results are memoized on a content fingerprint of ``(seq, tau)`` —
        across scheduler invocations most candidates repeat (the greedy scan
        re-evaluates the incumbent assignment every epoch), so the memo turns
        the common case into a dictionary lookup.

        Returns an array of peaks, same order as the inputs.
        """
        if len(core_power_seqs) != len(taus_s):
            raise ValueError("need one tau per power sequence")
        self._batch_calls += 1
        self._batch_candidates += len(core_power_seqs)
        seqs: List[np.ndarray] = []
        peaks = np.empty(len(core_power_seqs))
        keys: List[Tuple] = []
        # (tau, delta) -> candidate indices needing a fresh evaluation
        pending: Dict[Tuple[float, int], List[int]] = {}
        for i, (raw, tau_s) in enumerate(zip(core_power_seqs, taus_s)):
            seq = _validate_sequence(self.dynamics, raw)
            if tau_s is not None and tau_s <= 0:
                raise ValueError("epoch length tau must be positive")
            seqs.append(seq)
            key = self._fingerprint(seq, tau_s)
            keys.append(key)
            cached = self._peak_cache.get(key)
            if cached is not None:
                peaks[i] = cached
            elif tau_s is None:
                value = self.steady_peak(seq[0])
                self._peak_cache[key] = value
                peaks[i] = value
            else:
                pending.setdefault((float(tau_s), seq.shape[0]), []).append(i)
        for (tau_s, delta), indices in pending.items():
            batch = np.stack([seqs[i] for i in indices])  # (B, delta, n)
            values = self._stacked_peaks(batch, tau_s)
            for i, value in zip(indices, values):
                peaks[i] = value
                self._peak_cache[keys[i]] = float(value)
        return peaks

    def _stacked_peaks(self, batch: np.ndarray, tau_s: float) -> np.ndarray:
        """Boundary peaks of a ``(B, delta, n)`` stack sharing one tau."""
        delta = batch.shape[1]
        beta = self._beta(tau_s)  # (N, n)
        alpha = self._alpha(tau_s, delta)  # (d, d, N)
        # broadcast matmuls dispatch to BLAS; einsum would run naive loops
        coeffs = beta @ batch.transpose(0, 2, 1)  # (B, N, d)
        # weighted[b, e, n] = sum_j alpha[e, j, n] * coeffs[b, n, j]
        weighted = alpha.transpose(2, 0, 1) @ coeffs.transpose(1, 2, 0)  # (N, d, B)
        temps = weighted.transpose(2, 1, 0) @ self._v_core.T  # (B, d, n_cores)
        return temps.max(axis=(1, 2)) + self.ambient_c

    def cache_stats(self) -> Dict[str, int]:
        """Counters of the Algorithm-1 caches and batch evaluator.

        Keys: ``{alpha_cache, beta_cache, peak_cache}.{hits, misses,
        evictions, size}`` plus ``batch.calls`` / ``batch.candidates``.
        High ``peak_cache`` hit rates mean the greedy scans mostly re-visit
        known candidates; ``batch.candidates / batch.calls`` is the mean
        stacking width the einsum path gets to amortize over.
        """
        stats: Dict[str, int] = {}
        stats.update(self._alpha_cache.stats("alpha_cache"))
        stats.update(self._tau_cache.stats("beta_cache"))
        stats.update(self._peak_cache.stats("peak_cache"))
        stats["batch.calls"] = self._batch_calls
        stats["batch.candidates"] = self._batch_candidates
        return stats

    def steady_peak(self, core_power_w: np.ndarray) -> float:
        """Peak steady-state core temperature without rotation.

        Equivalent to a one-epoch rotation with ``tau -> infinity``; used by
        the scheduler when rotation is switched off.
        """
        temps = self.dynamics.model.steady_state(core_power_w, self.ambient_c)
        return float(np.max(self.dynamics.model.core_temperatures(temps)))


def brute_force_peak(
    dynamics: ThermalDynamics,
    core_power_seq: np.ndarray,
    tau_s: float,
    ambient_c: float,
    n_periods: int = 200,
    initial_temps_c: Optional[np.ndarray] = None,
    samples_per_epoch: int = 4,
) -> Tuple[float, np.ndarray]:
    """Ground-truth peak by transient simulation over ``n_periods`` periods.

    Returns ``(peak_of_final_period, boundary_temps_of_final_period)``.
    Exact piecewise-constant stepping, so the only approximation relative to
    the closed form is the finite period count.
    """
    seq = _validate_sequence(dynamics, core_power_seq)
    delta = seq.shape[0]
    model = dynamics.model
    temps = (
        model.ambient_vector(ambient_c)
        if initial_temps_c is None
        else np.asarray(initial_temps_c, dtype=float).copy()
    )
    for _ in range(n_periods - 1):
        for e in range(delta):
            temps = dynamics.step(temps, seq[e], ambient_c, tau_s)
    peak = -np.inf
    boundaries = np.empty((delta, model.n_nodes))
    for e in range(delta):
        if samples_per_epoch > 0:
            peak = max(
                peak,
                dynamics.peak_during_step(
                    temps, seq[e], ambient_c, tau_s, samples_per_epoch
                ),
            )
        temps = dynamics.step(temps, seq[e], ambient_c, tau_s)
        peak = max(peak, float(np.max(model.core_temperatures(temps))))
        boundaries[e] = temps
    return peak, boundaries

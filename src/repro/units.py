"""Physical unit helpers and constants.

All internal computation uses SI base units:

- time in seconds,
- temperature in Kelvin (conversion helpers to/from Celsius below),
- power in Watts,
- energy in Joules,
- length in meters,
- frequency in Hertz.

The paper quotes temperatures in degrees Celsius (ambient 45 degC, DTM
threshold 70 degC).  Because the RC thermal model is linear, temperature
*differences* are identical in both scales; only absolute values need the
273.15 offset.  We keep everything in Celsius-compatible "degrees above an
absolute reference" by working directly in Celsius: the model equations only
ever involve differences from ambient, so this is exact.
"""

from __future__ import annotations

# -- temperature ------------------------------------------------------------

KELVIN_OFFSET = 273.15


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return temp_c + KELVIN_OFFSET


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return temp_k - KELVIN_OFFSET


# -- time -------------------------------------------------------------------

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9


def ms(value: float) -> float:
    """Milliseconds expressed in seconds."""
    return value * MILLISECONDS


def us(value: float) -> float:
    """Microseconds expressed in seconds."""
    return value * MICROSECONDS


def ns(value: float) -> float:
    """Nanoseconds expressed in seconds."""
    return value * NANOSECONDS


# -- frequency --------------------------------------------------------------

GHZ = 1e9
MHZ = 1e6


def ghz(value: float) -> float:
    """Gigahertz expressed in Hertz."""
    return value * GHZ


def mhz(value: float) -> float:
    """Megahertz expressed in Hertz."""
    return value * MHZ


# -- length / area ----------------------------------------------------------

MILLIMETERS = 1e-3
MICROMETERS = 1e-6
MM2 = 1e-6  # square millimetres in square metres


def mm(value: float) -> float:
    """Millimetres expressed in metres."""
    return value * MILLIMETERS


def um(value: float) -> float:
    """Micrometres expressed in metres."""
    return value * MICROMETERS


def mm2(value: float) -> float:
    """Square millimetres expressed in square metres."""
    return value * MM2

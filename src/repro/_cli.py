"""Shared conventions for the ``repro.*`` command-line tools.

Every CLI in this package (``python -m repro.obs``, ``python -m repro.lint``)
follows one contract:

- exit ``EXIT_OK`` (0) when the requested check is clean,
- exit ``EXIT_FINDINGS`` (1) when a gate fires (violations, drift, lint
  findings) — the CI-failure signal,
- exit ``EXIT_ERROR`` (2) on usage or I/O errors, reported as a single
  ``error: ...`` line on stderr.

The module also hosts the plain-text table renderer shared by all
human-readable reports and the machine-output JSON printer, so the CLIs do
not duplicate rendering.  It is deliberately stdlib-only: ``repro.lint``
must stay importable without the numeric stack.
"""

from __future__ import annotations

import json
import sys
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def print_json(payload: Any, stream=None) -> None:
    """Print ``payload`` as indented, key-sorted JSON (machine output)."""
    print(json.dumps(payload, indent=2, sort_keys=True), file=stream or sys.stdout)


def run_cli(
    handler: Callable[[], int],
    errors: Tuple[Type[BaseException], ...] = (ValueError, OSError),
) -> int:
    """Run a CLI handler under the shared error/exit-code convention.

    ``handler`` returns one of the ``EXIT_*`` codes; any exception in
    ``errors`` is rendered as ``error: <message>`` on stderr and mapped to
    ``EXIT_ERROR``.
    """
    try:
        return handler()
    except errors as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


# -- plain-text rendering ------------------------------------------------------


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def main_with_exit(main: Callable[[Optional[Sequence[str]]], int]) -> None:
    """``if __name__ == "__main__"`` helper: run ``main`` and exit with it."""
    sys.exit(main())

"""Eigenbasis-resident thermal state: the interval engine's fast path.

The dense stepping path (:meth:`repro.thermal.matex.ThermalDynamics.step`)
pays, per simulated interval, one ``O(N^3)`` steady-state solve plus an
``O(N^2)`` dense matrix-vector product.  But for a *resident* state both
costs are avoidable: with the ambient-shifted node temperatures held as
eigen-coefficients ``c = V^{-1} (T - T_amb)``, one exact MatEx step under
constant core power ``P`` is

    c' = s + exp(lambda tau) * (c - s),      s = V^{-1} B^{-1} P

— an ``O(N n)`` projection of the power map (``n`` = cores) plus an
``O(N)`` elementwise decay.  No dense ``exp(C tau)`` matrix is ever formed
and no linear system is solved.  Projection back to temperatures
(``T = T_amb + V c``) happens lazily, only when the scheduler, DTM layer
or an observer actually reads them, and is cached until the next step.

This is exactly the spectral structure MatEx (Pagani et al., DATE 2015)
exploits for peak detection, applied to the simulator's own hot loop; it is
what makes per-interval thermal queries cheap enough to run a scheduler
every epoch.  The equivalence suite (``tests/thermal/test_spectral_state.py``)
asserts agreement with the dense path to ``<= 1e-9`` degC over mixed-power
traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .matex import ThermalDynamics

__all__ = ["SpectralThermalState"]


class SpectralThermalState:
    """Mutable node-temperature state held as eigen-coefficients.

    Parameters
    ----------
    dynamics:
        The eigendecomposition to live in.
    ambient_c:
        Ambient temperature [degC]; the state stores offsets from it.
    node_temps_c:
        Initial full node temperature vector (absolute degC).
    """

    def __init__(
        self,
        dynamics: ThermalDynamics,
        ambient_c: float,
        node_temps_c: np.ndarray,
    ):
        self.dynamics = dynamics
        self.ambient_c = float(ambient_c)
        self._n_cores = dynamics.model.n_cores
        self._coeffs = np.empty(dynamics.model.n_nodes)
        self._core_cache: Optional[np.ndarray] = None
        self._node_cache: Optional[np.ndarray] = None
        #: number of eigenbasis steps taken (observability)
        self.steps = 0
        self.set_node_temperatures(node_temps_c)

    # -- state transfer ------------------------------------------------------

    def set_node_temperatures(self, node_temps_c: np.ndarray) -> None:
        """Re-project an absolute node temperature vector into the state."""
        node_temps_c = np.asarray(node_temps_c, dtype=float)
        if node_temps_c.shape != (self.dynamics.model.n_nodes,):
            raise ValueError(
                f"expected {self.dynamics.model.n_nodes} node temperatures, "
                f"got shape {node_temps_c.shape}"
            )
        self._coeffs = self.dynamics.eigenvectors_inv @ (
            node_temps_c - self.ambient_c
        )
        self._core_cache = None
        self._node_cache = node_temps_c.copy()
        self._node_cache.flags.writeable = False

    @classmethod
    def from_coefficients(
        cls,
        dynamics: ThermalDynamics,
        ambient_c: float,
        coefficients: np.ndarray,
        steps: int = 0,
    ) -> "SpectralThermalState":
        """Build a state directly from eigen-coefficients (no re-projection).

        The bit-exact transfer path: :meth:`BatchedSpectralState.detach
        <repro.thermal.batched_state.BatchedSpectralState.detach>` hands a
        cell's coefficient row straight back to a scalar state without a
        temperature round-trip, so the detached state continues the exact
        same trajectory byte for byte.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (dynamics.model.n_nodes,):
            raise ValueError(
                f"expected {dynamics.model.n_nodes} coefficients, "
                f"got shape {coefficients.shape}"
            )
        state = cls.__new__(cls)
        state.dynamics = dynamics
        state.ambient_c = float(ambient_c)
        state._n_cores = dynamics.model.n_cores
        state._coeffs = coefficients.copy()
        state._core_cache = None
        state._node_cache = None
        state.steps = int(steps)
        return state

    @property
    def coefficients(self) -> np.ndarray:
        """The current eigen-coefficients (read-only view; one per node).

        A frozen (``writeable=False``) view like the lazy projections — not
        a fresh copy — so hot-loop readers pay nothing and accidental
        in-place edits fail loudly instead of corrupting the state.
        """
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    # -- stepping ------------------------------------------------------------

    def step(self, core_power_w: np.ndarray, tau_s: float) -> None:
        """Advance the state by ``tau_s`` under constant core power.

        Exact for piecewise-constant power (the same Eq. 4 as the dense
        path), evaluated entirely in the eigenbasis.
        """
        steady = self.dynamics.steady_coeffs(core_power_w)
        decay = self.dynamics.decay_vector(tau_s)
        self._coeffs = steady + decay * (self._coeffs - steady)
        self._core_cache = None
        self._node_cache = None
        self.steps += 1

    # -- lazy projections ----------------------------------------------------

    def core_temperatures(self) -> np.ndarray:
        """Current core temperatures [degC] (projected lazily, cached)."""
        if self._core_cache is None:
            v_core = self.dynamics.eigenvectors[: self._n_cores]
            self._core_cache = self.ambient_c + v_core @ self._coeffs
            # the cached array is shared with every reader until the next
            # step; freeze it so an accidental in-place edit cannot corrupt
            # later reads
            self._core_cache.flags.writeable = False
        return self._core_cache

    def node_temperatures(self) -> np.ndarray:
        """Full node temperature vector [degC] (projected lazily, cached)."""
        if self._node_cache is None:
            self._node_cache = (
                self.ambient_c + self.dynamics.eigenvectors @ self._coeffs
            )
            self._node_cache.flags.writeable = False
        return self._node_cache

"""Steady-state thermal queries (paper Eq. 3) and derived quantities.

These helpers sit on top of :class:`~repro.thermal.rc_model.RCThermalModel`
and answer the questions schedulers ask of the steady state: what does a
power map settle to, how much uniform power is sustainable, and what is the
thermal-severity ranking of cores (used to reason about AMD rings being
"thermal-wise unconstrained" toward the die edge).
"""

from __future__ import annotations

import numpy as np

from .rc_model import RCThermalModel


def steady_core_temperatures(
    model: RCThermalModel, core_power_w: np.ndarray, ambient_c: float
) -> np.ndarray:
    """Steady-state core temperatures for a per-core power vector."""
    return model.core_temperatures(model.steady_state(core_power_w, ambient_c))


def steady_peak(
    model: RCThermalModel, core_power_w: np.ndarray, ambient_c: float
) -> float:
    """Hottest steady-state core temperature for a per-core power vector."""
    return float(np.max(steady_core_temperatures(model, core_power_w, ambient_c)))


def uniform_power_response(model: RCThermalModel) -> np.ndarray:
    """Per-core steady temperature *rise* under 1 W on every core.

    Because the model is linear, the steady rise under uniform power ``p``
    is ``p`` times this vector.  The hottest entries identify the cores that
    constrain uniform (worst-case TSP) budgets.
    """
    rise = np.linalg.solve(model.b_matrix, model.expand_power(np.ones(model.n_cores)))
    return model.core_temperatures(rise)


def sustainable_uniform_power(
    model: RCThermalModel, ambient_c: float, limit_c: float
) -> float:
    """Largest uniform per-core power whose steady peak stays at ``limit_c``.

    This is the uniform (mapping-agnostic) Thermal Safe Power of the chip.
    """
    if limit_c <= ambient_c:
        raise ValueError("thermal limit must exceed the ambient temperature")
    rise_per_watt = float(np.max(uniform_power_response(model)))
    return (limit_c - ambient_c) / rise_per_watt


def heat_distribution_matrix(model: RCThermalModel) -> np.ndarray:
    """Core-to-core steady influence matrix ``H`` (n x n).

    ``H[i, j]`` is the steady temperature rise of core ``i`` per Watt
    dissipated on core ``j``; steady core rises are ``H @ P_cores``.  This is
    the core-block of ``B^{-1}`` and is the quantity TSP-style budgeting
    operates on.
    """
    n = model.n_cores
    b_inv = np.linalg.inv(model.b_matrix)
    return b_inv[:n, :n]

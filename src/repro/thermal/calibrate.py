"""Calibration of the RC model against the paper's operating points.

The paper does not publish its HotSpot configuration, only the operating
points its plots exhibit.  We therefore anchor the material stack's two free
knobs (the silicon->spreader conductance scale and the lateral conductance
scale) to two published observations:

1. **Motivational hotspot (Fig. 2a).**  A single active *blackscholes*
   thread at peak frequency on a centre core of the 16-core chip drives that
   core to ~80 degC (10 degC above the 70 degC threshold) while the other
   cores idle at 0.3 W.

2. **Full-load sustainability (Table I platform).**  The 64-core chip can
   sustain a uniform per-core power of ``UNIFORM_SUSTAINABLE_POWER_W`` right
   at the 70 degC threshold.  This pins the Thermal Safe Power scale of the
   evaluation platform so that TSP-driven DVFS lands mid-frequency-range,
   as in the paper's baseline.

Both anchors are steady-state solves, so calibration costs a handful of
linear solves and is performed once per process (cached).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.optimize

from ..config import SystemConfig, motivational, table1
from .floorplan import Floorplan
from .rc_model import MaterialStack, RCThermalModel, build_rc_model

#: Power of one fully active compute-bound (blackscholes-class) thread at
#: 4 GHz.  Shared with the workload profiles.
HOT_THREAD_POWER_W = 8.0

#: Anchor 1: steady peak of the single-hot-core scenario on the 16-core chip.
MOTIVATIONAL_PEAK_C = 80.0

#: Anchor 2: uniform per-core power the 64-core chip sustains at exactly the
#: DTM threshold.  Sits between the duty-cycled average of a hot PARSEC
#: thread (~4.4 W) and its burst power (8 W): rotation-averaged hot threads
#: are (just) sustainable at f_max, while statically placed bursts are not —
#: the regime the paper's evaluation exercises.
UNIFORM_SUSTAINABLE_POWER_W = 4.5


def _scenario_peaks(
    stack: MaterialStack, idle_power_w: float, ambient_c: float
) -> np.ndarray:
    """Steady-state peak core temperature of the two anchor scenarios."""
    moti = motivational()
    fp16 = Floorplan(moti.mesh_width, moti.mesh_height, moti.core_area_m2)
    model16 = build_rc_model(fp16, stack)
    power16 = np.full(fp16.n_cores, idle_power_w)
    power16[5] = HOT_THREAD_POWER_W
    peak16 = np.max(
        model16.core_temperatures(model16.steady_state(power16, ambient_c))
    )

    eva = table1()
    fp64 = Floorplan(eva.mesh_width, eva.mesh_height, eva.core_area_m2)
    model64 = build_rc_model(fp64, stack)
    power64 = np.full(fp64.n_cores, UNIFORM_SUSTAINABLE_POWER_W)
    peak64 = np.max(
        model64.core_temperatures(model64.steady_state(power64, ambient_c))
    )
    return np.array([peak16, peak64])


@lru_cache(maxsize=8)
def _solve_knobs(idle_power_w: float, ambient_c: float, dtm_c: float) -> tuple:
    base = MaterialStack()
    targets = np.array([MOTIVATIONAL_PEAK_C, dtm_c])

    def residual(log_knobs: np.ndarray) -> np.ndarray:
        vertical_scale, lateral_scale = np.exp(log_knobs)
        stack = base.with_knobs(vertical_scale, lateral_scale)
        return _scenario_peaks(stack, idle_power_w, ambient_c) - targets

    start = np.log([base.vertical_scale, base.lateral_scale])
    solution, info, status, message = scipy.optimize.fsolve(
        residual, start, full_output=True
    )
    if status != 1:
        raise RuntimeError(f"thermal calibration failed to converge: {message}")
    vertical_scale, lateral_scale = np.exp(solution)
    return float(vertical_scale), float(lateral_scale)


def calibrated_stack(config: SystemConfig = None) -> MaterialStack:
    """The material stack with knobs solved to hit both anchors.

    The result is cached per (idle power, ambient, threshold) triple; the
    default configuration resolves in a few milliseconds.
    """
    if config is None:
        config = table1()
    thermal = config.thermal
    vertical_scale, sink_r = _solve_knobs(
        thermal.idle_power_w, thermal.ambient_c, thermal.dtm_threshold_c
    )
    return MaterialStack().with_knobs(vertical_scale, sink_r)


def calibrated_model(config: SystemConfig = None) -> RCThermalModel:
    """Build the RC model for ``config`` using the calibrated stack."""
    if config is None:
        config = table1()
    floorplan = Floorplan(config.mesh_width, config.mesh_height, config.core_area_m2)
    return build_rc_model(floorplan, calibrated_stack(config))

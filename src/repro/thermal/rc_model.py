"""HotSpot-style compact RC thermal model.

This module builds the thermal network behind the paper's Eq. (1),

    A T' + B T = P + T_amb G

from a :class:`~repro.thermal.floorplan.Floorplan` and a material stack.  The
network follows the classic HotSpot methodology (Huang et al., VLSI 2006):

- one **silicon node** per core block (where power is dissipated),
- one **heat-spreader node** per core block (copper, above the TIM),
- a single lumped **heat-sink node** coupled to the ambient.

Conductances:

- lateral silicon<->silicon between edge-adjacent blocks,
- vertical silicon->spreader through the thermal interface material,
- lateral spreader<->spreader,
- vertical spreader->sink,
- sink->ambient (the only entry of ``G``).

By construction ``A`` is diagonal positive and ``B`` is symmetric positive
definite (graph Laplacian plus a strictly positive ambient leg on a connected
graph), which is exactly the structure the paper's peak-temperature proof
requires: ``C = -A^{-1}B`` is similar to a symmetric negative-definite
matrix, so its eigenvalues are real and negative.

Temperatures are handled in degrees Celsius throughout; because the model is
linear and only ever involves differences from the ambient temperature this
is exact (see :mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from .. import units
from .floorplan import Floorplan


@dataclass(frozen=True)
class MaterialStack:
    """Geometric and material parameters of the die / package stack.

    Default values are textbook properties for silicon, a polymer TIM,
    a copper spreader and an aluminium tower sink.  ``vertical_scale`` and
    ``sink_r_k_per_w`` are the two calibration knobs solved for by
    :func:`repro.thermal.calibrate.calibrated_stack` so that the model
    reproduces the paper's motivational operating points.
    """

    #: silicon die thickness [m] and conductivity [W/(m K)]
    t_si_m: float = units.mm(0.5)
    k_si: float = 150.0
    #: volumetric heat capacity of silicon [J/(m^3 K)]
    vhc_si: float = 1.75e6
    #: thermal interface material thickness [m] and conductivity [W/(m K)]
    t_tim_m: float = units.um(25.0)
    k_tim: float = 5.0
    #: copper spreader thickness [m], conductivity, volumetric heat capacity
    t_sp_m: float = units.mm(2.0)
    k_cu: float = 400.0
    vhc_cu: float = 3.4e6
    #: spreader->sink interface resistivity [K m^2 / W]
    r_sp_sink_km2_per_w: float = 1.0e-6
    #: sink-to-ambient resistance, area-normalized [K m^2 / W]: the lumped
    #: resistance of a die is this value divided by the die area, so larger
    #: chips get proportionally larger sinks.
    sink_r_km2_per_w: float = 0.5e-6
    #: sink heat capacity per die area [J/(K m^2)].  Deliberately compact:
    #: sink heat capacity per die area [J/(K m^2)] (compact model: the
    #: resulting sink time constant is ~100 ms).
    sink_c_j_per_km2: float = 2.0e5
    #: The heat spreader extends beyond the die; boundary spreader blocks
    #: shed heat sideways into that overhang, which then reaches the sink.
    #: Modelled as an extra spreader->sink conductance of
    #: ``spreader_margin_factor * k_cu * t_sp`` per exposed block edge.
    #: This is what makes die-edge (high-AMD) cores run cooler than centre
    #: (low-AMD) cores — the thermal side of the paper's AMD trade-off.
    spreader_margin_factor: float = 3.0
    #: multiplier on the silicon->spreader conductance (calibration knob 1).
    #: Calibrated against the uniform-load sustainability anchor.
    vertical_scale: float = 3.5
    #: multiplier on the silicon-node heat capacity: the core block's
    #: effective thermal mass includes the metal stack, bumps and package
    #: material directly above it.  Together with the silicon->spreader
    #: conductance this sets the *core time constant* (~2.5 ms), which
    #: governs how fast a core heats during one rotation epoch and hence the
    #: ripple a 0.5 ms rotation leaves (Fig. 2c shows exactly this ripple).
    #: It also lets the chip integrate the ~15 ms phase bursts of barrier-
    #: synchronized threads — the averaging synchronous rotation exploits.
    #: Steady-state calibration anchors are independent of capacitances.
    core_thermal_mass_scale: float = 6.0
    #: multiplier on the spreader-block heat capacity.
    spreader_thermal_mass_scale: float = 1.0
    #: multiplier on the lateral (silicon-silicon and spreader-spreader)
    #: conductances (calibration knob 2).  Calibrated against the
    #: motivational single-hot-core anchor: it sets how strongly a localized
    #: hotspot spreads sideways, which the uniform-load anchor cannot see.
    lateral_scale: float = 1.0

    def with_knobs(
        self, vertical_scale: float, lateral_scale: float
    ) -> "MaterialStack":
        """Copy of this stack with the two calibration knobs replaced."""
        return replace(
            self, vertical_scale=vertical_scale, lateral_scale=lateral_scale
        )

    def sink_resistance(self, die_area_m2: float) -> float:
        """Lumped sink-to-ambient resistance [K/W] for a die of given area."""
        return self.sink_r_km2_per_w / die_area_m2

    def sink_capacitance(self, die_area_m2: float) -> float:
        """Lumped sink heat capacity [J/K] for a die of given area."""
        return self.sink_c_j_per_km2 * die_area_m2


class RCThermalModel:
    """The assembled RC network: matrices ``A``, ``B``, ``G`` plus queries.

    Node layout for an ``n``-core floorplan (``N = 2n + 1`` nodes):

    ========== =====================
    nodes      role
    ========== =====================
    0 .. n-1   silicon (cores)
    n .. 2n-1  spreader blocks
    2n         heat sink
    ========== =====================

    Use :func:`build_rc_model` to construct instances.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        capacitance: np.ndarray,
        conductance: np.ndarray,
        ambient_conductance: np.ndarray,
        stack: MaterialStack,
    ):
        self.floorplan = floorplan
        self.stack = stack
        # subclasses (e.g. the 3D-stacked model) may override the node
        # layout; validate against the effective property values
        n_nodes = self.n_nodes
        if capacitance.shape != (n_nodes,):
            raise ValueError("capacitance vector has wrong shape")
        if conductance.shape != (n_nodes, n_nodes):
            raise ValueError("conductance matrix has wrong shape")
        if ambient_conductance.shape != (n_nodes,):
            raise ValueError("ambient conductance vector has wrong shape")
        if not np.allclose(conductance, conductance.T):
            raise ValueError("conductance matrix must be symmetric")
        if np.any(capacitance <= 0):
            raise ValueError("all thermal capacitances must be positive")
        self._cap = capacitance
        self._cond = conductance
        self._g_amb = ambient_conductance

    # -- structure --------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of cores (= silicon nodes)."""
        return self.floorplan.n_cores

    @property
    def n_nodes(self) -> int:
        """Total number of thermal nodes ``N``."""
        return 2 * self.n_cores + 1

    @property
    def sink_node(self) -> int:
        """Index of the lumped heat-sink node."""
        return 2 * self.n_cores

    def spreader_node(self, core_id: int) -> int:
        """Index of the spreader node above core ``core_id``."""
        return self.n_cores + core_id

    # -- matrices -----------------------------------------------------------

    @property
    def capacitance_vector(self) -> np.ndarray:
        """Diagonal of ``A`` (thermal capacitances, J/K). Read-only view."""
        view = self._cap.view()
        view.flags.writeable = False
        return view

    @property
    def a_matrix(self) -> np.ndarray:
        """``A``: diagonal capacitance matrix (fresh copy)."""
        return np.diag(self._cap)

    @property
    def b_matrix(self) -> np.ndarray:
        """``B``: symmetric conductance matrix (fresh copy).

        ``B = L + diag(G)`` where ``L`` is the Laplacian of inter-node
        conductances and ``G`` holds the node-to-ambient conductances.
        """
        return self._cond.copy()

    @property
    def g_vector(self) -> np.ndarray:
        """``G``: node-to-ambient conductance vector (fresh copy)."""
        return self._g_amb.copy()

    # -- power helpers -------------------------------------------------------

    def expand_power(self, core_power_w: np.ndarray) -> np.ndarray:
        """Zero-pad a per-core power vector to the full node vector ``P``.

        Only silicon nodes dissipate power; spreader and sink entries are
        zero.
        """
        core_power_w = np.asarray(core_power_w, dtype=float)
        if core_power_w.shape != (self.n_cores,):
            raise ValueError(
                f"expected {self.n_cores} core powers, got shape {core_power_w.shape}"
            )
        full = np.zeros(self.n_nodes)
        full[: self.n_cores] = core_power_w
        return full

    def core_temperatures(self, node_temps: np.ndarray) -> np.ndarray:
        """Extract the core (silicon-node) temperatures from a node vector."""
        node_temps = np.asarray(node_temps, dtype=float)
        if node_temps.shape[-1] != self.n_nodes:
            raise ValueError("temperature vector has wrong length")
        return node_temps[..., : self.n_cores]

    # -- steady state --------------------------------------------------------

    def steady_state(
        self, core_power_w: np.ndarray, ambient_c: float
    ) -> np.ndarray:
        """Steady-state node temperatures for constant core powers (Eq. 3).

        ``T_steady = B^{-1} P + T_amb B^{-1} G``.  Because every row of
        ``B`` sums to its ambient conductance, ``B^{-1} G = 1`` and the
        second term is exactly the ambient offset.
        """
        p_nodes = self.expand_power(core_power_w)
        rise = np.linalg.solve(self._cond, p_nodes)
        return rise + ambient_c

    def ambient_vector(self, ambient_c: float) -> np.ndarray:
        """All-nodes-at-ambient temperature vector."""
        return np.full(self.n_nodes, float(ambient_c))


def build_rc_model(
    floorplan: Floorplan, stack: Optional[MaterialStack] = None
) -> RCThermalModel:
    """Assemble the RC network for ``floorplan`` with the given ``stack``.

    See the module docstring for the network topology.  The returned model's
    ``B`` matrix is symmetric positive definite by construction.
    """
    if stack is None:
        stack = MaterialStack()
    n = floorplan.n_cores
    n_nodes = 2 * n + 1
    sink = 2 * n
    area = floorplan.core_area_m2

    cond = np.zeros((n_nodes, n_nodes))

    def couple(i: int, j: int, g: float) -> None:
        cond[i, i] += g
        cond[j, j] += g
        cond[i, j] -= g
        cond[j, i] -= g

    # lateral silicon and spreader coupling between edge-adjacent blocks:
    # square blocks => G = k * thickness (cross-section edge*t over distance
    # edge between centres).
    g_si_lat = stack.lateral_scale * stack.k_si * stack.t_si_m
    g_sp_lat = stack.lateral_scale * stack.k_cu * stack.t_sp_m
    for a, b in floorplan.lateral_pairs():
        couple(a, b, g_si_lat)
        couple(n + a, n + b, g_sp_lat)

    # vertical silicon -> spreader per core: half-silicon + TIM + half
    # spreader in series, then scaled by the calibration knob.
    r_vert = (
        stack.t_si_m / (2.0 * stack.k_si * area)
        + stack.t_tim_m / (stack.k_tim * area)
        + stack.t_sp_m / (2.0 * stack.k_cu * area)
    )
    g_vert = stack.vertical_scale / r_vert
    # spreader -> sink per core: half spreader + interface resistivity.
    r_sp_sink = stack.t_sp_m / (2.0 * stack.k_cu * area) + (
        stack.r_sp_sink_km2_per_w / area
    )
    g_sp_sink = 1.0 / r_sp_sink
    g_margin_per_edge = stack.spreader_margin_factor * stack.k_cu * stack.t_sp_m
    for core in range(n):
        couple(core, n + core, g_vert)
        couple(n + core, sink, g_sp_sink)
        exposed_edges = 4 - len(floorplan.neighbors(core))
        if exposed_edges > 0:
            couple(n + core, sink, exposed_edges * g_margin_per_edge)

    # sink -> ambient: the only ambient leg (sink size scales with the die).
    g_amb = np.zeros(n_nodes)
    g_amb[sink] = 1.0 / stack.sink_resistance(floorplan.die_area_m2)
    cond[sink, sink] += g_amb[sink]

    cap = np.empty(n_nodes)
    cap[:n] = stack.core_thermal_mass_scale * stack.vhc_si * area * stack.t_si_m
    cap[n : 2 * n] = (
        stack.spreader_thermal_mass_scale * stack.vhc_cu * area * stack.t_sp_m
    )
    cap[sink] = stack.sink_capacitance(floorplan.die_area_m2)

    return RCThermalModel(floorplan, cap, cond, g_amb, stack)

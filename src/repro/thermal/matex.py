"""MatEx-style transient thermal solver.

The paper computes transient temperatures with *MatEx* (Pagani et al., DATE
2015): instead of numerically integrating the ODE system of Eq. (2), the
matrix exponential is evaluated analytically through the eigendecomposition
of ``C = -A^{-1} B``.  For piecewise-constant power the solution

    T(t0 + tau) = T_steady + exp(C tau) (T(t0) - T_steady)        (Eq. 4)

is **exact** — no integration error, any step size.

``C`` itself is not symmetric, but it is similar to the symmetric
negative-definite matrix ``-A^{-1/2} B A^{-1/2}``; we therefore
eigendecompose that symmetrized matrix with the numerically stable
:func:`scipy.linalg.eigh` and map the eigenvectors back.  All eigenvalues
are real and strictly negative, which is what makes the paper's geometric
series (Eqs. 8-9) converge.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.linalg

from .rc_model import RCThermalModel


class ThermalDynamics:
    """Eigendecomposition cache and exact transient stepping for a model.

    Construction performs the one-time ``O(N^3)`` work (the paper's
    "design-time phase"); every subsequent query is cheap.

    Parameters
    ----------
    model:
        The RC network to operate on.
    """

    def __init__(self, model: RCThermalModel):
        self.model = model
        cap = model.capacitance_vector
        sqrt_cap = np.sqrt(cap)
        b = model.b_matrix
        # symmetrized system matrix S = A^{-1/2} B A^{-1/2}
        sym = b / np.outer(sqrt_cap, sqrt_cap)
        mu, q = scipy.linalg.eigh(sym)
        if np.any(mu <= 1e-9 * np.max(mu)):
            raise ValueError(
                "conductance matrix is not positive definite; is some part of "
                "the network disconnected from ambient?"
            )
        #: eigenvalues of C = -A^{-1}B (all strictly negative)
        self.eigenvalues = -mu
        #: eigenvectors of C (columns), V in the paper's notation
        self.eigenvectors = q / sqrt_cap[:, None]
        #: inverse eigenvector matrix, V^{-1} = Q^T A^{1/2}
        self.eigenvectors_inv = q.T * sqrt_cap[None, :]
        self._b_inv = np.linalg.inv(b)
        self._exp_cache: Dict[float, np.ndarray] = {}
        self._prop_cache: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
        # cache-effectiveness counters (observability: the interval engine
        # publishes these as ``thermal.*_cache.*`` gauges at run end)
        self._exp_hits = 0
        self._exp_misses = 0
        self._prop_hits = 0
        self._prop_misses = 0

    # -- spectral queries ---------------------------------------------------

    @property
    def b_inverse(self) -> np.ndarray:
        """``B^{-1}`` (cached, do not mutate)."""
        return self._b_inv

    @property
    def slowest_time_constant_s(self) -> float:
        """``1/|lambda_max|``: the slowest thermal time constant."""
        return float(1.0 / np.min(np.abs(self.eigenvalues)))

    def exp_c(self, tau_s: float) -> np.ndarray:
        """``exp(C tau)`` via the eigendecomposition (cached per ``tau``)."""
        if tau_s < 0:
            raise ValueError("tau must be non-negative")
        cached = self._exp_cache.get(tau_s)
        if cached is None:
            self._exp_misses += 1
            diag = np.exp(self.eigenvalues * tau_s)
            cached = (self.eigenvectors * diag[None, :]) @ self.eigenvectors_inv
            self._exp_cache[tau_s] = cached
        else:
            self._exp_hits += 1
        return cached

    def propagator(self, tau_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """The pair ``(E, W)`` with ``E = exp(C tau)``, ``W = (I - E) B^{-1}``.

        ``W`` is the paper's *rotational factor* ``w`` (Eq. 5): one epoch of
        constant node power ``P`` starting from ambient-shifted temperature
        ``T`` ends at ``E T + W P``.
        """
        cached = self._prop_cache.get(tau_s)
        if cached is None:
            self._prop_misses += 1
            e = self.exp_c(tau_s)
            w = (np.eye(self.model.n_nodes) - e) @ self._b_inv
            cached = (e, w)
            self._prop_cache[tau_s] = cached
        else:
            self._prop_hits += 1
        return cached

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counts of the ``exp_c`` and ``propagator`` caches.

        Keys: ``exp_cache.hits``, ``exp_cache.misses``,
        ``propagator_cache.hits``, ``propagator_cache.misses``.  A healthy
        interval simulation re-uses a handful of step sizes, so hit rates
        should approach 1 as the run progresses.
        """
        return {
            "exp_cache.hits": self._exp_hits,
            "exp_cache.misses": self._exp_misses,
            "propagator_cache.hits": self._prop_hits,
            "propagator_cache.misses": self._prop_misses,
        }

    # -- exact transient stepping --------------------------------------------

    def step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
    ) -> np.ndarray:
        """Advance node temperatures by ``tau_s`` under constant core power.

        Exact for piecewise-constant power (Eq. 4).  ``temps_c`` is the full
        node temperature vector in absolute degrees Celsius.
        """
        t_steady = self.model.steady_state(core_power_w, ambient_c)
        e = self.exp_c(tau_s)
        return t_steady + e @ (np.asarray(temps_c, dtype=float) - t_steady)

    def transient(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        duration_s: float,
        n_samples: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the transient under constant power at ``n_samples`` times.

        Returns ``(times, node_temps)`` where ``times`` has shape
        ``(n_samples,)`` (uniformly spaced in ``(0, duration]``) and
        ``node_temps`` has shape ``(n_samples, N)``.  Each sample is computed
        exactly from the initial condition; there is no error accumulation.
        """
        if n_samples < 1:
            raise ValueError("need at least one sample")
        times = np.linspace(duration_s / n_samples, duration_s, n_samples)
        t_steady = self.model.steady_state(core_power_w, ambient_c)
        delta = np.asarray(temps_c, dtype=float) - t_steady
        # project the initial offset once, then scale per-sample in the
        # eigenbasis: T(t) = T_ss + V diag(e^{lambda t}) V^{-1} delta
        coeffs = self.eigenvectors_inv @ delta
        decay = np.exp(np.outer(times, self.eigenvalues))  # (S, N)
        temps = t_steady[None, :] + (decay * coeffs[None, :]) @ self.eigenvectors.T
        return times, temps

    def peak_during_step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
        n_samples: int = 8,
    ) -> float:
        """Maximum core temperature reached at any time within one step.

        Boundary temperatures alone can miss an intra-epoch overshoot when a
        mode decays non-monotonically in combination; sampling bounds that
        error.  For the exact interior maximum use
        :meth:`analytic_peak_during_step`.
        """
        _, temps = self.transient(
            temps_c, core_power_w, ambient_c, tau_s, n_samples
        )
        start_peak = float(np.max(self.model.core_temperatures(np.asarray(temps_c))))
        return max(start_peak, float(np.max(self.model.core_temperatures(temps))))

    def analytic_peak_during_step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
        coarse_samples: int = 16,
        bisect_iters: int = 50,
    ) -> float:
        """Exact maximum core temperature within one constant-power step.

        MatEx-style peak detection: each core's trajectory is a sum of
        decaying exponentials,

            ``T_i(t) = T_ss,i + sum_k V_ik e^{lambda_k t} c_k``,

        whose interior extrema are roots of the (analytic) derivative.
        Roots are bracketed on a coarse grid and refined by bisection, so
        multi-modal trajectories are handled — not just the single-root
        case MatEx's Newton iteration assumes.
        """
        if tau_s <= 0:
            raise ValueError("tau must be positive")
        model = self.model
        n = model.n_cores
        t_ss = model.steady_state(core_power_w, ambient_c)
        coeffs = self.eigenvectors_inv @ (
            np.asarray(temps_c, dtype=float) - t_ss
        )
        v_core = self.eigenvectors[:n]  # (n, N)
        lam = self.eigenvalues

        times = np.linspace(0.0, tau_s, coarse_samples + 1)
        decay = np.exp(np.outer(lam, times)) * coeffs[:, None]  # (N, S+1)
        temps_grid = t_ss[:n, None] + v_core @ decay  # (n, S+1)
        deriv_grid = v_core @ (lam[:, None] * decay)  # (n, S+1)

        peak = float(np.max(temps_grid))  # includes both endpoints

        # refine every sign change of the derivative (+ -> -: a maximum)
        sign_change = (deriv_grid[:, :-1] > 0) & (deriv_grid[:, 1:] <= 0)
        cores, segments = np.nonzero(sign_change)
        for core, segment in zip(cores, segments):
            lo, hi = times[segment], times[segment + 1]
            row = v_core[core]
            for _ in range(bisect_iters):
                mid = 0.5 * (lo + hi)
                d_mid = float(row @ (lam * np.exp(lam * mid) * coeffs))
                if d_mid > 0:
                    lo = mid
                else:
                    hi = mid
            t_star = 0.5 * (lo + hi)
            value = float(t_ss[core] + row @ (np.exp(lam * t_star) * coeffs))
            peak = max(peak, value)
        return peak

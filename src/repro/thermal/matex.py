"""MatEx-style transient thermal solver.

The paper computes transient temperatures with *MatEx* (Pagani et al., DATE
2015): instead of numerically integrating the ODE system of Eq. (2), the
matrix exponential is evaluated analytically through the eigendecomposition
of ``C = -A^{-1} B``.  For piecewise-constant power the solution

    T(t0 + tau) = T_steady + exp(C tau) (T(t0) - T_steady)        (Eq. 4)

is **exact** — no integration error, any step size.

``C`` itself is not symmetric, but it is similar to the symmetric
negative-definite matrix ``-A^{-1/2} B A^{-1/2}``; we therefore
eigendecompose that symmetrized matrix with the numerically stable
:func:`scipy.linalg.eigh` and map the eigenvectors back.  All eigenvalues
are real and strictly negative, which is what makes the paper's geometric
series (Eqs. 8-9) converge.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from .._lru import LruCache
from .rc_model import RCThermalModel

#: Bounds of the per-``tau`` auxiliary caches.  A healthy simulation uses a
#: handful of step sizes; a scheduler that jitters ``tau`` must not grow
#: these without limit.  Dense ``N x N`` matrices are capped tighter than
#: the ``O(N)`` decay vectors.
_EXP_CACHE_SIZE = 64
_PROP_CACHE_SIZE = 64
_DECAY_CACHE_SIZE = 256


class ThermalDynamics:
    """Eigendecomposition cache and exact transient stepping for a model.

    Construction performs the one-time ``O(N^3)`` work (the paper's
    "design-time phase"); every subsequent query is cheap.

    Parameters
    ----------
    model:
        The RC network to operate on.
    """

    def __init__(self, model: RCThermalModel):
        self.model = model
        cap = model.capacitance_vector
        sqrt_cap = np.sqrt(cap)
        b = model.b_matrix
        # symmetrized system matrix S = A^{-1/2} B A^{-1/2}
        sym = b / np.outer(sqrt_cap, sqrt_cap)
        mu, q = scipy.linalg.eigh(sym)
        if np.any(mu <= 1e-9 * np.max(mu)):
            raise ValueError(
                "conductance matrix is not positive definite; is some part of "
                "the network disconnected from ambient?"
            )
        #: eigenvalues of C = -A^{-1}B (all strictly negative)
        self.eigenvalues = -mu
        #: eigenvectors of C (columns), V in the paper's notation
        self.eigenvectors = q / sqrt_cap[:, None]
        #: inverse eigenvector matrix, V^{-1} = Q^T A^{1/2}
        self.eigenvectors_inv = q.T * sqrt_cap[None, :]
        self._b_inv = np.linalg.inv(b)
        #: ``V^{-1} B^{-1}`` restricted to the power-carrying (core) columns:
        #: the steady-state eigen-coefficients of a core power map are one
        #: ``(N, n) @ (n,)`` product away (no linear solve at run time).
        self._vinv_binv_cores = self.eigenvectors_inv @ self._b_inv[:, : model.n_cores]
        # bounded LRU caches (observability: the interval engine publishes
        # their hit/miss/eviction counters as ``thermal.*_cache.*`` gauges)
        self._exp_cache = LruCache(_EXP_CACHE_SIZE)
        self._prop_cache = LruCache(_PROP_CACHE_SIZE)
        self._decay_cache = LruCache(_DECAY_CACHE_SIZE)

    # -- spectral queries ---------------------------------------------------

    @property
    def b_inverse(self) -> np.ndarray:
        """``B^{-1}`` (cached, do not mutate)."""
        return self._b_inv

    @property
    def slowest_time_constant_s(self) -> float:
        """``1/|lambda_max|``: the slowest thermal time constant."""
        return float(1.0 / np.min(np.abs(self.eigenvalues)))

    def exp_c(self, tau_s: float) -> np.ndarray:
        """``exp(C tau)`` via the eigendecomposition (cached per ``tau``)."""
        if tau_s < 0:
            raise ValueError("tau must be non-negative")
        cached = self._exp_cache.get(tau_s)
        if cached is None:
            diag = np.exp(self.eigenvalues * tau_s)
            cached = (self.eigenvectors * diag[None, :]) @ self.eigenvectors_inv
            self._exp_cache[tau_s] = cached
        return cached

    def decay_vector(self, tau_s: float) -> np.ndarray:
        """``exp(lambda tau)`` per eigenvalue (cached per ``tau``).

        The ``O(N)`` diagonal of ``exp(C tau)`` in the eigenbasis — the only
        per-step factor the eigenbasis-resident fast path needs (where the
        dense path needs the full ``N x N`` :meth:`exp_c`).
        """
        if tau_s < 0:
            raise ValueError("tau must be non-negative")
        cached = self._decay_cache.get(tau_s)
        if cached is None:
            cached = np.exp(self.eigenvalues * tau_s)
            cached.flags.writeable = False
            self._decay_cache[tau_s] = cached
        return cached

    def steady_coeffs(self, core_power_w: np.ndarray) -> np.ndarray:
        """Eigen-coefficients of the ambient-shifted steady state.

        ``V^{-1} B^{-1} P`` for a per-core power map ``P`` — the spectral
        image of ``steady_state(...) - ambient``, at ``O(N n)`` cost with no
        linear solve.
        """
        core_power_w = np.asarray(core_power_w, dtype=float)
        if core_power_w.shape != (self.model.n_cores,):
            raise ValueError(
                f"expected {self.model.n_cores} core powers, "
                f"got shape {core_power_w.shape}"
            )
        return self._vinv_binv_cores @ core_power_w

    def steady_coeffs_batch(
        self, core_power_w: np.ndarray, exact: bool = True
    ) -> np.ndarray:
        """Steady-state eigen-coefficients for a stack of power maps.

        ``core_power_w`` has shape ``(S, n_cores)``; the result has shape
        ``(S, n_nodes)`` with row ``i`` equal to ``steady_coeffs(P[i])``.

        With ``exact=True`` (the default) each row is computed by the *same*
        GEMV kernel the scalar path uses, so every row is byte-identical to
        an independent :meth:`steady_coeffs` call — the property the batched
        sweep engine's byte-identity guarantee rests on.  ``exact=False``
        collapses the stack into one GEMM (``P @ M.T``), which is faster for
        wide batches but not bitwise-reproducible against the scalar path
        (BLAS GEMM accumulates in a different order than GEMV, and its row
        results vary with the batch size); use it only for throughput work
        that never compares against serial runs (e.g. many-rollout oracle
        label generation).
        """
        stacked = np.asarray(core_power_w, dtype=float)
        if stacked.ndim != 2 or stacked.shape[1] != self.model.n_cores:
            raise ValueError(
                f"expected (S, {self.model.n_cores}) stacked core powers, "
                f"got shape {stacked.shape}"
            )
        if not exact:
            return stacked @ self._vinv_binv_cores.T
        out = np.empty((stacked.shape[0], self.model.n_nodes))
        for i in range(stacked.shape[0]):
            np.matmul(self._vinv_binv_cores, stacked[i], out=out[i])
        return out

    def propagator(self, tau_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """The pair ``(E, W)`` with ``E = exp(C tau)``, ``W = (I - E) B^{-1}``.

        ``W`` is the paper's *rotational factor* ``w`` (Eq. 5): one epoch of
        constant node power ``P`` starting from ambient-shifted temperature
        ``T`` ends at ``E T + W P``.
        """
        cached = self._prop_cache.get(tau_s)
        if cached is None:
            e = self.exp_c(tau_s)
            w = (np.eye(self.model.n_nodes) - e) @ self._b_inv
            cached = (e, w)
            self._prop_cache[tau_s] = cached
        return cached

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the per-``tau`` auxiliary caches.

        Keys: ``{exp_cache, propagator_cache, decay_cache}.{hits, misses,
        evictions, size}``.  A healthy interval simulation re-uses a handful
        of step sizes, so hit rates should approach 1 as the run progresses;
        non-zero eviction counts mean the scheduler is jittering ``tau``
        across more than the cache capacity.
        """
        stats: Dict[str, int] = {}
        stats.update(self._exp_cache.stats("exp_cache"))
        stats.update(self._prop_cache.stats("propagator_cache"))
        stats.update(self._decay_cache.stats("decay_cache"))
        return stats

    # -- exact transient stepping --------------------------------------------

    def step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
    ) -> np.ndarray:
        """Advance node temperatures by ``tau_s`` under constant core power.

        Exact for piecewise-constant power (Eq. 4).  ``temps_c`` is the full
        node temperature vector in absolute degrees Celsius.

        This is the **dense reference path** (one ``O(N^3)`` steady-state
        solve plus an ``O(N^2)`` matrix-vector product per call); the
        interval engine's hot loop uses the eigenbasis-resident
        :class:`repro.thermal.spectral_state.SpectralThermalState` instead
        and is validated against this method to ``<= 1e-9`` degC.
        """
        t_steady = self.model.steady_state(core_power_w, ambient_c)
        e = self.exp_c(tau_s)
        return t_steady + e @ (np.asarray(temps_c, dtype=float) - t_steady)

    def step_spectral(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
    ) -> np.ndarray:
        """One exact step evaluated through the eigenbasis (no solve).

        Mathematically identical to :meth:`step` but costs two ``O(N^2)``
        projections plus ``O(N n)`` work instead of an ``O(N^3)`` linear
        solve — the right tool for one-shot what-if queries (e.g. PCMig's
        violation predictor).  Callers that step *repeatedly* should hold a
        :class:`~repro.thermal.spectral_state.SpectralThermalState` instead,
        which amortizes both projections away entirely.
        """
        coeffs = self.eigenvectors_inv @ (
            np.asarray(temps_c, dtype=float) - ambient_c
        )
        steady = self.steady_coeffs(core_power_w)
        coeffs = steady + self.decay_vector(tau_s) * (coeffs - steady)
        return ambient_c + self.eigenvectors @ coeffs

    def transient(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        duration_s: float,
        n_samples: int,
        t_steady: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the transient under constant power at ``n_samples`` times.

        Returns ``(times, node_temps)`` where ``times`` has shape
        ``(n_samples,)`` (uniformly spaced in ``(0, duration]``) and
        ``node_temps`` has shape ``(n_samples, N)``.  Each sample is computed
        exactly from the initial condition; there is no error accumulation.

        ``t_steady`` optionally supplies the precomputed steady state of
        ``(core_power_w, ambient_c)`` so callers that already solved it
        (e.g. :meth:`peak_during_step` inside a rotation-cycle scan) do not
        pay the linear solve twice.
        """
        if n_samples < 1:
            raise ValueError("need at least one sample")
        times = np.linspace(duration_s / n_samples, duration_s, n_samples)
        if t_steady is None:
            t_steady = self.model.steady_state(core_power_w, ambient_c)
        delta = np.asarray(temps_c, dtype=float) - t_steady
        # project the initial offset once, then scale per-sample in the
        # eigenbasis: T(t) = T_ss + V diag(e^{lambda t}) V^{-1} delta
        coeffs = self.eigenvectors_inv @ delta
        decay = np.exp(np.outer(times, self.eigenvalues))  # (S, N)
        temps = t_steady[None, :] + (decay * coeffs[None, :]) @ self.eigenvectors.T
        return times, temps

    def peak_during_step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
        n_samples: int = 8,
        t_steady: Optional[np.ndarray] = None,
    ) -> float:
        """Maximum core temperature reached at any time within one step.

        Boundary temperatures alone can miss an intra-epoch overshoot when a
        mode decays non-monotonically in combination; sampling bounds that
        error.  For the exact interior maximum use
        :meth:`analytic_peak_during_step`.  ``t_steady`` threads a
        precomputed steady state through to :meth:`transient`, avoiding a
        second identical solve.
        """
        _, temps = self.transient(
            temps_c, core_power_w, ambient_c, tau_s, n_samples, t_steady
        )
        start_peak = float(np.max(self.model.core_temperatures(np.asarray(temps_c))))
        return max(start_peak, float(np.max(self.model.core_temperatures(temps))))

    def analytic_peak_during_step(
        self,
        temps_c: np.ndarray,
        core_power_w: np.ndarray,
        ambient_c: float,
        tau_s: float,
        coarse_samples: int = 16,
        bisect_iters: int = 50,
    ) -> float:
        """Exact maximum core temperature within one constant-power step.

        MatEx-style peak detection: each core's trajectory is a sum of
        decaying exponentials,

            ``T_i(t) = T_ss,i + sum_k V_ik e^{lambda_k t} c_k``,

        whose interior extrema are roots of the (analytic) derivative.
        Roots are bracketed on a coarse grid and refined by bisection, so
        multi-modal trajectories are handled — not just the single-root
        case MatEx's Newton iteration assumes.
        """
        if tau_s <= 0:
            raise ValueError("tau must be positive")
        model = self.model
        n = model.n_cores
        t_ss = model.steady_state(core_power_w, ambient_c)
        coeffs = self.eigenvectors_inv @ (
            np.asarray(temps_c, dtype=float) - t_ss
        )
        v_core = self.eigenvectors[:n]  # (n, N)
        lam = self.eigenvalues

        times = np.linspace(0.0, tau_s, coarse_samples + 1)
        decay = np.exp(np.outer(lam, times)) * coeffs[:, None]  # (N, S+1)
        temps_grid = t_ss[:n, None] + v_core @ decay  # (n, S+1)
        deriv_grid = v_core @ (lam[:, None] * decay)  # (n, S+1)

        peak = float(np.max(temps_grid))  # includes both endpoints

        # refine every sign change of the derivative (+ -> -: a maximum)
        sign_change = (deriv_grid[:, :-1] > 0) & (deriv_grid[:, 1:] <= 0)
        cores, segments = np.nonzero(sign_change)
        for core, segment in zip(cores, segments):
            lo, hi = times[segment], times[segment + 1]
            row = v_core[core]
            for _ in range(bisect_iters):
                mid = 0.5 * (lo + hi)
                d_mid = float(row @ (lam * np.exp(lam * mid) * coeffs))
                if d_mid > 0:
                    lo = mid
                else:
                    hi = mid
            t_star = 0.5 * (lo + hi)
            value = float(t_ss[core] + row @ (np.exp(lam * t_star) * coeffs))
            peak = max(peak, value)
        return peak

"""Batched eigenbasis-resident thermal state: S simulations, one array.

A parameter sweep runs S *independent* simulations over the *same*
floorplan — same RC network, same eigendecomposition, different power
traces.  Their spectral states are therefore S vectors living in one
shared eigenbasis, and the exact MatEx step

    c' = s + exp(lambda tau) * (c - s),      s = V^{-1} B^{-1} P

is shape-polymorphic: stacking the coefficients as ``C[S, N]`` turns S
elementwise updates into one fused broadcast over the stack.  The frozen
projections (``V``, ``V^{-1} B^{-1}``) are stored once on the shared
:class:`~repro.thermal.matex.ThermalDynamics` — cells never copy them.

Byte-identity is the design constraint, not an afterthought.  Two facts
about this decomposition make the batch bit-exact against S independent
:class:`~repro.thermal.spectral_state.SpectralThermalState` objects:

- **Elementwise broadcasts are order-free.**  ``steady + decay * (C -
  steady)`` over ``(k, N)`` performs exactly the same scalar operations,
  in the same per-element order, as the ``(N,)`` expression does per
  cell — no reductions, no re-association, bit-equal results.
- **The power projection must stay a GEMV.**  Collapsing the S
  projections into one GEMM (``P @ M.T``) is *not* byte-stable: BLAS
  GEMM accumulates in a different order than GEMV and its row results
  vary with the batch width.  The batch therefore projects each cell's
  power map through the *same* GEMV kernel the scalar path calls
  (:meth:`~repro.thermal.matex.ThermalDynamics.steady_coeffs_batch`
  with ``exact=True``), and fuses only the elementwise tail.

Decay vectors are grouped by unique tau within a step: the Algorithm-2
tau-ladder is tiny, so a lock-step sweep collapses to one or two fused
updates per step, each sharing one
:meth:`~repro.thermal.matex.ThermalDynamics.decay_vector` lookup (and
therefore one ``thermal.decay_cache`` entry) across the whole group.

Cells leave the batch through :meth:`BatchedSpectralState.detach`, which
hands the coefficient row to
:meth:`SpectralThermalState.from_coefficients` — no temperature
round-trip, so a detached cell continues the exact same trajectory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .matex import ThermalDynamics
from .spectral_state import SpectralThermalState

__all__ = ["BatchedSpectralState"]


class BatchedSpectralState:
    """S spectral thermal states stacked along a leading cell axis.

    Parameters
    ----------
    dynamics:
        The shared eigendecomposition.  All cells must live in the same
        basis; callers batching across configurations group cells by
        calibration fingerprint first (one batch per distinct
        ``ThermalDynamics``).
    ambient_c:
        Ambient temperature [degC]; a scalar shared by every cell or one
        value per cell.
    node_temps_c:
        Initial node temperatures, shape ``(S, n_nodes)`` (absolute degC).
    """

    def __init__(
        self,
        dynamics: ThermalDynamics,
        ambient_c: Union[float, Sequence[float]],
        node_temps_c: np.ndarray,
    ):
        self.dynamics = dynamics
        n_nodes = dynamics.model.n_nodes
        node_temps_c = np.asarray(node_temps_c, dtype=float)
        if node_temps_c.ndim != 2 or node_temps_c.shape[1] != n_nodes:
            raise ValueError(
                f"expected (S, {n_nodes}) node temperatures, "
                f"got shape {node_temps_c.shape}"
            )
        n_cells = node_temps_c.shape[0]
        ambient = np.asarray(ambient_c, dtype=float)
        if ambient.ndim == 0:
            ambient = np.full(n_cells, float(ambient))
        if ambient.shape != (n_cells,):
            raise ValueError(
                f"expected scalar or ({n_cells},) ambient, got {ambient.shape}"
            )
        self._ambient = ambient
        self._n_cores = dynamics.model.n_cores
        # project each cell with the same GEMV the scalar constructor uses
        self._coeffs = np.empty((n_cells, n_nodes))
        for i in range(n_cells):
            np.matmul(
                dynamics.eigenvectors_inv,
                node_temps_c[i] - self._ambient[i],
                out=self._coeffs[i],
            )
        self._core_cache: List[Optional[np.ndarray]] = [None] * n_cells
        self._node_cache: List[Optional[np.ndarray]] = [None] * n_cells
        #: per-cell eigenbasis step counters (observability)
        self.steps = np.zeros(n_cells, dtype=np.int64)
        #: number of fused tau-group updates performed (the "einsum count")
        self.fused_updates = 0
        #: total coefficient rows advanced across all fused updates
        self.rows_stepped = 0
        #: cells handed back to scalar states via :meth:`detach`
        self.detached = 0

    @classmethod
    def from_states(
        cls, states: Sequence[SpectralThermalState]
    ) -> "BatchedSpectralState":
        """Adopt S scalar states (all sharing one ``ThermalDynamics``).

        The coefficient rows are copied bit-exactly — no temperature
        round-trip — so the batch continues each state's trajectory byte
        for byte.  The donor states are left untouched.
        """
        if not states:
            raise ValueError("need at least one state to batch")
        dynamics = states[0].dynamics
        for state in states[1:]:
            if state.dynamics is not dynamics:
                raise ValueError(
                    "all batched states must share one ThermalDynamics; "
                    "group cells by calibration fingerprint first"
                )
        batch = cls.__new__(cls)
        batch.dynamics = dynamics
        batch._n_cores = dynamics.model.n_cores
        batch._ambient = np.array([s.ambient_c for s in states], dtype=float)
        batch._coeffs = np.stack([s.coefficients for s in states])
        batch._core_cache = [None] * len(states)
        batch._node_cache = [None] * len(states)
        batch.steps = np.array([s.steps for s in states], dtype=np.int64)
        batch.fused_updates = 0
        batch.rows_stepped = 0
        batch.detached = 0
        return batch

    # -- introspection -------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Current batch width."""
        return self._coeffs.shape[0]

    @property
    def coefficients(self) -> np.ndarray:
        """The stacked eigen-coefficients ``C[S, N]`` (read-only view)."""
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    def cell_coefficients(self, cell: int) -> np.ndarray:
        """One cell's eigen-coefficients (read-only view)."""
        view = self._coeffs[cell].view()
        view.flags.writeable = False
        return view

    def ambient_of(self, cell: int) -> float:
        """Ambient temperature [degC] of one cell."""
        return float(self._ambient[cell])

    def stats(self) -> Dict[str, int]:
        """Counters for the ``parallel.batch.*`` gauges."""
        return {
            "cells": int(self.n_cells),
            "fused_updates": int(self.fused_updates),
            "rows_stepped": int(self.rows_stepped),
            "detached": int(self.detached),
        }

    # -- stepping ------------------------------------------------------------

    def step(
        self,
        core_power_w: np.ndarray,
        tau_s: Union[float, Sequence[float]],
        cells: Optional[Sequence[int]] = None,
    ) -> None:
        """Advance cells by ``tau_s`` under their stacked power maps.

        ``core_power_w`` has shape ``(k, n_cores)`` — one row per stepped
        cell.  ``cells`` selects which rows of the batch advance (default:
        all of them, in which case ``k == n_cells``).  ``tau_s`` is a
        scalar shared by every stepped cell or one value per stepped
        cell; cells are grouped by unique tau so each distinct step size
        costs one decay-vector lookup and one fused broadcast.
        """
        stacked = np.asarray(core_power_w, dtype=float)
        if stacked.ndim == 1:
            stacked = stacked[None, :]
        if cells is None:
            idx = np.arange(self.n_cells)
        else:
            idx = np.asarray(cells, dtype=np.intp)
        if stacked.shape != (idx.shape[0], self._n_cores):
            raise ValueError(
                f"expected ({idx.shape[0]}, {self._n_cores}) stacked powers, "
                f"got shape {stacked.shape}"
            )
        taus = np.asarray(tau_s, dtype=float)
        if taus.ndim == 0:
            groups = [(float(taus), np.arange(idx.shape[0]))]
        else:
            if taus.shape != (idx.shape[0],):
                raise ValueError(
                    f"expected scalar or ({idx.shape[0]},) taus, "
                    f"got shape {taus.shape}"
                )
            # group by unique tau in first-seen order (deterministic)
            order: Dict[float, List[int]] = {}
            for pos, value in enumerate(taus):
                order.setdefault(float(value), []).append(pos)
            groups = [
                (value, np.asarray(positions, dtype=np.intp))
                for value, positions in order.items()
            ]
        for tau, positions in groups:
            rows = idx[positions]
            steady = self.dynamics.steady_coeffs_batch(stacked[positions])
            decay = self.dynamics.decay_vector(tau)
            # one fused broadcast per tau group: elementwise only, so each
            # row is byte-identical to the scalar state's (N,) expression
            self._coeffs[rows] = steady + decay[None, :] * (
                self._coeffs[rows] - steady
            )
            self.fused_updates += 1
            self.rows_stepped += int(rows.shape[0])
        for cell in idx:
            self._core_cache[cell] = None
            self._node_cache[cell] = None
        self.steps[idx] += 1

    # -- lazy projections ----------------------------------------------------

    def core_temperatures(self, cell: int) -> np.ndarray:
        """One cell's core temperatures [degC] (lazy, cached, frozen)."""
        if self._core_cache[cell] is None:
            v_core = self.dynamics.eigenvectors[: self._n_cores]
            projected = self._ambient[cell] + v_core @ self._coeffs[cell]
            projected.flags.writeable = False
            self._core_cache[cell] = projected
        return self._core_cache[cell]

    def node_temperatures(self, cell: int) -> np.ndarray:
        """One cell's node temperatures [degC] (lazy, cached, frozen)."""
        if self._node_cache[cell] is None:
            projected = (
                self._ambient[cell]
                + self.dynamics.eigenvectors @ self._coeffs[cell]
            )
            projected.flags.writeable = False
            self._node_cache[cell] = projected
        return self._node_cache[cell]

    # -- detach --------------------------------------------------------------

    def detach(self, cell: int) -> SpectralThermalState:
        """Remove one cell and return it as a scalar state (bit-exact).

        The remaining rows compact downward, so indices above ``cell``
        shift by one — callers that hold per-cell indices must remap
        (``BatchedSimulatorSet`` does).
        """
        state = SpectralThermalState.from_coefficients(
            self.dynamics,
            self._ambient[cell],
            self._coeffs[cell],
            steps=int(self.steps[cell]),
        )
        self._coeffs = np.delete(self._coeffs, cell, axis=0)
        self._ambient = np.delete(self._ambient, cell)
        self.steps = np.delete(self.steps, cell)
        del self._core_cache[cell]
        del self._node_cache[cell]
        self.detached += 1
        return state

"""Grid floorplan of a many-core die.

The paper's platform is a mesh of micro-architecturally homogeneous cores,
each occupying 0.81 mm^2 (Table I).  The floorplan assigns each core a square
block in a ``width x height`` grid and exposes the geometric queries the RC
thermal model needs: block positions, areas and adjacency (which blocks share
an edge and therefore exchange heat laterally).

Core numbering is row-major, matching Fig. 1 of the paper: core 0 is the
top-left corner, core ``width-1`` the top-right, and core
``width*height - 1`` the bottom-right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .. import units


@dataclass(frozen=True)
class CoreBlock:
    """One square core block in the floorplan."""

    core_id: int
    row: int
    col: int
    #: centre coordinates in metres
    x_m: float
    y_m: float
    edge_m: float

    @property
    def area_m2(self) -> float:
        """Silicon area of the block."""
        return self.edge_m * self.edge_m


class Floorplan:
    """A ``width x height`` grid of square core blocks.

    Parameters
    ----------
    width, height:
        Mesh dimensions in cores.
    core_area_m2:
        Area of one core block; Table I uses ``0.81 mm^2``.
    """

    def __init__(self, width: int, height: int, core_area_m2: float = units.mm2(0.81)):
        if width < 1 or height < 1:
            raise ValueError("floorplan dimensions must be at least 1x1")
        if core_area_m2 <= 0:
            raise ValueError("core area must be positive")
        self.width = width
        self.height = height
        self.core_area_m2 = core_area_m2
        self.core_edge_m = math.sqrt(core_area_m2)
        self._blocks: List[CoreBlock] = []
        for row in range(height):
            for col in range(width):
                core_id = row * width + col
                self._blocks.append(
                    CoreBlock(
                        core_id=core_id,
                        row=row,
                        col=col,
                        x_m=(col + 0.5) * self.core_edge_m,
                        y_m=(row + 0.5) * self.core_edge_m,
                        edge_m=self.core_edge_m,
                    )
                )

    # -- basic queries --------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of core blocks."""
        return self.width * self.height

    @property
    def die_area_m2(self) -> float:
        """Total die area covered by core blocks."""
        return self.n_cores * self.core_area_m2

    def block(self, core_id: int) -> CoreBlock:
        """The block of core ``core_id``."""
        return self._blocks[core_id]

    def blocks(self) -> Iterator[CoreBlock]:
        """Iterate over all blocks in core-id order."""
        return iter(self._blocks)

    def core_at(self, row: int, col: int) -> int:
        """Core id at grid position ``(row, col)``."""
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise IndexError(f"({row}, {col}) outside {self.height}x{self.width} grid")
        return row * self.width + col

    def position(self, core_id: int) -> Tuple[int, int]:
        """Grid position ``(row, col)`` of core ``core_id``."""
        if not (0 <= core_id < self.n_cores):
            raise IndexError(f"core {core_id} outside 0..{self.n_cores - 1}")
        return divmod(core_id, self.width)

    # -- adjacency --------------------------------------------------------

    def neighbors(self, core_id: int) -> List[int]:
        """Cores sharing an edge with ``core_id`` (N, S, W, E order)."""
        row, col = self.position(core_id)
        result = []
        if row > 0:
            result.append(self.core_at(row - 1, col))
        if row < self.height - 1:
            result.append(self.core_at(row + 1, col))
        if col > 0:
            result.append(self.core_at(row, col - 1))
        if col < self.width - 1:
            result.append(self.core_at(row, col + 1))
        return result

    def lateral_pairs(self) -> List[Tuple[int, int]]:
        """All unordered adjacent core pairs ``(low_id, high_id)``."""
        pairs = []
        for core_id in range(self.n_cores):
            for other in self.neighbors(core_id):
                if other > core_id:
                    pairs.append((core_id, other))
        return pairs

    def is_boundary(self, core_id: int) -> bool:
        """True when the core sits on the die boundary."""
        row, col = self.position(core_id)
        return row in (0, self.height - 1) or col in (0, self.width - 1)

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.width}x{self.height}, "
            f"core_area={self.core_area_m2 * 1e6:.2f} mm^2)"
        )

"""Thermal substrate: floorplan, HotSpot-style RC model, MatEx solver.

This package implements the paper's Section III-B thermal model and the
transient machinery its peak-temperature method (Section IV) builds on.
"""

from .batched_state import BatchedSpectralState
from .calibrate import (
    HOT_THREAD_POWER_W,
    MOTIVATIONAL_PEAK_C,
    UNIFORM_SUSTAINABLE_POWER_W,
    calibrated_model,
    calibrated_stack,
)
from .floorplan import CoreBlock, Floorplan
from .matex import ThermalDynamics
from .rc_model import MaterialStack, RCThermalModel, build_rc_model
from .spectral_state import SpectralThermalState
from .steady_state import (
    heat_distribution_matrix,
    steady_core_temperatures,
    steady_peak,
    sustainable_uniform_power,
    uniform_power_response,
)
from .trace import ThermalTrace

__all__ = [
    "BatchedSpectralState",
    "CoreBlock",
    "Floorplan",
    "MaterialStack",
    "RCThermalModel",
    "SpectralThermalState",
    "ThermalDynamics",
    "ThermalTrace",
    "build_rc_model",
    "calibrated_model",
    "calibrated_stack",
    "heat_distribution_matrix",
    "steady_core_temperatures",
    "steady_peak",
    "sustainable_uniform_power",
    "uniform_power_response",
    "HOT_THREAD_POWER_W",
    "MOTIVATIONAL_PEAK_C",
    "UNIFORM_SUSTAINABLE_POWER_W",
]

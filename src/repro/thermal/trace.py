"""Thermal trace recording and statistics.

A :class:`ThermalTrace` collects time-stamped per-core temperature samples
during a simulation (or an analytical sweep) and answers the questions the
paper's figures ask: peak temperature, threshold violations, and per-core
series (Fig. 2 plots exactly such traces).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class ThermalTrace:
    """An append-only series of per-core temperature samples."""

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self._times: List[float] = []
        self._temps: List[np.ndarray] = []

    def record(self, time_s: float, core_temps_c: Sequence[float]) -> None:
        """Append one sample; times must be non-decreasing."""
        temps = np.asarray(core_temps_c, dtype=float)
        if temps.shape != (self.n_cores,):
            raise ValueError(
                f"expected {self.n_cores} temperatures, got shape {temps.shape}"
            )
        if self._times and time_s < self._times[-1]:
            raise ValueError("trace times must be non-decreasing")
        self._times.append(float(time_s))
        self._temps.append(temps.copy())

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample times [s], shape ``(samples,)``."""
        return np.array(self._times)

    @property
    def temperatures(self) -> np.ndarray:
        """Samples, shape ``(samples, n_cores)``."""
        if not self._temps:
            return np.empty((0, self.n_cores))
        return np.vstack(self._temps)

    def core_series(self, core_id: int) -> np.ndarray:
        """Temperature series of one core."""
        if not (0 <= core_id < self.n_cores):
            raise IndexError(f"core {core_id} out of range")
        return self.temperatures[:, core_id]

    # -- statistics ------------------------------------------------------------

    def peak(self) -> float:
        """Hottest temperature of any core at any sample."""
        if not self._temps:
            raise ValueError("trace is empty")
        return float(np.max(self.temperatures))

    def peak_per_core(self) -> np.ndarray:
        """Per-core maximum over time."""
        if not self._temps:
            raise ValueError("trace is empty")
        return np.max(self.temperatures, axis=0)

    def hottest_core(self) -> int:
        """Core that reaches the trace's peak temperature."""
        return int(np.argmax(self.peak_per_core()))

    def exceeds(self, threshold_c: float) -> bool:
        """True when any sample exceeds ``threshold_c``."""
        return len(self) > 0 and self.peak() > threshold_c

    def time_above(self, threshold_c: float) -> float:
        """Total time any core spends above ``threshold_c``.

        Integrated with a right-continuous (sample-and-hold) rule over the
        sample intervals, matching how interval simulators hold temperatures
        between samples.
        """
        if len(self) < 2:
            return 0.0
        times = self.times
        hot = np.max(self.temperatures, axis=1) > threshold_c
        return float(np.sum(np.diff(times)[hot[:-1]]))

    def violations(self, threshold_c: float) -> List[Tuple[float, int, float]]:
        """All samples above threshold as ``(time, core, temperature)``."""
        result = []
        temps = self.temperatures
        for idx, time_s in enumerate(self._times):
            over = np.nonzero(temps[idx] > threshold_c)[0]
            for core in over:
                result.append((time_s, int(core), float(temps[idx, core])))
        return result

    def window(self, t_start_s: float, t_end_s: float) -> "ThermalTrace":
        """Sub-trace restricted to ``[t_start_s, t_end_s]``."""
        sub = ThermalTrace(self.n_cores)
        for time_s, temps in zip(self._times, self._temps):
            if t_start_s <= time_s <= t_end_s:
                sub.record(time_s, temps)
        return sub

    def render_ascii(
        self,
        core_ids: Optional[Sequence[int]] = None,
        width: int = 72,
        height: int = 16,
        threshold_c: Optional[float] = None,
    ) -> str:
        """Plain-text plot of selected core series (for terminal reports)."""
        if not self._temps:
            return "(empty trace)"
        if core_ids is None:
            core_ids = [self.hottest_core()]
        temps = self.temperatures
        t_lo = float(np.min(temps[:, core_ids]))
        t_hi = float(np.max(temps[:, core_ids]))
        if threshold_c is not None:
            t_lo = min(t_lo, threshold_c)
            t_hi = max(t_hi, threshold_c)
        if t_hi - t_lo < 1e-9:
            t_hi = t_lo + 1.0
        grid = [[" "] * width for _ in range(height)]
        times = self.times
        t_span = max(times[-1] - times[0], 1e-12)
        marks = "0123456789"
        for series_idx, core in enumerate(core_ids):
            mark = marks[series_idx % len(marks)]
            for time_s, temp in zip(times, temps[:, core]):
                x = int((time_s - times[0]) / t_span * (width - 1))
                y = int((temp - t_lo) / (t_hi - t_lo) * (height - 1))
                grid[height - 1 - y][x] = mark
        if threshold_c is not None:
            y = int((threshold_c - t_lo) / (t_hi - t_lo) * (height - 1))
            row = grid[height - 1 - y]
            for x in range(width):
                if row[x] == " ":
                    row[x] = "-"
        lines = [
            f"{t_hi:7.2f} C |" + "".join(grid[0]),
        ]
        lines += ["          |" + "".join(row) for row in grid[1:-1]]
        lines.append(f"{t_lo:7.2f} C |" + "".join(grid[-1]))
        lines.append(
            "          +"
            + "-" * width
            + f"  t in [{times[0]*1e3:.1f}, {times[-1]*1e3:.1f}] ms"
        )
        legend = ", ".join(
            f"{marks[i % len(marks)]}=core {core}" for i, core in enumerate(core_ids)
        )
        lines.append(f"           {legend}")
        return "\n".join(lines)

"""Analysis utilities: scheduler comparisons and die heat maps."""

from .compare import PairedOutcome, run_pair, seed_averaged_speedup
from .heatmap import hotspot_report, render_heatmap

__all__ = [
    "PairedOutcome",
    "hotspot_report",
    "render_heatmap",
    "run_pair",
    "seed_averaged_speedup",
]

"""Die heat maps: render per-core temperatures on the floorplan grid.

Text-mode visualization of what HotSpot plots graphically — the spatial
temperature distribution the paper's figures (and HotPotato's ring logic)
reason about.  Used by examples and reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Intensity ramp from cold to hot.
_RAMP = " .:-=+*#%@"


def render_heatmap(
    core_temps_c: Sequence[float],
    width: int,
    height: int,
    t_min_c: Optional[float] = None,
    t_max_c: Optional[float] = None,
    threshold_c: Optional[float] = None,
    show_values: bool = False,
) -> str:
    """ASCII heat map of a ``width x height`` die.

    Cores above ``threshold_c`` are marked with ``!`` regardless of ramp.
    With ``show_values`` each cell prints its temperature instead of a
    ramp glyph.
    """
    temps = np.asarray(core_temps_c, dtype=float)
    if temps.shape != (width * height,):
        raise ValueError(
            f"expected {width * height} temperatures, got {temps.shape}"
        )
    lo = float(np.min(temps)) if t_min_c is None else t_min_c
    hi = float(np.max(temps)) if t_max_c is None else t_max_c
    span = max(hi - lo, 1e-9)

    lines = []
    for row in range(height):
        cells = []
        for col in range(width):
            temp = temps[row * width + col]
            if show_values:
                cell = f"{temp:5.1f}"
                if threshold_c is not None and temp > threshold_c:
                    cell += "!"
                cells.append(cell)
            else:
                if threshold_c is not None and temp > threshold_c:
                    cells.append("!")
                else:
                    idx = int((temp - lo) / span * (len(_RAMP) - 1))
                    cells.append(_RAMP[min(max(idx, 0), len(_RAMP) - 1)])
        lines.append(" ".join(cells))
    legend = f"[{lo:.1f} C '{_RAMP[0]}' .. {hi:.1f} C '{_RAMP[-1]}']"
    if threshold_c is not None:
        legend += f"  '!' > {threshold_c:.1f} C"
    lines.append(legend)
    return "\n".join(lines)


def hotspot_report(
    core_temps_c: Sequence[float], width: int, height: int, top_n: int = 3
) -> str:
    """The ``top_n`` hottest cores with their grid positions."""
    temps = np.asarray(core_temps_c, dtype=float)
    if temps.shape != (width * height,):
        raise ValueError("temperature vector does not match the grid")
    if top_n < 1:
        raise ValueError("top_n must be positive")
    order = np.argsort(temps)[::-1][:top_n]
    lines = []
    for rank, core in enumerate(order, start=1):
        row, col = divmod(int(core), width)
        lines.append(
            f"#{rank}: core {int(core)} (row {row}, col {col}) "
            f"at {temps[core]:.2f} C"
        )
    return "\n".join(lines)

"""Scheduler-comparison utilities.

Aggregates :class:`~repro.sim.metrics.SimulationResult` objects across
benchmarks/seeds into the normalized tables the paper's Fig. 4 reports, and
provides seed-averaged campaign helpers for robustness studies beyond the
paper's single-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..sched.base import Scheduler
from ..sim.context import SimContext
from ..sim.engine import IntervalSimulator
from ..sim.metrics import SimulationResult
from ..workload.generator import TaskSpec, materialize


@dataclass(frozen=True)
class PairedOutcome:
    """Two schedulers on the same workload."""

    label: str
    baseline: SimulationResult
    candidate: SimulationResult

    @property
    def makespan_speedup_pct(self) -> float:
        """Baseline over candidate makespan, minus one, in percent."""
        return (self.baseline.makespan_s / self.candidate.makespan_s - 1) * 100

    @property
    def response_speedup_pct(self) -> float:
        """Baseline over candidate mean response, minus one, in percent."""
        return (
            self.baseline.mean_response_time_s
            / self.candidate.mean_response_time_s
            - 1
        ) * 100


def run_pair(
    config: SystemConfig,
    make_baseline: Callable[[], Scheduler],
    make_candidate: Callable[[], Scheduler],
    specs: Sequence[TaskSpec],
    label: str = "",
    shared_ctx: Optional[SimContext] = None,
    max_time_s: float = 10.0,
    **sim_kwargs,
) -> PairedOutcome:
    """Run two schedulers on identical workloads and pair the outcomes.

    Each scheduler gets freshly materialized tasks (task objects are
    stateful) and a fresh :class:`SimContext` sharing one calibrated thermal
    model.
    """
    shared = shared_ctx if shared_ctx is not None else SimContext(config)
    results = []
    for factory in (make_baseline, make_candidate):
        sim = IntervalSimulator(
            config,
            factory(),
            materialize(list(specs)),
            ctx=SimContext(config, shared.thermal_model),
            **sim_kwargs,
        )
        results.append(sim.run(max_time_s=max_time_s))
    return PairedOutcome(label=label, baseline=results[0], candidate=results[1])


def seed_averaged_speedup(
    config: SystemConfig,
    make_baseline: Callable[[], Scheduler],
    make_candidate: Callable[[], Scheduler],
    make_specs: Callable[[int], Sequence[TaskSpec]],
    seeds: Sequence[int],
    metric: str = "makespan",
    shared_ctx: Optional[SimContext] = None,
    max_time_s: float = 10.0,
) -> Dict[str, float]:
    """Speedup statistics across workload seeds.

    Returns ``{"mean": .., "std": .., "min": .., "max": ..}`` of the
    percentage speedup; ``metric`` selects makespan or mean response time.
    """
    if metric not in ("makespan", "response"):
        raise ValueError("metric must be 'makespan' or 'response'")
    shared = shared_ctx if shared_ctx is not None else SimContext(config)
    speedups: List[float] = []
    for seed in seeds:
        outcome = run_pair(
            config,
            make_baseline,
            make_candidate,
            make_specs(seed),
            label=f"seed={seed}",
            shared_ctx=shared,
            max_time_s=max_time_s,
            record_trace=False,
        )
        speedups.append(
            outcome.makespan_speedup_pct
            if metric == "makespan"
            else outcome.response_speedup_pct
        )
    values = np.array(speedups)
    return {
        "mean": float(np.mean(values)),
        "std": float(np.std(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
    }

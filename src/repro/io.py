"""Result and trace serialization.

Plain-text interchange for downstream analysis/plotting outside this
package: thermal traces as CSV, simulation results as JSON.  Round-trip
loaders are provided so recorded campaigns can be re-analyzed without
re-simulating.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path
from typing import Union

import numpy as np

from .sim.metrics import SimulationResult, TaskRecord
from .thermal.trace import ThermalTrace

PathLike = Union[str, Path]


# -- thermal traces <-> CSV ----------------------------------------------------


def trace_to_csv(trace: ThermalTrace) -> str:
    """Serialize a trace: header ``time_s,core0,...``, one row per sample."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s"] + [f"core{i}" for i in range(trace.n_cores)])
    temps = trace.temperatures
    for time_s, row in zip(trace.times, temps):
        writer.writerow([repr(float(time_s))] + [repr(float(t)) for t in row])
    return buffer.getvalue()


def trace_from_csv(text: str) -> ThermalTrace:
    """Parse a trace written by :func:`trace_to_csv`."""
    reader = csv.reader(_io.StringIO(text))
    header = next(reader, None)
    if not header or header[0] != "time_s":
        raise ValueError("not a thermal-trace CSV (missing 'time_s' header)")
    n_cores = len(header) - 1
    if n_cores < 1:
        raise ValueError("trace CSV has no core columns")
    trace = ThermalTrace(n_cores)
    for row in reader:
        if not row:
            continue
        if len(row) != n_cores + 1:
            raise ValueError(f"row width {len(row)} != {n_cores + 1}")
        trace.record(float(row[0]), np.array([float(v) for v in row[1:]]))
    return trace


def save_trace(trace: ThermalTrace, path: PathLike) -> None:
    """Write a trace CSV to ``path``."""
    Path(path).write_text(trace_to_csv(trace))


def load_trace(path: PathLike) -> ThermalTrace:
    """Read a trace CSV from ``path``."""
    return trace_from_csv(Path(path).read_text())


# -- simulation results <-> JSON ---------------------------------------------------


def result_to_dict(result: SimulationResult, include_trace: bool = False) -> dict:
    """Plain-dict form of a result (JSON-serializable)."""
    data = {
        "scheduler": result.scheduler_name,
        "sim_time_s": result.sim_time_s,
        "tasks": [
            {
                "task_id": t.task_id,
                "benchmark": t.benchmark,
                "n_threads": t.n_threads,
                "arrival_s": t.arrival_s,
                "completion_s": t.completion_s,
            }
            for t in result.tasks
        ],
        "dtm_triggers": result.dtm_triggers,
        "dtm_core_time_s": result.dtm_core_time_s,
        "migration_count": result.migration_count,
        "migration_penalty_s": result.migration_penalty_s,
        "energy_j": result.energy_j,
        "scheduler_wall_time_s": result.scheduler_wall_time_s,
        "scheduler_invocations": result.scheduler_invocations,
        "annotations": dict(result.annotations),
    }
    if result.energy_per_core_j:
        data["energy_per_core_j"] = list(result.energy_per_core_j)
    if result.instructions_retired:
        data["instructions_retired"] = result.instructions_retired
    if result.metrics_snapshot:
        data["metrics_snapshot"] = dict(result.metrics_snapshot)
    if result.profile:
        data["profile"] = {k: dict(v) for k, v in result.profile.items()}
    if include_trace and result.trace is not None:
        data["trace_csv"] = trace_to_csv(result.trace)
    return data


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    trace = None
    if "trace_csv" in data:
        trace = trace_from_csv(data["trace_csv"])
    return SimulationResult(
        scheduler_name=data["scheduler"],
        sim_time_s=data["sim_time_s"],
        tasks=[
            TaskRecord(
                task_id=t["task_id"],
                benchmark=t["benchmark"],
                n_threads=t["n_threads"],
                arrival_s=t["arrival_s"],
                completion_s=t["completion_s"],
            )
            for t in data["tasks"]
        ],
        trace=trace,
        dtm_triggers=data["dtm_triggers"],
        dtm_core_time_s=data["dtm_core_time_s"],
        migration_count=data["migration_count"],
        migration_penalty_s=data["migration_penalty_s"],
        energy_j=data["energy_j"],
        energy_per_core_j=[
            float(e) for e in data.get("energy_per_core_j", [])
        ],
        instructions_retired=float(data.get("instructions_retired", 0.0)),
        scheduler_wall_time_s=data["scheduler_wall_time_s"],
        scheduler_invocations=data["scheduler_invocations"],
        annotations=dict(data.get("annotations", {})),
        metrics_snapshot=dict(data.get("metrics_snapshot", {})),
        profile={
            k: dict(v) for k, v in data.get("profile", {}).items()
        },
    )


def save_result(
    result: SimulationResult, path: PathLike, include_trace: bool = False
) -> None:
    """Write a result JSON to ``path``."""
    Path(path).write_text(
        json.dumps(result_to_dict(result, include_trace), indent=2)
    )


def load_result(path: PathLike) -> SimulationResult:
    """Read a result JSON from ``path``."""
    return result_from_dict(json.loads(Path(path).read_text()))


# -- metrics snapshots -----------------------------------------------------------


def load_metrics_snapshot(path: PathLike) -> dict:
    """Load a flat ``name -> float`` metrics snapshot from a JSON file.

    Accepts both artifact shapes this package writes: a bare snapshot
    object (``MetricsRegistry.save``/``to_json``) and a full result JSON
    (:func:`save_result`), from which the embedded ``metrics_snapshot`` is
    extracted.  Used by the ``repro.obs diff``/``export`` CLI.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "metrics_snapshot" in data:
        data = data["metrics_snapshot"]
    elif "scheduler" in data and "sim_time_s" in data:
        raise ValueError(
            f"{path}: result JSON carries no metrics_snapshot "
            "(was the run executed with metrics enabled?)"
        )
    bad = [k for k, v in data.items() if not isinstance(v, (int, float))]
    if bad:
        raise ValueError(
            f"{path}: not a flat metrics snapshot "
            f"(non-numeric entries: {sorted(bad)[:3]})"
        )
    return {str(k): float(v) for k, v in sorted(data.items())}

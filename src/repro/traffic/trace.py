"""Replayable JSONL arrival traces.

Format (one JSON object per line, keys sorted — the ``repro.io``
conventions used by the checkpoint and trace-recorder files):

- a header line
  ``{"kind": "repro-arrival-trace", "n": <count>, "version": 1}``;
- one record per arrival, sorted by time::

      {"benchmark": "canneal", "n_threads": 4, "seed": 17,
       "time_s": 0.0125, "work_scale": 1.0, "qos": {...}?}

The declared ``n`` makes torn tails detectable: a writer crash (or a
truncating copy) leaves fewer records than the header promises, and the
loader refuses the file instead of silently replaying a shortened
schedule.  Timestamps must be non-decreasing — the engine's arrival queue
and the ordering contract of
:func:`repro.workload.generator.materialize` both depend on it — so
non-monotonic traces are rejected too.

Round-trips are exact: floats are serialized with ``repr`` precision, so
``load_arrival_trace(write_arrival_trace(specs))`` reproduces arrival
times bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from ..workload.benchmarks import parsec_profile
from ..workload.generator import TaskSpec
from ..workload.qos import QosSpec

PathLike = Union[str, Path]

#: Discriminator in the header line.
ARRIVAL_TRACE_KIND = "repro-arrival-trace"
#: Format version written (and the only one accepted).
ARRIVAL_TRACE_VERSION = 1


def write_arrival_trace(path: PathLike, specs: Sequence[TaskSpec]) -> None:
    """Write a spec list as a JSONL arrival trace (sorted by arrival)."""
    ordered = sorted(specs, key=lambda s: s.arrival_time_s)
    lines = [
        json.dumps(
            {
                "kind": ARRIVAL_TRACE_KIND,
                "n": len(ordered),
                "version": ARRIVAL_TRACE_VERSION,
            },
            sort_keys=True,
        )
    ]
    for spec in ordered:
        record = {
            "benchmark": spec.profile.name,
            "n_threads": spec.n_threads,
            "seed": spec.seed,
            "time_s": spec.arrival_time_s,
            "work_scale": spec.work_scale,
        }
        if spec.qos is not None:
            record["qos"] = spec.qos.to_dict()
        lines.append(json.dumps(record, sort_keys=True))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def _fail(path: PathLike, line_no: int, reason: str) -> ValueError:
    return ValueError(f"{path}:{line_no}: {reason}")


def load_arrival_trace(path: PathLike) -> List[TaskSpec]:
    """Load a JSONL arrival trace back into a spec list.

    Rejects, with errors naming the file and line:

    - files whose header is missing or not an arrival-trace header;
    - torn tails — a record count short of the header's ``n``, a final
      line without its newline, or a line of broken JSON;
    - non-monotonic or negative timestamps;
    - records with missing fields or out-of-range values.
    """
    text = Path(path).read_text(encoding="utf-8")
    if not text:
        raise ValueError(f"{path}: empty file is not an arrival trace")
    if not text.endswith("\n"):
        raise ValueError(
            f"{path}: torn tail — the last line is missing its newline "
            "(the writer was interrupted mid-record)"
        )
    lines = text.splitlines()
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise _fail(path, 1, f"broken JSON in header: {error}") from None
    if (
        not isinstance(header, dict)
        or header.get("kind") != ARRIVAL_TRACE_KIND
    ):
        raise _fail(
            path, 1, f"not an arrival trace (expected kind={ARRIVAL_TRACE_KIND!r})"
        )
    if header.get("version") != ARRIVAL_TRACE_VERSION:
        raise _fail(
            path,
            1,
            f"unsupported trace version {header.get('version')!r} "
            f"(this reader supports {ARRIVAL_TRACE_VERSION})",
        )
    declared = header.get("n")
    if not isinstance(declared, int) or declared < 0:
        raise _fail(path, 1, f"invalid record count {declared!r} in header")
    records = lines[1:]
    if len(records) != declared:
        raise ValueError(
            f"{path}: torn tail — header declares {declared} records, "
            f"found {len(records)}"
        )
    specs: List[TaskSpec] = []
    previous_time = None
    for offset, line in enumerate(records):
        line_no = offset + 2
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise _fail(
                path, line_no, f"torn or corrupt record: {error}"
            ) from None
        if not isinstance(data, dict):
            raise _fail(path, line_no, "record is not a JSON object")
        missing = {"benchmark", "n_threads", "time_s"} - set(data)
        if missing:
            raise _fail(
                path, line_no, f"record missing fields {sorted(missing)}"
            )
        time_s = float(data["time_s"])
        if time_s < 0:
            raise _fail(path, line_no, f"negative timestamp {time_s!r}")
        if previous_time is not None and time_s < previous_time:
            raise _fail(
                path,
                line_no,
                f"non-monotonic timestamp: {time_s!r} after {previous_time!r}",
            )
        previous_time = time_s
        n_threads = int(data["n_threads"])
        if n_threads < 1:
            raise _fail(path, line_no, f"invalid thread count {n_threads}")
        qos = None
        if data.get("qos") is not None:
            try:
                qos = QosSpec.from_dict(data["qos"])
            except (TypeError, ValueError) as error:
                raise _fail(
                    path, line_no, f"invalid QoS annotation: {error}"
                ) from None
        try:
            profile = parsec_profile(str(data["benchmark"]))
        except KeyError:
            raise _fail(
                path, line_no, f"unknown benchmark {data['benchmark']!r}"
            ) from None
        specs.append(
            TaskSpec(
                profile=profile,
                n_threads=n_threads,
                arrival_time_s=time_s,
                seed=int(data.get("seed", 0)),
                work_scale=float(data.get("work_scale", 1.0)),
                qos=qos,
            )
        )
    return specs

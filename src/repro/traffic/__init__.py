"""Open-system traffic: arrival processes, QoS streams, replayable traces.

See ``docs/traffic.md``.  The package is held to the lint determinism
family (``DETERMINISTIC_MODULES``): every arrival schedule is a pure
function of its seed.
"""

from .processes import (
    TRAFFIC_PATTERNS,
    ArrivalProcess,
    Burst,
    DiurnalProcess,
    FlashCrowd,
    PoissonProcess,
    TraceReplay,
    assign_arrivals,
    build_process,
)
from .trace import (
    ARRIVAL_TRACE_KIND,
    ARRIVAL_TRACE_VERSION,
    load_arrival_trace,
    write_arrival_trace,
)

__all__ = [
    "ARRIVAL_TRACE_KIND",
    "ARRIVAL_TRACE_VERSION",
    "ArrivalProcess",
    "Burst",
    "DiurnalProcess",
    "FlashCrowd",
    "PoissonProcess",
    "TRAFFIC_PATTERNS",
    "TraceReplay",
    "assign_arrivals",
    "build_process",
    "load_arrival_trace",
    "write_arrival_trace",
]

"""Composable deterministic arrival processes for the open system.

The paper's Fig. 4b drives the chip with a single homogeneous Poisson
stream; real serving traffic is not that kind.  This module provides the
arrival-time side of ``repro.traffic``:

- :class:`PoissonProcess` — homogeneous Poisson (exponential gaps);
  byte-identical to the legacy
  :func:`repro.workload.generator.poisson_arrivals` draw for the same
  seed and rate.
- :class:`DiurnalProcess` — non-homogeneous Poisson with a sinusoidal
  (day/night) rate, sampled by Lewis-Shedler thinning: candidates are
  drawn at the peak rate and accepted with probability
  ``rate(t) / peak``, so the instantaneous rate never exceeds the peak
  and accepted arrivals are a subset of the candidate stream.
- :class:`FlashCrowd` — a burst overlay: deterministic burst arrivals
  (per-burst Poisson counts, uniform within the burst window) merged
  into any base process.  Zero-rate bursts contribute nothing, making
  the overlay *bit-for-bit* identical to its base — the metamorphic
  property the test suite pins.
- :class:`TraceReplay` — arrivals replayed verbatim from a recorded
  schedule (see :mod:`repro.traffic.trace` for the JSONL format).

Every process is a pure function of ``(n, seed)``; the shared-generator
entry point :meth:`ArrivalProcess.sample_times` exists so callers that
interleave other draws on one generator (the serve load generator) keep
their existing byte-exact tapes.

:func:`assign_arrivals` stamps sampled times onto
:class:`~repro.workload.generator.TaskSpec` lists following the ordering
contract of :func:`repro.workload.generator.materialize`: the result is
sorted by arrival time, so list position == task id.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..workload.generator import TaskSpec

#: Stream-derivation tag for per-burst RNG streams: keeps burst draws
#: independent of the base process's generator state.
_BURST_STREAM_TAG = 0xB0057

#: Registered pattern names for :func:`build_process`.
TRAFFIC_PATTERNS = ("poisson", "diurnal", "flash-crowd", "trace")


class ArrivalProcess(abc.ABC):
    """A deterministic source of non-decreasing arrival times."""

    name = "process"

    @abc.abstractmethod
    def sample_times(
        self, n: int, rng: np.random.Generator, seed: int = 0
    ) -> np.ndarray:
        """Draw ``n`` arrival times [s] using the caller's generator.

        ``rng`` drives the base stream (callers interleaving other draws
        on the same generator — the serve loadgen — keep their existing
        tapes); ``seed`` derives any *independent* side streams (burst
        overlays), so it must match the seed used for ``rng`` when exact
        reproducibility across entry points matters.
        """

    def sample(self, n: int, seed: int = 0) -> np.ndarray:
        """Draw ``n`` arrival times [s] as a pure function of ``seed``.

        Validates the contract every process promises: shape ``(n,)``,
        finite, non-negative, non-decreasing.
        """
        if n < 0:
            raise ValueError("cannot sample a negative number of arrivals")
        times = np.asarray(
            self.sample_times(n, np.random.default_rng(seed), seed),
            dtype=float,
        )
        if times.shape != (n,):
            raise ValueError(
                f"{self.name}: expected {n} arrivals, got shape {times.shape}"
            )
        if n and not np.all(np.isfinite(times)):
            raise ValueError(f"{self.name}: non-finite arrival time")
        if n and float(times[0]) < 0.0:
            raise ValueError(f"{self.name}: negative arrival time")
        if n > 1 and np.any(np.diff(times) < 0):
            raise ValueError(f"{self.name}: arrival times decreased")
        return times


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals (exponential inter-arrival gaps)."""

    name = "poisson"

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_per_s = float(rate_per_s)

    def sample_times(
        self, n: int, rng: np.random.Generator, seed: int = 0
    ) -> np.ndarray:
        # one vectorized exponential draw + cumsum: exactly the legacy
        # poisson_arrivals / loadgen tape, so those callers stay byte-exact
        gaps = rng.exponential(1.0 / self.rate_per_s, size=n)
        return np.cumsum(gaps)


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal-rate (diurnal) arrivals via Lewis-Shedler thinning.

    The instantaneous rate is::

        rate(t) = base * (1 + amplitude * sin(2 pi t / period + phase))

    bounded above by ``peak_rate_per_s = base * (1 + amplitude)``.
    Candidates arrive as a homogeneous Poisson stream at the peak rate;
    each is accepted with probability ``rate(t) / peak``.  Thinning can
    only *remove* candidates, which is what keeps the realized rate at or
    below the peak — the property the test suite checks through
    :meth:`thinning_trace`.
    """

    name = "diurnal"

    def __init__(
        self,
        base_rate_per_s: float,
        amplitude: float = 0.5,
        period_s: float = 10.0,
        phase_rad: float = 0.0,
    ) -> None:
        if base_rate_per_s <= 0:
            raise ValueError("base arrival rate must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must lie in [0, 1]")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.base_rate_per_s = float(base_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_rad = float(phase_rad)

    @property
    def peak_rate_per_s(self) -> float:
        """The thinning envelope: the largest instantaneous rate."""
        return self.base_rate_per_s * (1.0 + self.amplitude)

    def rate_at(self, t_s: float) -> float:
        """Instantaneous arrival rate [1/s] at time ``t_s``."""
        angle = 2.0 * math.pi * t_s / self.period_s + self.phase_rad
        return self.base_rate_per_s * (1.0 + self.amplitude * math.sin(angle))

    def _thin(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[List[float], List[bool]]:
        """Run thinning until ``n`` acceptances; returns (candidates, mask)."""
        peak = self.peak_rate_per_s
        candidates: List[float] = []
        accepted_mask: List[bool] = []
        accepted = 0
        t = 0.0
        while accepted < n:
            t += float(rng.exponential(1.0 / peak))
            keep = float(rng.random()) * peak < self.rate_at(t)
            candidates.append(t)
            accepted_mask.append(keep)
            if keep:
                accepted += 1
        return candidates, accepted_mask

    def sample_times(
        self, n: int, rng: np.random.Generator, seed: int = 0
    ) -> np.ndarray:
        candidates, mask = self._thin(n, rng)
        return np.asarray(
            [t for t, keep in zip(candidates, mask) if keep], dtype=float
        )

    def thinning_trace(
        self, n: int, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The full candidate stream and acceptance mask for ``n`` arrivals.

        ``candidates[mask]`` equals :meth:`sample` for the same seed —
        the subset property the tests assert.
        """
        if n < 0:
            raise ValueError("cannot sample a negative number of arrivals")
        candidates, mask = self._thin(n, np.random.default_rng(seed))
        return np.asarray(candidates, dtype=float), np.asarray(mask, dtype=bool)


@dataclass(frozen=True)
class Burst:
    """One flash-crowd burst: a rate surge over a finite window."""

    start_s: float
    duration_s: float
    rate_per_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("burst start must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("burst duration must be positive")
        if self.rate_per_s < 0:
            raise ValueError("burst rate must be non-negative")


class FlashCrowd(ArrivalProcess):
    """A base process with extra burst arrivals overlaid.

    Burst arrivals are drawn from *independent* per-burst streams derived
    from ``(seed, burst index)`` — never from the base generator — so a
    zero-rate burst consumes no randomness and the overlay degenerates
    bit-for-bit to its base process (the metamorphic test anchor).  Of
    the ``n`` requested arrivals, the burst arrivals displace the tail of
    the base stream: the total count stays exactly ``n`` and the sorted
    merge is a superset of the base arrivals it kept.
    """

    name = "flash-crowd"

    def __init__(self, base: ArrivalProcess, bursts: Sequence[Burst]) -> None:
        self.base = base
        self.bursts = tuple(bursts)

    def burst_times(self, seed: int = 0) -> np.ndarray:
        """All burst arrivals [s], sorted — a pure function of ``seed``.

        Burst ``i`` contributes ``Poisson(rate * duration)`` arrivals
        placed uniformly in its window, from stream
        ``default_rng([seed, tag, i])``.
        """
        times: List[np.ndarray] = []
        for index, burst in enumerate(self.bursts):
            if burst.rate_per_s == 0.0:
                continue
            stream = np.random.default_rng([seed, _BURST_STREAM_TAG, index])
            count = int(stream.poisson(burst.rate_per_s * burst.duration_s))
            if count == 0:
                continue
            offsets = stream.uniform(0.0, burst.duration_s, size=count)
            times.append(burst.start_s + np.sort(offsets))
        if not times:
            return np.zeros(0, dtype=float)
        return np.sort(np.concatenate(times))

    def sample_times(
        self, n: int, rng: np.random.Generator, seed: int = 0
    ) -> np.ndarray:
        extra = self.burst_times(seed)
        n_extra = min(len(extra), n)
        base_times = self.base.sample_times(n - n_extra, rng, seed)
        if n_extra == 0:
            return base_times
        merged = np.concatenate([base_times, extra[:n_extra]])
        return np.sort(merged, kind="stable")


class TraceReplay(ArrivalProcess):
    """Arrivals replayed verbatim from a recorded schedule."""

    name = "trace"

    def __init__(self, times_s: Sequence[float]) -> None:
        times = np.asarray(list(times_s), dtype=float)
        if times.size and not np.all(np.isfinite(times)):
            raise ValueError("trace contains a non-finite arrival time")
        if times.size and float(times[0]) < 0.0:
            raise ValueError("trace contains a negative arrival time")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError("trace arrival times are non-monotonic")
        self.times_s = times

    @classmethod
    def from_file(cls, path) -> "TraceReplay":
        """Load the arrival times of a JSONL trace file."""
        from .trace import load_arrival_trace

        specs = load_arrival_trace(path)
        return cls([spec.arrival_time_s for spec in specs])

    def sample_times(
        self, n: int, rng: np.random.Generator, seed: int = 0
    ) -> np.ndarray:
        if n > len(self.times_s):
            raise ValueError(
                f"trace holds {len(self.times_s)} arrivals, {n} requested"
            )
        return self.times_s[:n].copy()


def build_process(
    pattern: str,
    rate_per_s: float,
    horizon_s: float = 10.0,
    amplitude: float = 0.5,
    period_s: Optional[float] = None,
    bursts: Optional[Sequence[Burst]] = None,
    trace_path=None,
) -> ArrivalProcess:
    """Construct a registered arrival process by name.

    ``horizon_s`` scales the defaults of the shaped patterns: the diurnal
    period defaults to a third of the horizon (so a sweep cell sees full
    cycles) and the default flash crowd is one 4x-rate burst over a tenth
    of the horizon, starting a quarter in.
    """
    if pattern not in TRAFFIC_PATTERNS:
        raise ValueError(
            f"unknown traffic pattern {pattern!r}; "
            f"choose from {TRAFFIC_PATTERNS}"
        )
    if pattern == "trace":
        if trace_path is None:
            raise ValueError("traffic pattern 'trace' requires a trace path")
        return TraceReplay.from_file(trace_path)
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if pattern == "poisson":
        return PoissonProcess(rate_per_s)
    if pattern == "diurnal":
        period = period_s if period_s is not None else horizon_s / 3.0
        return DiurnalProcess(rate_per_s, amplitude=amplitude, period_s=period)
    # flash-crowd
    if bursts is None:
        bursts = (
            Burst(
                start_s=0.25 * horizon_s,
                duration_s=0.1 * horizon_s,
                rate_per_s=4.0 * rate_per_s,
            ),
        )
    return FlashCrowd(PoissonProcess(rate_per_s), bursts)


def assign_arrivals(
    specs: Sequence[TaskSpec], process: ArrivalProcess, seed: int = 0
) -> List[TaskSpec]:
    """Stamp sampled arrival times onto a spec list, sorted by arrival.

    Spec ``i`` (input order) receives the ``i``-th arrival time; the
    result is then sorted by arrival time so that list position == the id
    :func:`repro.workload.generator.materialize` assigns (the ordering
    contract shared with
    :func:`repro.workload.generator.poisson_arrivals`).  Sampled times
    are non-decreasing, so the pairing of payloads to times survives the
    sort unchanged.
    """
    times = process.sample(len(specs), seed=seed)
    assigned = [
        replace(spec, arrival_time_s=float(at))
        for spec, at in zip(specs, times)
    ]
    return sorted(assigned, key=lambda s: s.arrival_time_s)

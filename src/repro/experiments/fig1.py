"""Fig. 1: the S-NUCA many-core abstraction with a synchronous rotation.

The paper's Fig. 1 sketches a 16-core S-NUCA chip — every core with its
private L1, its bank of the distributed shared LLC and an NoC router — and
the synchronous rotation of threads over the four centre cores.  This
module regenerates that sketch as text: the tile grid, and the rotation
cycle over the innermost AMD ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..arch.amd import AmdRings
from ..arch.topology import Mesh
from ..config import SystemConfig, motivational


@dataclass
class Fig1Report:
    """The architecture sketch."""

    grid_ascii: str
    rotation_cycle: Tuple[int, ...]
    n_cores: int

    def render(self) -> str:
        cycle = " -> ".join(f"C{c:02d}" for c in self.rotation_cycle)
        return (
            "Fig. 1: S-NUCA many-core abstraction "
            f"({self.n_cores} cores; each tile: core, private L1, "
            "shared-LLC bank, NoC router)\n\n"
            f"{self.grid_ascii}\n\n"
            f"synchronous thread rotation over the centre ring:\n"
            f"  {cycle} -> C{self.rotation_cycle[0]:02d} (period = ring size)"
        )


def run(config: SystemConfig = None) -> Fig1Report:
    """Regenerate the Fig. 1 sketch for ``config`` (default: 16 cores)."""
    cfg = config if config is not None else motivational()
    mesh = Mesh(cfg.mesh_width, cfg.mesh_height)
    rings = AmdRings(mesh)

    center = set(rings.ring(0))
    lines = []
    horizontal = ("+--------" * cfg.mesh_width) + "+"
    for row in range(cfg.mesh_height):
        lines.append(horizontal)
        top_cells = []
        bottom_cells = []
        for col in range(cfg.mesh_width):
            core = mesh.core_at(row, col)
            marker = "*" if core in center else " "
            top_cells.append(f"|{marker}C{core:02d} L1 ")
            bottom_cells.append(f"| $B{core:02d} R ")
        lines.append("".join(top_cells) + "|")
        lines.append("".join(bottom_cells) + "|")
    lines.append(horizontal)
    lines.append(
        "legend: Cxx core, L1 private cache, $Bxx shared-LLC bank, "
        "R NoC router, * rotation ring"
    )
    return Fig1Report(
        grid_ascii="\n".join(lines),
        rotation_cycle=tuple(rings.ring(0)),
        n_cores=cfg.n_cores,
    )

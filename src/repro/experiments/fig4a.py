"""Fig. 4(a): homogeneous-workload comparison, HotPotato vs PCMig.

The 64-core chip is fully loaded with vari-sized multi-threaded instances of
one benchmark (closed system, all arriving at t=0); the paper reports the
makespan of PCMig normalized to HotPotato's.  Published result: HotPotato is
on average 10.72 % faster, with the memory-bound, cold *canneal* showing the
smallest gain (0.73 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SystemConfig, table1
from ..io import result_from_dict, result_to_dict
from ..parallel import BatchedSweepRunner, Cell, run_cells
from ..sched.hotpotato_runtime import HotPotatoScheduler
from ..sched.pcmig import PCMigScheduler
from ..sim.context import SimContext
from ..sim.engine import IntervalSimulator
from ..sim.metrics import SimulationResult
from ..thermal.matex import ThermalDynamics
from ..thermal.rc_model import RCThermalModel
from ..workload.benchmarks import PARSEC
from ..workload.generator import homogeneous_fill, materialize
from .reporting import render_bar_chart, render_table

_SCHEDULERS = {"pcmig": PCMigScheduler, "hotpotato": HotPotatoScheduler}

#: Paper's headline numbers for comparison in reports.
PAPER_MEAN_SPEEDUP_PCT = 10.72
PAPER_CANNEAL_SPEEDUP_PCT = 0.73


@dataclass
class BenchmarkComparison:
    """One benchmark's HotPotato-vs-PCMig outcome."""

    benchmark: str
    hotpotato: SimulationResult
    pcmig: SimulationResult

    @property
    def speedup_pct(self) -> float:
        """PCMig makespan over HotPotato makespan, minus one, in percent."""
        return (self.pcmig.makespan_s / self.hotpotato.makespan_s - 1.0) * 100.0

    @property
    def normalized_makespan(self) -> float:
        """HotPotato makespan normalized to PCMig (the paper's y-axis)."""
        return self.hotpotato.makespan_s / self.pcmig.makespan_s


@dataclass
class Fig4aResult:
    """All benchmark comparisons."""

    comparisons: Dict[str, BenchmarkComparison]

    @property
    def mean_speedup_pct(self) -> float:
        """Average speedup across benchmarks (paper: 10.72 %)."""
        return float(
            np.mean([c.speedup_pct for c in self.comparisons.values()])
        )

    def render(self) -> str:
        rows = []
        for name, comp in self.comparisons.items():
            rows.append(
                (
                    name,
                    f"{comp.pcmig.makespan_s * 1e3:.1f}",
                    f"{comp.hotpotato.makespan_s * 1e3:.1f}",
                    f"{comp.normalized_makespan:.3f}",
                    f"{comp.speedup_pct:+.2f}",
                )
            )
        table = render_table(
            [
                "benchmark",
                "PCMig makespan [ms]",
                "HotPotato makespan [ms]",
                "normalized",
                "speedup [%]",
            ],
            rows,
            title="Fig. 4(a): homogeneous workloads on 64 cores "
            f"(paper mean: +{PAPER_MEAN_SPEEDUP_PCT:.2f} %, "
            f"canneal lowest at +{PAPER_CANNEAL_SPEEDUP_PCT:.2f} %)",
        )
        chart = render_bar_chart(
            list(self.comparisons),
            [c.speedup_pct for c in self.comparisons.values()],
            unit="%",
            title="\nHotPotato speedup over PCMig",
        )
        return f"{table}\n{chart}\nmean speedup: {self.mean_speedup_pct:+.2f} %"


def _simulate_cell(
    benchmark: str,
    scheduler: str,
    config: SystemConfig,
    model: RCThermalModel,
    seed: int,
    work_scale: float,
    max_time_s: float,
) -> SimulationResult:
    """One (benchmark, scheduler) cell — module-level so pools can pickle it.

    Every cell builds its own :class:`SimContext` from the shared thermal
    model, exactly as the serial sweep always did, so serial and parallel
    execution are byte-identical.
    """
    tasks = materialize(
        homogeneous_fill(benchmark, config.n_cores, seed=seed, work_scale=work_scale)
    )
    sim = IntervalSimulator(
        config,
        _SCHEDULERS[scheduler](),
        tasks,
        ctx=SimContext(config, model),
        record_trace=False,
    )
    return sim.run(max_time_s=max_time_s)


def _build_batched_sims(
    cells: List[Cell],
) -> Tuple[List[IntervalSimulator], float]:
    """Builder for the ``jobs="auto"`` vectorized policy.

    Constructs exactly the simulators :func:`_simulate_cell` would,
    except their contexts share one :class:`ThermalDynamics` per thermal
    model — the shared eigenbasis the fused batch steps in.  Sharing is
    safe for byte-identity: the dynamics only memoizes pure functions of
    the model, so a warm cache returns the same bytes a cold one computes.
    """
    dynamics_of: Dict[int, ThermalDynamics] = {}
    sims: List[IntervalSimulator] = []
    max_time_s = 0.0
    for cell in cells:
        kw = cell.kwargs
        dynamics = dynamics_of.get(id(kw["model"]))
        if dynamics is None:
            dynamics = ThermalDynamics(kw["model"])
            dynamics_of[id(kw["model"])] = dynamics
        tasks = materialize(
            homogeneous_fill(
                kw["benchmark"],
                kw["config"].n_cores,
                seed=kw["seed"],
                work_scale=kw["work_scale"],
            )
        )
        sims.append(
            IntervalSimulator(
                kw["config"],
                _SCHEDULERS[kw["scheduler"]](),
                tasks,
                ctx=SimContext(kw["config"], dynamics=dynamics),
                record_trace=False,
            )
        )
        max_time_s = kw["max_time_s"]
    return sims, max_time_s


def run(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 42,
    work_scale: float = 2.5,
    max_time_s: float = 5.0,
    jobs: Union[int, str] = 1,
    checkpoint_path=None,
    resume: bool = False,
    report: Optional[Dict] = None,
) -> Fig4aResult:
    """Regenerate Fig. 4(a).

    ``benchmarks`` restricts the sweep (useful for fast CI runs); the
    default runs all eight evaluated PARSEC benchmarks.  ``jobs > 1``
    fans the (benchmark, scheduler) cells out over worker processes;
    ``jobs="auto"`` lets :func:`repro.parallel.run_cells` pick a policy —
    normally the vectorized in-process engine that fuses every cell's
    thermal stepping into one batch.  The results are identical to a
    serial run under every policy.

    ``checkpoint_path`` persists each finished cell to a JSONL
    :class:`~repro.parallel.SweepCheckpoint`; with ``resume`` a killed
    sweep restarts only its incomplete cells and produces byte-identical
    results (``docs/faults.md``).  ``report`` receives the executed
    policy and batch counters (see :func:`repro.parallel.run_cells`).
    """
    cfg = config if config is not None else table1()
    names = list(benchmarks) if benchmarks is not None else list(PARSEC)
    shared = SimContext(cfg, model)

    cells = [
        Cell(
            key=(name, scheduler),
            fn=_simulate_cell,
            kwargs=dict(
                benchmark=name,
                scheduler=scheduler,
                config=cfg,
                model=shared.thermal_model,
                seed=seed,
                work_scale=work_scale,
                max_time_s=max_time_s,
            ),
        )
        for name in names
        for scheduler in ("pcmig", "hotpotato")
    ]
    outcomes = run_cells(
        cells,
        jobs=jobs,
        checkpoint_path=checkpoint_path,
        resume=resume,
        encode=result_to_dict,
        decode=result_from_dict,
        batch_runner=BatchedSweepRunner(_build_batched_sims),
        report=report,
    )
    comparisons = {
        name: BenchmarkComparison(
            benchmark=name,
            hotpotato=outcomes[(name, "hotpotato")],
            pcmig=outcomes[(name, "pcmig")],
        )
        for name in names
    }
    return Fig4aResult(comparisons=comparisons)

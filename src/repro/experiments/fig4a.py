"""Fig. 4(a): homogeneous-workload comparison, HotPotato vs PCMig.

The 64-core chip is fully loaded with vari-sized multi-threaded instances of
one benchmark (closed system, all arriving at t=0); the paper reports the
makespan of PCMig normalized to HotPotato's.  Published result: HotPotato is
on average 10.72 % faster, with the memory-bound, cold *canneal* showing the
smallest gain (0.73 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..config import SystemConfig, table1
from ..sched.hotpotato_runtime import HotPotatoScheduler
from ..sched.pcmig import PCMigScheduler
from ..sim.context import SimContext
from ..sim.engine import IntervalSimulator
from ..sim.metrics import SimulationResult
from ..thermal.rc_model import RCThermalModel
from ..workload.benchmarks import PARSEC
from ..workload.generator import homogeneous_fill, materialize
from .reporting import render_bar_chart, render_table

#: Paper's headline numbers for comparison in reports.
PAPER_MEAN_SPEEDUP_PCT = 10.72
PAPER_CANNEAL_SPEEDUP_PCT = 0.73


@dataclass
class BenchmarkComparison:
    """One benchmark's HotPotato-vs-PCMig outcome."""

    benchmark: str
    hotpotato: SimulationResult
    pcmig: SimulationResult

    @property
    def speedup_pct(self) -> float:
        """PCMig makespan over HotPotato makespan, minus one, in percent."""
        return (self.pcmig.makespan_s / self.hotpotato.makespan_s - 1.0) * 100.0

    @property
    def normalized_makespan(self) -> float:
        """HotPotato makespan normalized to PCMig (the paper's y-axis)."""
        return self.hotpotato.makespan_s / self.pcmig.makespan_s


@dataclass
class Fig4aResult:
    """All benchmark comparisons."""

    comparisons: Dict[str, BenchmarkComparison]

    @property
    def mean_speedup_pct(self) -> float:
        """Average speedup across benchmarks (paper: 10.72 %)."""
        return float(
            np.mean([c.speedup_pct for c in self.comparisons.values()])
        )

    def render(self) -> str:
        rows = []
        for name, comp in self.comparisons.items():
            rows.append(
                (
                    name,
                    f"{comp.pcmig.makespan_s * 1e3:.1f}",
                    f"{comp.hotpotato.makespan_s * 1e3:.1f}",
                    f"{comp.normalized_makespan:.3f}",
                    f"{comp.speedup_pct:+.2f}",
                )
            )
        table = render_table(
            [
                "benchmark",
                "PCMig makespan [ms]",
                "HotPotato makespan [ms]",
                "normalized",
                "speedup [%]",
            ],
            rows,
            title="Fig. 4(a): homogeneous workloads on 64 cores "
            f"(paper mean: +{PAPER_MEAN_SPEEDUP_PCT:.2f} %, "
            f"canneal lowest at +{PAPER_CANNEAL_SPEEDUP_PCT:.2f} %)",
        )
        chart = render_bar_chart(
            list(self.comparisons),
            [c.speedup_pct for c in self.comparisons.values()],
            unit="%",
            title="\nHotPotato speedup over PCMig",
        )
        return f"{table}\n{chart}\nmean speedup: {self.mean_speedup_pct:+.2f} %"


def run(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 42,
    work_scale: float = 2.5,
    max_time_s: float = 5.0,
) -> Fig4aResult:
    """Regenerate Fig. 4(a).

    ``benchmarks`` restricts the sweep (useful for fast CI runs); the
    default runs all eight evaluated PARSEC benchmarks.
    """
    cfg = config if config is not None else table1()
    names = list(benchmarks) if benchmarks is not None else list(PARSEC)
    shared = SimContext(cfg, model)

    comparisons = {}
    for name in names:
        outcomes = {}
        for scheduler_cls in (PCMigScheduler, HotPotatoScheduler):
            tasks = materialize(
                homogeneous_fill(name, cfg.n_cores, seed=seed, work_scale=work_scale)
            )
            sim = IntervalSimulator(
                cfg,
                scheduler_cls(),
                tasks,
                ctx=SimContext(cfg, shared.thermal_model),
                record_trace=False,
            )
            outcomes[scheduler_cls.name] = sim.run(max_time_s=max_time_s)
        comparisons[name] = BenchmarkComparison(
            benchmark=name,
            hotpotato=outcomes["hotpotato"],
            pcmig=outcomes["pcmig"],
        )
    return Fig4aResult(comparisons=comparisons)

"""Extension experiment: synchronous rotation on a 3D-stacked S-NUCA die.

The paper's Section VII plans to "explore the idea of synchronous task
rotation with 3D S-NUCA many-cores using the CoMeT interval thermal
simulator".  This experiment runs the analytic machinery (unchanged — it
only needs the Eq. 1 model structure) on a CoMeT-style stacked RC model
and quantifies three things:

1. the **layer gradient**: the same core power runs tens of degrees hotter
   on the upper layer (far from the sink);
2. **vertical rotation** through a stacked column averages that gradient
   exactly like 2D rotation averages lateral hotspots — a thread that is
   thermally unsustainable when pinned to the top layer becomes sustainable
   when rotated through its column;
3. the **2D ring premise breaks in 3D**: cores with equal 3D AMD
   (performance-equivalent) span multiple layers (thermally inequivalent),
   so a 3D HotPotato must add layer-awareness to its ring logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .. import units
from ..core.peak_temperature import rotation_peak_temperature
from ..stacked.mesh3d import Amd3dRings, Mesh3D
from ..stacked.rc_model3d import build_rc_model_3d, default_stacked_stack
from ..thermal.matex import ThermalDynamics
from .reporting import render_table

#: Power of the probe thread [W] — chosen such that it is unsustainable
#: pinned on the top layer but sustainable when rotated vertically.
PROBE_POWER_W = 2.6

#: Idle power and thermal environment (paper Section VI).
IDLE_POWER_W = 0.3
AMBIENT_C = 45.0
THRESHOLD_C = 70.0


@dataclass
class Stacked3dResult:
    """Outcome of the 3D rotation study."""

    #: steady peak of one hot core per layer [degC]
    layer_peaks_c: Tuple[float, ...]
    #: peak when the probe thread is pinned to the top layer
    pinned_top_peak_c: float
    #: peak when the probe thread rotates vertically through its column
    vertical_rotation_peak_c: float
    #: ring index -> layers spanned (the 2D-premise diagnostic)
    ring_layers: Dict[int, Tuple[int, ...]]
    n_layers: int

    @property
    def layer_gradient_c(self) -> float:
        """Top-vs-bottom difference for the same hot core."""
        return self.layer_peaks_c[-1] - self.layer_peaks_c[0]

    @property
    def rotation_rescues_top_layer(self) -> bool:
        """Pinned-top violates the threshold, rotated does not."""
        return (
            self.pinned_top_peak_c > THRESHOLD_C
            and self.vertical_rotation_peak_c < THRESHOLD_C
        )

    @property
    def rings_span_layers(self) -> bool:
        """True when any equal-AMD ring mixes layers (premise break)."""
        return any(len(layers) > 1 for layers in self.ring_layers.values())

    def render(self) -> str:
        rows = [
            (f"layer {i}", f"{peak:.2f}")
            for i, peak in enumerate(self.layer_peaks_c)
        ]
        gradient = render_table(
            ["single 8 W core on", "steady peak [C]"],
            rows,
            title="3D S-NUCA extension (Section VII future work): layer gradient",
        )
        rotation = render_table(
            ["probe-thread placement", "peak [C]", f"violates {THRESHOLD_C:.0f}C"],
            [
                (
                    "pinned to top layer",
                    f"{self.pinned_top_peak_c:.2f}",
                    "yes" if self.pinned_top_peak_c > THRESHOLD_C else "no",
                ),
                (
                    "rotated through its column",
                    f"{self.vertical_rotation_peak_c:.2f}",
                    "yes" if self.vertical_rotation_peak_c > THRESHOLD_C else "no",
                ),
            ],
            title=f"\nvertical rotation of one {PROBE_POWER_W} W thread",
        )
        premise = "\n".join(
            f"ring {index}: 3D-AMD-equal cores span layers {layers}"
            for index, layers in sorted(self.ring_layers.items())
        )
        return (
            f"{gradient}\n{rotation}\n\n"
            f"2D ring premise in 3D (equal AMD != equal thermals):\n{premise}"
        )


def run(
    width: int = 4,
    height: int = 4,
    layers: int = 2,
    tau_s: float = units.ms(0.5),
) -> Stacked3dResult:
    """Run the 3D rotation study on a ``width x height x layers`` stack."""
    mesh = Mesh3D(width, height, layers)
    model = build_rc_model_3d(mesh, default_stacked_stack())
    dynamics = ThermalDynamics(model)
    n = mesh.n_cores

    # 1. the layer gradient: one 8 W core per layer, same column
    layer_peaks = []
    for layer in range(layers):
        power = np.full(n, IDLE_POWER_W)
        power[mesh.core_at(layer, 1, 1)] = 8.0
        temps = model.steady_state(power, AMBIENT_C)
        layer_peaks.append(float(np.max(model.core_temperatures(temps))))

    # 2. vertical rotation of the probe thread
    column = mesh.stacked_column(mesh.core_at(0, 1, 1))
    top_core = column[-1]
    pinned = np.full(n, IDLE_POWER_W)
    pinned[top_core] = PROBE_POWER_W
    pinned_temps = model.steady_state(pinned, AMBIENT_C)
    pinned_peak = float(np.max(model.core_temperatures(pinned_temps)))

    seq = np.full((layers, n), IDLE_POWER_W)
    for epoch, core in enumerate(column):
        seq[epoch, core] = PROBE_POWER_W
    rotated_peak = rotation_peak_temperature(dynamics, seq, tau_s, AMBIENT_C)

    # 3. the ring premise diagnostic
    rings = Amd3dRings(mesh)
    ring_layers = rings.ring_layer_summary()

    return Stacked3dResult(
        layer_peaks_c=tuple(layer_peaks),
        pinned_top_peak_c=pinned_peak,
        vertical_rotation_peak_c=rotated_peak,
        ring_layers=ring_layers,
        n_layers=layers,
    )

"""Regeneration of every table and figure in the paper's evaluation.

=========  =============================================================
module     reproduces
=========  =============================================================
table1     Table I (platform configuration)
fig1       Fig. 1 architecture abstraction (tile grid + rotation ring)
fig2       Fig. 2 motivational traces (none / TSP-DVFS / rotation)
fig3       Fig. 3 concentric AMD rings + per-ring characterization
fig4a      Fig. 4(a) homogeneous workloads, HotPotato vs PCMig
fig4b      Fig. 4(b) heterogeneous Poisson open system, load sweep
overhead   Section VI run-time overhead measurement
stacked3d  Section VII future work: rotation on a 3D-stacked die
=========  =============================================================

Run any of them from the command line::

    python -m repro.experiments table1
    python -m repro.experiments fig2
    python -m repro.experiments fig4a --quick
"""

from . import fig1, fig2, fig3, fig4a, fig4b, overhead, stacked3d, table1

__all__ = [
    "fig1",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "overhead",
    "stacked3d",
    "table1",
]

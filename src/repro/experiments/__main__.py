"""Command-line entry point: ``python -m repro.experiments <experiment>``."""

from __future__ import annotations

import argparse
import sys

from . import fig1, fig2, fig3, fig4a, fig4b, overhead, stacked3d, table1

_EXPERIMENTS = (
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "overhead",
    "stacked3d",
    "all",
)


def _jobs_arg(value: str):
    """``--jobs`` accepts a worker count or the ``auto`` policy keyword."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (fewer benchmarks / load points) for a fast run",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N|auto",
        help="worker processes for the sweep experiments (fig4a/fig4b), "
        "or 'auto' to pick an execution policy (normally the vectorized "
        "in-process batch); results are identical to a serial run "
        "(default: 1)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="JSONL checkpoint file for the sweep experiments "
        "(fig4a/fig4b): each finished cell is persisted as it completes",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint, skip cells already recorded there; the "
        "resumed sweep is byte-identical to an uninterrupted one",
    )
    parser.add_argument(
        "--traffic",
        choices=fig4b.MATRIX_TRAFFICS,
        default="poisson",
        help="arrival process for fig4b (docs/traffic.md); the default "
        "reproduces the paper's Poisson schedule byte-for-byte",
    )
    parser.add_argument(
        "--trace-path",
        metavar="PATH",
        help="JSONL arrival trace replayed by --traffic trace",
    )
    args = parser.parse_args(argv)
    if isinstance(args.jobs, int) and args.jobs < 1:
        parser.error("--jobs must be >= 1 (or 'auto')")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.checkpoint and args.experiment not in ("fig4a", "fig4b"):
        parser.error("--checkpoint only applies to fig4a / fig4b")
    if args.traffic != "poisson" and args.experiment != "fig4b":
        parser.error("--traffic only applies to fig4b")
    if args.trace_path and args.traffic != "trace":
        parser.error("--trace-path requires --traffic trace")
    if args.traffic == "trace" and not args.trace_path:
        parser.error("--traffic trace requires --trace-path")

    selected = _EXPERIMENTS[:-1] if args.experiment == "all" else (args.experiment,)
    for name in selected:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        result = _run_one(
            name,
            args.quick,
            args.jobs,
            args.checkpoint,
            args.resume,
            args.traffic,
            args.trace_path,
        )
        print(result.render())
    return 0


def _run_one(
    name: str,
    quick: bool,
    jobs: int = 1,
    checkpoint: str = None,
    resume: bool = False,
    traffic: str = "poisson",
    trace_path: str = None,
):
    if name == "table1":
        return table1.run()
    if name == "fig1":
        return fig1.run()
    if name == "fig2":
        return fig2.run()
    if name == "fig3":
        return fig3.run()
    if name == "fig4a":
        benchmarks = ("blackscholes", "canneal") if quick else None
        return fig4a.run(
            benchmarks=benchmarks,
            jobs=jobs,
            checkpoint_path=checkpoint,
            resume=resume,
        )
    if name == "fig4b":
        rates = (10.0, 60.0, 400.0) if quick else fig4b.DEFAULT_ARRIVAL_RATES
        n_tasks = 20 if quick else 40
        return fig4b.run(
            arrival_rates_per_s=rates,
            n_tasks=n_tasks,
            jobs=jobs,
            checkpoint_path=checkpoint,
            resume=resume,
            traffic=traffic,
            trace_path=trace_path,
        )
    if name == "overhead":
        return overhead.run(n_repetitions=50 if quick else 200)
    if name == "stacked3d":
        return stacked3d.run()
    raise ValueError(f"unknown experiment {name!r}")


if __name__ == "__main__":
    sys.exit(main())

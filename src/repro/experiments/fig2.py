"""Fig. 2: thermal traces of the motivational example.

A two-threaded *blackscholes* instance on the 16-core chip under three
thermal-management regimes:

- (a) none — peak frequency, DTM disabled to expose the violation
  (paper: response 68 ms, peak ~80 degC, exceeds the 70 degC threshold);
- (b) TSP power budgeting enforced by DVFS
  (paper: response 84 ms, stays below the threshold — the slowest);
- (c) synchronous rotation of the threads over the four centre cores at a
  fixed 0.5 ms interval
  (paper: response 74 ms, below the threshold, ~8 % rotation penalty).

The shape requirements are: only (a) violates the threshold and
``response(a) < response(c) < response(b)``.

All three runs are warm-started at the steady state of a half-loaded chip
(the paper's traces start near 58 degC, not at the 45 degC ambient —
HotSniper warms its HotSpot state up before the region of interest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import units
from ..config import SystemConfig, motivational
from ..sched.fixed_rotation import FixedRotationScheduler
from ..sched.naive import PeakFrequencyScheduler
from ..sched.pcgov import PCGovScheduler
from ..sim.context import SimContext
from ..sim.engine import IntervalSimulator
from ..sim.metrics import SimulationResult
from ..thermal.rc_model import RCThermalModel
from ..workload.benchmarks import PARSEC
from ..workload.task import Task
from .reporting import render_table

#: The cores the paper's Fig. 1/2c rotates over (centre ring of the 4x4).
ROTATION_CORES: Tuple[int, ...] = (5, 6, 9, 10)

#: Uniform per-core power of the warm-up steady state [W]: a half-loaded
#: recent past, placing the trace start near the paper's ~58 degC.
WARM_START_POWER_W = 2.8


@dataclass
class Fig2Result:
    """The three traces plus their headline numbers."""

    results: Dict[str, SimulationResult]
    threshold_c: float

    def response_ms(self, variant: str) -> float:
        """Response time of the blackscholes instance [ms]."""
        return self.results[variant].tasks[0].response_time_s * 1e3

    def peak_c(self, variant: str) -> float:
        """Peak observed core temperature [degC]."""
        return self.results[variant].peak_temperature_c

    def violates(self, variant: str) -> bool:
        """Did any core exceed the DTM threshold?"""
        return self.results[variant].trace.exceeds(self.threshold_c)

    def render(self) -> str:
        rows = []
        paper = {"none": 68.0, "tsp-dvfs": 84.0, "rotation": 74.0}
        for variant in ("none", "tsp-dvfs", "rotation"):
            rows.append(
                (
                    variant,
                    f"{self.response_ms(variant):.1f}",
                    f"{paper[variant]:.0f}",
                    f"{self.peak_c(variant):.2f}",
                    "yes" if self.violates(variant) else "no",
                )
            )
        table = render_table(
            ["variant", "response [ms]", "paper [ms]", "peak [C]", "violates 70C"],
            rows,
            title="Fig. 2: motivational example (2-thread blackscholes, 16 cores)",
        )
        traces = []
        for variant in ("none", "tsp-dvfs", "rotation"):
            trace = self.results[variant].trace
            traces.append(f"\n--- trace ({variant}), hottest centre cores ---")
            traces.append(
                trace.render_ascii(
                    core_ids=[5, 10], threshold_c=self.threshold_c, height=12
                )
            )
        return table + "\n" + "\n".join(traces)


def _task() -> Task:
    return Task(0, PARSEC["blackscholes"], 2, seed=1)


def run(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    rotation_interval_s: float = units.ms(0.5),
    max_time_s: float = 1.0,
) -> Fig2Result:
    """Regenerate Fig. 2 (all three thermal-management variants)."""
    cfg = config if config is not None else motivational()
    shared = SimContext(cfg, model)

    def simulate(scheduler, dtm_enabled=True) -> SimulationResult:
        sim = IntervalSimulator(
            cfg,
            scheduler,
            [_task()],
            ctx=SimContext(cfg, shared.thermal_model),
            dtm_enabled=dtm_enabled,
            warm_start_uniform_power_w=WARM_START_POWER_W,
        )
        return sim.run(max_time_s=max_time_s)

    results = {
        # (a): expose the violation, as the paper's trace does
        "none": simulate(PeakFrequencyScheduler(), dtm_enabled=False),
        # (b): classic worst-case TSP enforced via DVFS
        "tsp-dvfs": simulate(PCGovScheduler(budget_mode="worst-case")),
        # (c): fixed synchronous rotation over the centre cores
        "rotation": simulate(
            FixedRotationScheduler(
                cores=ROTATION_CORES, tau_s=rotation_interval_s
            )
        ),
    }
    return Fig2Result(results=results, threshold_c=cfg.thermal.dtm_threshold_c)

"""Table I: simulated core parameters.

Regenerates the paper's platform-configuration table from
:mod:`repro.config` (the single source of truth every substrate reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import SystemConfig, table1
from .reporting import render_table


@dataclass(frozen=True)
class Table1Report:
    """The regenerated Table I."""

    rows: Tuple[Tuple[str, str], ...]

    def render(self) -> str:
        """Plain-text table matching the paper's layout."""
        return render_table(
            ["Core Parameter", "Value"],
            self.rows,
            title="Table I: Core parameters for simulated S-NUCA processor",
        )


def run(config: SystemConfig = None) -> Table1Report:
    """Build the Table I report for ``config`` (default: the paper's)."""
    cfg = config if config is not None else table1()
    cache = cfg.cache
    rows: List[Tuple[str, str]] = [
        ("Number of Cores", str(cfg.n_cores)),
        (
            "Core Model",
            f"x86, {cfg.dvfs.f_max_hz / 1e9:.1f} GHz, 14 nm, out-of-order",
        ),
        (
            "L1 I/D cache",
            f"{cache.l1i_size_bytes // 1024}/{cache.l1d_size_bytes // 1024} KB, "
            f"{cache.l1_associativity}/{cache.l1_associativity}-way, "
            f"{cache.block_size_bytes}B-block",
        ),
        (
            "LLC",
            f"{cache.llc_bank_size_bytes // 1024} KB per core, "
            f"{cache.llc_associativity}-way, {cache.block_size_bytes}B-block",
        ),
        ("NoC Latency", f"{cfg.noc.hop_latency_s * 1e9:.1f}ns per hop"),
        ("NoC link width", f"{cfg.noc.link_width_bits} Bit"),
        ("The area of core", f"{cfg.core_area_m2 * 1e6:.2f} mm^2"),
        ("Ambient temperature", f"{cfg.thermal.ambient_c:.0f} C"),
        ("DTM threshold", f"{cfg.thermal.dtm_threshold_c:.0f} C"),
        ("Thermal headroom Delta", f"{cfg.thermal.headroom_delta_c:.0f} C"),
        ("Idle core power", f"{cfg.thermal.idle_power_w:.1f} W"),
        ("Initial rotation interval", f"{cfg.rotation_interval_s * 1e3:.1f} ms"),
    ]
    return Table1Report(rows=tuple(rows))

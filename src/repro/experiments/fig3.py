"""Fig. 3: concentric AMD-based rotation rings.

Regenerates the ring decomposition of the evaluation platform: each core
labelled with its AMD ring, plus the per-ring AMD value, capacity, average
LLC latency (performance side) and single-hot-core steady peak (thermal
side) — the monotone trade-off HotPotato's greedy walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..arch.amd import AmdRings
from ..arch.snuca import SnucaCache
from ..arch.topology import Mesh
from ..config import SystemConfig, table1
from ..thermal.calibrate import HOT_THREAD_POWER_W, calibrated_model
from ..thermal.rc_model import RCThermalModel
from ..thermal.steady_state import steady_peak
from .reporting import render_table


@dataclass(frozen=True)
class RingRow:
    """One ring of the decomposition."""

    index: int
    amd: float
    capacity: int
    llc_latency_ns: float
    single_hot_peak_c: float


@dataclass
class Fig3Result:
    """The ring decomposition and its per-ring characterization."""

    grid_ascii: str
    rings: Tuple[RingRow, ...]

    def render(self) -> str:
        table = render_table(
            ["ring", "AMD", "cores", "LLC latency [ns]", "1-hot-core peak [C]"],
            [
                (r.index, r.amd, r.capacity, r.llc_latency_ns, r.single_hot_peak_c)
                for r in self.rings
            ],
            title="Fig. 3: concentric AMD rotation rings "
            "(performance degrades, thermals improve outward)",
        )
        return f"{table}\n\nring map (core -> ring index):\n{self.grid_ascii}"

    def performance_monotone(self) -> bool:
        """LLC latency strictly increases outward."""
        lats = [r.llc_latency_ns for r in self.rings]
        return all(b > a for a, b in zip(lats, lats[1:]))

    def thermals_monotone(self) -> bool:
        """Single-hot-core peak does not increase outward."""
        peaks = [r.single_hot_peak_c for r in self.rings]
        return all(b <= a + 1e-6 for a, b in zip(peaks, peaks[1:]))


def run(
    config: SystemConfig = None, model: Optional[RCThermalModel] = None
) -> Fig3Result:
    """Regenerate Fig. 3 for ``config`` (default: the 64-core platform)."""
    cfg = config if config is not None else table1()
    mesh = Mesh(cfg.mesh_width, cfg.mesh_height)
    rings = AmdRings(mesh)
    snuca = SnucaCache(mesh, cfg.cache, cfg.noc)
    thermal = model if model is not None else calibrated_model(cfg)

    rows = []
    for index in range(rings.n_rings):
        representative = rings.ring(index)[0]
        power = np.full(cfg.n_cores, cfg.thermal.idle_power_w)
        power[representative] = HOT_THREAD_POWER_W
        rows.append(
            RingRow(
                index=index,
                amd=rings.ring_value(index),
                capacity=rings.capacity(index),
                llc_latency_ns=snuca.ring_latency_s(rings, index) * 1e9,
                single_hot_peak_c=steady_peak(
                    thermal, power, cfg.thermal.ambient_c
                ),
            )
        )
    return Fig3Result(grid_ascii=rings.render_ascii(), rings=tuple(rows))

"""Shared plain-text rendering for experiment reports.

Besides the generic table/bar-chart renderers, this module renders the
observability layer's outputs: per-phase profiling summaries
(:func:`render_profile_table`) and metrics-registry snapshots
(:func:`render_metrics_table`) — see ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used in figure reports)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    top = max(abs(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / top * width)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_profile_table(
    profile: Mapping[str, Mapping[str, float]], title: str = "phase profile"
) -> str:
    """Render a :class:`repro.obs.PhaseProfiler` summary as a table.

    ``profile`` is the ``phase -> {count, total_s, mean_s, min_s, max_s}``
    dict stored in ``SimulationResult.profile``.
    """
    if not profile:
        return f"{title}\n(profiling disabled — no phases recorded)"
    rows = [
        [
            phase,
            int(stat["count"]),
            f"{stat['total_s'] * 1e3:.2f}",
            f"{stat['mean_s'] * 1e6:.1f}",
            f"{stat['min_s'] * 1e6:.1f}",
            f"{stat['max_s'] * 1e6:.1f}",
        ]
        for phase, stat in profile.items()
    ]
    return render_table(
        ["phase", "calls", "total ms", "mean us", "min us", "max us"],
        rows,
        title=title,
    )


def render_metrics_table(
    snapshot: Mapping[str, float], title: str = "metrics snapshot"
) -> str:
    """Render a :class:`repro.obs.MetricsRegistry` snapshot as a table."""
    if not snapshot:
        return f"{title}\n(no metrics recorded)"
    rows = [[name, f"{value:g}"] for name, value in sorted(snapshot.items())]
    return render_table(["metric", "value"], rows, title=title)


def render_violations_table(violations: Sequence, title: str = "violations") -> str:
    """Render :class:`repro.obs.Violation` records as a table.

    An empty sequence renders an explicit all-clear line, so ``check``
    output always states its verdict.
    """
    if not violations:
        return f"{title}\n(no violations detected)"
    rows = [
        [
            f"{v.time_s * 1e3:.3f}",
            v.detector,
            v.severity,
            "-" if v.core is None else str(v.core),
            v.message,
        ]
        for v in violations
    ]
    return render_table(
        ["time ms", "detector", "severity", "core", "message"], rows, title=title
    )

"""Shared plain-text rendering for experiment reports.

Besides the generic table/bar-chart renderers, this module renders the
observability layer's outputs: per-phase profiling summaries
(:func:`render_profile_table`) and metrics-registry snapshots
(:func:`render_metrics_table`) — see ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

# The generic table renderer lives with the shared CLI conventions so the
# ``repro.obs`` and ``repro.lint`` CLIs render identically; it is re-exported
# here because every experiment report imports it from this module.
from .._cli import render_table

__all__ = [
    "render_table",
    "render_bar_chart",
    "render_profile_table",
    "render_metrics_table",
    "render_violations_table",
]


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used in figure reports)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    top = max(abs(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / top * width)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_profile_table(
    profile: Mapping[str, Mapping[str, float]], title: str = "phase profile"
) -> str:
    """Render a :class:`repro.obs.PhaseProfiler` summary as a table.

    ``profile`` is the ``phase -> {count, total_s, mean_s, min_s, max_s}``
    dict stored in ``SimulationResult.profile``.
    """
    if not profile:
        return f"{title}\n(profiling disabled — no phases recorded)"
    rows = [
        [
            phase,
            int(stat["count"]),
            f"{stat['total_s'] * 1e3:.2f}",
            f"{stat['mean_s'] * 1e6:.1f}",
            f"{stat['min_s'] * 1e6:.1f}",
            f"{stat['max_s'] * 1e6:.1f}",
        ]
        for phase, stat in profile.items()
    ]
    return render_table(
        ["phase", "calls", "total ms", "mean us", "min us", "max us"],
        rows,
        title=title,
    )


def render_metrics_table(
    snapshot: Mapping[str, float], title: str = "metrics snapshot"
) -> str:
    """Render a :class:`repro.obs.MetricsRegistry` snapshot as a table."""
    if not snapshot:
        return f"{title}\n(no metrics recorded)"
    rows = [[name, f"{value:g}"] for name, value in sorted(snapshot.items())]
    return render_table(["metric", "value"], rows, title=title)


def render_violations_table(violations: Sequence, title: str = "violations") -> str:
    """Render :class:`repro.obs.Violation` records as a table.

    An empty sequence renders an explicit all-clear line, so ``check``
    output always states its verdict.
    """
    if not violations:
        return f"{title}\n(no violations detected)"
    rows = [
        [
            f"{v.time_s * 1e3:.3f}",
            v.detector,
            v.severity,
            "-" if v.core is None else str(v.core),
            v.message,
        ]
        for v in violations
    ]
    return render_table(
        ["time ms", "detector", "severity", "core", "message"], rows, title=title
    )

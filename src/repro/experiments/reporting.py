"""Shared plain-text rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used in figure reports)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    top = max(abs(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / top * width)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)

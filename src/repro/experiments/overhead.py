"""Section VI run-time overhead: scheduling-computation cost.

The paper measures 23.76 us per synchronous-rotation schedule computation
for a fully loaded 64-core chip (averaged over 10 000 runs), i.e. 4.75 % of
a 0.5 ms rotation epoch, running *on one of the many-core's own cores* in
optimized C++.

We measure the same two quantities for our implementation:

- one Algorithm-1 peak-temperature evaluation (the inner kernel invoked per
  candidate slot), and
- one full HotPotato scheduling decision (admission of a thread into a
  loaded chip, including candidate-slot evaluation).

Absolute times are not comparable (Python + NumPy on a host CPU vs C++ on a
simulated core), so the report also states the measured cost relative to
the 0.5 ms epoch, and the design-time/run-time complexity split the paper
claims (O(N^2) design time; O(2 delta^2 N^2) per evaluation) is exercised
by the scaling sweep in the benchmark suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .. import units
from ..arch.amd import AmdRings
from ..arch.topology import Mesh
from ..config import SystemConfig, table1
from ..core.hotpotato import HotPotato, ThreadInfo
from ..core.peak_temperature import PeakTemperatureCalculator
from ..sim.context import SimContext
from ..thermal.rc_model import RCThermalModel

#: Paper's measured cost per schedule computation.
PAPER_OVERHEAD_US = 23.76
#: The rotation epoch the overhead is quoted against.
EPOCH_S = units.ms(0.5)


@dataclass
class OverheadResult:
    """Measured scheduling-computation costs."""

    peak_eval_us: float
    admit_decision_us: float
    design_time_s: float
    n_cores: int

    @property
    def peak_eval_pct_of_epoch(self) -> float:
        """One Algorithm-1 evaluation relative to a 0.5 ms epoch."""
        return self.peak_eval_us / (EPOCH_S * 1e6) * 100.0

    def render(self) -> str:
        return "\n".join(
            [
                "Run-time overhead (Section VI)",
                f"platform: {self.n_cores} cores",
                f"design-time phase (eigendecomposition + auxiliaries): "
                f"{self.design_time_s * 1e3:.1f} ms (one-time)",
                f"Algorithm-1 peak evaluation: {self.peak_eval_us:.1f} us "
                f"({self.peak_eval_pct_of_epoch:.1f} % of a 0.5 ms epoch)",
                f"full HotPotato admission decision: "
                f"{self.admit_decision_us:.1f} us",
                f"paper (C++ on a simulated core): {PAPER_OVERHEAD_US:.2f} us "
                "per schedule computation (4.75 % of the epoch)",
            ]
        )


def run(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    n_repetitions: int = 200,
) -> OverheadResult:
    """Measure scheduling overhead on a fully loaded chip."""
    cfg = config if config is not None else table1()
    ctx = SimContext(cfg, model)

    start = time.perf_counter()
    calculator = PeakTemperatureCalculator(ctx.dynamics, cfg.thermal.ambient_c)
    rings = AmdRings(Mesh(cfg.mesh_width, cfg.mesh_height))
    design_time_s = time.perf_counter() - start

    # a representative fully loaded rotation: alternating hot/cold threads
    hp = HotPotato(
        rings,
        calculator,
        t_dtm_c=cfg.thermal.dtm_threshold_c,
        headroom_delta_c=cfg.thermal.headroom_delta_c,
        idle_power_w=cfg.thermal.idle_power_w,
        initial_tau_s=cfg.rotation_interval_s,
    )
    for i in range(cfg.n_cores - 1):
        power = 8.0 if i % 2 == 0 else 2.2
        cpi = 0.8 if i % 2 == 0 else 2.6
        hp.admit(ThreadInfo(f"t{i}", power, cpi))

    schedule = hp.schedule()
    seq = schedule.power_sequence(
        cfg.n_cores,
        {t: hp._threads[t].power_w for t in schedule.threads()},
        cfg.thermal.idle_power_w,
    )
    tau = hp.tau_s if hp.tau_s is not None else cfg.rotation_interval_s
    calculator.peak(seq, tau)  # warm caches
    start = time.perf_counter()
    for _ in range(n_repetitions):
        calculator.peak(seq, tau)
    peak_eval_us = (time.perf_counter() - start) / n_repetitions * 1e6

    # full admission decision: admit + remove the 64th thread repeatedly
    admit_reps = max(5, n_repetitions // 20)
    start = time.perf_counter()
    for _ in range(admit_reps):
        hp.admit(ThreadInfo("probe", 5.0, 1.2))
        hp.remove("probe")
    admit_decision_us = (time.perf_counter() - start) / (2 * admit_reps) * 1e6

    return OverheadResult(
        peak_eval_us=peak_eval_us,
        admit_decision_us=admit_decision_us,
        design_time_s=design_time_s,
        n_cores=cfg.n_cores,
    )

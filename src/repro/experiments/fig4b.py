"""Fig. 4(b): heterogeneous open-system comparison across load levels.

A random 20-benchmark multi-program workload arrives following a Poisson
process; sweeping the arrival rate moves the open system from under- to
over-loaded.  The paper reports that HotPotato beats PCMig at every load,
with gains that are small when the system is under- or over-loaded (little
scope for thermal optimization / queue-dominated) and peak at ~12.27 %
under medium load.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SystemConfig, table1
from ..io import result_from_dict, result_to_dict
from ..parallel import BatchedSweepRunner, Cell, run_cells
from ..sched.hotpotato_runtime import HotPotatoScheduler
from ..sched.pcmig import PCMigScheduler
from ..sched.qos_aware import QoSAwareScheduler
from ..sim.context import SimContext
from ..sim.engine import IntervalSimulator
from ..sim.metrics import SimulationResult
from ..thermal.matex import ThermalDynamics
from ..thermal.rc_model import RCThermalModel
from ..traffic import TRAFFIC_PATTERNS, assign_arrivals, build_process
from ..traffic.trace import load_arrival_trace
from ..workload.generator import (
    TaskSpec,
    materialize,
    random_mixed_workload,
)
from ..workload.qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    QosSpec,
)
from .reporting import render_bar_chart, render_table

_SCHEDULERS = {
    "pcmig": PCMigScheduler,
    "hotpotato": HotPotatoScheduler,
    "qos": QoSAwareScheduler,
}

#: Scenario-matrix axes (EXPERIMENTS.md): every traffic pattern crossed
#: with every scheduler under comparison.
MATRIX_TRAFFICS = TRAFFIC_PATTERNS
MATRIX_SCHEDULERS = ("hotpotato", "pcmig", "qos")

#: Paper's headline number for the medium-load regime.
PAPER_PEAK_SPEEDUP_PCT = 12.27

#: Default arrival-rate sweep [tasks/s]: under-loaded to far over-loaded
#: around the chip's service capacity (~90 tasks/s for the default mix).
DEFAULT_ARRIVAL_RATES = (2.0, 10.0, 30.0, 60.0, 90.0, 150.0, 400.0)


@dataclass
class LoadPoint:
    """One arrival rate's outcome."""

    arrival_rate_per_s: float
    hotpotato: SimulationResult
    pcmig: SimulationResult

    @property
    def speedup_pct(self) -> float:
        """Mean-response-time improvement of HotPotato over PCMig."""
        return (
            self.pcmig.mean_response_time_s / self.hotpotato.mean_response_time_s
            - 1.0
        ) * 100.0


@dataclass
class Fig4bResult:
    """The full load sweep."""

    points: Tuple[LoadPoint, ...]

    @property
    def peak_speedup_pct(self) -> float:
        """Best observed speedup (paper: ~12.27 % at medium load)."""
        return max(p.speedup_pct for p in self.points)

    def speedup_by_rate(self) -> Dict[float, float]:
        """Arrival rate -> speedup percentage."""
        return {p.arrival_rate_per_s: p.speedup_pct for p in self.points}

    def is_unimodal_shape(self, tolerance_pct: float = 1.0) -> bool:
        """Speedups rise to an interior maximum then fall (within
        ``tolerance_pct`` of noise) — the paper's qualitative shape."""
        speedups = [p.speedup_pct for p in self.points]
        best = int(np.argmax(speedups))
        rising = all(
            speedups[i + 1] >= speedups[i] - tolerance_pct for i in range(best)
        )
        falling = all(
            speedups[i + 1] <= speedups[i] + tolerance_pct
            for i in range(best, len(speedups) - 1)
        )
        return rising and falling

    def render(self) -> str:
        rows = [
            (
                f"{p.arrival_rate_per_s:.0f}",
                f"{p.pcmig.mean_response_time_s * 1e3:.1f}",
                f"{p.hotpotato.mean_response_time_s * 1e3:.1f}",
                f"{p.speedup_pct:+.2f}",
            )
            for p in self.points
        ]
        table = render_table(
            [
                "arrival rate [tasks/s]",
                "PCMig response [ms]",
                "HotPotato response [ms]",
                "speedup [%]",
            ],
            rows,
            title="Fig. 4(b): heterogeneous open system on 64 cores "
            f"(paper: up to +{PAPER_PEAK_SPEEDUP_PCT:.2f} % at medium load)",
        )
        chart = render_bar_chart(
            [f"{p.arrival_rate_per_s:.0f}/s" for p in self.points],
            [p.speedup_pct for p in self.points],
            unit="%",
            title="\nHotPotato speedup vs load",
        )
        return f"{table}\n{chart}\npeak speedup: +{self.peak_speedup_pct:.2f} %"


def annotate_qos(
    specs: List[TaskSpec], deadline_s: Optional[float]
) -> List[TaskSpec]:
    """Stamp a deterministic QoS mix onto a spec list.

    Priorities cycle best-effort / normal / critical by position (so every
    class is populated regardless of list length) and every task gets the
    same relative ``deadline_s``; ``None`` leaves the specs untouched.
    """
    if deadline_s is None:
        return list(specs)
    cycle = (PRIORITY_BEST_EFFORT, PRIORITY_NORMAL, PRIORITY_CRITICAL)
    return [
        replace(
            spec,
            qos=QosSpec(deadline_s=deadline_s, priority=cycle[i % len(cycle)]),
        )
        for i, spec in enumerate(specs)
    ]


def _cell_specs(
    arrival_rate_per_s: float,
    n_tasks: int,
    seed: int,
    work_scale: float,
    max_time_s: float,
    traffic: str,
    trace_path,
    deadline_s: Optional[float],
) -> List[TaskSpec]:
    """The task specs of one sweep cell under the chosen traffic pattern.

    ``traffic="poisson"`` reproduces the legacy
    :func:`repro.workload.generator.poisson_arrivals` schedule
    byte-for-byte; ``"trace"`` replays a recorded JSONL schedule wholesale
    (benchmarks, thread counts and QoS annotations included), ignoring the
    synthetic-workload knobs.
    """
    if traffic == "trace":
        if trace_path is None:
            raise ValueError("traffic='trace' requires trace_path")
        return load_arrival_trace(trace_path)
    base = annotate_qos(
        random_mixed_workload(n_tasks, seed=seed, work_scale=work_scale),
        deadline_s,
    )
    process = build_process(traffic, arrival_rate_per_s, horizon_s=max_time_s)
    return assign_arrivals(base, process, seed=seed + 1)


def _simulate_cell(
    arrival_rate_per_s: float,
    scheduler: str,
    config: SystemConfig,
    model: RCThermalModel,
    n_tasks: int,
    seed: int,
    work_scale: float,
    max_time_s: float,
    traffic: str = "poisson",
    trace_path=None,
    deadline_s: Optional[float] = None,
) -> SimulationResult:
    """One (arrival rate, scheduler) cell — module-level for pool pickling.

    Builds its own :class:`SimContext` from the shared thermal model, as
    the serial sweep always did, so serial and parallel runs agree exactly.
    """
    specs = _cell_specs(
        arrival_rate_per_s,
        n_tasks,
        seed,
        work_scale,
        max_time_s,
        traffic,
        trace_path,
        deadline_s,
    )
    sim = IntervalSimulator(
        config,
        _SCHEDULERS[scheduler](),
        materialize(specs),
        ctx=SimContext(config, model),
        record_trace=False,
    )
    return sim.run(max_time_s=max_time_s)


def _build_batched_sims(
    cells: List[Cell],
) -> Tuple[List[IntervalSimulator], float]:
    """Builder for the ``jobs="auto"`` vectorized policy.

    Mirrors :func:`repro.experiments.fig4a._build_batched_sims`: the
    simulators are exactly :func:`_simulate_cell`'s, except their
    contexts share one :class:`ThermalDynamics` per thermal model so the
    fused batch can step every cell in the same eigenbasis.
    """
    dynamics_of: Dict[int, ThermalDynamics] = {}
    sims: List[IntervalSimulator] = []
    max_time_s = 0.0
    for cell in cells:
        kw = cell.kwargs
        dynamics = dynamics_of.get(id(kw["model"]))
        if dynamics is None:
            dynamics = ThermalDynamics(kw["model"])
            dynamics_of[id(kw["model"])] = dynamics
        specs = _cell_specs(
            kw["arrival_rate_per_s"],
            kw["n_tasks"],
            kw["seed"],
            kw["work_scale"],
            kw["max_time_s"],
            kw.get("traffic", "poisson"),
            kw.get("trace_path"),
            kw.get("deadline_s"),
        )
        sims.append(
            IntervalSimulator(
                kw["config"],
                _SCHEDULERS[kw["scheduler"]](),
                materialize(specs),
                ctx=SimContext(kw["config"], dynamics=dynamics),
                record_trace=False,
            )
        )
        max_time_s = kw["max_time_s"]
    return sims, max_time_s


def run(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    arrival_rates_per_s: Sequence[float] = DEFAULT_ARRIVAL_RATES,
    n_tasks: int = 40,
    seed: int = 7,
    work_scale: float = 2.0,
    max_time_s: float = 60.0,
    jobs: Union[int, str] = 1,
    checkpoint_path=None,
    resume: bool = False,
    report: Optional[Dict] = None,
    traffic: str = "poisson",
    trace_path=None,
    deadline_s: Optional[float] = None,
) -> Fig4bResult:
    """Regenerate Fig. 4(b) over the given arrival-rate sweep.

    ``jobs > 1`` distributes the (rate, scheduler) cells over worker
    processes; ``jobs="auto"`` picks a policy (normally the vectorized
    in-process batch).  Results are identical to a serial run under
    every policy.

    ``checkpoint_path``/``resume`` enable crash-tolerant sweeps exactly
    as in :func:`repro.experiments.fig4a.run` (``docs/faults.md``);
    ``report`` receives the executed policy and batch counters.

    ``traffic`` selects the arrival process (``docs/traffic.md``); the
    default reproduces the paper's Poisson schedule byte-for-byte.
    ``traffic="trace"`` replays the JSONL schedule at ``trace_path`` in
    every cell (the rate axis then only labels the sweep).
    """
    cfg = config if config is not None else table1()
    shared = SimContext(cfg, model)

    cells = [
        Cell(
            key=(rate, scheduler),
            fn=_simulate_cell,
            kwargs=dict(
                arrival_rate_per_s=rate,
                scheduler=scheduler,
                config=cfg,
                model=shared.thermal_model,
                n_tasks=n_tasks,
                seed=seed,
                work_scale=work_scale,
                max_time_s=max_time_s,
                traffic=traffic,
                trace_path=trace_path,
                deadline_s=deadline_s,
            ),
        )
        for rate in arrival_rates_per_s
        for scheduler in ("pcmig", "hotpotato")
    ]
    outcomes = run_cells(
        cells,
        jobs=jobs,
        checkpoint_path=checkpoint_path,
        resume=resume,
        encode=result_to_dict,
        decode=result_from_dict,
        batch_runner=BatchedSweepRunner(_build_batched_sims),
        report=report,
    )
    points = tuple(
        LoadPoint(
            arrival_rate_per_s=rate,
            hotpotato=outcomes[(rate, "hotpotato")],
            pcmig=outcomes[(rate, "pcmig")],
        )
        for rate in arrival_rates_per_s
    )
    return Fig4bResult(points=points)


@dataclass
class MatrixResult:
    """The {traffic pattern} x {scheduler} scenario matrix (EXPERIMENTS.md)."""

    #: (traffic, scheduler) -> simulation outcome
    cells: Dict[Tuple[str, str], SimulationResult]
    arrival_rate_per_s: float

    def cell(self, traffic: str, scheduler: str) -> SimulationResult:
        """One cell's outcome."""
        return self.cells[(traffic, scheduler)]

    def render(self) -> str:
        traffics = sorted({t for t, _ in self.cells})
        schedulers = sorted({s for _, s in self.cells})
        rows = []
        for traffic in traffics:
            row = [traffic]
            for scheduler in schedulers:
                result = self.cells[(traffic, scheduler)]
                mean = (
                    f"{result.mean_response_time_s * 1e3:.1f}"
                    if result.tasks
                    else "-"
                )
                row.append(f"{mean} ({len(result.tasks)} done)")
            rows.append(tuple(row))
        return render_table(
            ["traffic \\ scheduler [mean resp ms]"] + schedulers,
            rows,
            title="Fig. 4(b) scenario matrix at "
            f"{self.arrival_rate_per_s:.0f} tasks/s",
        )


def run_matrix(
    config: SystemConfig = None,
    model: Optional[RCThermalModel] = None,
    traffics: Sequence[str] = MATRIX_TRAFFICS,
    schedulers: Sequence[str] = MATRIX_SCHEDULERS,
    arrival_rate_per_s: float = 30.0,
    n_tasks: int = 40,
    seed: int = 7,
    work_scale: float = 2.0,
    max_time_s: float = 60.0,
    trace_path=None,
    deadline_s: Optional[float] = None,
) -> MatrixResult:
    """Run the {traffic} x {scheduler} scenario matrix at one load level.

    All cells share one thermal model (calibration amortized) and are
    fully deterministic in ``seed``.  Including ``"trace"`` in
    ``traffics`` requires ``trace_path``; ``deadline_s`` stamps the
    synthetic workload with the deterministic QoS mix of
    :func:`annotate_qos` so the QoS scheduler's priority classes are
    populated.
    """
    if "trace" in traffics and trace_path is None:
        raise ValueError(
            "the scenario matrix includes 'trace' cells: pass trace_path "
            "(write one with repro.traffic.write_arrival_trace)"
        )
    unknown = [s for s in schedulers if s not in _SCHEDULERS]
    if unknown:
        raise ValueError(f"unknown schedulers {unknown}")
    cfg = config if config is not None else table1()
    shared = SimContext(cfg, model)
    cells: Dict[Tuple[str, str], SimulationResult] = {}
    for traffic in traffics:
        for scheduler in schedulers:
            cells[(traffic, scheduler)] = _simulate_cell(
                arrival_rate_per_s,
                scheduler,
                cfg,
                shared.thermal_model,
                n_tasks,
                seed,
                work_scale,
                max_time_s,
                traffic=traffic,
                trace_path=trace_path,
                deadline_s=deadline_s,
            )
    return MatrixResult(cells=cells, arrival_rate_per_s=arrival_rate_per_s)

"""Workload substrate: synthetic PARSEC profiles, tasks, generators."""

from .benchmarks import BENCHMARK_NAMES, PARSEC, BenchmarkProfile, parsec_profile
from .characterize import (
    BenchmarkCharacter,
    characterization_table,
    characterize,
    duty_cycle,
)
from .generator import (
    TaskSpec,
    homogeneous_fill,
    materialize,
    poisson_arrivals,
    random_mixed_workload,
)
from .perf import PerformanceModel
from .phases import data_parallel, master_slave, pipeline, streaming
from .qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    QosSpec,
    priority_of,
)
from .task import Task, Thread

__all__ = [
    "BENCHMARK_NAMES",
    "PARSEC",
    "PRIORITY_BEST_EFFORT",
    "PRIORITY_CRITICAL",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "BenchmarkCharacter",
    "BenchmarkProfile",
    "PerformanceModel",
    "QosSpec",
    "characterization_table",
    "characterize",
    "duty_cycle",
    "Task",
    "TaskSpec",
    "Thread",
    "data_parallel",
    "homogeneous_fill",
    "master_slave",
    "materialize",
    "parsec_profile",
    "pipeline",
    "poisson_arrivals",
    "priority_of",
    "random_mixed_workload",
    "streaming",
]

"""Workload substrate: synthetic PARSEC profiles, tasks, generators."""

from .benchmarks import BENCHMARK_NAMES, PARSEC, BenchmarkProfile, parsec_profile
from .characterize import (
    BenchmarkCharacter,
    characterization_table,
    characterize,
    duty_cycle,
)
from .generator import (
    TaskSpec,
    homogeneous_fill,
    materialize,
    poisson_arrivals,
    random_mixed_workload,
)
from .perf import PerformanceModel
from .phases import data_parallel, master_slave, pipeline, streaming
from .task import Task, Thread

__all__ = [
    "BENCHMARK_NAMES",
    "PARSEC",
    "BenchmarkCharacter",
    "BenchmarkProfile",
    "PerformanceModel",
    "characterization_table",
    "characterize",
    "duty_cycle",
    "Task",
    "TaskSpec",
    "Thread",
    "data_parallel",
    "homogeneous_fill",
    "master_slave",
    "materialize",
    "parsec_profile",
    "pipeline",
    "poisson_arrivals",
    "random_mixed_workload",
    "streaming",
]

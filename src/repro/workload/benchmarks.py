"""Synthetic PARSEC benchmark profiles.

The paper evaluates with eight PARSEC benchmarks under *sim-small* inputs
(Section VI).  Running the actual binaries requires the Sniper x86 interval
simulator; what the scheduler study needs from them is their **resource
signature**: dynamic power when computing, compute CPI, LLC intensity (which
maps to S-NUCA's AMD-dependent stall time) and the parallel phase structure.
These profiles encode the published qualitative characterization (Bienia et
al., PACT 2008; Pathania & Henkel, DATE 2018):

- *blackscholes*: compute-bound, hot, master/slave alternation (the paper's
  Fig. 2 motivational workload);
- *swaptions*: compute-bound, hottest, embarrassingly parallel;
- *canneal*: strongly memory-bound, cold — the benchmark the paper reports
  the smallest HotPotato gain on (0.73 %);
- *streamcluster*: memory-streaming, cool, well balanced;
- *bodytrack*, *fluidanimate*: balanced medium-power data-parallel codes;
- *dedup*, *x264*: pipeline-parallel with a migrating bottleneck stage.

Power figures are quoted as *dynamic power at 4 GHz, V_max, full activity*
and calibrated jointly with the thermal model: a hot thread totals ~8 W,
which drives a centre core of the 16-core chip to ~80 degC (Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .phases import Phase, data_parallel, master_slave, pipeline, streaming

#: Phase-builder signature: (n_threads, total_instructions, seed) -> phases.
PhaseBuilder = Callable[[int, float, int], List[Phase]]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Resource signature of one benchmark."""

    name: str
    #: dynamic power at f_max / V_max / full activity [W]
    p_dyn_ref_w: float
    #: cycles per instruction when all memory hits private caches
    base_cpi: float
    #: LLC accesses per instruction (S-NUCA stall time = this x AMD latency)
    llc_misses_per_instr: float
    #: instructions each thread retires (weak scaling; sim-small sized)
    work_per_thread_instr: float
    #: phase-structure builder
    shape: PhaseBuilder
    #: thread counts the workload generators may instantiate
    thread_options: Tuple[int, ...] = (2, 4, 8)

    def total_instructions(self, n_threads: int) -> float:
        """Total task work for an ``n_threads`` instance (weak scaling)."""
        if n_threads < 1:
            raise ValueError("need at least one thread")
        return self.work_per_thread_instr * n_threads

    def build_phases(self, n_threads: int, seed: int = 0) -> List[Phase]:
        """The per-thread instruction phases of an ``n_threads`` instance."""
        return self.shape(n_threads, self.total_instructions(n_threads), seed)


def _blackscholes_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    # Serial master work shrinks with instance size: the 2-thread instance of
    # Fig. 2 spends ~40 % in master-only phases.
    serial_fraction = min(0.4, 0.8 / n_threads)
    return master_slave(
        n_threads, total, serial_fraction=serial_fraction, n_rounds=2, seed=seed
    )


def _swaptions_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return data_parallel(n_threads, total, n_barriers=6, imbalance=0.5, seed=seed)


def _bodytrack_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return data_parallel(n_threads, total, n_barriers=10, imbalance=0.5, seed=seed)


def _fluidanimate_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return data_parallel(n_threads, total, n_barriers=8, imbalance=0.45, seed=seed)


def _canneal_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return streaming(n_threads, total, n_barriers=4)


def _streamcluster_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return streaming(n_threads, total, n_barriers=6)


def _dedup_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return pipeline(
        n_threads, total, n_chunks=10, stage_skew=0.4, bottleneck_boost=0.8,
        seed=seed,
    )


def _x264_shape(n_threads: int, total: float, seed: int) -> List[Phase]:
    return pipeline(
        n_threads, total, n_chunks=8, stage_skew=0.3, bottleneck_boost=0.5,
        seed=seed,
    )


#: The eight evaluated benchmarks (paper Section VI).  facesim/raytrace lack
#: sim-small inputs and ferret/freqmine/vips fail in HotSniper; the paper
#: excludes them and so do we.
PARSEC: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        BenchmarkProfile(
            "blackscholes", 7.7, 0.80, 0.0005, 1.6e8, _blackscholes_shape
        ),
        BenchmarkProfile("swaptions", 6.6, 0.75, 0.0003, 2.6e8, _swaptions_shape),
        BenchmarkProfile("bodytrack", 6.8, 1.00, 0.002, 2.0e8, _bodytrack_shape),
        BenchmarkProfile(
            "fluidanimate", 6.4, 0.90, 0.0025, 2.2e8, _fluidanimate_shape
        ),
        BenchmarkProfile("x264", 6.9, 0.85, 0.0015, 2.1e8, _x264_shape),
        BenchmarkProfile("dedup", 5.8, 1.00, 0.004, 1.8e8, _dedup_shape),
        BenchmarkProfile(
            "streamcluster", 3.2, 1.00, 0.014, 1.6e8, _streamcluster_shape
        ),
        BenchmarkProfile("canneal", 1.9, 1.10, 0.022, 1.4e8, _canneal_shape),
    )
}

#: Benchmarks ordered roughly hottest-first (used in reports).
BENCHMARK_NAMES = tuple(PARSEC)


def parsec_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by name (raises ``KeyError`` with suggestions)."""
    try:
        return PARSEC[name]
    except KeyError:
        known = ", ".join(sorted(PARSEC))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None

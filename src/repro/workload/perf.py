"""S-NUCA performance model: thread speed as a function of core and frequency.

The wall-clock time one instruction takes on core ``c`` at frequency ``f``
decomposes into a frequency-scaled compute part and a frequency-independent
memory part:

    t_instr(c, f) = base_cpi / f  +  mpi * L_LLC(AMD(c))

where ``mpi`` is the thread's LLC accesses per instruction and ``L_LLC`` the
core's average S-NUCA access latency (affine in its AMD).  This single
equation produces both published effects the paper builds on:

- **DVFS hurts compute-bound threads** almost linearly (their time is
  dominated by ``base_cpi / f``) while barely helping memory-bound ones;
- **low-AMD rings help memory-bound threads** most — which is why
  HotPotato migrates the highest-CPI thread inward first (Algorithm 2).

The model also splits wall time into compute/stall fractions for the power
model.
"""

from __future__ import annotations

from typing import Tuple

from ..config import CacheConfig, DvfsConfig, NocConfig
from ..arch.snuca import SnucaCache
from ..arch.topology import Mesh
from .benchmarks import BenchmarkProfile


class PerformanceModel:
    """Per-(thread profile, core, frequency) timing queries."""

    def __init__(
        self,
        mesh: Mesh,
        cache_config: CacheConfig = None,
        noc_config: NocConfig = None,
        dvfs_config: DvfsConfig = None,
    ):
        self.mesh = mesh
        self.dvfs = dvfs_config if dvfs_config is not None else DvfsConfig()
        self.snuca = SnucaCache(mesh, cache_config, noc_config)
        self._llc_latency = self.snuca.latency_vector_s()

    def llc_latency_s(self, core: int) -> float:
        """Average LLC access latency of ``core`` [s]."""
        return float(self._llc_latency[core])

    # -- timing ----------------------------------------------------------------

    def time_per_instruction_s(
        self, profile: BenchmarkProfile, core: int, f_hz: float
    ) -> float:
        """Mean wall-clock time per retired instruction."""
        if f_hz <= 0:
            raise ValueError("frequency must be positive")
        compute = profile.base_cpi / f_hz
        memory = profile.llc_misses_per_instr * self._llc_latency[core]
        return compute + memory

    def instructions_in(
        self, duration_s: float, profile: BenchmarkProfile, core: int, f_hz: float
    ) -> float:
        """Instructions retired in ``duration_s`` of uninterrupted execution."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return duration_s / self.time_per_instruction_s(profile, core, f_hz)

    def effective_cpi(
        self, profile: BenchmarkProfile, core: int, f_hz: float = None
    ) -> float:
        """Observed cycles per instruction, including S-NUCA stalls.

        This is the CPI HotPotato sorts threads by: high CPI = memory-bound
        = benefits most from a lower-AMD ring (and heats least).
        """
        if f_hz is None:
            f_hz = self.dvfs.f_max_hz
        return self.time_per_instruction_s(profile, core, f_hz) * f_hz

    # -- activity split (for the power model) ------------------------------------

    def activity_fractions(
        self, profile: BenchmarkProfile, core: int, f_hz: float
    ) -> Tuple[float, float]:
        """``(compute_fraction, stall_fraction)`` of busy wall time."""
        compute = profile.base_cpi / f_hz
        memory = profile.llc_misses_per_instr * self._llc_latency[core]
        total = compute + memory
        return compute / total, memory / total

    # -- ring-level helpers -------------------------------------------------------

    def ring_speed_ratio(
        self, profile: BenchmarkProfile, core_inner: int, core_outer: int, f_hz: float
    ) -> float:
        """Speedup of running on ``core_inner`` instead of ``core_outer``."""
        inner = self.time_per_instruction_s(profile, core_inner, f_hz)
        outer = self.time_per_instruction_s(profile, core_outer, f_hz)
        return outer / inner

"""Workload generators for the paper's two evaluation campaigns.

- **Homogeneous closed system** (Fig. 4a): the 64-core chip is fully loaded
  with vari-sized multi-threaded instances of one benchmark, all arriving at
  time zero.
- **Heterogeneous open system** (Fig. 4b): a random 20-benchmark
  multi-program workload whose tasks arrive following a Poisson process; the
  arrival rate sweeps the system from under- to over-loaded.

Generators emit :class:`TaskSpec` lists (pure descriptions); experiments
materialize them into :class:`~repro.workload.task.Task` objects.  All
randomness is seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from .benchmarks import PARSEC, BenchmarkProfile, parsec_profile
from .qos import QosSpec
from .task import Task


@dataclass(frozen=True)
class TaskSpec:
    """Description of one task instance to be created."""

    profile: BenchmarkProfile
    n_threads: int
    arrival_time_s: float = 0.0
    seed: int = 0
    #: multiplier on all phase instruction counts (longer inputs)
    work_scale: float = 1.0
    #: optional QoS annotation (deadline / SLO / priority class)
    qos: Optional[QosSpec] = None

    def materialize(self, task_id: int) -> Task:
        """Create the runnable :class:`Task`."""
        return Task(
            task_id,
            self.profile,
            self.n_threads,
            arrival_time_s=self.arrival_time_s,
            seed=self.seed,
            work_scale=self.work_scale,
            qos=self.qos,
        )


def materialize(specs: Sequence[TaskSpec]) -> List[Task]:
    """Create tasks from specs with sequential ids (arrival order).

    The sort key is ``(arrival_time_s, position in the input list)`` — a
    stable sort — so arrival-assignment helpers that already return specs
    in arrival order (:func:`poisson_arrivals`,
    :func:`repro.traffic.assign_arrivals`) keep their pairing of spec
    payloads to ids unchanged.
    """
    ordered = sorted(specs, key=lambda s: s.arrival_time_s)
    return [spec.materialize(task_id) for task_id, spec in enumerate(ordered)]


def homogeneous_fill(
    benchmark: str, n_cores: int, seed: int = 0, work_scale: float = 1.0
) -> List[TaskSpec]:
    """Vari-sized instances of one benchmark exactly filling ``n_cores``.

    Thread counts are drawn from the profile's options; the remainder is
    topped up with the largest option that still fits (and a final instance
    sized to the exact residue, which may fall outside the options).
    """
    profile = parsec_profile(benchmark)
    rng = np.random.default_rng(seed)
    specs: List[TaskSpec] = []
    remaining = n_cores
    while remaining > 0:
        fitting = [n for n in profile.thread_options if n <= remaining]
        size = int(rng.choice(fitting)) if fitting else remaining
        specs.append(
            TaskSpec(
                profile,
                size,
                0.0,
                seed=int(rng.integers(1 << 31)),
                work_scale=work_scale,
            )
        )
        remaining -= size
    assert sum(s.n_threads for s in specs) == n_cores
    return specs


def random_mixed_workload(
    n_tasks: int = 20,
    seed: int = 0,
    benchmarks: Optional[Sequence[str]] = None,
    work_scale: float = 1.0,
) -> List[TaskSpec]:
    """The paper's random multi-program multi-threaded mix (Fig. 4b).

    Benchmarks and thread counts are drawn uniformly from the evaluated
    PARSEC set and each profile's thread options.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    names = list(benchmarks) if benchmarks is not None else list(PARSEC)
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(n_tasks):
        profile = parsec_profile(str(rng.choice(names)))
        size = int(rng.choice(profile.thread_options))
        specs.append(
            TaskSpec(
                profile,
                size,
                0.0,
                seed=int(rng.integers(1 << 31)),
                work_scale=work_scale,
            )
        )
    return specs


def poisson_arrivals(
    specs: Sequence[TaskSpec], arrival_rate_per_s: float, seed: int = 0
) -> List[TaskSpec]:
    """Assign Poisson arrival times (exponential gaps) to a task list.

    ``arrival_rate_per_s`` is the mean number of task arrivals per second;
    sweeping it moves the open system between under- and over-load.

    **Ordering contract** (shared by every arrival-assignment helper, see
    :func:`repro.traffic.assign_arrivals`): the returned list is sorted by
    final arrival time, so list position == the sequential id
    :func:`materialize` will assign.  Cumulative exponential gaps are
    already monotone, but the explicit sort makes the contract hold for
    any composed process whose raw draw order is not its time order —
    without it, ids would silently detach from their spec payloads for
    the first out-of-order stream.
    """
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate_per_s, size=len(specs))
    arrivals = np.cumsum(gaps)
    assigned = [
        replace(spec, arrival_time_s=float(at))
        for spec, at in zip(specs, arrivals)
    ]
    return sorted(assigned, key=lambda s: s.arrival_time_s)

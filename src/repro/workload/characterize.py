"""Analytic workload characterization.

Derives, from a benchmark profile alone, the aggregate quantities the
thermal analysis turns on — duty cycle (share of wall time a thread
computes, given the barrier-phase structure) and time-averaged core power.
These are the numbers that decide which regime a benchmark lands in:

- ``avg power <= uniform-sustainable`` → rotation keeps it at f_max
  (HotPotato's winning case);
- ``burst power > TSP budget`` → PCMig's DVFS throttles it
  (the gap HotPotato exploits);
- both below → thermally trivial (canneal: nothing to win).

Used for maintaining the profile calibration and by the docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import SystemConfig, table1
from ..power.model import PowerModel
from .benchmarks import PARSEC, BenchmarkProfile


def duty_cycle(profile: BenchmarkProfile, n_threads: int, seed: int = 0) -> float:
    """Fraction of wall time the average thread spends computing.

    With barrier semantics each phase's wall time is proportional to its
    largest per-thread share (all threads run at equal speed on equal
    cores); a thread computes for its own share and waits the rest.
    """
    phases = profile.build_phases(n_threads, seed)
    total_wall = 0.0
    total_busy = 0.0
    for phase in phases:
        phase = np.asarray(phase, dtype=float)
        bottleneck = float(np.max(phase))
        if bottleneck <= 0:
            continue
        total_wall += bottleneck * n_threads
        total_busy += float(np.sum(phase))
    if total_wall == 0:
        return 0.0
    return total_busy / total_wall


@dataclass(frozen=True)
class BenchmarkCharacter:
    """Aggregate thermal character of one benchmark."""

    name: str
    burst_power_w: float
    duty: float
    average_power_w: float
    stall_fraction: float

    def regime(self, sustainable_w: float, budget_w: float) -> str:
        """Which evaluation regime the benchmark lands in."""
        if self.burst_power_w <= budget_w:
            return "thermally-trivial"
        if self.average_power_w <= sustainable_w:
            return "rotation-wins"
        return "overloaded"


def characterize(
    profile: BenchmarkProfile,
    n_threads: int = 8,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> BenchmarkCharacter:
    """Compute the benchmark's aggregate thermal character.

    Power figures use the mesh-average stall fraction at f_max (stall time
    burns only a fraction of active power).
    """
    cfg = config if config is not None else table1()
    pm = PowerModel(cfg.dvfs, cfg.thermal)
    duty = duty_cycle(profile, n_threads, seed)

    # a mid-mesh LLC latency: AMD of an average core ~ half the diameter
    mid_amd = (cfg.mesh_width + cfg.mesh_height) / 4.0
    llc_latency = (
        cfg.noc.round_trip_factor * mid_amd * cfg.noc.hop_latency_s
        + cfg.noc.bank_access_latency_s
        + cfg.noc.hop_latency_s  # payload flit
    )
    compute = profile.base_cpi / cfg.dvfs.f_max_hz
    memory = profile.llc_misses_per_instr * llc_latency
    stall_fraction = memory / (compute + memory)

    burst = pm.core_power_w(
        profile.p_dyn_ref_w,
        cfg.dvfs.f_max_hz,
        1.0 - stall_fraction,
        stall_fraction,
    )
    idle = pm.idle_power_w(cfg.dvfs.f_max_hz)
    average = duty * burst + (1.0 - duty) * idle
    return BenchmarkCharacter(
        name=profile.name,
        burst_power_w=burst,
        duty=duty,
        average_power_w=average,
        stall_fraction=stall_fraction,
    )


def characterization_table(
    n_threads: int = 8, config: Optional[SystemConfig] = None
) -> Dict[str, BenchmarkCharacter]:
    """Characterize every evaluated PARSEC benchmark."""
    return {
        name: characterize(profile, n_threads, config)
        for name, profile in PARSEC.items()
    }

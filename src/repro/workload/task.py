"""Tasks and threads: the dynamic execution state of a workload.

A :class:`Task` is one multi-threaded benchmark instance progressing through
its phase list (see :mod:`repro.workload.phases`).  Phase semantics are
barrier-style: a thread with remaining work in the current phase is
**active**; a thread whose share is exhausted (or zero) **waits** at the
barrier burning idle power; the task advances to the next phase only when
every thread's share is done.  This is what creates the hot/idle alternation
the paper's synchronous rotation averages out.

The simulator owns *where* threads run and *how fast* they retire
instructions; this module only owns *how much* work remains.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .benchmarks import BenchmarkProfile
from .qos import QosSpec


class Thread:
    """One thread of a task: identity plus per-thread bookkeeping."""

    def __init__(self, task: "Task", index: int):
        self.task = task
        self.index = index
        #: instructions retired over the thread's whole life
        self.instructions_retired: float = 0.0

    @property
    def thread_id(self) -> str:
        """Globally unique id, ``<task_id>.<thread_index>``."""
        return f"{self.task.task_id}.{self.index}"

    @property
    def active(self) -> bool:
        """True when the thread has work in the task's current phase."""
        return self.task.thread_has_work(self.index)

    def __repr__(self) -> str:
        state = "active" if self.active else "waiting"
        return f"Thread({self.thread_id}, {state})"


class Task:
    """A multi-threaded benchmark instance with barrier-phase progression."""

    def __init__(
        self,
        task_id: int,
        profile: BenchmarkProfile,
        n_threads: int,
        arrival_time_s: float = 0.0,
        seed: int = 0,
        work_scale: float = 1.0,
        qos: Optional[QosSpec] = None,
    ):
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if work_scale <= 0:
            raise ValueError("work scale must be positive")
        self.task_id = task_id
        self.profile = profile
        self.n_threads = n_threads
        self.arrival_time_s = arrival_time_s
        self.work_scale = work_scale
        #: optional QoS annotation (deadline / SLO / priority class)
        self.qos = qos
        self.phases: List[np.ndarray] = [
            np.asarray(p, dtype=float) * work_scale
            for p in profile.build_phases(n_threads, seed)
        ]
        for phase in self.phases:
            if phase.shape != (n_threads,):
                raise ValueError("phase shape does not match thread count")
            if np.any(phase < 0):
                raise ValueError("phase instruction counts must be non-negative")
        self.threads = [Thread(self, i) for i in range(n_threads)]
        self._phase_index = 0
        self._remaining = self.phases[0].copy() if self.phases else np.zeros(0)
        self.completion_time_s: Optional[float] = None
        self._skip_empty_phases()

    # -- progress queries --------------------------------------------------

    @property
    def phase_index(self) -> int:
        """Index of the current phase (== number of completed phases)."""
        return self._phase_index

    @property
    def n_phases(self) -> int:
        """Total number of phases."""
        return len(self.phases)

    @property
    def complete(self) -> bool:
        """True once every phase's work has retired."""
        return self._phase_index >= len(self.phases)

    def thread_has_work(self, index: int) -> bool:
        """True when thread ``index`` has remaining work in this phase."""
        if self.complete:
            return False
        return bool(self._remaining[index] > 0)

    def remaining_in_phase(self, index: int) -> float:
        """Instructions thread ``index`` still owes the current phase."""
        if self.complete:
            return 0.0
        return float(self._remaining[index])

    def total_instructions(self) -> float:
        """Total task work across all phases and threads."""
        return float(sum(np.sum(p) for p in self.phases))

    def instructions_retired(self) -> float:
        """Work retired so far across all threads."""
        return float(sum(t.instructions_retired for t in self.threads))

    def active_threads(self) -> Sequence[Thread]:
        """Threads with work in the current phase."""
        return [t for t in self.threads if t.active]

    # -- progress updates ---------------------------------------------------

    def advance(self, index: int, instructions: float) -> float:
        """Retire up to ``instructions`` on thread ``index``.

        Returns the amount actually retired (capped by the thread's
        remaining phase share).  Does **not** advance the phase; the
        simulator calls :meth:`try_advance_phase` once per interval so that
        all threads observe the barrier consistently.
        """
        if instructions < 0:
            raise ValueError("cannot retire a negative instruction count")
        if self.complete:
            return 0.0
        done = min(instructions, float(self._remaining[index]))
        self._remaining[index] -= done
        self.threads[index].instructions_retired += done
        return done

    def try_advance_phase(self) -> bool:
        """Advance past the barrier if every thread's share is retired.

        Returns ``True`` when at least one phase boundary was crossed.
        Phases in which no thread has work are skipped transparently.
        """
        if self.complete or np.any(self._remaining > 0):
            return False
        self._phase_index += 1
        if self._phase_index < len(self.phases):
            self._remaining = self.phases[self._phase_index].copy()
        self._skip_empty_phases()
        return True

    def _skip_empty_phases(self) -> None:
        while (
            self._phase_index < len(self.phases)
            and not np.any(self.phases[self._phase_index] > 0)
        ):
            self._phase_index += 1
            if self._phase_index < len(self.phases):
                self._remaining = self.phases[self._phase_index].copy()

    def mark_complete(self, time_s: float) -> None:
        """Record the completion timestamp (set by the simulator)."""
        if not self.complete:
            raise ValueError("task still has outstanding work")
        self.completion_time_s = time_s

    @property
    def response_time_s(self) -> Optional[float]:
        """Completion minus arrival, or ``None`` while running."""
        if self.completion_time_s is None:
            return None
        return self.completion_time_s - self.arrival_time_s

    @property
    def deadline_time_s(self) -> Optional[float]:
        """Absolute deadline (arrival + relative QoS deadline), if any."""
        if self.qos is None or self.qos.deadline_s is None:
            return None
        return self.arrival_time_s + self.qos.deadline_s

    def __repr__(self) -> str:
        status = (
            "complete"
            if self.complete
            else f"phase {self._phase_index + 1}/{len(self.phases)}"
        )
        return (
            f"Task({self.task_id}, {self.profile.name} x{self.n_threads}, {status})"
        )

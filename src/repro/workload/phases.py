"""Phase-structure builders for multi-threaded tasks.

A task's execution is a sequence of **phases**; each phase assigns every
thread an instruction count (possibly zero) and completes only when all of
its threads have retired their share — threads that finish early (or have no
work) wait at the phase barrier, burning idle power.  This reproduces the
behaviour the paper's motivational example hinges on: in *blackscholes*,
"only the master thread works ... and the slave thread is idle" (Fig. 2,
phases 1-3), so heat alternates between cores and synchronous rotation can
average it out.

All builders are deterministic: imbalance comes from a seeded RNG so the
same task profile always produces the same phase list.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: A phase is an array of per-thread instruction counts, shape (n_threads,).
Phase = np.ndarray


def _check(n_threads: int, total_instructions: float) -> None:
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if total_instructions <= 0:
        raise ValueError("total instruction count must be positive")


def master_slave(
    n_threads: int,
    total_instructions: float,
    serial_fraction: float = 0.4,
    n_rounds: int = 2,
    seed: int = 0,
) -> List[Phase]:
    """Alternating serial (master-only) and parallel (slaves-only) phases.

    ``n_rounds`` rounds of (serial, parallel) followed by a final serial
    wrap-up — the structure of *blackscholes*' data-prepare / compute /
    wrap-up cycle.  ``serial_fraction`` of all instructions retire in the
    serial phases.
    """
    _check(n_threads, total_instructions)
    if not (0.0 < serial_fraction < 1.0):
        raise ValueError("serial fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    serial_total = total_instructions * serial_fraction
    parallel_total = total_instructions - serial_total
    n_serial_phases = n_rounds + 1
    phases: List[Phase] = []
    for round_idx in range(n_rounds):
        serial = np.zeros(n_threads)
        serial[0] = serial_total / n_serial_phases
        phases.append(serial)
        parallel = np.zeros(n_threads)
        if n_threads > 1:
            shares = rng.uniform(0.9, 1.1, size=n_threads - 1)
            shares = shares / shares.sum() * (parallel_total / n_rounds)
            parallel[1:] = shares
        else:
            parallel[0] = parallel_total / n_rounds
        phases.append(parallel)
    final = np.zeros(n_threads)
    final[0] = serial_total / n_serial_phases
    phases.append(final)
    return phases


def data_parallel(
    n_threads: int,
    total_instructions: float,
    n_barriers: int = 8,
    imbalance: float = 0.15,
    seed: int = 0,
) -> List[Phase]:
    """Barrier-synchronized equal-work phases with bounded imbalance.

    Each phase hands every thread ``1 +- imbalance`` of the mean chunk.
    Imbalance is what creates barrier-wait idleness (and hence rotation's
    thermal averaging opportunity) in data-parallel codes.
    """
    _check(n_threads, total_instructions)
    if n_barriers < 1:
        raise ValueError("need at least one barrier interval")
    if not (0.0 <= imbalance < 1.0):
        raise ValueError("imbalance must be in [0, 1)")
    rng = np.random.default_rng(seed)
    per_phase = total_instructions / n_barriers
    phases = []
    for _ in range(n_barriers):
        weights = rng.uniform(1.0 - imbalance, 1.0 + imbalance, size=n_threads)
        weights = weights / weights.sum() * per_phase
        phases.append(weights)
    return phases


def pipeline(
    n_threads: int,
    total_instructions: float,
    n_chunks: int = 8,
    stage_skew: float = 0.3,
    bottleneck_boost: float = 0.5,
    seed: int = 0,
) -> List[Phase]:
    """Software-pipeline shape (*dedup*, *x264*): a migrating bottleneck.

    Per chunk-phase every stage gets ``1 +- stage_skew`` of the mean work
    and one randomly chosen stage an extra ``1 + bottleneck_boost`` —
    pipelines are throughput-limited by their slowest stage, which moves
    with the data.  Non-bottleneck stages wait, creating the idleness that
    makes pipeline codes relatively cool on average.
    """
    _check(n_threads, total_instructions)
    if not (0.0 <= stage_skew < 1.0):
        raise ValueError("stage skew must be in [0, 1)")
    if bottleneck_boost < 0:
        raise ValueError("bottleneck boost must be non-negative")
    rng = np.random.default_rng(seed)
    per_phase = total_instructions / n_chunks
    phases = []
    for _ in range(n_chunks):
        weights = rng.uniform(1.0 - stage_skew, 1.0 + stage_skew, size=n_threads)
        bottleneck = int(rng.integers(0, n_threads))
        weights[bottleneck] *= 1.0 + bottleneck_boost
        weights = weights / weights.sum() * per_phase
        phases.append(weights)
    return phases


def streaming(
    n_threads: int,
    total_instructions: float,
    n_barriers: int = 4,
) -> List[Phase]:
    """Perfectly balanced streaming phases (*streamcluster*, *canneal*).

    No imbalance: every thread computes continuously, so there is little
    idleness for rotation to average — these are the benchmarks the paper
    reports the smallest gains on.
    """
    _check(n_threads, total_instructions)
    per_phase = total_instructions / n_barriers / n_threads
    return [np.full(n_threads, per_phase) for _ in range(n_barriers)]

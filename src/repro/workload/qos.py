"""Per-job QoS annotations: latency SLOs, deadlines, priority classes.

The open-system evaluation (Fig. 4b) treats every task identically; a
serving system does not.  Following the companion work on energy-efficient
QoS-aware scheduling for S-NUCA many-cores (PAPERS.md), each task may carry
a :class:`QosSpec`:

- ``latency_slo_s`` — the *soft* response-time objective.  Informational:
  response-time percentiles are reported against it, nothing is enforced.
- ``deadline_s`` — the *hard* relative deadline (seconds after arrival).
  Completing later — or being shed and never completing — is a
  ``qos-deadline-violation`` (see :mod:`repro.obs.detect`).
- ``priority`` — the admission class used by
  :class:`~repro.sched.qos_aware.QoSAwareScheduler` under overload:
  higher-priority tasks are admitted first and shed last.

A task without a spec behaves exactly as before this module existed: the
scheduler treats it as ``PRIORITY_NORMAL`` with no deadline, and no
detector ever fires for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Priority classes, lowest first.  Under overload the QoS-aware scheduler
#: parks ``best-effort`` tasks first, then everything below ``critical``.
PRIORITY_BEST_EFFORT = 0
PRIORITY_NORMAL = 1
PRIORITY_CRITICAL = 2

#: Human-readable names for the priority classes (serialization).
PRIORITY_NAMES = {
    PRIORITY_BEST_EFFORT: "best-effort",
    PRIORITY_NORMAL: "normal",
    PRIORITY_CRITICAL: "critical",
}


@dataclass(frozen=True)
class QosSpec:
    """Quality-of-service annotation attached to a task."""

    #: soft response-time objective [s] (reporting only), or None.
    latency_slo_s: Optional[float] = None
    #: hard relative deadline [s] after arrival, or None.
    deadline_s: Optional[float] = None
    #: admission class: one of the ``PRIORITY_*`` constants.
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            raise ValueError("latency SLO must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.priority not in PRIORITY_NAMES:
            raise ValueError(
                f"priority must be one of {sorted(PRIORITY_NAMES)}, "
                f"got {self.priority}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable, ``None`` fields omitted)."""
        data: Dict[str, object] = {"priority": self.priority}
        if self.latency_slo_s is not None:
            data["latency_slo_s"] = self.latency_slo_s
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QosSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        allowed = {"latency_slo_s", "deadline_s", "priority"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown QoS fields: {sorted(unknown)}")
        return cls(
            latency_slo_s=(
                float(data["latency_slo_s"])
                if data.get("latency_slo_s") is not None
                else None
            ),
            deadline_s=(
                float(data["deadline_s"])
                if data.get("deadline_s") is not None
                else None
            ),
            priority=int(data.get("priority", PRIORITY_NORMAL)),
        )


def priority_of(qos: Optional[QosSpec]) -> int:
    """The admission class of a (possibly missing) QoS spec."""
    return qos.priority if qos is not None else PRIORITY_NORMAL

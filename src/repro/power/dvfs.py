"""DVFS operating points and budget-driven frequency selection.

The paper's baseline (PCMig/PCGov) performs fine-grained DVFS at 100 MHz
steps between 1 and 4 GHz (Section VI).  This module provides the quantized
operating-point table and the inverse query the baselines need: the highest
frequency whose power fits a given per-core budget.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..config import DvfsConfig
from .model import PowerModel


class DvfsController:
    """Quantized V/f operating points plus budget queries."""

    def __init__(self, config: DvfsConfig = None, power_model: PowerModel = None):
        self.config = config if config is not None else DvfsConfig()
        self.power_model = (
            power_model if power_model is not None else PowerModel(self.config)
        )
        self._levels = self.config.frequencies()

    @property
    def levels(self) -> Sequence[float]:
        """All operating frequencies, ascending [Hz]."""
        return self._levels

    def quantize(self, f_hz: float) -> float:
        """Highest operating point not above ``f_hz`` (clamped to range)."""
        if f_hz <= self._levels[0]:
            return self._levels[0]
        if f_hz >= self._levels[-1]:
            return self._levels[-1]
        index = bisect.bisect_right(self._levels, f_hz + 1e-3) - 1
        return self._levels[index]

    def step_down(self, f_hz: float, steps: int = 1) -> float:
        """``steps`` operating points below ``f_hz`` (clamped to f_min)."""
        index = self._index_of(f_hz)
        return self._levels[max(0, index - steps)]

    def step_up(self, f_hz: float, steps: int = 1) -> float:
        """``steps`` operating points above ``f_hz`` (clamped to f_max)."""
        index = self._index_of(f_hz)
        return self._levels[min(len(self._levels) - 1, index + steps)]

    def _index_of(self, f_hz: float) -> int:
        index = bisect.bisect_left(self._levels, f_hz - 1e-3)
        if index >= len(self._levels) or abs(self._levels[index] - f_hz) > 1e-3:
            raise ValueError(f"{f_hz/1e9:.3f} GHz is not an operating point")
        return index

    def frequency_for_budget(
        self,
        power_budget_w: float,
        p_dyn_ref_w: float,
        compute_fraction: float = 1.0,
        stall_fraction: float = 0.0,
    ) -> float:
        """Highest frequency whose core power fits ``power_budget_w``.

        Power is monotone in frequency, so a binary search over the
        operating points suffices.  If even f_min exceeds the budget, f_min
        is returned (the hardware cannot go lower; DTM must handle the
        residual risk), matching HotSniper's governor behaviour.
        """
        lo, hi = 0, len(self._levels) - 1
        best = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            power = self.power_model.core_power_w(
                p_dyn_ref_w,
                self._levels[mid],
                compute_fraction,
                stall_fraction,
            )
            if power <= power_budget_w:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return self._levels[best]

"""Power substrate: core power model, DVFS operating points, TSP budgets."""

from .dvfs import DvfsController
from .model import PowerModel, PowerModelParams
from .tsp import Tsp

__all__ = ["DvfsController", "PowerModel", "PowerModelParams", "Tsp"]

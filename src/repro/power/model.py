"""Core power model.

Power of a core executing a thread decomposes into

- **dynamic** power, scaling with frequency and the square of the supply
  voltage (``P_dyn = P_ref * (f/f_ref) * (V/V_ref)^2 * activity``), where
  ``activity`` is the fraction of cycles the pipeline does useful work
  (memory-stalled cycles burn only a fraction of active power), and
- **static/leakage** power, scaling with voltage and (optionally)
  temperature.

An idle core (no thread, clock-gated) burns the paper's 0.3 W (Section VI).
The reference dynamic power of each thread comes from its benchmark profile
(:mod:`repro.workload.benchmarks`) and is quoted at 4 GHz / V_max / full
activity.

The paper's analytic machinery treats power as temperature-independent; the
leakage-temperature coefficient therefore defaults to zero and is exposed
for ablation studies only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DvfsConfig, ThermalConfig


@dataclass(frozen=True)
class PowerModelParams:
    """Tunables of the power model."""

    #: Fraction of full dynamic power burned during a memory-stall cycle
    #: (clock still toggles, datapath mostly quiet).
    stall_power_fraction: float = 0.3
    #: Fraction of the idle power that is leakage (scales with voltage);
    #: the rest is clock/uncore and treated as constant.
    idle_leakage_fraction: float = 0.5
    #: Leakage growth per Kelvin above the reference temperature.  Zero by
    #: default (see module docstring).
    leakage_temp_coefficient: float = 0.0
    #: Reference temperature for the leakage model [degC].
    leakage_ref_temp_c: float = 45.0


class PowerModel:
    """Maps (thread activity, frequency, temperature) to core power."""

    def __init__(
        self,
        dvfs: DvfsConfig = None,
        thermal: ThermalConfig = None,
        params: PowerModelParams = None,
    ):
        self.dvfs = dvfs if dvfs is not None else DvfsConfig()
        self.thermal = thermal if thermal is not None else ThermalConfig()
        self.params = params if params is not None else PowerModelParams()

    # -- building blocks ------------------------------------------------------

    def dynamic_power_w(
        self, p_dyn_ref_w: float, f_hz: float, activity: float = 1.0
    ) -> float:
        """Dynamic power at frequency ``f_hz`` for a thread whose profile
        quotes ``p_dyn_ref_w`` at f_max/V_max/full activity."""
        if not (0.0 <= activity <= 1.0):
            raise ValueError("activity must be within [0, 1]")
        v = self.dvfs.voltage(f_hz)
        f_scale = f_hz / self.dvfs.f_max_hz
        v_scale = (v / self.dvfs.v_max) ** 2
        return p_dyn_ref_w * f_scale * v_scale * activity

    def leakage_factor(self, temp_c: float) -> float:
        """Multiplier on leakage power at temperature ``temp_c``."""
        coeff = self.params.leakage_temp_coefficient
        return 1.0 + coeff * (temp_c - self.params.leakage_ref_temp_c)

    def idle_power_w(self, f_hz: float = None, temp_c: float = None) -> float:
        """Power of a core with no thread (clock-gated).

        At nominal voltage and reference temperature this is exactly the
        configured idle power (0.3 W in the paper's setup).
        """
        leak = self.thermal.idle_power_w * self.params.idle_leakage_fraction
        fixed = self.thermal.idle_power_w - leak
        v_scale = 1.0
        if f_hz is not None:
            v_scale = self.dvfs.voltage(f_hz) / self.dvfs.v_max
        t_scale = 1.0 if temp_c is None else self.leakage_factor(temp_c)
        return fixed + leak * v_scale * t_scale

    # -- full core power -------------------------------------------------------

    def core_power_w(
        self,
        p_dyn_ref_w: float,
        f_hz: float,
        compute_fraction: float,
        stall_fraction: float = 0.0,
        temp_c: float = None,
    ) -> float:
        """Power of a core running a thread.

        ``compute_fraction`` and ``stall_fraction`` are the shares of wall
        time the thread spends computing and stalled on memory; the
        remainder is architectural idleness (e.g. a slave thread waiting at
        a barrier).  They must not sum above 1.
        """
        if compute_fraction < 0 or stall_fraction < 0:
            raise ValueError("time fractions must be non-negative")
        if compute_fraction + stall_fraction > 1.0 + 1e-9:
            raise ValueError("compute + stall fractions exceed 1")
        activity = (
            compute_fraction + self.params.stall_power_fraction * stall_fraction
        )
        dyn = self.dynamic_power_w(p_dyn_ref_w, f_hz, min(activity, 1.0))
        return dyn + self.idle_power_w(f_hz, temp_c)

    def max_core_power_w(self, p_dyn_ref_w: float) -> float:
        """Peak power of a thread: full activity at f_max."""
        return self.core_power_w(p_dyn_ref_w, self.dvfs.f_max_hz, 1.0)

"""Thermal Safe Power (TSP) budgeting.

TSP (Pagani et al., ESWEEK 2014 / TC 2016) replaces a single chip-level TDP
with a per-core power budget that is *thermally safe*: if every active core
stays within the budget, no core's steady-state temperature exceeds the DTM
threshold.  The paper's baselines PCGov and PCMig budget with TSP and
enforce the budget via DVFS.

Two variants are provided, both exact linear computations on the steady
state of the RC model:

- :meth:`Tsp.budget_for_mapping` — the budget for one concrete set of
  active cores (the tighter, mapping-aware variant PCGov uses once the
  mapping is known);
- :meth:`Tsp.worst_case_budget` — the budget that is safe for *any*
  mapping of ``n_active`` threads, computed against the thermally worst
  placement (greedy densest-cluster construction).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from ..thermal.rc_model import RCThermalModel
from ..thermal.steady_state import heat_distribution_matrix


class Tsp:
    """Thermal Safe Power computation on a calibrated RC model."""

    def __init__(
        self,
        model: RCThermalModel,
        ambient_c: float,
        threshold_c: float,
        idle_power_w: float,
    ):
        if threshold_c <= ambient_c:
            raise ValueError("threshold must exceed ambient")
        self.model = model
        self.ambient_c = ambient_c
        self.threshold_c = threshold_c
        self.idle_power_w = idle_power_w
        self._h = heat_distribution_matrix(model)

    # -- mapping-aware budget -----------------------------------------------

    def budget_for_mapping(self, active_cores: Iterable[int]) -> float:
        """Uniform per-active-core budget for one concrete mapping.

        Solves ``max_i [H (b*mask + idle*(1-mask))]_i = threshold - ambient``
        for ``b``; exact because the steady state is linear in power.
        """
        mask = np.zeros(self.model.n_cores)
        active = list(active_cores)
        if not active:
            raise ValueError("mapping has no active cores")
        mask[active] = 1.0
        idle_rise = self._h @ (self.idle_power_w * (1.0 - mask))
        active_rise_per_watt = self._h @ mask
        headroom = (self.threshold_c - self.ambient_c) - idle_rise
        with np.errstate(divide="ignore"):
            ratios = np.where(
                active_rise_per_watt > 1e-15, headroom / active_rise_per_watt, np.inf
            )
        budget = float(np.min(ratios))
        if budget <= 0:
            raise ValueError(
                "idle power alone exceeds the thermal threshold; "
                "the configuration is infeasible"
            )
        return budget

    # -- worst-case budget ------------------------------------------------------

    def worst_case_mapping(self, n_active: int) -> Sequence[int]:
        """A thermally pessimal placement of ``n_active`` threads.

        Greedy densest-cluster heuristic from the TSP paper: seed with the
        core whose self-heating is largest, then repeatedly add the core
        that maximizes the hottest cluster temperature.
        """
        if not (1 <= n_active <= self.model.n_cores):
            raise ValueError("n_active out of range")
        chosen: list = [int(np.argmax(np.diag(self._h)))]
        while len(chosen) < n_active:
            best_core, best_heat = None, -np.inf
            current = self._h[:, chosen].sum(axis=1)
            for core in range(self.model.n_cores):
                if core in chosen:
                    continue
                heat = float(np.max(current + self._h[:, core]))
                if heat > best_heat:
                    best_core, best_heat = core, heat
            chosen.append(best_core)
        return tuple(chosen)

    def worst_case_budget(self, n_active: int) -> float:
        """Budget safe for any mapping of ``n_active`` threads."""
        return self._worst_case_budget_cached(int(n_active))

    @lru_cache(maxsize=None)
    def _worst_case_budget_cached(self, n_active: int) -> float:
        return self.budget_for_mapping(self.worst_case_mapping(n_active))

    # -- verification ---------------------------------------------------------

    def steady_peak_for_budget(
        self, active_cores: Iterable[int], budget_w: float
    ) -> float:
        """Steady peak temperature if the active cores burn exactly the budget."""
        power = np.full(self.model.n_cores, self.idle_power_w)
        for core in active_cores:
            power[core] = budget_w
        rise = self._h @ power
        return float(self.ambient_c + np.max(rise))

"""Incremental findings cache for the lint engine.

``python -m repro.lint check`` over the full tree re-parses and re-walks
every module on every invocation.  Parsing is cheap; the per-file rule
walks dominate.  This cache memoizes each module's *per-file* findings,
keyed by a BLAKE2b hash of the module source, so an unchanged file is
never re-walked.  Three invariants keep this sound:

- **Content-addressed.**  The key is the source digest, not a mtime — a
  touched-but-identical file still hits, an edited file always misses.
- **Suppression-closed.**  Entries are stored *after* suppression
  filtering.  ``# lint: ignore[...]`` comments live on the flagged line
  of the same file, so any edit that could change the suppression
  outcome also changes the digest.
- **Project passes never cached.**  Rules with a ``check_project``
  override (the call-graph ``async-safety`` family, ``sched-export``)
  see several files at once; one changed file may flip a finding in
  another, so the engine re-runs them unconditionally
  (:func:`repro.lint.engine.has_project_pass`).

The cache key also folds in a *rules signature*: the sorted active rule
ids plus a digest of the ``repro.lint`` package's own sources.  Editing
any rule, or linting with a different ``--select`` set, invalidates the
whole cache rather than serving stale findings.

The on-disk format (``.lint-cache.json`` by default, git-ignored) is a
plain versioned JSON document; a missing, corrupt or version-mismatched
file degrades to an empty cache, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Module

__all__ = ["DEFAULT_CACHE_PATH", "LintCache", "rules_signature"]

#: Default cache location, relative to the invocation cwd.
DEFAULT_CACHE_PATH = ".lint-cache.json"

#: Bump to invalidate every existing cache file on format changes.
_VERSION = 1


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _lint_package_digest() -> str:
    """Digest over the lint package's own sources.

    Folded into the rules signature so editing any rule (or the engine,
    or this module) invalidates caches produced by the old logic.
    """
    root = Path(__file__).resolve().parent
    hasher = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        hasher.update(path.relative_to(root).as_posix().encode("utf-8"))
        hasher.update(path.read_bytes())
    return hasher.hexdigest()


def rules_signature(rule_ids: Iterable[str]) -> str:
    """Signature of an active rule set (ids + lint-package sources)."""
    payload = json.dumps(
        {
            "version": _VERSION,
            "rules": sorted(rule_ids),
            "package": _lint_package_digest(),
        },
        sort_keys=True,
    )
    return _digest(payload.encode("utf-8"))


class LintCache:
    """Per-module findings cache, content-hash keyed.

    Usage (what the CLI does)::

        cache = LintCache(Path(".lint-cache.json"), rules_signature(ids))
        findings = run_lint(paths, rules, cache=cache)

    :meth:`lookup` and :meth:`store` are called by the engine per module;
    :meth:`save` prunes entries for files that vanished from the run and
    writes the file atomically.
    """

    def __init__(self, path: Path, signature: str):
        self.path = Path(path)
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, object]] = {}
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != _VERSION:
            return
        if payload.get("rules_signature") != self.signature:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._entries = {
                str(display): entry
                for display, entry in files.items()
                if isinstance(entry, dict)
            }

    @staticmethod
    def _module_digest(module: "Module") -> str:
        return _digest(module.source.encode("utf-8"))

    def lookup(self, module: "Module") -> Optional[List[Finding]]:
        """Cached findings for ``module``, or ``None`` on miss."""
        entry = self._entries.get(module.display)
        if entry is None or entry.get("hash") != self._module_digest(module):
            self.misses += 1
            return None
        raw = entry.get("findings")
        if not isinstance(raw, list):
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(item) for item in raw]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, module: "Module", findings: Sequence[Finding]) -> None:
        """Record ``module``'s post-suppression per-file findings."""
        self._entries[module.display] = {
            "hash": self._module_digest(module),
            "findings": [finding.to_dict() for finding in findings],
        }

    def save(self, live_displays: Iterable[str]) -> None:
        """Prune dead entries and persist atomically (best effort)."""
        live = set(live_displays)
        self._entries = {
            display: entry
            for display, entry in self._entries.items()
            if display in live
        }
        payload = {
            "version": _VERSION,
            "rules_signature": self.signature,
            "files": dict(sorted(self._entries.items())),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


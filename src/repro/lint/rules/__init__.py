"""Domain lint rules, grouped by family.

Importing this package registers every rule with the engine registry
(:func:`repro.lint.engine.register`); :func:`repro.lint.engine.default_rules`
does so lazily.  The five families:

- ``unit-safety`` (:mod:`.units`) — constants go through ``repro.units``;
- ``determinism`` (:mod:`.determinism`) — no global RNG / wall clock in
  the simulation packages;
- ``frozen-config`` (:mod:`.frozen`) — configs are never mutated;
- ``scheduler-contract`` (:mod:`.contract`) — subclasses honor
  ``sched.base.Scheduler`` and are exported;
- ``public-api`` (:mod:`.api`) — ``__all__`` resolves, modules are
  documented.
"""

from . import api, contract, determinism, frozen, units

__all__ = ["api", "contract", "determinism", "frozen", "units"]

"""Domain lint rules, grouped by family.

Importing this package registers every rule with the engine registry
(:func:`repro.lint.engine.register`); :func:`repro.lint.engine.default_rules`
does so lazily.  The six families:

- ``unit-safety`` (:mod:`.units`) — constants go through ``repro.units``;
- ``determinism`` (:mod:`.determinism`) — no global RNG / wall clock in
  the simulation packages;
- ``frozen-config`` (:mod:`.frozen`) — configs are never mutated;
- ``scheduler-contract`` (:mod:`.contract`) — subclasses honor
  ``sched.base.Scheduler`` and are exported;
- ``public-api`` (:mod:`.api`) — ``__all__`` resolves, modules are
  documented;
- ``faults`` (:mod:`.faults`) — schedulers observe temperatures through
  the sensor shim, never ground truth.
"""

from . import api, contract, determinism, faults, frozen, units

__all__ = ["api", "contract", "determinism", "faults", "frozen", "units"]

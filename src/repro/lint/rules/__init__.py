"""Domain lint rules, grouped by family.

Importing this package registers every rule with the engine registry
(:func:`repro.lint.engine.register`); :func:`repro.lint.engine.default_rules`
does so lazily.  The seven families:

- ``unit-safety`` (:mod:`.units`) — constants go through ``repro.units``;
- ``determinism`` (:mod:`.determinism`) — no global RNG / wall clock in
  the simulation packages;
- ``frozen-config`` (:mod:`.frozen`) — configs are never mutated;
- ``scheduler-contract`` (:mod:`.contract`) — subclasses honor
  ``sched.base.Scheduler`` and are exported;
- ``public-api`` (:mod:`.api`) — ``__all__`` resolves, modules are
  documented;
- ``faults`` (:mod:`.faults`) — schedulers observe temperatures through
  the sensor shim, never ground truth;
- ``async-safety`` (:mod:`.asyncsafety`) — the asyncio serve hot path
  never blocks the loop, races on shared state across an ``await``, or
  leaks request-scoped ContextVars (project pass over the call graph,
  :mod:`repro.lint.graph`).
"""

from . import api, asyncsafety, contract, determinism, faults, frozen, units

__all__ = [
    "api",
    "asyncsafety",
    "contract",
    "determinism",
    "faults",
    "frozen",
    "units",
]
